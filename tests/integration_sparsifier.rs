//! End-to-end integration tests for the two-pass streaming spectral
//! sparsifier (Corollary 2) and its verification machinery.

use dsg_core::prelude::*;
use dsg_sparsifier::kp12::{measure_quality, unit_weighted};
use dsg_sparsifier::{cut, resistance, spectral, ss08};

fn small_params(seed: u64) -> SparsifierParams {
    let mut p = SparsifierParams::new(2, 0.5, seed);
    p.z_factor = 0.05;
    p.j_factor = 0.4;
    p
}

#[test]
fn sparsifier_of_clique_is_spectrally_close() {
    let g = gen::complete(28);
    let stream = GraphStream::insert_only(&g, 1);
    let out = SparsifierBuilder::new(28)
        .params(small_params(2))
        .build_from_stream(&stream);
    let quality = measure_quality(&g, &out.sparsifier);
    assert!(
        quality.epsilon < 1.0,
        "eps {} at disconnection level",
        quality.epsilon
    );
    assert!(quality.edges > 0);
}

#[test]
fn sparsifier_respects_deletions() {
    let g = gen::erdos_renyi(26, 0.5, 3);
    let stream = GraphStream::with_churn(&g, 1.0, 4);
    let out = SparsifierBuilder::new(26)
        .params(small_params(5))
        .build_from_stream(&stream);
    for (e, _) in out.sparsifier.edges() {
        assert!(g.has_edge(e.u(), e.v()), "deleted/phantom edge {e} kept");
    }
}

#[test]
fn streaming_beats_naive_uniform_sampling_on_barbell() {
    // The barbell's bridge is the classic case where uniform sampling
    // fails and resistance-aware sampling (which the q̂ estimates emulate)
    // succeeds: the bridge must be in the sparsifier.
    let g = gen::barbell(10, 1); // bridge edge (9, 10)
    let stream = GraphStream::insert_only(&g, 6);
    let out = SparsifierBuilder::new(g.num_vertices())
        .params(small_params(7))
        .build_from_stream(&stream);
    assert!(
        out.sparsifier.weight(9, 10).is_some(),
        "bridge missing from sparsifier"
    );
}

#[test]
fn ss08_baseline_tracks_resistances() {
    let g = gen::with_random_weights(&gen::complete(30), 1.0, 1.0, 8);
    let h = ss08::sparsify(&g, 0.5, 0.5, 9);
    let eps =
        spectral::spectral_epsilon(&Laplacian::from_weighted(&g), &Laplacian::from_weighted(&h));
    assert!(eps < 0.9, "SS08 eps {eps}");
    // Cut deviation is bounded by the spectral epsilon.
    let cut_dev = cut::max_cut_deviation(
        &Laplacian::from_weighted(&g),
        &Laplacian::from_weighted(&h),
        200,
        10,
    );
    assert!(cut_dev <= eps + 1e-9);
}

#[test]
fn resistance_and_spectral_machinery_agree() {
    // Foster's theorem as a cross-module invariant.
    let g = gen::erdos_renyi(20, 0.4, 11);
    let l = Laplacian::from_graph(&g);
    let comps = dsg_graph::components::num_components(&g);
    assert!((resistance::foster_sum(&l) - (20 - comps) as f64).abs() < 1e-4);
    // And the unit-weighted view is spectrally identical to the graph.
    let wg = unit_weighted(&g);
    let eps = spectral::spectral_epsilon(&l, &Laplacian::from_weighted(&wg));
    assert!(eps < 1e-9);
}

#[test]
fn pipeline_space_is_subquadratic() {
    let n = 30;
    let g = gen::erdos_renyi(n, 0.5, 12);
    let stream = GraphStream::insert_only(&g, 13);
    let out = SparsifierBuilder::new(n)
        .params(small_params(14))
        .build_from_stream(&stream);
    // Sanity ceiling: far below the n^2 trivial storage times instances.
    let instances = out.stats.estimate_instances + out.stats.sample_instances;
    assert!(instances > 10, "too few spanner instances ({instances})");
    assert!(out.stats.sketch_bytes > 0);
}

#[test]
fn deterministic_given_seed() {
    let g = gen::erdos_renyi(22, 0.4, 15);
    let stream = GraphStream::insert_only(&g, 16);
    let a = SparsifierBuilder::new(22)
        .params(small_params(17))
        .build_from_stream(&stream);
    let b = SparsifierBuilder::new(22)
        .params(small_params(17))
        .build_from_stream(&stream);
    assert_eq!(a.sparsifier.edges(), b.sparsifier.edges());
}
