//! Smoke test: every example binary must run to successful completion, so
//! the examples can't silently rot as APIs evolve.
//!
//! `cargo test` compiles examples into `target/<profile>/examples/` before
//! running integration tests, so the binaries are located relative to this
//! test executable instead of shelling out to a nested `cargo run`.

use std::path::PathBuf;
use std::process::Command;

const EXAMPLES: &[&str] = &[
    "quickstart",
    "social_network",
    "laplacian_solver",
    "distributed_servers",
    "query_service",
    "durable_service",
];

/// Directory holding compiled example binaries for the active profile.
fn examples_dir() -> PathBuf {
    // This test executable lives at target/<profile>/deps/<name>-<hash>.
    let exe = std::env::current_exe().expect("test executable path");
    let profile_dir = exe
        .parent() // deps/
        .and_then(|p| p.parent()) // <profile>/
        .expect("test executable should live under target/<profile>/deps");
    profile_dir.join("examples")
}

/// Builds one example via cargo. A bare `cargo test` pre-builds all
/// examples, but a filtered `cargo test --test examples_smoke` does not.
fn build_example(name: &str) {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    let manifest = concat!(env!("CARGO_MANIFEST_DIR"), "/Cargo.toml");
    let release = examples_dir()
        .parent()
        .is_some_and(|p| p.ends_with("release"));
    let mut cmd = Command::new(cargo);
    cmd.args(["build", "--example", name, "--manifest-path", manifest]);
    if release {
        cmd.arg("--release");
    }
    let status = cmd.status().expect("failed to spawn cargo build");
    assert!(status.success(), "cargo build --example {name} failed");
}

#[test]
fn all_examples_run_to_completion() {
    let dir = examples_dir();
    for name in EXAMPLES {
        let bin = dir.join(format!("{name}{}", std::env::consts::EXE_SUFFIX));
        if !bin.exists() {
            build_example(name);
        }
        assert!(
            bin.exists(),
            "example binary {bin:?} missing — was the example renamed without updating EXAMPLES?"
        );
        let output = Command::new(&bin)
            .output()
            .unwrap_or_else(|e| panic!("failed to spawn example {name}: {e}"));
        assert!(
            output.status.success(),
            "example {name} exited with {:?}\n--- stdout ---\n{}\n--- stderr ---\n{}",
            output.status,
            String::from_utf8_lossy(&output.stdout),
            String::from_utf8_lossy(&output.stderr),
        );
        // Every example prints a report; an empty stdout means it silently
        // did nothing, which should fail the smoke test too.
        assert!(
            !output.stdout.is_empty(),
            "example {name} produced no output"
        );
        // The distributed example must actually exercise the sharded
        // engine path (threads + wire snapshots), not a toy loop.
        if *name == "distributed_servers" {
            let stdout = String::from_utf8_lossy(&output.stdout);
            for marker in [
                "server threads",
                "snapshots",
                "shard ingest counts",
                "telemetry:",
                "prometheus exposition",
                "dsg_engine_batches_sent_total",
            ] {
                assert!(
                    stdout.contains(marker),
                    "distributed_servers output lost its '{marker}' report:\n{stdout}"
                );
            }
        }
        // The durability example must walk the full crash cycle: create,
        // checkpoint (with compaction), crash, recover, and prove the
        // pinned-epoch answers came back bit-identical.
        if *name == "durable_service" {
            let stdout = String::from_utf8_lossy(&output.stdout);
            for marker in [
                "durable registry",
                "checkpoint at epoch",
                "compacted away",
                "process 'crashed'",
                "recovered tenant 'social'",
                "recovery phases:",
                "bit-identical",
                "query pool serves the recovered tenant",
            ] {
                assert!(
                    stdout.contains(marker),
                    "durable_service output lost its '{marker}' report:\n{stdout}"
                );
            }
        }
        // The serving example must exercise the real service: multiple
        // tenants, a frozen epoch, pool latencies, and the oracle cache.
        if *name == "query_service" {
            let stdout = String::from_utf8_lossy(&output.stdout);
            for marker in [
                "registry hosts 2 graphs",
                "epoch 1 frozen",
                "queries/s",
                "p95",
                "cache",
                "telemetry:",
                "prometheus exposition",
                "dsg_engine_",
                "admin endpoint at http://",
                "flight recorder:",
                "quality audit:",
            ] {
                assert!(
                    stdout.contains(marker),
                    "query_service output lost its '{marker}' report:\n{stdout}"
                );
            }
        }
    }
}
