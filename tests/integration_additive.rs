//! End-to-end integration tests for the single-pass additive spanner
//! (Theorem 3 / Algorithm 3).

use dsg_core::prelude::*;

fn build(g: &Graph, d: usize, seed: u64, churn: f64) -> dsg_spanner::additive::AdditiveOutput {
    let stream = GraphStream::with_churn(g, churn, seed ^ 0xADD);
    AdditiveSpannerBuilder::new(g.num_vertices())
        .degree_parameter(d)
        .seed(seed)
        .build_from_stream(&stream)
}

#[test]
fn distortion_bound_across_topologies() {
    let cases: Vec<(&str, Graph)> = vec![
        ("erdos_renyi", gen::erdos_renyi(90, 0.15, 1)),
        ("power_law", gen::power_law(90, 2.5, 8.0, 2)),
        ("complete", gen::complete(60)),
    ];
    for (name, g) in cases {
        let n = g.num_vertices();
        let d = 8;
        let out = build(&g, d, 3, 0.5);
        let distortion = verify::max_additive_distortion(&g, &out.spanner, n);
        let bound = (8 * n / d) as u32;
        assert!(
            distortion <= bound,
            "{name}: distortion {distortion} > {bound} (stats {:?})",
            out.stats
        );
    }
}

#[test]
fn distortion_improves_with_d() {
    let g = gen::complete(80);
    let coarse = build(&g, 2, 4, 0.0);
    let fine = build(&g, 40, 5, 0.0);
    let dist_coarse = verify::max_additive_distortion(&g, &coarse.spanner, 80);
    let dist_fine = verify::max_additive_distortion(&g, &fine.spanner, 80);
    assert!(
        dist_fine <= dist_coarse,
        "distortion should not grow with d: {dist_fine} vs {dist_coarse}"
    );
    assert!(fine.spanner.num_edges() >= coarse.spanner.num_edges());
}

#[test]
fn single_pass_only() {
    use dsg_graph::StreamAlgorithm;
    let alg = dsg_spanner::AdditiveSpanner::new(10, AdditiveParams::new(4, 1));
    assert_eq!(alg.num_passes(), 1);
}

#[test]
fn survives_heavy_churn() {
    let g = gen::erdos_renyi(60, 0.15, 6);
    let out = build(&g, 6, 7, 4.0);
    assert!(verify::is_subgraph(&g, &out.spanner));
    assert_eq!(
        dsg_graph::components::num_components(&g),
        dsg_graph::components::num_components(&out.spanner)
    );
}

#[test]
fn low_degree_regime_is_lossless() {
    // When every vertex is under the threshold, E_low = E.
    let g = gen::grid(8, 8);
    let out = build(&g, 8, 8, 1.0);
    assert_eq!(out.spanner.num_edges(), g.num_edges());
    assert_eq!(verify::max_additive_distortion(&g, &out.spanner, 64), 0);
}

#[test]
fn dense_regime_compresses_substantially() {
    let g = gen::complete(90);
    let out = build(&g, 3, 9, 0.0);
    assert!(
        (out.spanner.num_edges() as f64) < 0.4 * g.num_edges() as f64,
        "kept {} of {}",
        out.spanner.num_edges(),
        g.num_edges()
    );
}

#[test]
fn deterministic_given_seed() {
    let g = gen::erdos_renyi(50, 0.2, 10);
    let a = build(&g, 6, 11, 1.0);
    let b = build(&g, 6, 11, 1.0);
    assert_eq!(a.spanner.edges(), b.spanner.edges());
}

#[test]
fn space_reservation_scales_with_nd() {
    let alg_small = dsg_spanner::AdditiveSpanner::new(100, AdditiveParams::new(2, 1));
    let alg_large = dsg_spanner::AdditiveSpanner::new(100, AdditiveParams::new(16, 1));
    assert!(alg_large.nominal_neighborhood_bytes() > 4 * alg_small.nominal_neighborhood_bytes());
}
