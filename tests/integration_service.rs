//! End-to-end tests of the query-serving layer, centered on **snapshot
//! isolation**: answers read from an epoch snapshot during live concurrent
//! ingest must be bit-identical to a single-threaded offline recomputation
//! over the stream prefix frozen at that epoch. This is the linearity
//! story run in reverse — the serving layer is only correct because a
//! fork-merge of the shard sketches at any stream position equals the one
//! sketch of that prefix, and every artifact build is deterministic.

use dsg_agm::AgmSketch;
use dsg_graph::components::UnionFind;
use dsg_graph::{gen, GraphStream, StreamUpdate, Vertex};
use dsg_service::{GraphConfig, GraphRegistry, LoadGen, Query, QueryMix, QueryService, Response};
use dsg_spanner::oracle::DistanceOracle;
use dsg_spanner::twopass;
use proptest::prelude::*;
use std::sync::Arc;

/// Single-threaded ground truth over a frozen prefix: the AGM forest and
/// the component labels, computed exactly the way an epoch snapshot does
/// but with no engine, no shards, and no threads.
fn offline_forest(
    n: usize,
    seed: u64,
    prefix: &[StreamUpdate],
) -> (Vec<dsg_graph::Edge>, Vec<Vertex>) {
    let mut sketch = AgmSketch::new(n, seed);
    for up in prefix {
        sketch.update(up.edge, up.delta as i128);
    }
    let forest = sketch.spanning_forest();
    let mut uf = UnionFind::new(n);
    for e in &forest.edges {
        uf.union(e.u(), e.v());
    }
    let labels = (0..n as Vertex).map(|v| uf.find(v)).collect();
    (forest.edges, labels)
}

/// Single-threaded ground-truth distance oracle over a frozen prefix.
fn offline_oracle(config: &GraphConfig, prefix: &[StreamUpdate]) -> DistanceOracle {
    let stream = GraphStream::new(config.n, prefix.to_vec());
    let out = twopass::run_two_pass(&stream, config.oracle_params());
    DistanceOracle::new(out.spanner, 1 << config.spanner_k)
}

proptest! {
    /// The headline property. Freeze an epoch, then hammer it with reads
    /// *while a writer thread keeps ingesting and even advances further
    /// epochs*; afterwards recompute everything offline over the frozen
    /// prefix and demand exact agreement.
    #[test]
    fn epoch_answers_match_offline_recompute_under_live_ingest(
        graph_seed in 0u64..40,
        service_seed in 0u64..1000,
        shards in 1usize..4,
        cut_frac in 0.2f64..0.8,
    ) {
        let n = 28;
        let g = gen::erdos_renyi(n, 0.14, graph_seed);
        let stream = GraphStream::with_churn(&g, 1.0, graph_seed ^ 0xA5);
        let updates = stream.updates().to_vec();
        let cut = ((updates.len() as f64 * cut_frac) as usize).max(1).min(updates.len());

        let config = GraphConfig::new(n).seed(service_seed).shards(shards).batch_size(8);
        let registry = GraphRegistry::new();
        let served = registry.create("g", config).unwrap();
        served.apply(&updates[..cut]).unwrap();
        let epoch = served.advance_epoch();
        prop_assert_eq!(epoch.epoch(), 1);
        prop_assert_eq!(epoch.total_updates(), cut as u64);

        // Writer: ingest the rest in dribs, advancing an epoch mid-way.
        let writer = {
            let served = Arc::clone(&served);
            let tail = updates[cut..].to_vec();
            std::thread::spawn(move || {
                for (i, chunk) in tail.chunks(5).enumerate() {
                    served.apply(chunk).unwrap();
                    if i == 1 {
                        served.advance_epoch();
                    }
                }
                served.advance_epoch();
            })
        };

        // Readers: query the *pinned* epoch-1 snapshot while the writer
        // races. Collect answers to check against the offline recompute.
        let mut same_component = Vec::new();
        let mut distances = Vec::new();
        for round in 0..3u32 {
            for u in 0..n as Vertex {
                let v = (u + 1 + round) % n as Vertex;
                let Response::SameComponent(sc) =
                    epoch.execute(&Query::SameComponent(u, v)).unwrap()
                else { panic!("wrong variant") };
                same_component.push((u, v, sc));
            }
            // Hot-source distance queries (exercise the oracle cache).
            for v in 0..n as Vertex {
                let Response::Distance(d) = epoch.execute(&Query::Distance(0, v)).unwrap()
                else { panic!("wrong variant") };
                distances.push((0, v, d));
            }
        }
        writer.join().unwrap();

        // Offline ground truth over exactly the frozen prefix.
        let (forest_edges, labels) = offline_forest(n, service_seed, &updates[..cut]);
        prop_assert_eq!(&epoch.forest().result.edges, &forest_edges,
            "epoch forest diverged from offline recompute");
        for (u, v, sc) in same_component {
            prop_assert_eq!(sc, labels[u as usize] == labels[v as usize],
                "same-component answer for ({}, {}) diverged", u, v);
        }
        let oracle = offline_oracle(&config, &updates[..cut]);
        for (u, v, d) in distances {
            prop_assert_eq!(d, oracle.estimate(u, v),
                "distance answer for ({}, {}) diverged", u, v);
        }

        // And the final epoch must equal the offline recompute over the
        // whole stream — nothing was lost while snapshots were taken.
        let last = served.snapshot();
        prop_assert_eq!(last.total_updates(), updates.len() as u64);
        let (final_edges, _) = offline_forest(n, service_seed, &updates);
        prop_assert_eq!(&last.forest().result.edges, &final_edges);
    }
}

/// Cut estimates are part of the same isolation contract: the KP12 build
/// over the frozen prefix is deterministic, so the served estimate equals
/// the offline one to the last bit. One deterministic case (KP12 is too
/// heavy for a 96-case property run).
#[test]
fn cut_estimates_match_offline_recompute() {
    let n = 32;
    let g = gen::erdos_renyi(n, 0.2, 9);
    let stream = GraphStream::with_churn(&g, 0.5, 10);
    let updates = stream.updates().to_vec();
    let cut = updates.len() / 2;

    let config = GraphConfig::new(n).seed(77).shards(2);
    let registry = GraphRegistry::new();
    let served = registry.create("g", config).unwrap();
    served.apply(&updates[..cut]).unwrap();
    let epoch = served.advance_epoch();
    // Keep ingesting past the epoch before the artifact is ever built:
    // the lazy build must still see only the frozen prefix.
    served.apply(&updates[cut..]).unwrap();

    let side: Vec<Vertex> = (0..n as Vertex / 2).collect();
    let Response::CutEstimate(est) = epoch.execute(&Query::CutEstimate(side.clone())).unwrap()
    else {
        panic!("wrong variant")
    };

    let prefix_stream = GraphStream::new(n, updates[..cut].to_vec());
    let offline = dsg_sparsifier::pipeline::run_sparsifier(&prefix_stream, config.cut_params());
    let mut in_side = vec![false; n];
    for &v in &side {
        in_side[v as usize] = true;
    }
    let truth = dsg_sparsifier::Laplacian::from_weighted(&offline.sparsifier).cut_value(&in_side);
    assert_eq!(est, truth, "served cut estimate diverged from offline KP12");
}

/// The wire epoch path (serialize → peek → decode → merge) answers
/// identically to the in-memory path under the same prefix.
#[test]
fn wire_epochs_are_isolation_equivalent() {
    let n = 40;
    let g = gen::erdos_renyi(n, 0.12, 21);
    let stream = GraphStream::with_churn(&g, 1.0, 22);
    let registry = GraphRegistry::new();
    let mem = registry
        .create("mem", GraphConfig::new(n).seed(4).shards(3))
        .unwrap();
    let wire = registry
        .create("wire", GraphConfig::new(n).seed(4).shards(3))
        .unwrap();

    let updates = stream.updates();
    let half = updates.len() / 2;
    mem.apply(&updates[..half]).unwrap();
    wire.apply(&updates[..half]).unwrap();
    let se = mem.advance_epoch();
    let sw = wire.advance_epoch_via_wire().unwrap();
    mem.apply(&updates[half..]).unwrap();
    wire.apply(&updates[half..]).unwrap();

    assert_eq!(se.forest().result.edges, sw.forest().result.edges);
    assert_eq!(se.forest().labels, sw.forest().labels);
    for v in 0..n as Vertex {
        assert_eq!(
            se.execute(&Query::Distance(3, v)).unwrap(),
            sw.execute(&Query::Distance(3, v)).unwrap(),
        );
    }
}

/// Pool answers equal direct snapshot execution for a whole generated
/// workload (multi-tenant: two graphs, interleaved queries).
#[test]
fn query_pool_matches_direct_execution() {
    let registry = Arc::new(GraphRegistry::new());
    for (name, seed) in [("alpha", 1u64), ("beta", 2u64)] {
        let n = 24;
        let g = gen::erdos_renyi(n, 0.18, seed);
        let stream = GraphStream::with_churn(&g, 0.5, seed ^ 0x77);
        let served = registry
            .create(name, GraphConfig::new(n).seed(seed).shards(2))
            .unwrap();
        served.apply(stream.updates()).unwrap();
        served.advance_epoch();
    }
    let pool = QueryService::start(Arc::clone(&registry), 4);
    let gen = LoadGen::new(24, QueryMix::read_heavy(), 5);
    let queries = gen.queries(120);
    let tickets: Vec<_> = queries
        .iter()
        .enumerate()
        .map(|(i, q)| {
            let name = if i % 2 == 0 { "alpha" } else { "beta" };
            (name, q.clone(), pool.submit(name, q.clone()))
        })
        .collect();
    for (name, q, ticket) in tickets {
        let direct = registry.get(name).unwrap().snapshot().execute(&q).unwrap();
        assert_eq!(ticket.wait().unwrap(), direct, "pool diverged on {q:?}");
    }
    pool.shutdown();
}
