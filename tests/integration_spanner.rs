//! End-to-end integration tests for the two-pass multiplicative spanner
//! (Theorem 1): streaming construction against ground-truth graphs across
//! topologies, churn levels and hierarchy depths.

use dsg_core::prelude::*;
use dsg_graph::components::num_components;

fn build(g: &Graph, k: usize, seed: u64, churn: f64) -> dsg_spanner::TwoPassOutput {
    let stream = GraphStream::with_churn(g, churn, seed ^ 0x5EED);
    SpannerBuilder::new(g.num_vertices())
        .stretch_exponent(k)
        .seed(seed)
        .build_from_stream(&stream)
}

#[test]
fn stretch_guarantee_across_topologies() {
    let cases: Vec<(&str, Graph)> = vec![
        ("erdos_renyi", gen::erdos_renyi(80, 0.12, 1)),
        ("grid", gen::grid(9, 9)),
        ("power_law", gen::power_law(80, 2.5, 6.0, 2)),
        ("barbell", gen::barbell(20, 6)),
        ("cycle", gen::cycle(80)),
    ];
    for (name, g) in cases {
        let n = g.num_vertices();
        let out = build(&g, 2, 7, 1.0);
        assert!(
            verify::is_subgraph(&g, &out.spanner),
            "{name}: non-subgraph"
        );
        let stretch = verify::max_multiplicative_stretch(&g, &out.spanner, n);
        assert!(
            stretch <= 4.0,
            "{name}: stretch {stretch} > 4 ({:?})",
            out.stats
        );
    }
}

#[test]
fn stretch_guarantee_across_k() {
    let g = gen::erdos_renyi(70, 0.15, 3);
    for k in 1..=4usize {
        let out = build(&g, k, k as u64 * 13, 1.0);
        let stretch = verify::max_multiplicative_stretch(&g, &out.spanner, 70);
        assert!(stretch <= (1u64 << k) as f64, "k={k}: stretch {stretch}");
    }
}

#[test]
fn heavy_churn_does_not_corrupt() {
    // 5x churn: 5 decoy insert+delete pairs per surviving edge.
    let g = gen::erdos_renyi(50, 0.1, 4);
    let out = build(&g, 2, 5, 5.0);
    assert!(verify::is_subgraph(&g, &out.spanner));
    assert_eq!(num_components(&g), num_components(&out.spanner));
}

#[test]
fn spanner_size_scales_with_lemma12() {
    // Size must track O(k n^{1+1/k} log n), not m: densify and watch the
    // spanner grow far slower than the edge count.
    let k = 2;
    let n = 90;
    let sparse = gen::erdos_renyi(n, 0.1, 6);
    let dense = gen::erdos_renyi(n, 0.6, 7);
    let out_sparse = build(&sparse, k, 8, 0.5);
    let out_dense = build(&dense, k, 9, 0.5);
    let edge_ratio = dense.num_edges() as f64 / sparse.num_edges() as f64;
    let spanner_ratio =
        out_dense.spanner.num_edges() as f64 / (out_sparse.spanner.num_edges() as f64).max(1.0);
    assert!(
        spanner_ratio < edge_ratio / 1.5,
        "spanner grew {spanner_ratio}x for {edge_ratio}x edges"
    );
}

#[test]
fn two_pass_space_accounting_reported() {
    let g = gen::erdos_renyi(60, 0.3, 10);
    let out = build(&g, 2, 11, 1.0);
    assert!(out.stats.pass1_bytes > 0);
    assert!(out.stats.pass2_bytes > 0);
    let bound = dsg_spanner::twopass::theorem1_space_bound_bytes(60, 2);
    assert!((out.stats.pass1_bytes as f64) < bound);
}

#[test]
fn weighted_streams_respect_remark14() {
    let g = gen::with_random_weights(&gen::erdos_renyi(50, 0.2, 12), 1.0, 32.0, 13);
    let stream = GraphStream::weighted_with_churn(&g, 1.0, 14);
    let gamma = 0.5;
    let out = SpannerBuilder::new(50)
        .stretch_exponent(2)
        .seed(15)
        .build_weighted_from_stream(&stream, gamma);
    let stretch = verify::max_weighted_stretch(&g, &out.spanner, 50);
    assert!(
        stretch <= 4.0 * (1.0 + gamma),
        "weighted stretch {stretch} exceeds 2^k (1+gamma)"
    );
}

#[test]
fn deterministic_given_seed() {
    let g = gen::erdos_renyi(40, 0.2, 16);
    let a = build(&g, 2, 17, 1.0);
    let b = build(&g, 2, 17, 1.0);
    assert_eq!(a.spanner.edges(), b.spanner.edges());
    assert_eq!(a.observed_edges, b.observed_edges);
}

#[test]
fn observed_edges_cover_spanner_and_stay_real() {
    let g = gen::erdos_renyi(45, 0.25, 18);
    let out = build(&g, 2, 19, 1.0);
    let observed: std::collections::HashSet<Edge> = out.observed_edges.iter().copied().collect();
    for e in out.spanner.edges() {
        assert!(observed.contains(e));
    }
    for e in &out.observed_edges {
        assert!(g.has_edge(e.u(), e.v()), "phantom observed edge {e}");
    }
}

#[test]
fn offline_and_streaming_agree_on_quality() {
    let g = gen::erdos_renyi(60, 0.2, 20);
    let params = SpannerParams::new(2, 21);
    let offline = dsg_spanner::offline::build_spanner(&g, params);
    let streaming = build(&g, 2, 21, 1.0);
    let s_off = verify::max_multiplicative_stretch(&g, &offline.spanner, 60);
    let s_str = verify::max_multiplicative_stretch(&g, &streaming.spanner, 60);
    assert!(
        s_off <= 4.0 && s_str <= 4.0,
        "offline {s_off}, streaming {s_str}"
    );
    // Sizes in the same ballpark (same centers, same bound).
    let ratio = streaming.spanner.num_edges() as f64 / offline.spanner.num_edges() as f64;
    assert!((0.3..3.0).contains(&ratio), "size ratio {ratio}");
}
