//! End-to-end durability: the store, engine, and service layers together.
//!
//! The headline claim — recovery is *exact*, not approximate — rests on
//! linearity: a checkpoint is the linear summary of a stream prefix, the
//! WAL tail is the rest of the stream, and a linear sketch cannot tell
//! whether its stream was split across process lifetimes. These tests
//! drive the full `DurableRegistry` cycle (create → ingest → checkpoint →
//! crash → recover) and compare connectivity, distance, **and cut**
//! answers bit-for-bit against an uninterrupted single-threaded run.

use dsg_graph::{gen, GraphStream, StreamUpdate, Vertex};
use dsg_service::{GraphConfig, GraphRegistry, Query, Response};
use dsg_sketch::LinearSketch;
use dsg_store::wal::list_segments;
use dsg_store::{DurableRegistry, ScratchDir, StoreError, StoreOptions, SyncPolicy};

const N: usize = 16;

fn config(seed: u64) -> GraphConfig {
    GraphConfig::new(N).seed(seed).shards(2).batch_size(8)
}

fn stream(seed: u64) -> Vec<StreamUpdate> {
    let g = gen::erdos_renyi(N, 0.35, seed);
    GraphStream::with_churn(&g, 0.8, seed ^ 0xBEEF)
        .updates()
        .to_vec()
}

/// Connectivity, distance, and cut answers of an uninterrupted
/// single-threaded (one-shard) run over `updates`.
fn reference_answers(seed: u64, updates: &[StreamUpdate], queries: &[Query]) -> Vec<Response> {
    let reg = GraphRegistry::new();
    let g = reg.create("ref", config(seed).shards(1)).unwrap();
    g.apply(updates).unwrap();
    let snap = g.advance_epoch();
    queries.iter().map(|q| snap.execute(q).unwrap()).collect()
}

#[test]
fn recovered_tenant_answers_all_query_classes_bit_identically() {
    let seed = 9u64;
    let updates = stream(seed);
    let dir = ScratchDir::new("store-e2e");

    // First life: ingest in batches with a checkpoint two thirds in.
    let reg = DurableRegistry::open(dir.path(), StoreOptions::default()).unwrap();
    let g = reg.create("t", config(seed)).unwrap();
    let two_thirds = updates.len() * 2 / 3;
    for batch in updates[..two_thirds].chunks(7) {
        g.apply(batch).unwrap();
    }
    g.checkpoint().unwrap();
    for batch in updates[two_thirds..].chunks(7) {
        g.apply(batch).unwrap();
    }
    drop((g, reg)); // crash: the tail lives only in the WAL

    // Second life: every query class must match the uninterrupted run.
    let side: Vec<Vertex> = (0..N as Vertex / 2).collect();
    let queries = [
        Query::Connectivity,
        Query::SameComponent(0, N as Vertex - 1),
        Query::SameComponent(3, 7),
        Query::Distance(0, N as Vertex - 1),
        Query::Distance(2, 11),
        Query::IsFar {
            u: 0,
            v: 13,
            threshold: 3,
        },
        Query::CutEstimate(side),
        Query::Stats,
    ];
    let reg = DurableRegistry::open(dir.path(), StoreOptions::default()).unwrap();
    let g = reg.get("t").unwrap();
    let snap = g.advance_epoch().unwrap();
    let recovered: Vec<Response> = queries.iter().map(|q| snap.execute(q).unwrap()).collect();
    let expected = reference_answers(seed, &updates, &queries);
    // Stats carries the epoch counter, which legitimately differs between
    // the reference run (one advance) and the durable run (checkpoint +
    // final advance); compare its update counter instead.
    let (Some(Response::Stats(r)), Some(Response::Stats(e))) = (recovered.last(), expected.last())
    else {
        panic!("stats query must answer");
    };
    assert_eq!(r.total_updates, e.total_updates);
    assert_eq!(r.num_vertices, e.num_vertices);
    let k = recovered.len() - 1;
    assert_eq!(
        &recovered[..k],
        &expected[..k],
        "recovered answers diverged from the uninterrupted run"
    );

    // And the sketch itself is bit-identical, not just the answers.
    let reference_sketch = {
        let reg = GraphRegistry::new();
        let r = reg.create("ref", config(seed)).unwrap();
        r.apply(&updates).unwrap();
        LinearSketch::to_bytes(r.advance_epoch().sketch())
    };
    assert_eq!(LinearSketch::to_bytes(snap.sketch()), reference_sketch);
}

#[test]
fn checkpoint_plus_compaction_bounds_disk() {
    let dir = ScratchDir::new("store-disk");
    // Tiny segments force frequent rotation, so compaction has real work.
    let options = StoreOptions::default()
        .segment_bytes(256)
        .sync(SyncPolicy::EveryN(4));
    let reg = DurableRegistry::open(dir.path(), options).unwrap();
    let g = reg.create("t", config(3)).unwrap();
    let updates = stream(3);
    for batch in updates.chunks(5) {
        g.apply(batch).unwrap();
    }
    let before = list_segments(g.dir()).unwrap().len();
    assert!(before > 3, "tiny segments must have rotated (got {before})");
    let stats = g.checkpoint().unwrap();
    let after = list_segments(g.dir()).unwrap().len();
    assert_eq!(after, 1, "only the post-checkpoint segment may remain");
    // The checkpoint's own epoch marker may force one more rotation
    // before the capture point, so at least every pre-existing segment
    // (and possibly that one extra) is compacted.
    assert!(
        stats.segments_removed >= before,
        "all {before} old segments compact away (removed {})",
        stats.segments_removed
    );
    // Everything still recovers from checkpoint + (empty) tail.
    let tail = [StreamUpdate::insert(0, 3), StreamUpdate::insert(1, 4)];
    g.apply(&tail).unwrap();
    drop((g, reg));
    let reg = DurableRegistry::open(dir.path(), options).unwrap();
    assert_eq!(reg.recovery_report()[0].records_replayed, 1);
    let g = reg.get("t").unwrap();
    g.advance_epoch().unwrap();
    assert_eq!(
        g.snapshot().total_updates(),
        (updates.len() + tail.len()) as u64
    );
}

#[test]
fn multi_tenant_recovery_is_isolated() {
    let dir = ScratchDir::new("store-tenants");
    let reg = DurableRegistry::open(dir.path(), StoreOptions::default()).unwrap();
    let a = reg.create("alpha", config(1)).unwrap();
    let b = reg.create("beta", config(2)).unwrap();
    a.apply(&stream(1)[..12]).unwrap();
    b.apply(&stream(2)[..20]).unwrap();
    a.checkpoint().unwrap();
    b.advance_epoch().unwrap();
    drop((a, b, reg));

    let reg = DurableRegistry::open(dir.path(), StoreOptions::default()).unwrap();
    assert_eq!(reg.names(), vec!["alpha".to_string(), "beta".to_string()]);
    let report = reg.recovery_report();
    assert_eq!(report[0].name, "alpha");
    assert_eq!(
        report[0].checkpoint_epoch, 1,
        "alpha recovered via checkpoint"
    );
    assert_eq!(report[1].checkpoint_epoch, 0, "beta replayed from scratch");
    let a = reg.get("alpha").unwrap();
    let b = reg.get("beta").unwrap();
    a.advance_epoch().unwrap();
    assert_eq!(a.snapshot().total_updates(), 12);
    assert_eq!(b.snapshot().total_updates(), 20);
    // Tenants remain independently removable after recovery.
    reg.remove("alpha").unwrap();
    assert!(matches!(reg.get("alpha"), Err(StoreError::Service(_))));
    assert_eq!(reg.len(), 1);
}
