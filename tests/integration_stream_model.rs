//! Integration tests for the dynamic-stream model itself: linearity of the
//! whole sketch stack under insert/delete churn, multi-pass discipline, and
//! the distributed-servers story from the paper's introduction.

use dsg_core::prelude::*;
use dsg_sketch::{DistinctEstimator, L0Sampler, SparseRecovery};

#[test]
fn sketches_cannot_tell_orderings_apart() {
    // Linear sketches are order-oblivious: two different interleavings of
    // the same multiset of updates give bit-identical state.
    let g = gen::erdos_renyi(30, 0.3, 1);
    let s1 = GraphStream::with_churn(&g, 1.0, 2);
    let s2 = GraphStream::with_churn(&g, 1.0, 3); // different order/decoys…
                                                  // …so compare through the *final graph* sketch: stream the two final
                                                  // graphs' indicator updates into sketches.
    let mut a = SparseRecovery::new(64, 9);
    let mut b = SparseRecovery::new(64, 9);
    for e in s1.final_graph().edges() {
        a.update(e.index(30), 1);
    }
    for e in s2.final_graph().edges() {
        b.update(e.index(30), 1);
    }
    assert_eq!(a.decode().unwrap(), b.decode().unwrap());
}

#[test]
fn full_stack_linearity_under_churn() {
    // Stream with churn == sketch of the final graph, across three sketch
    // types.
    let n = 40;
    let g = gen::erdos_renyi(n, 0.2, 4);
    let stream = GraphStream::with_churn(&g, 2.0, 5);

    let mut l0_stream = L0Sampler::new(20, 6);
    let mut l0_final = L0Sampler::new(20, 6);
    let mut de_stream = DistinctEstimator::new(20, 0.5, 5, 7);
    let mut de_final = DistinctEstimator::new(20, 0.5, 5, 7);

    for up in stream.updates() {
        let coord = up.edge.index(n);
        l0_stream.update(coord, up.delta as i128);
        de_stream.update(coord, up.delta as i128);
    }
    for e in g.edges() {
        let coord = e.index(n);
        l0_final.update(coord, 1);
        de_final.update(coord, 1);
    }
    assert_eq!(de_stream.estimate().unwrap(), de_final.estimate().unwrap());
    assert_eq!(l0_stream.sample().unwrap(), l0_final.sample().unwrap());
}

#[test]
fn distributed_servers_compose() {
    // The paper's motivation: s servers hold update shards; communicating
    // sketches (not edges) suffices. Check the merged sketch decodes the
    // union exactly.
    let n = 25;
    let g = gen::erdos_renyi(n, 0.25, 8);
    let stream = GraphStream::with_churn(&g, 1.0, 9);
    let servers = 5;
    let mut shards: Vec<SparseRecovery> =
        (0..servers).map(|_| SparseRecovery::new(256, 10)).collect();
    for (i, up) in stream.updates().iter().enumerate() {
        shards[i % servers].update(up.edge.index(n), up.delta as i128);
    }
    let mut merged = shards.remove(0);
    for s in &shards {
        merged.merge(s);
    }
    let decoded: Vec<Edge> = merged
        .decode()
        .unwrap()
        .into_iter()
        .map(|(coord, mult)| {
            assert_eq!(mult, 1, "multiplicity corrupted");
            let (u, v) = dsg_graph::index_to_pair(coord, n);
            Edge::new(u, v)
        })
        .collect();
    assert_eq!(decoded, g.edges());
}

#[test]
fn pass_driver_enforces_declared_passes() {
    struct TwoPhase {
        seen: Vec<(usize, usize)>, // (pass, updates)
    }
    impl StreamAlgorithm for TwoPhase {
        fn num_passes(&self) -> usize {
            2
        }
        fn begin_pass(&mut self, pass: usize) {
            self.seen.push((pass, 0));
        }
        fn process(&mut self, _up: &StreamUpdate) {
            self.seen.last_mut().unwrap().1 += 1;
        }
        fn end_pass(&mut self, _pass: usize) {}
    }
    let g = gen::cycle(12);
    let stream = GraphStream::with_churn(&g, 1.0, 11);
    let mut alg = TwoPhase { seen: vec![] };
    dsg_graph::pass::run(&mut alg, &stream);
    assert_eq!(alg.seen.len(), 2);
    assert_eq!(alg.seen[0].1, stream.len());
    assert_eq!(alg.seen[0].1, alg.seen[1].1, "passes saw different streams");
}

#[test]
fn weighted_model_forbids_weight_drift() {
    // The model: deletion removes the edge with its known weight. The
    // stream generator must never emit two weights for one edge.
    let g = gen::with_random_weights(&gen::erdos_renyi(20, 0.3, 12), 1.0, 8.0, 13);
    let stream = GraphStream::weighted_with_churn(&g, 2.0, 14);
    let mut seen: std::collections::HashMap<Edge, f64> = std::collections::HashMap::new();
    for up in stream.updates() {
        let w = seen.entry(up.edge).or_insert(up.weight);
        assert_eq!(*w, up.weight, "weight drift on {}", up.edge);
    }
    assert_eq!(stream.final_weighted_graph(), g);
}
