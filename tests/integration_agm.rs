//! Integration tests for AGM spanning-forest sketches under streaming
//! churn, contraction and distribution (Theorem 10's role).

use dsg_agm::{AgmSketch, KConnectivitySketch};
use dsg_core::prelude::*;
use dsg_graph::components::{is_spanning_forest, num_components};

fn sketch_stream(stream: &GraphStream, seed: u64) -> AgmSketch {
    let mut sk = AgmSketch::new(stream.num_vertices(), seed);
    for up in stream.updates() {
        sk.update(up.edge, up.delta as i128);
    }
    sk
}

#[test]
fn forest_correct_across_densities() {
    for (p, seed) in [(0.02, 1u64), (0.05, 2), (0.2, 3), (0.6, 4)] {
        let g = gen::erdos_renyi(60, p, seed);
        let stream = GraphStream::with_churn(&g, 2.0, seed * 31);
        let sk = sketch_stream(&stream, seed * 77);
        let f = sk.spanning_forest();
        assert!(
            is_spanning_forest(&g, &f.edges),
            "p={p}: bad forest ({} decode failures)",
            f.decode_failures
        );
        assert_eq!(f.edges.len(), 60 - num_components(&g), "p={p}");
    }
}

#[test]
fn distributed_merge_equals_central() {
    // Four servers each see a quarter of the stream; merged sketches must
    // produce a valid forest of the union.
    let g = gen::erdos_renyi(50, 0.1, 5);
    let stream = GraphStream::with_churn(&g, 1.0, 6);
    let mut shards: Vec<AgmSketch> = (0..4).map(|_| AgmSketch::new(50, 7)).collect();
    for (i, up) in stream.updates().iter().enumerate() {
        shards[i % 4].update(up.edge, up.delta as i128);
    }
    let mut merged = shards.remove(0);
    for s in &shards {
        merged.merge(s);
    }
    let f = merged.spanning_forest();
    assert!(is_spanning_forest(&g, &f.edges));
}

#[test]
fn contraction_matches_algorithm3_pattern() {
    // Contract a partition, subtract intra-cluster edges — the forest on
    // supernodes must connect exactly the inter-cluster structure.
    let g = gen::grid(6, 6); // vertex v = row*6 + col
    let stream = GraphStream::insert_only(&g, 8);
    let mut sk = sketch_stream(&stream, 9);
    // Partition into 6 row-clusters.
    let partition: Vec<Vertex> = (0..36).map(|v| (v / 6) as Vertex).collect();
    // Remove all horizontal (intra-row) edges by linearity.
    let horizontal: Vec<Edge> = g
        .edges()
        .iter()
        .filter(|e| e.u() / 6 == e.v() / 6)
        .copied()
        .collect();
    sk.subtract_edges(horizontal.iter());
    let f = sk.spanning_forest_with_partition(&partition);
    // 6 row-clusters chained vertically: 5 forest edges between adjacent
    // rows.
    assert_eq!(f.edges.len(), 5, "forest: {:?}", f.edges);
    for e in &f.edges {
        assert_eq!(
            (e.v() / 6) - (e.u() / 6),
            1,
            "edge {e} not between adjacent rows"
        );
    }
}

#[test]
fn k_connectivity_certificate_on_stream() {
    let g = gen::complete(14);
    let stream = GraphStream::with_churn(&g, 1.0, 10);
    let mut sk = KConnectivitySketch::new(14, 3, 11);
    for up in stream.updates() {
        sk.update(up.edge, up.delta as i128);
    }
    let cert = sk.certificate();
    let edge_set = g.edge_set();
    assert!(cert.iter().all(|e| edge_set.contains(e)));
    assert!(cert.len() <= 3 * 13);
    // The certificate of a highly-connected graph keeps 2-connectivity:
    // drop any single edge and stay connected.
    for skip in 0..cert.len() {
        let reduced: Vec<Edge> = cert
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != skip)
            .map(|(_, e)| *e)
            .collect();
        let h = Graph::from_edges(14, reduced);
        assert_eq!(num_components(&h), 1);
    }
}

#[test]
fn space_is_near_linear_in_n() {
    // Theorem 10 promises O(n log^3 n): doubling n should far less than
    // quadruple nominal space.
    let small = AgmSketch::new(100, 1);
    let large = AgmSketch::new(200, 1);
    let ratio = large.nominal_bytes() as f64 / small.nominal_bytes() as f64;
    assert!(ratio < 3.5, "nominal space ratio {ratio} too steep");
    assert!(ratio > 1.5, "nominal space ratio {ratio} suspiciously flat");
    // Touched space of an empty sketch is tiny by comparison.
    assert!(small.space_bytes() < small.nominal_bytes());
}
