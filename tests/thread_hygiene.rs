//! Regression test for deterministic thread shutdown.
//!
//! A durable close ("remove the tenant, then delete its files") is only
//! safe if no shard worker or query-pool thread can outlive its handle:
//! `ShardedEngine` joins its workers on drop (not detach), `QueryService`
//! joins its pool on drop, and `GraphRegistry::remove` + last-handle drop
//! therefore release every thread synchronously. This test cycles many
//! create/serve/remove rounds and asserts the process thread count comes
//! back to its baseline — a leak of even one thread per round shows up
//! as dozens here.

use dsg_service::{GraphConfig, GraphRegistry, Query, QueryService};
use dsg_store::{DurableRegistry, ScratchDir, StoreOptions};
use std::sync::Arc;

/// Live thread count of this process (Linux; `None` elsewhere).
fn thread_count() -> Option<usize> {
    std::fs::read_dir("/proc/self/task")
        .ok()
        .map(|dir| dir.count())
}

#[test]
fn create_remove_cycles_leak_no_threads() {
    let Some(_) = thread_count() else {
        eprintln!("skipping: /proc/self/task unavailable on this platform");
        return;
    };

    let registry = Arc::new(GraphRegistry::new());
    // One warm-up round, so lazily spawned runtime threads (if any) are
    // counted into the baseline.
    run_round(&registry, "warmup");
    let baseline = thread_count().expect("probed above");

    for i in 0..25 {
        run_round(&registry, &format!("g{i}"));
        assert!(registry.is_empty(), "round {i} left a graph registered");
    }
    let after = thread_count().expect("probed above");
    assert!(
        after <= baseline,
        "thread leak: {baseline} threads at baseline, {after} after 25 create/remove rounds"
    );
}

/// One full lifecycle: create a sharded graph, serve a query through a
/// worker pool, then tear everything down.
fn run_round(registry: &Arc<GraphRegistry>, name: &str) {
    let g = registry
        .create(name, GraphConfig::new(10).shards(3).batch_size(4))
        .expect("name is fresh");
    g.insert(0, 1).expect("in range");
    g.advance_epoch();
    let pool = QueryService::start(Arc::clone(registry), 4);
    pool.query_blocking(name, Query::Connectivity)
        .expect("pool serves");
    pool.shutdown(); // joins all 4 workers
    registry.remove(name).expect("registered above");
    drop(g); // last handle: joins all 3 shard workers
}

#[test]
fn durable_create_remove_cycles_leak_no_threads_or_files() {
    let Some(_) = thread_count() else {
        eprintln!("skipping: /proc/self/task unavailable on this platform");
        return;
    };

    let dir = ScratchDir::new("thread-hygiene");
    let registry = DurableRegistry::open(dir.path(), StoreOptions::default()).expect("open");
    durable_round(&registry, "warmup");
    let baseline = thread_count().expect("probed above");

    for i in 0..10 {
        durable_round(&registry, &format!("g{i}"));
    }
    let after = thread_count().expect("probed above");
    assert!(
        after <= baseline,
        "thread leak: {baseline} at baseline, {after} after 10 durable rounds"
    );
    // remove() must also have deleted every tenant directory.
    let leftover = std::fs::read_dir(dir.path()).expect("root exists").count();
    assert_eq!(leftover, 0, "durable remove left tenant files behind");
}

/// One durable lifecycle: create (checkpoint + WAL on disk), write, epoch,
/// remove (joins workers, then deletes the directory).
fn durable_round(registry: &DurableRegistry, name: &str) {
    let g = registry
        .create(name, GraphConfig::new(8).shards(2).batch_size(4))
        .expect("name is fresh");
    g.insert(0, 1).expect("in range");
    g.advance_epoch().expect("epoch advance");
    drop(g); // registry keeps its own handle until remove()
    registry.remove(name).expect("registered above");
}
