//! Integration tests for the extension APIs: spanner-backed distance
//! oracles (the KP12 contract), approximate MSF from AGM sketches, the
//! weighted sparsifier, and the JL resistance estimator — each driven
//! through the public crate APIs on streamed inputs.

use dsg_agm::MsfSketch;
use dsg_core::prelude::*;
use dsg_graph::mst;
use dsg_spanner::oracle::DistanceOracle;
use dsg_sparsifier::resistance::{self, ResistanceEstimator};

#[test]
fn oracle_from_streamed_spanner_satisfies_kp12_contract() {
    let n = 80;
    let g = gen::erdos_renyi(n, 0.12, 1);
    let stream = GraphStream::with_churn(&g, 1.0, 2);
    let k = 2;
    let out = SpannerBuilder::new(n)
        .stretch_exponent(k)
        .seed(3)
        .build_from_stream(&stream);
    let oracle = DistanceOracle::new(out.spanner, 1 << k);
    let adj = g.adjacency();
    for src in [0u32, 20, 55] {
        let exact = dsg_graph::bfs::bfs_distances(&adj, src);
        let est = oracle.estimates_from(src);
        for v in 0..n {
            match (exact[v], est[v]) {
                (dsg_graph::bfs::UNREACHABLE, None) => {}
                (d, Some(e)) => {
                    assert!(e >= d, "oracle underestimated {src}->{v}");
                    assert!(
                        e as u64 <= (1u64 << k) * d as u64,
                        "oracle overshot stretch at {src}->{v}: {e} vs {d}"
                    );
                }
                other => panic!("reachability mismatch at {v}: {other:?}"),
            }
        }
    }
}

#[test]
fn msf_sketch_on_weighted_stream() {
    let g = gen::with_random_weights(&gen::erdos_renyi(36, 0.25, 4), 1.0, 16.0, 5);
    let stream = GraphStream::weighted_with_churn(&g, 1.0, 6);
    let gamma = 0.25;
    let (lo, hi) = g.weight_range().unwrap();
    let mut sk = MsfSketch::new(36, gamma, lo, hi, 7);
    for up in stream.updates() {
        sk.update(up.edge, up.weight, up.delta as i128);
    }
    let approx = sk.forest();
    let (_, exact_weight) = mst::minimum_spanning_forest(&g);
    let approx_weight: f64 = approx.iter().map(|(_, w)| w).sum();
    assert!(
        approx_weight <= exact_weight * (1.0 + gamma) + 1e-9,
        "approx {approx_weight} vs exact {exact_weight}"
    );
    // Spanning: same component count as the input.
    let skeleton = Graph::from_edges(36, approx.iter().map(|(e, _)| *e));
    assert_eq!(
        dsg_graph::components::num_components(&skeleton),
        dsg_graph::components::num_components(&g.skeleton())
    );
}

#[test]
fn weighted_sparsifier_end_to_end() {
    let g = gen::with_random_weights(&gen::complete(16), 1.0, 4.0, 8);
    let stream = GraphStream::weighted_with_churn(&g, 0.5, 9);
    let mut params = SparsifierParams::new(2, 0.5, 10);
    params.z_factor = 0.05;
    params.j_factor = 0.4;
    let mut alg = dsg_sparsifier::WeightedTwoPassSparsifier::new(16, 0.5, params);
    dsg_graph::pass::run(&mut alg, &stream);
    let out = alg.into_output().expect("finished");
    assert!(out.sparsifier.num_edges() > 0);
    let eps = dsg_sparsifier::spectral::spectral_epsilon(
        &Laplacian::from_weighted(&g),
        &Laplacian::from_weighted(&out.sparsifier),
    );
    assert!(eps < 1.0, "weighted sparsifier eps={eps}");
}

#[test]
fn jl_resistances_feed_ss08_style_sampling() {
    // The near-linear-time SS08 loop: approximate resistances via JL, then
    // sample by them; the result must still be spectrally bounded.
    let g = gen::complete(24);
    let l = Laplacian::from_graph(&g);
    let est = ResistanceEstimator::new(&l, 80, 11);
    let logn = 24f64.log2();
    let mut rng = dsg_hash::SplitMix64::new(12);
    let mut edges = Vec::new();
    for e in g.edges() {
        let r = est.estimate(e.u(), e.v());
        let p = (2.0 * r * logn).clamp(0.05, 1.0);
        if rng.next_f64() < p {
            edges.push((*e, 1.0 / p));
        }
    }
    let h = WeightedGraph::from_edges(24, edges);
    let eps = dsg_sparsifier::spectral::spectral_epsilon(&l, &Laplacian::from_weighted(&h));
    assert!(eps < 0.95, "JL-driven sampling eps={eps}");
    // JL estimates stay close to the exact ones.
    let exact = resistance::effective_resistance(&l, 0, 1);
    let approx = est.estimate(0, 1);
    assert!((approx / exact - 1.0).abs() < 0.5);
}

#[test]
fn k_connectivity_and_msf_share_one_stream() {
    // Two different sketch structures consuming the same dynamic stream —
    // the composability the linear-sketching model promises.
    let g = gen::with_random_weights(&gen::complete(12), 1.0, 2.0, 13);
    let stream = GraphStream::weighted_with_churn(&g, 1.0, 14);
    let mut kconn = dsg_agm::KConnectivitySketch::new(12, 2, 15);
    let (lo, hi) = g.weight_range().unwrap();
    let mut msf = MsfSketch::new(12, 0.5, lo, hi, 16);
    for up in stream.updates() {
        kconn.update(up.edge, up.delta as i128);
        msf.update(up.edge, up.weight, up.delta as i128);
    }
    let cert = kconn.certificate();
    assert!(!cert.is_empty());
    let forest = msf.forest();
    assert_eq!(forest.len(), 11);
}
