//! End-to-end tests of the sharded ingest engine: for every query family
//! (spanning forest, two-pass spanner, KP12 sparsifier), a sharded
//! multi-threaded run over a dynamic stream must decode exactly the same
//! answer as a single-sketch single-threaded run — the linearity contract
//! the whole distributed story rests on — including through the wire
//! (serialize → checksum-verify → deserialize) snapshot path.

use dsg_agm::AgmSketch;
use dsg_core::engine::EngineBuilder;
use dsg_core::prelude::*;
use dsg_engine::{reduce_snapshots, EdgeUpdate, EngineConfig, ShardedEngine};
use dsg_graph::components::is_spanning_forest;

fn test_stream(n: usize, p: f64, seed: u64) -> (Graph, GraphStream) {
    let g = gen::erdos_renyi(n, p, seed);
    let stream = GraphStream::with_churn(&g, 1.5, seed ^ 0xBEEF);
    (g, stream)
}

#[test]
fn sharded_forest_equals_single_sketch() {
    let n = 120;
    let (g, stream) = test_stream(n, 0.06, 1);
    let mut single = AgmSketch::new(n, 77);
    for up in stream.updates() {
        single.update(up.edge, up.delta as i128);
    }
    let direct = single.spanning_forest();
    assert!(is_spanning_forest(&g, &direct.edges));

    for shards in [1usize, 2, 4] {
        let forest = EngineBuilder::new(n)
            .shards(shards)
            .seed(77)
            .spanning_forest(&stream);
        assert_eq!(
            forest.edges, direct.edges,
            "{shards}-shard engine diverged from the single sketch"
        );
    }
}

#[test]
fn sharded_forest_through_wire_snapshots() {
    let n = 100;
    let (g, stream) = test_stream(n, 0.07, 2);
    let b = EngineBuilder::new(n).shards(4).seed(5);
    let in_memory = b.spanning_forest(&stream);
    let via_wire = b.spanning_forest_via_wire(&stream);
    assert_eq!(in_memory.edges, via_wire.edges);
    assert!(is_spanning_forest(&g, &via_wire.edges));
}

#[test]
fn merged_shard_sketches_are_bit_identical_to_single() {
    // Stronger than answer equality: the merged coordinator sketch must
    // serialize to exactly the bytes of the single-sketch run.
    let n = 80;
    let (_, stream) = test_stream(n, 0.08, 3);
    let mut single = AgmSketch::new(n, 13);
    for up in stream.updates() {
        single.update(up.edge, up.delta as i128);
    }
    let merged = EngineBuilder::new(n).shards(4).seed(13).agm_sketch(&stream);
    assert_eq!(merged.to_bytes(), single.to_bytes());
}

#[test]
fn sharded_two_pass_spanner_equals_single_threaded() {
    let n = 60;
    let (g, stream) = test_stream(n, 0.15, 4);
    let params = SpannerParams::new(2, 21);
    let sharded = EngineBuilder::new(n).shards(4).spanner(&stream, params);
    let single = dsg_spanner::twopass::run_two_pass(&stream, params);
    assert_eq!(sharded.spanner.edges(), single.spanner.edges());
    assert_eq!(sharded.observed_edges, single.observed_edges);
    assert!(verify::is_subgraph(&g, &sharded.spanner));
    let stretch = verify::max_multiplicative_stretch(&g, &sharded.spanner, n);
    assert!(stretch <= 4.0, "stretch {stretch}");
}

#[test]
fn sharded_sparsifier_equals_single_threaded() {
    let n = 24;
    let g = gen::complete(n);
    let stream = GraphStream::insert_only(&g, 6);
    let mut params = SparsifierParams::new(2, 0.5, 7);
    params.z_factor = 0.05;
    params.j_factor = 0.4;
    let sharded = EngineBuilder::new(n).shards(4).sparsifier(&stream, params);
    let single = dsg_sparsifier::pipeline::run_sparsifier(&stream, params);
    let mut a: Vec<(Edge, f64)> = sharded.sparsifier.edges().to_vec();
    let mut b: Vec<(Edge, f64)> = single.sparsifier.edges().to_vec();
    a.sort_by_key(|x| x.0);
    b.sort_by_key(|x| x.0);
    assert_eq!(a, b, "sharded sparsifier diverged");
    assert!(sharded.sparsifier.num_edges() > 0);
}

#[test]
fn arbitrary_partition_merges_identically() {
    // Not just the engine's hash-partition: ANY assignment of updates to
    // shards must merge to the same sketch (linearity is partition-blind).
    let n = 60;
    let (_, stream) = test_stream(n, 0.1, 8);
    let mut single = AgmSketch::new(n, 3);
    let mut shards: Vec<AgmSketch> = (0..3).map(|_| AgmSketch::new(n, 3)).collect();
    for (i, up) in stream.updates().iter().enumerate() {
        single.update(up.edge, up.delta as i128);
        // A deliberately skewed, deterministic partition.
        let s = (i * i + i / 7) % 3;
        shards[s].update(up.edge, up.delta as i128);
    }
    let merged = dsg_engine::merge_tree(shards).unwrap();
    assert_eq!(merged.to_bytes(), single.to_bytes());
}

#[test]
fn engine_reports_balanced_shard_loads() {
    let n = 90;
    let (_, stream) = test_stream(n, 0.08, 9);
    let cfg = EngineConfig::new(4).batch_size(64);
    let mut eng = ShardedEngine::start(cfg, |_| AgmSketch::new(n, 1));
    for up in stream.updates() {
        eng.push(EdgeUpdate::new(up.edge.index(n), up.delta as i128));
    }
    let run = eng.finish();
    assert_eq!(run.total_updates as usize, stream.len());
    // Hash-partitioning routes by edge identity, so shard loads follow
    // the hash's spread rather than splitting exactly evenly; the
    // diagnostic ratio (max/mean) must still stay near 1 for a stream of
    // this many distinct edges, and no shard may starve.
    let balance = run.load_balance();
    assert!(
        (1.0..1.5).contains(&balance),
        "hash partition too skewed (max/mean = {balance:.3}): {:?}",
        run.per_shard_updates
    );
    assert!(
        run.per_shard_updates.iter().all(|&c| c > 0),
        "every shard should see some of the stream: {:?}",
        run.per_shard_updates
    );
}

#[test]
fn corrupted_shard_snapshot_is_rejected_not_merged() {
    let n = 40;
    let (_, stream) = test_stream(n, 0.1, 10);
    let cfg = EngineConfig::new(2).batch_size(32);
    let mut eng = ShardedEngine::start(cfg, |_| AgmSketch::new(n, 2));
    for up in stream.updates() {
        eng.push(EdgeUpdate::new(up.edge.index(n), up.delta as i128));
    }
    let mut snapshots = eng.finish().snapshots();
    let last = snapshots[1].len() - 1;
    snapshots[1][last] ^= 0x01;
    let res: Result<Option<AgmSketch>, _> = reduce_snapshots(&snapshots);
    assert!(res.is_err(), "bit flip must fail the checksum");
}
