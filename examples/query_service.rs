//! A miniature serving deployment: one registry, two tenant graphs, a
//! worker-pool query front end, and a writer that keeps streaming edge
//! churn while epochs advance underneath the readers.
//!
//! Run with: `cargo run --release --example query_service`

use dsg_graph::{gen, GraphStream, Vertex};
use dsg_service::{
    AdminServer, AuditConfig, FlightRecorder, GraphConfig, GraphRegistry, LoadGen, MetricRegistry,
    Query, QueryMix, QueryService, Response,
};
use dsg_util::Summary;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let telemetry = Arc::new(MetricRegistry::new());
    // A flight recorder alongside the metrics: every layer appends
    // causal trace events into per-thread rings, dumped on demand.
    let registry = Arc::new(GraphRegistry::with_observability(
        Arc::clone(&telemetry),
        FlightRecorder::with_capacity(4096),
    ));

    // Two tenants with different shapes share the one service.
    let social = registry
        .create("social", GraphConfig::new(80).seed(7).shards(2))
        .expect("fresh registry");
    let roads = registry
        .create("roads", GraphConfig::new(40).seed(8).shards(2).spanner_k(3))
        .expect("fresh registry");
    println!(
        "registry hosts {} graphs: {:?}",
        registry.len(),
        registry.names()
    );

    // Seed both graphs with a dynamic stream (inserts and deletions).
    let social_stream = GraphStream::with_churn(&gen::erdos_renyi(80, 0.08, 1), 1.0, 2);
    let road_stream = GraphStream::with_churn(&gen::erdos_renyi(40, 0.12, 3), 0.5, 4);
    social.apply(social_stream.updates()).expect("in range");
    roads.apply(road_stream.updates()).expect("in range");

    // Freeze epoch 1 on both; readers will see exactly this prefix.
    let social_epoch = social.advance_epoch();
    let roads_epoch = roads.advance_epoch();
    println!(
        "epoch {} frozen for 'social' at {} updates; epoch {} for 'roads' at {}",
        social_epoch.epoch(),
        social_epoch.total_updates(),
        roads_epoch.epoch(),
        roads_epoch.total_updates(),
    );

    // A writer keeps the stream churning while queries are served.
    let writer = {
        let social = Arc::clone(&social);
        std::thread::spawn(move || {
            for v in 0..40u32 {
                social.insert(v, v + 40).expect("in range");
            }
            social.advance_epoch();
        })
    };

    // Shadow-verify a slice of served answers: the quality auditor
    // recomputes sampled queries exactly on a background worker and
    // alarms if a served answer ever breaks its paper guarantee.
    // Installed before the pool so the workers pick it up.
    let auditor = registry.install_auditor(AuditConfig {
        sample_every: 8,
        ..AuditConfig::default()
    });

    // Serve a deterministic mixed workload through the worker pool.
    let pool = QueryService::start(Arc::clone(&registry), 4);
    // Cut queries are issued explicitly below (one KP12 build is plenty
    // for an example); the pool workload covers the rest of the mix.
    let mix = QueryMix {
        cut: 0,
        ..QueryMix::read_heavy()
    };
    let load = LoadGen::new(80, mix, 42);
    let queries = load.queries(300);
    let mut latencies = Summary::new();
    let mut connected = 0usize;
    let t0 = Instant::now();
    for q in &queries {
        let t = Instant::now();
        match pool.query_blocking("social", q.clone()) {
            Ok(Response::SameComponent(true)) => connected += 1,
            Ok(_) => {}
            Err(e) => panic!("query failed: {e}"),
        }
        latencies.push(t.elapsed().as_secs_f64() * 1e6);
    }
    let wall = t0.elapsed().as_secs_f64();
    writer.join().expect("writer thread");
    println!(
        "served {} queries in {:.1} ms ({:.0} queries/s)",
        queries.len(),
        wall * 1e3,
        queries.len() as f64 / wall,
    );
    println!(
        "latency p50 {:.1} µs, p95 {:.1} µs; {} same-component pairs connected",
        latencies.quantile(0.5),
        latencies.quantile(0.95),
        connected,
    );

    // Distance queries on the second tenant, from a hot source.
    let hot: Vertex = 5;
    let mut reachable = 0usize;
    for v in 0..40u32 {
        if let Ok(Response::Distance(Some(_))) =
            pool.query_blocking("roads", Query::Distance(hot, v))
        {
            reachable += 1;
        }
    }
    let oracle = registry
        .get("roads")
        .expect("registered")
        .snapshot()
        .oracle();
    println!(
        "'roads' oracle (stretch {}): {} of 40 vertices reachable from {}; cache {:?}",
        oracle.stretch(),
        reachable,
        hot,
        oracle.cache_stats(),
    );

    // One explicit cut estimate on the small tenant (builds the KP12
    // artifact for its current epoch, lazily, exactly once).
    let side: Vec<Vertex> = (0..20).collect();
    let Ok(Response::CutEstimate(cut_weight)) =
        pool.query_blocking("roads", Query::CutEstimate(side))
    else {
        panic!("cut estimate failed");
    };
    println!("'roads' cut estimate for the low half: {cut_weight:.1}");

    // The frozen epoch still answers identically after further ingest.
    let Response::Stats(stats) = social_epoch.execute(&Query::Stats).expect("valid query") else {
        panic!("wrong response variant");
    };
    println!(
        "pinned snapshot: epoch {} with {} updates, artifacts {:?} (current epoch {})",
        stats.epoch,
        stats.total_updates,
        stats.artifacts,
        social.snapshot().epoch(),
    );
    pool.shutdown();

    // The same run, as the always-on telemetry layer saw it: per-tenant
    // snapshots expose exact counters and log2-bucketed latency
    // quantiles; render_prometheus() is the scrape a collector would get.
    let social_metrics = social.metrics();
    let sc = social_metrics
        .histogram("dsg_service_query_nanos{graph=\"social\",query=\"same_component\"}")
        .expect("pool queries were timed");
    println!(
        "telemetry: 'social' exposes {} series; same_component p95 {:.1} µs over {} calls",
        social_metrics.len(),
        sc.p95() as f64 / 1e3,
        sc.count(),
    );
    let roads_metrics = registry.get("roads").expect("registered").metrics();
    println!(
        "telemetry: 'roads' oracle cache hits={} misses={}, artifact builds: forest={} oracle={} laplacian={}",
        roads_metrics
            .counter("dsg_service_oracle_cache_hits_total{graph=\"roads\"}")
            .unwrap_or(0),
        roads_metrics
            .counter("dsg_service_oracle_cache_misses_total{graph=\"roads\"}")
            .unwrap_or(0),
        roads_metrics
            .counter("dsg_service_artifact_builds_total{artifact=\"forest\",graph=\"roads\"}")
            .unwrap_or(0),
        roads_metrics
            .counter("dsg_service_artifact_builds_total{artifact=\"oracle\",graph=\"roads\"}")
            .unwrap_or(0),
        roads_metrics
            .counter("dsg_service_artifact_builds_total{artifact=\"laplacian\",graph=\"roads\"}")
            .unwrap_or(0),
    );
    let exposition = registry.render_prometheus();
    println!(
        "prometheus exposition: {} lines, {} bytes; first engine series:",
        exposition.lines().count(),
        exposition.len(),
    );
    for line in exposition
        .lines()
        .filter(|l| l.starts_with("dsg_engine_"))
        .take(3)
    {
        println!("  {line}");
    }

    // The same surfaces over plain HTTP: bind the std-only admin server
    // on an ephemeral port and scrape it like Prometheus (or curl) would.
    let admin = AdminServer::bind("127.0.0.1:0", Arc::clone(&registry)).expect("ephemeral bind");
    let scrape = |path: &str| -> String {
        let mut conn = TcpStream::connect(admin.local_addr()).expect("connect");
        conn.write_all(format!("GET {path} HTTP/1.1\r\nHost: demo\r\n\r\n").as_bytes())
            .expect("request");
        let mut raw = String::new();
        conn.read_to_string(&mut raw).expect("response");
        raw.split_once("\r\n\r\n")
            .map(|(_, body)| body.to_string())
            .unwrap_or_default()
    };
    let healthz = scrape("/healthz");
    let metrics = scrape("/metrics");
    let tracez = scrape("/tracez");
    println!(
        "admin endpoint at http://{}: /healthz says {:?}, /metrics {} lines, \
         /tracez {} bytes of Chrome trace JSON (open in a trace viewer)",
        admin.local_addr(),
        healthz.trim(),
        metrics.lines().count(),
        tracez.len(),
    );
    // Drain the audit queue, then report what the shadow recomputes saw
    // — the same numbers `/qualityz` serves to a scraper.
    auditor.flush();
    let qualityz = scrape("/qualityz");
    println!(
        "quality audit: {} of {} served queries shadow-verified (1/{} sampling), \
         {} guarantee violations; /qualityz scrape {} bytes",
        auditor.audited(),
        queries.len() + 40 + 1,
        auditor.config().sample_every,
        auditor.total_violations(),
        qualityz.len(),
    );
    assert_eq!(auditor.total_violations(), 0, "honest serving audits clean");
    let events = registry.tracer().dump();
    println!(
        "flight recorder: {} events across the run; last epoch publish traced as id {}",
        events.len(),
        events
            .iter()
            .rfind(|e| e.kind == dsg_service::EventKind::EpochPublish)
            .map(|e| e.trace_id)
            .unwrap_or(0),
    );
    admin.shutdown();
}
