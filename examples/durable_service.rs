//! Durability end to end: a tenant graph that survives its process.
//!
//! Ingest half a stream, checkpoint (log compacts), keep ingesting, then
//! drop the whole registry mid-stream — the "crash". Reopening the same
//! directory recovers the tenant from checkpoint + WAL-tail replay, and
//! because sketches are linear the recovered epoch answers **bit-identical**
//! to the pre-crash pinned epoch.
//!
//! Run with: `cargo run --release --example durable_service`

use dsg_service::{Query, QueryService, Response};
use dsg_sketch::LinearSketch;
use dsg_store::{DurableRegistry, ScratchDir, StoreOptions};
use std::sync::Arc;

fn main() {
    let dir = ScratchDir::new("durable-example");
    let n = 60usize;
    let stream =
        dsg_graph::GraphStream::with_churn(&dsg_graph::gen::erdos_renyi(n, 0.08, 5), 1.0, 6);
    let updates = stream.updates();
    let half = updates.len() / 2;

    // ---- First life: ingest, checkpoint, keep ingesting, crash. ----
    let registry = DurableRegistry::open(dir.path(), StoreOptions::default()).expect("open");
    println!(
        "durable registry at {:?} ({} tenants)",
        dir.path().file_name().expect("scratch dirs are named"),
        registry.len()
    );
    let social = registry
        .create(
            "social",
            dsg_service::GraphConfig::new(n)
                .seed(7)
                .shards(2)
                .batch_size(64),
        )
        .expect("fresh tenant");

    for batch in updates[..half].chunks(50) {
        social.apply(batch).expect("in range");
    }
    let stats = social.checkpoint().expect("checkpoint");
    println!(
        "checkpoint at epoch {} covering {} updates; WAL resumes at segment {}, {} old segment(s) compacted away",
        stats.epoch, stats.total_updates, stats.wal_pos.segment, stats.segments_removed
    );

    // Mid-stream tail: durable in the WAL, but never checkpointed.
    for batch in updates[half..].chunks(50) {
        social.apply(batch).expect("in range");
    }
    let pinned = social.advance_epoch().expect("epoch advance");
    let pinned_queries = [
        Query::Connectivity,
        Query::SameComponent(0, n as u32 - 1),
        Query::Distance(1, n as u32 / 2),
    ];
    let pinned_answers: Vec<Response> = pinned_queries
        .iter()
        .map(|q| pinned.execute(q).expect("query"))
        .collect();
    let pinned_sketch = LinearSketch::to_bytes(pinned.sketch());
    println!(
        "pinned epoch {} at {} updates before the crash; answers: {:?}",
        pinned.epoch(),
        pinned.total_updates(),
        pinned_answers
    );
    drop((social, pinned, registry));
    println!("process 'crashed' (registry dropped mid-stream)");

    // ---- Second life: recover and prove the answers match. ----
    let registry = DurableRegistry::open(dir.path(), StoreOptions::default()).expect("reopen");
    for report in registry.recovery_report() {
        println!(
            "recovered tenant '{}': checkpoint epoch {}, {} WAL records replayed, torn tail: {}",
            report.name, report.checkpoint_epoch, report.records_replayed, report.torn_tail
        );
        println!(
            "recovery phases: checkpoint_load {:?}, restore {:?}, replay {:?}, wal_open {:?}",
            report.checkpoint_load, report.restore, report.replay, report.wal_open
        );
    }
    let social = registry.get("social").expect("tenant came back");
    let snapshot = social.snapshot();
    assert_eq!(
        LinearSketch::to_bytes(snapshot.sketch()),
        pinned_sketch,
        "recovered sketch must be bit-identical to the pre-crash epoch"
    );
    let recovered_answers: Vec<Response> = pinned_queries
        .iter()
        .map(|q| snapshot.execute(q).expect("query"))
        .collect();
    assert_eq!(recovered_answers, pinned_answers);
    println!(
        "pinned-epoch answers after recovery are bit-identical at epoch {}: {:?}",
        snapshot.epoch(),
        recovered_answers
    );

    // The recovered tenant is a first-class served graph: a worker pool
    // answers queries from it, and further durable writes keep flowing.
    let pool = QueryService::start(Arc::clone(registry.shared()), 2);
    let Response::Stats(stats) = pool
        .query_blocking("social", Query::Stats)
        .expect("pool query")
    else {
        panic!("wrong variant");
    };
    println!(
        "query pool serves the recovered tenant: epoch {}, {} updates frozen",
        stats.epoch, stats.total_updates
    );
    pool.shutdown();
    social.insert(0, 1).expect("durable write after recovery");
    social.advance_epoch().expect("epoch advance");
    println!(
        "life goes on: epoch {} after one more durable write",
        social.snapshot().epoch()
    );
}
