//! Sparsify-then-solve: the application that motivates spectral
//! sparsifiers ("instrumental in obtaining the first near-linear time
//! algorithm for solving SDD linear systems"). We stream a dense graph,
//! build a sparsifier in two passes, and solve a Laplacian system on the
//! sparsifier — comparing the solution against solving on the full graph.
//!
//! Run with: `cargo run --release --example laplacian_solver`

use dsg_core::prelude::*;
use dsg_sparsifier::kp12::measure_quality;
use dsg_sparsifier::{solver, Laplacian};

fn main() {
    let n = 40;
    let graph = gen::complete(n);
    let stream = GraphStream::insert_only(&graph, 21);
    println!("dense input: K_{n} with {} edges", graph.num_edges());

    // Two-pass streaming sparsifier (Corollary 2), laptop constants.
    let mut params = SparsifierParams::new(2, 0.5, 22);
    params.z_factor = 0.08;
    let out = SparsifierBuilder::new(n)
        .params(params)
        .build_from_stream(&stream);
    let quality = measure_quality(&graph, &out.sparsifier);
    println!(
        "sparsifier: {} edges ({:.1}% of input), exact spectral eps = {:.3}",
        quality.edges,
        100.0 * quality.edges as f64 / quality.source_edges as f64,
        quality.epsilon
    );

    // Solve L x = b on both graphs: current injected at 0, extracted at
    // n-1.
    let mut b = vec![0.0; n];
    b[0] = 1.0;
    b[n - 1] = -1.0;
    let full = Laplacian::from_graph(&graph);
    let sparse = Laplacian::from_weighted(&out.sparsifier);
    let x_full = solver::solve(&full, &b, 1e-10, 2000);
    let x_sparse = solver::solve(&sparse, &b, 1e-10, 2000);

    let r_full = x_full.x[0] - x_full.x[n - 1];
    let r_sparse = x_sparse.x[0] - x_sparse.x[n - 1];
    println!(
        "effective resistance 0↔{}: full graph {:.5}, sparsifier {:.5} ({:+.1}%)",
        n - 1,
        r_full,
        r_sparse,
        100.0 * (r_sparse / r_full - 1.0)
    );
    println!(
        "CG iterations: {} on the full graph, {} on the sparsifier",
        x_full.iterations, x_sparse.iterations
    );

    // The sparsifier's resistance estimate is within the spectral bound.
    let rel = (r_sparse / r_full - 1.0).abs();
    assert!(
        rel <= quality.epsilon / (1.0 - quality.epsilon) + 1e-9,
        "resistance error {rel} exceeds spectral bound"
    );
    println!("solution quality within the measured spectral epsilon ✓");
}
