//! Quickstart: sketch a dynamic graph stream, build a spanner in two
//! passes, and answer distance queries from the compressed representation.
//!
//! Run with: `cargo run --release --example quickstart`

use dsg_core::prelude::*;

fn main() {
    // A graph we will only ever see as a stream of insertions/deletions.
    let n = 200;
    let graph = gen::erdos_renyi(n, 0.06, 42);
    println!("ground truth: {} vertices, {} edges", n, graph.num_edges());

    // The dynamic stream inserts 2x extra decoy edges and deletes them
    // again — a sketch that mishandles deletions would keep ghosts.
    let stream = GraphStream::with_churn(&graph, 2.0, 7);
    println!(
        "stream: {} updates ({} deletions)",
        stream.len(),
        stream.num_deletions()
    );

    // Two passes, ~O(n^{1+1/k}) space, stretch 2^k (Theorem 1).
    let k = 2;
    let out = SpannerBuilder::new(n)
        .stretch_exponent(k)
        .seed(1)
        .build_from_stream(&stream);
    println!(
        "spanner: {} edges (kept {:.1}% of the graph), {} terminals",
        out.spanner.num_edges(),
        100.0 * out.spanner.num_edges() as f64 / graph.num_edges() as f64,
        out.stats.num_terminals,
    );
    println!(
        "sketch space: pass 1 = {}, pass 2 = {}",
        dsg_util::space::human_bytes(out.stats.pass1_bytes),
        dsg_util::space::human_bytes(out.stats.pass2_bytes),
    );

    // Distance queries on the spanner approximate the true metric within
    // the 2^k guarantee.
    let stretch = verify::max_multiplicative_stretch(&graph, &out.spanner, n);
    println!(
        "measured worst stretch: {stretch:.2} (guarantee: {})",
        1 << k
    );
    assert!(stretch <= (1u64 << k) as f64);

    // Example query: distance 0 -> n-1 in graph vs spanner.
    let dg = dsg_graph::bfs::bfs_distances(&graph.adjacency(), 0);
    let dh = dsg_graph::bfs::bfs_distances(&out.spanner.adjacency(), 0);
    println!(
        "d(0, {}) = {} in G, {} in spanner",
        n - 1,
        dg[n - 1],
        dh[n - 1]
    );
}
