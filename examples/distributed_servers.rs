//! Distributed sketching: the paper's opening scenario, actually running.
//! Edge updates are "distributed and presented online ... on multiple
//! servers"; here each server is a real worker thread of the sharded
//! ingest engine (`dsg-engine`). Every shard sketches only the update
//! batches routed to it, serializes its sketch into a checksummed wire
//! snapshot — what it would ship over the network — and the coordinator
//! verifies, decodes, and merge-tree-reduces the snapshots to answer
//! global queries with communication proportional to the sketch size, not
//! the stream length.
//!
//! Run with: `cargo run --release --example distributed_servers`

use dsg_agm::AgmSketch;
use dsg_core::prelude::*;
use dsg_engine::{reduce_snapshots, EdgeUpdate, EngineConfig, EngineMetrics, ShardedEngine};
use dsg_graph::components::is_spanning_forest;
use dsg_telemetry::{series, MetricRegistry};

fn main() {
    let n = 250;
    let servers = 8;
    let shared_seed = 4242;
    let graph = gen::erdos_renyi(n, 0.03, 11);
    let stream = GraphStream::with_churn(&graph, 1.0, 12);
    println!(
        "global graph: {} vertices / {} edges; {} updates sharded over {} server threads",
        n,
        graph.num_edges(),
        stream.len(),
        servers
    );

    // Every server holds an AGM sketch with the SAME shared seed — the
    // "agreed upon" randomness of the paper — and ingests the update
    // batches the engine routes to it, concurrently on its own thread.
    let cfg = EngineConfig::new(servers).batch_size(128);
    let mut engine = ShardedEngine::start(cfg, |_| AgmSketch::new(n, shared_seed));
    // Instrument the run: the engine records routing, batching, and
    // backpressure into pre-resolved handles (one relaxed atomic per
    // event — cheap enough to leave on in production).
    let telemetry = MetricRegistry::new();
    engine.set_metrics(EngineMetrics {
        routed: (0..servers)
            .map(|s| {
                telemetry.counter(&series(
                    "dsg_engine_updates_routed_total",
                    &[("graph", "global"), ("shard", &s.to_string())],
                ))
            })
            .collect(),
        batches_sent: telemetry.counter("dsg_engine_batches_sent_total{graph=\"global\"}"),
        send_wait: telemetry.histogram("dsg_engine_send_wait_nanos{graph=\"global\"}"),
        load_balance: telemetry.gauge("dsg_engine_load_balance{graph=\"global\"}"),
        ..EngineMetrics::default()
    });
    for up in stream.updates() {
        engine.push(EdgeUpdate::new(up.edge.index(n), up.delta as i128));
    }
    let run = engine.finish();
    println!(
        "shard ingest counts: {:?} (hash-partitioned by edge id, max/mean = {:.3})",
        run.per_shard_updates,
        run.load_balance()
    );

    // Communication: each server ships its wire-format snapshot. The
    // crucial property is that the snapshot size depends only on the
    // sketched graph — not on how long the update stream ran.
    let snapshots = run.snapshots();
    let shipped: usize = snapshots.iter().map(Vec::len).sum();
    println!(
        "communication: {} of snapshots ({} per server, checksummed wire frames)",
        dsg_util::space::human_bytes(shipped),
        dsg_util::space::human_bytes(shipped / servers),
    );
    let long_stream = GraphStream::with_churn(&graph, 4.0, 13);
    let mut long_shard = AgmSketch::new(n, shared_seed);
    for up in long_stream.updates() {
        long_shard.update(up.edge, up.delta as i128);
    }
    println!(
        "stream of {} updates -> snapshots {}; stream of {} updates -> snapshot {}",
        stream.len(),
        dsg_util::space::human_bytes(shipped),
        long_stream.len(),
        dsg_util::space::human_bytes(long_shard.snapshot().len()),
    );
    println!("(snapshot size tracks the graph, not the stream length)");

    // The coordinator decodes the snapshots (checksums catch corruption),
    // merge-tree-reduces them by linearity, and extracts a spanning
    // forest of the global graph (Theorem 10).
    let global: AgmSketch = reduce_snapshots(&snapshots)
        .expect("snapshots verify and decode")
        .expect("at least one server");
    let forest = global.spanning_forest();
    println!(
        "coordinator recovered a spanning forest with {} edges ({} components)",
        forest.edges.len(),
        n - forest.edges.len()
    );
    assert!(is_spanning_forest(&graph, &forest.edges));

    // Sanity: the distributed answer is exactly the single-server answer.
    let mut single = AgmSketch::new(n, shared_seed);
    for up in stream.updates() {
        single.update(up.edge, up.delta as i128);
    }
    assert_eq!(
        forest.edges,
        single.spanning_forest().edges,
        "sharded ingest must answer identically to a single sketch"
    );
    println!("forest verified against ground truth and single-server run ✓");

    // What the telemetry layer captured, snapshot first (exact counts,
    // live gauge) and then the Prometheus exposition a scraper would see.
    let metrics = telemetry.snapshot();
    let total_routed: u64 = (0..servers)
        .map(|s| {
            metrics
                .counter(&series(
                    "dsg_engine_updates_routed_total",
                    &[("graph", "global"), ("shard", &s.to_string())],
                ))
                .unwrap_or(0)
        })
        .sum();
    println!(
        "telemetry: {} updates routed in {} batches, live load_balance gauge {:.3}",
        total_routed,
        metrics
            .counter("dsg_engine_batches_sent_total{graph=\"global\"}")
            .unwrap_or(0),
        metrics
            .gauge("dsg_engine_load_balance{graph=\"global\"}")
            .unwrap_or(0.0),
    );
    let exposition = telemetry.render_prometheus();
    println!(
        "prometheus exposition ({} lines):",
        exposition.lines().count()
    );
    for line in exposition
        .lines()
        .filter(|l| l.starts_with("dsg_engine_batches") || l.starts_with("dsg_engine_load"))
    {
        println!("  {line}");
    }
}
