//! Distributed sketching: the paper's opening scenario. Edge updates are
//! "distributed and presented online ... on multiple servers"; each server
//! sketches only its local shard, and merging the (linear!) sketches at a
//! coordinator answers global queries with communication proportional to
//! the sketch size, not the data size.
//!
//! Run with: `cargo run --release --example distributed_servers`

use dsg_agm::AgmSketch;
use dsg_core::prelude::*;
use dsg_graph::components::is_spanning_forest;

fn main() {
    let n = 250;
    let servers = 8;
    let graph = gen::erdos_renyi(n, 0.03, 11);
    let stream = GraphStream::with_churn(&graph, 1.0, 12);
    println!(
        "global graph: {} vertices / {} edges; {} updates sharded over {} servers",
        n,
        graph.num_edges(),
        stream.len(),
        servers
    );

    // Every server holds an AGM sketch with the SAME shared seed — the
    // "agreed upon" randomness of the paper — and consumes its shard.
    let shared_seed = 4242;
    let mut shards: Vec<AgmSketch> = (0..servers)
        .map(|_| AgmSketch::new(n, shared_seed))
        .collect();
    for (i, up) in stream.updates().iter().enumerate() {
        shards[i % servers].update(up.edge, up.delta as i128);
    }

    // Communication: each server ships its sketch. The crucial property is
    // that the sketch size depends only on n — not on how long the update
    // stream runs. Demonstrate by replaying a 4x-churn stream into a fresh
    // shard and comparing.
    let sketch_bytes: usize = shards.iter().map(|s| s.space_bytes()).sum();
    println!(
        "communication: {} of sketches ({} per server)",
        dsg_util::space::human_bytes(sketch_bytes),
        dsg_util::space::human_bytes(sketch_bytes / servers),
    );
    let long_stream = GraphStream::with_churn(&graph, 4.0, 13);
    let mut long_shard = AgmSketch::new(n, shared_seed);
    for up in long_stream.updates() {
        long_shard.update(up.edge, up.delta as i128);
    }
    println!(
        "stream of {} updates -> total sketch {}; stream of {} updates -> sketch {}",
        stream.len(),
        dsg_util::space::human_bytes(sketch_bytes),
        long_stream.len(),
        dsg_util::space::human_bytes(long_shard.space_bytes()),
    );
    println!("(sketch size tracks the graph, not the stream length)");

    // The coordinator merges and extracts a spanning forest of the global
    // graph (Theorem 10).
    let mut global = shards.remove(0);
    for s in &shards {
        global.merge(s);
    }
    let forest = global.spanning_forest();
    println!(
        "coordinator recovered a spanning forest with {} edges ({} components)",
        forest.edges.len(),
        n - forest.edges.len()
    );
    assert!(is_spanning_forest(&graph, &forest.edges));
    println!("forest verified against ground truth ✓");
}
