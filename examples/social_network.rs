//! Social-network scenario: a power-law friendship graph receives a churn
//! of follows/unfollows; a single-pass additive spanner answers degrees of
//! separation with small additive error (Theorem 3), and an AGM sketch
//! tracks the community (component) structure — the kind of "queries on
//! large-scale graphs without storing the graph" workload the paper's
//! introduction motivates.
//!
//! Run with: `cargo run --release --example social_network`

use dsg_agm::AgmSketch;
use dsg_core::prelude::*;
use dsg_graph::components::num_components;

fn main() {
    // A heavy-tailed "social" graph: few hubs, many leaves.
    let n = 300;
    let graph = gen::power_law(n, 2.3, 10.0, 99);
    let adj = graph.adjacency();
    let max_deg = (0..n as Vertex).map(|u| adj.degree(u)).max().unwrap();
    println!(
        "social graph: {} users, {} friendships, max degree {}",
        n,
        graph.num_edges(),
        max_deg
    );

    // Follows and unfollows arrive as a dynamic stream.
    let stream = GraphStream::with_churn(&graph, 1.5, 3);
    println!(
        "{} events ({} unfollows)",
        stream.len(),
        stream.num_deletions()
    );

    // One pass: additive spanner with degree parameter d.
    let d = 12;
    let out = AdditiveSpannerBuilder::new(n)
        .degree_parameter(d)
        .seed(5)
        .build_from_stream(&stream);
    println!(
        "spanner: {} edges ({} low-degree users kept verbatim, {} hub users clustered)",
        out.spanner.num_edges(),
        out.stats.num_low_degree,
        out.stats.num_attached,
    );

    // Degrees of separation, approximately.
    let distortion = verify::max_additive_distortion(&graph, &out.spanner, 60);
    println!(
        "worst additive error over sampled pairs: +{distortion} hops (bound shape: O(n/d) = {})",
        n / d
    );

    // Community structure via an AGM connectivity sketch on the same
    // stream — independent of the spanner machinery.
    let mut agm = AgmSketch::new(n, 8);
    for up in stream.updates() {
        agm.update(up.edge, up.delta as i128);
    }
    let forest = agm.spanning_forest();
    let components_sketch = n - forest.edges.len();
    println!(
        "AGM sketch sees {} communities (ground truth: {})",
        components_sketch,
        num_components(&graph)
    );
    assert_eq!(components_sketch, num_components(&graph));
}
