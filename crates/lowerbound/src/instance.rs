//! The hard input distribution of Theorem 4.
//!
//! `s` disjoint blocks, each a `G(d, 1/2)` random graph on `d` vertices
//! (Alice's input `X`, one bit per potential edge), plus Bob's designated
//! pairs `{U_ℓ, V_ℓ}` (uniform distinct vertices per block) and the
//! chaining path edges `{V_ℓ, U_{ℓ+1}}`.

use dsg_graph::{Edge, Vertex};
use dsg_hash::SplitMix64;

/// One sampled hard instance.
#[derive(Debug, Clone)]
pub struct HardInstance {
    /// Number of blocks `s`.
    pub blocks: usize,
    /// Vertices per block `d`.
    pub d: usize,
    /// Alice's edges: the union of the block graphs.
    pub alice_edges: Vec<Edge>,
    /// Bob's designated pair per block (`{U_ℓ, V_ℓ}`).
    pub pairs: Vec<(Vertex, Vertex)>,
    /// Bob's chaining path edges `{V_ℓ, U_{ℓ+1}}`.
    pub bob_edges: Vec<Edge>,
}

impl HardInstance {
    /// Samples an instance: `blocks` blocks of `G(d, 1/2)`, designated
    /// pairs, and the chain.
    ///
    /// # Panics
    ///
    /// Panics if `d < 2` or `blocks == 0`.
    pub fn sample(blocks: usize, d: usize, seed: u64) -> Self {
        assert!(d >= 2, "blocks need at least 2 vertices");
        assert!(blocks >= 1, "need at least one block");
        let mut rng = SplitMix64::new(seed);
        let mut alice_edges = Vec::new();
        let mut pairs = Vec::with_capacity(blocks);
        for b in 0..blocks {
            let base = (b * d) as Vertex;
            for u in 0..d as Vertex {
                for v in (u + 1)..d as Vertex {
                    if rng.next_u64() & 1 == 1 {
                        alice_edges.push(Edge::new(base + u, base + v));
                    }
                }
            }
            let u = rng.next_below(d as u64) as Vertex;
            let mut v = rng.next_below(d as u64) as Vertex;
            while v == u {
                v = rng.next_below(d as u64) as Vertex;
            }
            pairs.push((base + u, base + v));
        }
        let bob_edges = (0..blocks.saturating_sub(1))
            .map(|b| Edge::new(pairs[b].1, pairs[b + 1].0))
            .collect();
        Self {
            blocks,
            d,
            alice_edges,
            pairs,
            bob_edges,
        }
    }

    /// Total number of vertices `s · d`.
    pub fn num_vertices(&self) -> usize {
        self.blocks * self.d
    }

    /// The number of INDEX bits Alice holds: `s · C(d, 2)`.
    pub fn index_bits(&self) -> usize {
        self.blocks * self.d * (self.d - 1) / 2
    }

    /// Whether the designated pair of `block` is one of Alice's edges (the
    /// ground-truth bit `X_I`).
    pub fn pair_is_edge(&self, block: usize) -> bool {
        let (u, v) = self.pairs[block];
        let e = Edge::new(u, v);
        self.alice_edges.binary_search(&e).map_or_else(
            |_| self.alice_edges.contains(&e), // unsorted fallback
            |_| true,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instance_shape() {
        let inst = HardInstance::sample(6, 8, 1);
        assert_eq!(inst.num_vertices(), 48);
        assert_eq!(inst.pairs.len(), 6);
        assert_eq!(inst.bob_edges.len(), 5);
        assert_eq!(inst.index_bits(), 6 * 28);
    }

    #[test]
    fn blocks_are_disjoint() {
        let inst = HardInstance::sample(4, 10, 2);
        for e in &inst.alice_edges {
            assert_eq!(
                e.u() as usize / 10,
                e.v() as usize / 10,
                "edge {e} crosses blocks"
            );
        }
    }

    #[test]
    fn edge_density_near_half() {
        let inst = HardInstance::sample(8, 12, 3);
        let expect = inst.index_bits() as f64 / 2.0;
        let got = inst.alice_edges.len() as f64;
        assert!(
            (got - expect).abs() < 4.0 * expect.sqrt(),
            "{got} vs {expect}"
        );
    }

    #[test]
    fn pairs_inside_their_blocks() {
        let inst = HardInstance::sample(5, 7, 4);
        for (b, (u, v)) in inst.pairs.iter().enumerate() {
            assert_eq!(*u as usize / 7, b);
            assert_eq!(*v as usize / 7, b);
            assert_ne!(u, v);
        }
    }

    #[test]
    fn chain_connects_consecutive_pairs() {
        let inst = HardInstance::sample(4, 6, 5);
        for (b, e) in inst.bob_edges.iter().enumerate() {
            assert!(e.touches(inst.pairs[b].1));
            assert!(e.touches(inst.pairs[b + 1].0));
        }
    }

    #[test]
    fn ground_truth_consistent() {
        let inst = HardInstance::sample(3, 9, 6);
        for b in 0..3 {
            let (u, v) = inst.pairs[b];
            let manual = inst.alice_edges.contains(&Edge::new(u, v));
            assert_eq!(inst.pair_is_edge(b), manual);
        }
    }
}
