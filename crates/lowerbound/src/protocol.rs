//! Playing the INDEX game against the one-pass additive spanner.
//!
//! One game: Alice streams her block edges through a fresh
//! [`AdditiveSpanner`]; the measured sketch size at hand-off is the
//! one-way message length. Bob streams his chaining edges, finishes the
//! pass, and answers whether the designated pair of the queried block
//! appears in the returned spanner. Theorem 4 says: to win with
//! probability ≥ 2/3 over the hard distribution, the message must carry
//! `Ω(nd)` bits — so an algorithm whose space is sized for `d' ≪ d`
//! (too-small sketches) must lose its advantage, which experiment E7
//! sweeps.

use crate::instance::HardInstance;
use dsg_graph::stream::StreamUpdate;
use dsg_graph::StreamAlgorithm;
use dsg_spanner::{AdditiveParams, AdditiveSpanner};
use dsg_util::SpaceUsage;

/// The outcome of playing the game on every block of one instance.
#[derive(Debug, Clone)]
pub struct GameResult {
    /// Message length in bytes: the algorithm's worst-case space
    /// reservation (the quantity Theorem 4 lower-bounds — a streaming
    /// algorithm must provision its state before seeing the input).
    pub message_bytes: usize,
    /// The `Θ(nd log n)` component of the message (the neighborhood
    /// sketches); the rest is `Θ(n polylog n)` independent of `d`.
    pub message_nd_bytes: usize,
    /// Actually-touched sketch bytes at the hand-off (for context).
    pub touched_bytes: usize,
    /// Measured additive distortion of the returned spanner on the chained
    /// instance — Theorem 4's contrapositive: with sub-`Ω(nd)` space,
    /// either this exceeds `n/d` or the success probability drops.
    pub distortion: u32,
    /// Per-block verdicts: `(truth, claim)`.
    pub verdicts: Vec<(bool, bool)>,
}

impl GameResult {
    /// Fraction of blocks answered correctly (the INDEX success rate;
    /// every block is a uniformly random index, so this estimates the
    /// per-index success probability).
    pub fn success_rate(&self) -> f64 {
        if self.verdicts.is_empty() {
            return 0.0;
        }
        self.verdicts.iter().filter(|(t, c)| t == c).count() as f64 / self.verdicts.len() as f64
    }

    /// Success rate restricted to blocks whose designated pair IS an edge
    /// (the retention rate the theorem's argument lower-bounds).
    pub fn edge_retention_rate(&self) -> f64 {
        let positives: Vec<_> = self.verdicts.iter().filter(|(t, _)| *t).collect();
        if positives.is_empty() {
            return 1.0;
        }
        positives.iter().filter(|(_, c)| *c).count() as f64 / positives.len() as f64
    }
}

/// Plays the game once with the additive spanner configured by `params`.
///
/// The same run answers every block's index (each block is an independent
/// uniform index into Alice's string, which is how the theorem's
/// distributional statement is exercised efficiently).
pub fn play(instance: &HardInstance, params: AdditiveParams) -> GameResult {
    let n = instance.num_vertices();
    let mut alg = AdditiveSpanner::new(n, params);
    alg.begin_pass(0);
    // Alice's half of the stream.
    for e in &instance.alice_edges {
        alg.process(&StreamUpdate {
            edge: *e,
            delta: 1,
            weight: 1.0,
        });
    }
    // The one-way message: everything Bob needs to continue.
    let message_bytes = alg.nominal_bytes();
    let message_nd_bytes = alg.nominal_neighborhood_bytes();
    let touched_bytes = alg.space_bytes();
    // Bob's half.
    for e in &instance.bob_edges {
        alg.process(&StreamUpdate {
            edge: *e,
            delta: 1,
            weight: 1.0,
        });
    }
    alg.end_pass(0);
    let spanner = alg.into_output().expect("pass completed").spanner;
    let verdicts = (0..instance.blocks)
        .map(|b| {
            let (u, v) = instance.pairs[b];
            (instance.pair_is_edge(b), spanner.has_edge(u, v))
        })
        .collect();
    // Distortion of the returned spanner on the full chained instance.
    let full = dsg_graph::Graph::from_edges(
        n,
        instance
            .alice_edges
            .iter()
            .chain(&instance.bob_edges)
            .copied(),
    );
    let distortion = dsg_spanner::verify::max_additive_distortion(&full, &spanner, n.min(64));
    GameResult {
        message_bytes,
        message_nd_bytes,
        touched_bytes,
        distortion,
        verdicts,
    }
}

/// Aggregate of repeated games: mean success and message size.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// The spanner's `d` parameter used by the algorithm.
    pub algo_d: usize,
    /// Mean message bytes (total reservation).
    pub mean_message_bytes: f64,
    /// Mean `Θ(nd log n)` message component.
    pub mean_nd_bytes: f64,
    /// Mean INDEX success rate.
    pub mean_success: f64,
    /// Mean retention of planted edges.
    pub mean_retention: f64,
    /// Mean measured additive distortion on the instance.
    pub mean_distortion: f64,
}

/// Plays `trials` games at a given algorithm budget `algo_d` on instances
/// with block size `instance_d`.
pub fn sweep_point(
    blocks: usize,
    instance_d: usize,
    algo_d: usize,
    trials: usize,
    seed: u64,
) -> SweepPoint {
    let mut msg = 0.0;
    let mut nd = 0.0;
    let mut succ = 0.0;
    let mut ret = 0.0;
    let mut dist = 0.0;
    for t in 0..trials {
        let inst = HardInstance::sample(blocks, instance_d, seed.wrapping_add(t as u64 * 7919));
        let res = play(
            &inst,
            AdditiveParams::new(algo_d, seed.wrapping_add(t as u64)),
        );
        msg += res.message_bytes as f64;
        nd += res.message_nd_bytes as f64;
        succ += res.success_rate();
        ret += res.edge_retention_rate();
        dist += res.distortion as f64;
    }
    let t = trials as f64;
    SweepPoint {
        algo_d,
        mean_message_bytes: msg / t,
        mean_nd_bytes: nd / t,
        mean_success: succ / t,
        mean_retention: ret / t,
        mean_distortion: dist / t,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adequate_space_wins_the_game() {
        // With the algorithm's d matched to the instance (space ~ nd), all
        // block vertices are low-degree: the spanner keeps everything and
        // Bob answers perfectly.
        let inst = HardInstance::sample(6, 8, 1);
        let res = play(&inst, AdditiveParams::new(8, 2));
        assert!(
            res.success_rate() >= 6.0 / 7.0,
            "success {} below theorem threshold",
            res.success_rate()
        );
    }

    #[test]
    fn success_degrades_with_message_size() {
        // Sweep the algorithm budget down: the nd-component of the message
        // shrinks and success falls toward coin-flipping.
        let big = sweep_point(6, 16, 16, 3, 3);
        let small = sweep_point(6, 16, 1, 3, 4);
        assert!(
            small.mean_nd_bytes < big.mean_nd_bytes / 2.0,
            "nd-components {} vs {}",
            small.mean_nd_bytes,
            big.mean_nd_bytes
        );
        assert!(
            small.mean_message_bytes < big.mean_message_bytes,
            "total messages {} vs {}",
            small.mean_message_bytes,
            big.mean_message_bytes
        );
        assert!(
            small.mean_success < big.mean_success,
            "success {} vs {}",
            small.mean_success,
            big.mean_success
        );
        assert!(big.mean_success >= 0.85);
    }

    #[test]
    fn retention_tracks_theorem_argument() {
        // The theorem needs ≥ 5/6 of planted pairs retained when the
        // distortion guarantee holds; with adequate space retention is
        // essentially 1.
        let inst = HardInstance::sample(8, 10, 5);
        let res = play(&inst, AdditiveParams::new(10, 6));
        assert!(
            res.edge_retention_rate() >= 0.9,
            "retention {}",
            res.edge_retention_rate()
        );
    }

    #[test]
    fn message_bytes_scale_with_d() {
        let small = sweep_point(4, 8, 2, 2, 7);
        let large = sweep_point(4, 8, 8, 2, 8);
        assert!(
            large.mean_nd_bytes > 1.5 * small.mean_nd_bytes,
            "nd-components {} vs {}",
            large.mean_nd_bytes,
            small.mean_nd_bytes
        );
        assert!(large.mean_message_bytes > small.mean_message_bytes);
    }
}
