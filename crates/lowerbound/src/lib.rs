//! The `Ω(nd)` lower bound for one-pass additive spanners (Theorem 4).
//!
//! The paper proves that any 1-pass streaming algorithm returning a spanner
//! with additive distortion `n/d` (success probability ≥ 6/7) needs
//! `Ω(nd)` bits, by reduction from the one-way INDEX communication problem:
//!
//! * **Alice** interprets her random bit string as `s = Θ(n/d)` disjoint
//!   `G(d, 1/2)` graphs and streams their edges through the algorithm,
//!   sending the algorithm's state (the "message") to Bob;
//! * **Bob**, holding an index — a designated pair `{U, V}` in block `J` —
//!   picks random pairs in the other blocks, streams the chaining path
//!   `{V_1, U_2}, {V_2, U_3}, …`, finishes the algorithm, and answers
//!   "`X_I = 1`" iff `{U, V}` appears in the returned spanner.
//!
//! Any low-distortion spanner must retain most designated pairs that are
//! real edges (they lie on the chained shortest path), so Bob succeeds with
//! probability ≥ 2/3 — forcing the state to carry `Ω(nd)` bits.
//!
//! This crate *plays* that game against the actual
//! [`dsg_spanner::AdditiveSpanner`]: [`protocol::play`] measures message
//! size (the algorithm's measured sketch bytes at the hand-off point) and
//! success probability, and [`instance`] generates the hard distribution.
//! Experiment E7 sweeps the space/success tradeoff the theorem predicts.

pub mod instance;
pub mod protocol;

pub use instance::HardInstance;
pub use protocol::{play, GameResult};
