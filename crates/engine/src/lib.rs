//! # dsg-engine — sharded multi-threaded sketch ingest
//!
//! The paper's opening scenario has edge updates "distributed and
//! presented online … on multiple servers": because every sketch in this
//! workspace is *linear*, each server can sketch only its local share of
//! the stream and a coordinator merges the (small) sketches instead of
//! collecting the (large) streams. This crate is that scenario as a
//! subsystem:
//!
//! * [`ShardedEngine`] partitions an incoming update stream across `S`
//!   worker shards (`std::thread` + bounded channels) by **edge
//!   identity** — every update to the same coordinate routes to
//!   [`shard_for`]`(key) % S`, so an insertion and its later deletion
//!   land on the same worker and cancel inside that worker's sketch —
//!   delivering updates in per-shard batches to amortize synchronization;
//! * any [`LinearSketch`] plugs in directly through the blanket
//!   [`EngineSketch`] impl — `AgmSketch`, `SparseRecovery`, `L0Sampler`,
//!   `DistinctEstimator`, … — while pass-structured algorithms (the
//!   two-pass spanner and KP12 sparsifier) plug in through hand-written
//!   `EngineSketch` wrappers in `dsg-core`;
//! * shard results flow back to the coordinator either in memory
//!   ([`EngineRun::merged`], a log-depth [`merge_tree`]) or as wire-format
//!   snapshots ([`EngineRun::snapshots`] → [`reduce_snapshots`]), the
//!   serialized path a real multi-server deployment would ship over the
//!   network.
//!
//! Correctness rests entirely on linearity: any K-way partition of a
//! stream, sketched under the same shared seed and merged in any order,
//! is bit-identical to one sketch of the whole stream. That freedom is
//! why the router may choose the partition that makes cancellation
//! *local*: with hash-by-edge routing, a shard's state is a sketch of the
//! net multiset of its slice of the edge space, so its size tracks the
//! live subgraph owned by the shard — not the stream history that flowed
//! through it. Property tests in `tests/` and
//! `tests/integration_engine.rs` at the workspace root pin the
//! partition-invariance down end to end (identical sketch bytes, spanning
//! forests, spanners, and sparsifiers versus single-threaded and
//! round-robin splits).
//!
//! ```
//! use dsg_engine::{EdgeUpdate, EngineConfig, ShardedEngine};
//! use dsg_sketch::{LinearSketch, SparseRecovery};
//!
//! let cfg = EngineConfig::new(4).batch_size(64);
//! let mut engine = ShardedEngine::start(cfg, |_shard| SparseRecovery::new(8, 42));
//! for key in 0..100u64 {
//!     engine.push(EdgeUpdate::new(key, 1));
//! }
//! for key in 0..97u64 {
//!     engine.push(EdgeUpdate::new(key, -1));
//! }
//! let merged = engine.finish().merged().unwrap();
//! assert_eq!(
//!     merged.decode().unwrap(),
//!     vec![(97, 1), (98, 1), (99, 1)],
//! );
//! ```

#![deny(clippy::unwrap_used)]

use dsg_sketch::{LinearSketch, WireError};
use dsg_telemetry::{trace, Counter, EventKind, FlightRecorder, Gauge, Histogram};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::thread::JoinHandle;

/// The canonical routing function of the edge-partitioned engine: which
/// of `shards` workers owns coordinate `key`.
///
/// This is a splitmix64-style finalizer over the canonical edge id (for
/// graph streams, `dsg_graph::pair_to_index`), so the partition is
/// deterministic, stateless, and uniform even on structured key spaces.
/// Determinism is what makes cancellation local — a `+1` and its later
/// `-1` hash identically and meet in the same worker's sketch — and what
/// lets a checkpoint validate that a persisted per-shard segment really
/// belongs to the shard that claims it.
///
/// **Stability:** this function is part of the persistent format.
/// Checkpoints (dsg-store format v3) persist per-shard net segments and
/// re-validate them against `shard_for` on decode; changing the hash
/// would orphan every existing checkpoint.
///
/// # Panics
///
/// Panics if `shards == 0`.
pub fn shard_for(key: u64, shards: usize) -> usize {
    assert!(shards > 0, "need at least one shard");
    let mut x = key.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    (x % shards as u64) as usize
}

/// One signed update to the sketched vector: `x[key] += delta`.
///
/// For graph streams, `key` is the edge coordinate under
/// `dsg_graph::pair_to_index` and `delta` is `±1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeUpdate {
    /// The updated coordinate.
    pub key: u64,
    /// The signed change.
    pub delta: i128,
}

impl EdgeUpdate {
    /// Creates an update.
    pub fn new(key: u64, delta: i128) -> Self {
        Self { key, delta }
    }
}

/// Shape of a sharded ingest run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Number of worker shards (threads).
    pub shards: usize,
    /// Updates per batch handed to a shard. Larger batches amortize
    /// channel synchronization; smaller batches reduce latency and peak
    /// buffering. 256 is a good default for µs-scale sketch updates.
    pub batch_size: usize,
    /// Bounded channel depth per shard, in batches (backpressure: a
    /// producer that outruns every shard blocks instead of buffering
    /// unboundedly).
    pub queue_depth: usize,
}

impl EngineConfig {
    /// A config with `shards` workers and default batching.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn new(shards: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        Self {
            shards,
            batch_size: 256,
            queue_depth: 4,
        }
    }

    /// A config sized to the machine (one shard per available core).
    pub fn auto() -> Self {
        let shards = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self::new(shards)
    }

    /// Overrides the batch size.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0`.
    pub fn batch_size(mut self, batch_size: usize) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        self.batch_size = batch_size;
        self
    }

    /// Overrides the per-shard queue depth (in batches).
    ///
    /// # Panics
    ///
    /// Panics if `queue_depth == 0`.
    pub fn queue_depth(mut self, queue_depth: usize) -> Self {
        assert!(queue_depth > 0, "queue depth must be positive");
        self.queue_depth = queue_depth;
        self
    }
}

/// What a shard worker must be able to do: ingest update batches, be
/// folded into a coordinator-side reduction, and fork a consistent copy
/// of its state for live snapshots.
///
/// Every [`LinearSketch`] gets this for free via the blanket impl.
/// Pass-structured stream algorithms whose *per-pass* state is linear but
/// whose whole object is not a `LinearSketch` (the two-pass spanner, the
/// KP12 sparsifier pipeline) implement it directly on a wrapper — see
/// `dsg_core::engine`.
pub trait EngineSketch: Send + 'static {
    /// Ingests a batch of updates.
    fn apply_batch(&mut self, batch: &[EdgeUpdate]);

    /// Folds another shard's result into `self` (linearity: the result
    /// sketches the union of both sub-streams).
    fn absorb(&mut self, other: Self);

    /// A consistent copy of this shard's current state, taken between
    /// batches. This is what an epoch snapshot collects while the worker
    /// keeps ingesting — see [`ShardedEngine::snapshot_shards`].
    fn fork(&self) -> Self;
}

impl<S: LinearSketch + Clone + Send + 'static> EngineSketch for S {
    fn apply_batch(&mut self, batch: &[EdgeUpdate]) {
        for up in batch {
            self.update(up.key, up.delta);
        }
    }

    fn absorb(&mut self, other: Self) {
        self.merge(&other);
    }

    fn fork(&self) -> Self {
        self.clone()
    }
}

/// The ingest-side telemetry handles of a [`ShardedEngine`]. The caller
/// builds the handles (typically from a `dsg_telemetry::MetricRegistry`,
/// with its own naming scheme) and installs them via
/// [`ShardedEngine::set_metrics`]; the default is all no-op handles, so
/// an uninstrumented engine pays one predictable branch per batch.
///
/// All recording happens on the producer thread at **batch** granularity
/// — one counter add per dispatched batch, never one per update — so the
/// hot path stays allocation-free and O(1) per event.
#[derive(Debug, Clone, Default)]
pub struct EngineMetrics {
    /// Updates routed to each shard, in shard order (counted when the
    /// shard's batch dispatches). Leave empty for "no per-shard
    /// counters"; otherwise the length must match the shard count.
    pub routed: Vec<Counter>,
    /// Batches handed to shard workers.
    pub batches_sent: Counter,
    /// Nanoseconds the producer spent blocked in `send` on the bounded
    /// shard channels — queue backpressure made visible.
    pub send_wait: Histogram,
    /// Live max/mean routed-update ratio across shards (the same
    /// statistic as [`EngineRun::load_balance`], updated per dispatch).
    pub load_balance: Gauge,
    /// Flight recorder for per-batch trace events (one
    /// [`EventKind::EngineBatch`](dsg_telemetry::EventKind::EngineBatch)
    /// per dispatch, under the dispatching thread's ambient trace id).
    pub tracer: FlightRecorder,
    /// Interned tenant token for the recorder's events (0 = none).
    pub tenant: u32,
}

impl EngineMetrics {
    /// All-no-op handles (what [`Default`] gives you).
    pub fn noop() -> Self {
        Self::default()
    }
}

/// The load-balance statistic shared by [`EngineRun::load_balance`] and
/// the live [`EngineMetrics::load_balance`] gauge: max shard load over
/// mean shard load, `1.0` for an empty or shard-less run.
pub fn load_balance_ratio(per_shard: &[u64]) -> f64 {
    let total: u64 = per_shard.iter().sum();
    if total == 0 || per_shard.is_empty() {
        return 1.0;
    }
    let max = per_shard.iter().copied().max().unwrap_or(0) as f64;
    let mean = total as f64 / per_shard.len() as f64;
    max / mean
}

/// A message to a shard worker: either a batch of updates or a request to
/// ship back a fork of the shard's current state. Channel FIFO order makes
/// snapshots consistent: a fork reflects exactly the batches sent before
/// the request, never a torn prefix of one.
enum ShardMsg<S> {
    Batch(Vec<EdgeUpdate>),
    Snapshot(SyncSender<S>),
}

/// A running sharded ingest: `S` worker threads, each owning one sketch
/// and a **fixed slice of the edge space** — every update routes to
/// [`shard_for`]`(key, S)`, so all updates for an edge land on the same
/// worker.
///
/// For a linear sketch *any* deterministic partition of the stream merges
/// to the same state, so the router is free to optimize for locality:
/// partitioning by edge identity makes insert/delete churn cancel inside
/// the worker where it lands, keeping each shard's state O(live subgraph
/// ∩ shard) instead of O(stream history). Load balance comes from the
/// hash, not from rotation — see [`EngineRun::load_balance`] for the
/// skew diagnostic.
#[derive(Debug)]
pub struct ShardedEngine<S: EngineSketch> {
    senders: Vec<SyncSender<ShardMsg<S>>>,
    workers: Vec<JoinHandle<(S, u64)>>,
    /// One fill buffer per shard; a shard's buffer is dispatched to its
    /// worker when it reaches `batch_size`.
    buffers: Vec<Vec<EdgeUpdate>>,
    batch_size: usize,
    pushed: u64,
    /// Updates dispatched to each shard so far — the producer-side view
    /// feeding the live load-balance gauge.
    routed_counts: Vec<u64>,
    metrics: EngineMetrics,
}

/// The completed result of a sharded ingest.
#[derive(Debug)]
pub struct EngineRun<S> {
    /// One sketch per shard, in shard order.
    pub shards: Vec<S>,
    /// Updates each shard ingested. Under hash-partitioning these track
    /// how the *stream's edges* hashed across shards — near-uniform for
    /// spread-out key sets, skewed if a few hot edges dominate the
    /// stream. Summarize with [`load_balance`](EngineRun::load_balance).
    pub per_shard_updates: Vec<u64>,
    /// Total updates pushed through the engine.
    pub total_updates: u64,
}

impl<S> EngineRun<S> {
    /// The load-balance ratio of the run: max shard load over mean shard
    /// load. `1.0` is a perfectly even split; hash-partitioning keeps
    /// this within a small constant of 1 on streams whose updates spread
    /// over many edges, while a stream dominated by a handful of hot
    /// edges can legitimately skew it (all updates for an edge *must*
    /// colocate for cancellation). Returns `1.0` for an empty run.
    pub fn load_balance(&self) -> f64 {
        load_balance_ratio(&self.per_shard_updates)
    }
}

impl<S: EngineSketch> EngineRun<S> {
    /// Reduces the shard sketches to one via [`merge_tree`].
    pub fn merged(self) -> Option<S> {
        merge_tree(self.shards)
    }
}

impl<S: LinearSketch + Send + 'static> EngineRun<S> {
    /// Serializes every shard sketch into its wire snapshot — what each
    /// server ships to the coordinator in the distributed deployment.
    pub fn snapshots(&self) -> Vec<Vec<u8>> {
        self.shards.iter().map(|s| s.snapshot()).collect()
    }
}

impl<S: EngineSketch> ShardedEngine<S> {
    /// Spawns the shard workers. `make_shard(i)` builds shard `i`'s sketch
    /// on the caller's thread — all shards must be built from the same
    /// shared seed/parameters or the final merge will (correctly) panic.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread cannot be spawned.
    pub fn start<F: FnMut(usize) -> S>(cfg: EngineConfig, mut make_shard: F) -> Self {
        let sketches: Vec<S> = (0..cfg.shards).map(&mut make_shard).collect();
        Self::spawn(cfg, sketches, 0)
    }

    /// Spawns the shard workers from **pre-existing** shard states — the
    /// recovery path of a durability layer: a checkpoint stores every
    /// shard's sketch (`LinearSketch::to_bytes` frames), and `restore`
    /// resumes ingest exactly where the checkpoint froze it. By linearity
    /// the restored engine is indistinguishable from one that ingested the
    /// whole stream uninterrupted. Because routing is the stateless
    /// [`shard_for`], resuming with the same shard count re-derives the
    /// same partition — shard `i`'s restored state keeps receiving exactly
    /// the keys it owned before the restart.
    ///
    /// `already_pushed` seeds the [`pushed`](ShardedEngine::pushed)
    /// counter so stream positions keep counting from the true start of
    /// the stream, not from the restart.
    ///
    /// # Panics
    ///
    /// Panics if `sketches.len() != cfg.shards`, or if a worker thread
    /// cannot be spawned.
    pub fn restore(cfg: EngineConfig, sketches: Vec<S>, already_pushed: u64) -> Self {
        assert_eq!(
            sketches.len(),
            cfg.shards,
            "restore requires one sketch per shard"
        );
        Self::spawn(cfg, sketches, already_pushed)
    }

    /// Shared worker-spawning plumbing behind [`start`](ShardedEngine::start)
    /// and [`restore`](ShardedEngine::restore).
    fn spawn(cfg: EngineConfig, sketches: Vec<S>, already_pushed: u64) -> Self {
        assert!(cfg.shards > 0, "need at least one shard");
        assert!(cfg.batch_size > 0, "batch size must be positive");
        assert_eq!(sketches.len(), cfg.shards, "one sketch per shard");
        let mut senders = Vec::with_capacity(cfg.shards);
        let mut workers = Vec::with_capacity(cfg.shards);
        for (shard, mut sketch) in sketches.into_iter().enumerate() {
            let (tx, rx): (_, Receiver<ShardMsg<S>>) = sync_channel(cfg.queue_depth.max(1));
            let handle = std::thread::Builder::new()
                .name(format!("dsg-engine-shard-{shard}"))
                .spawn(move || {
                    let mut applied = 0u64;
                    while let Ok(msg) = rx.recv() {
                        match msg {
                            ShardMsg::Batch(batch) => {
                                applied += batch.len() as u64;
                                sketch.apply_batch(&batch);
                            }
                            // A dropped reply receiver just means the
                            // coordinator gave up on the snapshot; the
                            // worker keeps ingesting either way.
                            ShardMsg::Snapshot(reply) => {
                                let _ = reply.send(sketch.fork());
                            }
                        }
                    }
                    (sketch, applied)
                })
                .expect("failed to spawn engine shard");
            senders.push(tx);
            workers.push(handle);
        }
        Self {
            senders,
            workers,
            buffers: (0..cfg.shards)
                .map(|_| Vec::with_capacity(cfg.batch_size))
                .collect(),
            batch_size: cfg.batch_size,
            pushed: already_pushed,
            routed_counts: vec![0; cfg.shards],
            metrics: EngineMetrics::noop(),
        }
    }

    /// Installs telemetry handles (see [`EngineMetrics`]). The engine
    /// starts with all-no-op handles; installing live ones turns on
    /// per-batch recording without touching the ingest API.
    ///
    /// # Panics
    ///
    /// Panics if `metrics.routed` is non-empty but its length disagrees
    /// with the shard count.
    pub fn set_metrics(&mut self, metrics: EngineMetrics) {
        assert!(
            metrics.routed.is_empty() || metrics.routed.len() == self.senders.len(),
            "per-shard counters must match the shard count"
        );
        self.metrics = metrics;
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.senders.len()
    }

    /// Total updates pushed so far (including any still buffered).
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    /// Takes a consistent snapshot of every shard **without** tearing the
    /// workers down: flushes the buffered tail batches, asks each worker
    /// to fork its state between batches, and returns the forks in shard
    /// order. Every update pushed before this call is reflected in the
    /// forks; none pushed after is — per-channel FIFO delivery is the
    /// whole synchronization story. Ingest can continue immediately.
    ///
    /// Under hash-partitioning, fork `i` is a sketch of exactly the net
    /// sub-stream of the keys shard `i` owns ([`shard_for`]`(key, S) ==
    /// i`), so its serialized size is O(live subgraph ∩ shard) no matter
    /// how much churn has flowed through.
    ///
    /// This is the epoch-advance primitive of the serving layer: reduce
    /// the forks with [`merge_tree`] (or serialize them and go through
    /// [`reduce_snapshots`]) to get the coordinator sketch frozen at this
    /// stream position.
    ///
    /// # Panics
    ///
    /// Panics if a shard worker has hung up (i.e. panicked).
    pub fn snapshot_shards(&mut self) -> Vec<S> {
        self.flush();
        let replies: Vec<Receiver<S>> = self
            .senders
            .iter()
            .map(|tx| {
                let (rtx, rrx) = sync_channel(1);
                tx.send(ShardMsg::Snapshot(rtx))
                    .expect("engine shard hung up early");
                rrx
            })
            .collect();
        replies
            .into_iter()
            .map(|rx| rx.recv().expect("engine shard dropped snapshot request"))
            .collect()
    }

    /// Enqueues one update, routed to its owning shard by
    /// [`shard_for`]`(update.key, S)` (delivered when that shard's batch
    /// fills or at [`finish`](ShardedEngine::finish)).
    pub fn push(&mut self, update: EdgeUpdate) {
        self.pushed += 1;
        let shard = shard_for(update.key, self.senders.len());
        self.buffers[shard].push(update);
        if self.buffers[shard].len() >= self.batch_size {
            self.dispatch(shard);
        }
    }

    /// Enqueues a slice of updates.
    pub fn push_all(&mut self, updates: &[EdgeUpdate]) {
        for &up in updates {
            self.push(up);
        }
    }

    /// Sends shard `shard`'s buffered batch to its worker.
    fn dispatch(&mut self, shard: usize) {
        if self.buffers[shard].is_empty() {
            return;
        }
        let batch = std::mem::replace(
            &mut self.buffers[shard],
            Vec::with_capacity(self.batch_size),
        );
        let len = batch.len() as u64;
        {
            // Time only the channel send: when it blocks, the bounded
            // queue is exerting backpressure and this histogram shows it.
            let _wait = self.metrics.send_wait.start_timer();
            self.senders[shard]
                .send(ShardMsg::Batch(batch))
                .expect("engine shard hung up early");
        }
        self.routed_counts[shard] += len;
        self.metrics.batches_sent.inc();
        self.metrics.tracer.record(
            EventKind::EngineBatch,
            trace::current_trace_id(),
            self.metrics.tenant,
            len,
        );
        if let Some(counter) = self.metrics.routed.get(shard) {
            counter.add(len);
        }
        if self.metrics.load_balance.is_active() {
            self.metrics
                .load_balance
                .set(load_balance_ratio(&self.routed_counts));
        }
    }

    /// Flushes every shard's buffered tail batch.
    fn flush(&mut self) {
        for shard in 0..self.senders.len() {
            self.dispatch(shard);
        }
    }

    /// Flushes the tail batches, closes the channels, joins every worker,
    /// and returns the per-shard sketches.
    ///
    /// # Panics
    ///
    /// Propagates a panic from any shard worker.
    pub fn finish(mut self) -> EngineRun<S> {
        self.flush();
        // Take the channels and handles out so the Drop impl (which joins
        // whatever is left) sees an already-shut-down engine.
        drop(std::mem::take(&mut self.senders));
        let workers = std::mem::take(&mut self.workers);
        let mut shards = Vec::with_capacity(workers.len());
        let mut per_shard_updates = Vec::with_capacity(workers.len());
        for handle in workers {
            let (sketch, applied) = handle.join().expect("engine shard panicked");
            shards.push(sketch);
            per_shard_updates.push(applied);
        }
        EngineRun {
            shards,
            per_shard_updates,
            total_updates: self.pushed,
        }
    }
}

/// Dropping an engine without [`finish`](ShardedEngine::finish) still
/// shuts it down **deterministically**: the channels close and every
/// worker thread is joined (not detached), so no shard thread outlives
/// its engine — a durability layer can flush and delete files right after
/// the drop without racing a straggler. The buffered tail batch is
/// discarded (only `finish` promises delivery); a worker that panicked is
/// ignored here because propagating from `drop` would abort.
impl<S: EngineSketch> Drop for ShardedEngine<S> {
    fn drop(&mut self) {
        self.senders.clear(); // hang up: workers drain their queue and exit
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Log-depth pairwise reduction of shard results — the coordinator's
/// merge tree. Returns `None` for an empty input.
pub fn merge_tree<S: EngineSketch>(mut shards: Vec<S>) -> Option<S> {
    while shards.len() > 1 {
        let mut next = Vec::with_capacity(shards.len().div_ceil(2));
        let mut it = shards.into_iter();
        while let Some(mut a) = it.next() {
            if let Some(b) = it.next() {
                a.absorb(b);
            }
            next.push(a);
        }
        shards = next;
    }
    shards.pop()
}

/// Decodes wire snapshots (one per shard) and merge-tree-reduces them —
/// the coordinator side of the shipped-snapshot protocol.
///
/// # Errors
///
/// The first [`WireError`] hit while decoding a snapshot.
pub fn reduce_snapshots<S: LinearSketch + Clone + Send + 'static>(
    snapshots: &[Vec<u8>],
) -> Result<Option<S>, WireError> {
    let decoded = snapshots
        .iter()
        .map(|b| S::from_bytes(b))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(merge_tree(decoded))
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use dsg_sketch::SparseRecovery;

    fn updates(n: u64) -> Vec<EdgeUpdate> {
        (0..n).map(|i| EdgeUpdate::new(i % 37, 1)).collect()
    }

    /// Deterministic pseudo-random keys (LCG, masked to 48 bits so they
    /// stay canonical field elements for the sketches) for balance tests.
    fn random_keys(n: usize, mut state: u64) -> Vec<u64> {
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                state >> 16
            })
            .collect()
    }

    #[test]
    fn sharded_ingest_equals_direct() {
        for shards in [1usize, 2, 4, 7] {
            let ups = updates(1000);
            let mut direct = SparseRecovery::new(64, 5);
            for up in &ups {
                LinearSketch::update(&mut direct, up.key, up.delta);
            }
            let cfg = EngineConfig::new(shards).batch_size(13);
            let mut eng = ShardedEngine::start(cfg, |_| SparseRecovery::new(64, 5));
            eng.push_all(&ups);
            let merged = eng.finish().merged().unwrap();
            assert_eq!(merged.to_bytes(), direct.to_bytes(), "shards={shards}");
        }
    }

    #[test]
    fn routing_is_deterministic_and_covers_all_shards() {
        for shards in 1usize..=8 {
            let mut hit = vec![false; shards];
            for key in 0..1000u64 {
                let s = shard_for(key, shards);
                assert!(s < shards);
                assert_eq!(s, shard_for(key, shards), "routing must be stateless");
                hit[s] = true;
            }
            assert!(hit.iter().all(|&h| h), "every shard owns some keys");
        }
    }

    #[test]
    fn hash_partitioning_balances_uniform_streams() {
        let shards = 4usize;
        let keys = random_keys(20_000, 0xD5A1_7E5D);
        let cfg = EngineConfig::new(shards).batch_size(64);
        let mut eng = ShardedEngine::start(cfg, |_| SparseRecovery::new(8, 1));
        for &k in &keys {
            eng.push(EdgeUpdate::new(k, 1));
        }
        let run = eng.finish();
        assert_eq!(run.total_updates, 20_000);
        assert_eq!(run.per_shard_updates.iter().sum::<u64>(), 20_000);
        // Hash-partitioning is skew-tolerant, not perfectly even: bound
        // the max/mean load ratio instead of asserting exact counts.
        let ratio = run.load_balance();
        assert!(
            (1.0..1.1).contains(&ratio),
            "uniform keys should balance within 10% of even, got {ratio}"
        );
        // Every update for a key must have landed on the owning shard:
        // counts must equal the routing function's own histogram.
        let mut expect = vec![0u64; shards];
        for &k in &keys {
            expect[shard_for(k, shards)] += 1;
        }
        assert_eq!(run.per_shard_updates, expect);
    }

    #[test]
    fn load_balance_reports_skew() {
        let run = EngineRun::<SparseRecovery> {
            shards: Vec::new(),
            per_shard_updates: vec![300, 100, 100, 100],
            total_updates: 600,
        };
        assert!((run.load_balance() - 2.0).abs() < 1e-12);
        let empty = EngineRun::<SparseRecovery> {
            shards: Vec::new(),
            per_shard_updates: vec![0, 0],
            total_updates: 0,
        };
        assert_eq!(empty.load_balance(), 1.0);
    }

    #[test]
    fn tail_batch_flushed_on_finish() {
        let cfg = EngineConfig::new(2).batch_size(1000); // never fills
        let mut eng = ShardedEngine::start(cfg, |_| SparseRecovery::new(8, 2));
        eng.push(EdgeUpdate::new(3, 7));
        let merged = eng.finish().merged().unwrap();
        assert_eq!(merged.decode().unwrap(), vec![(3, 7)]);
    }

    #[test]
    fn empty_run_yields_empty_sketch() {
        let cfg = EngineConfig::new(3);
        let eng = ShardedEngine::start(cfg, |_| SparseRecovery::new(8, 3));
        let run = eng.finish();
        assert_eq!(run.total_updates, 0);
        assert!(run.merged().unwrap().is_zero());
    }

    #[test]
    fn merge_tree_handles_all_sizes() {
        for k in 0usize..9 {
            let shards: Vec<SparseRecovery> = (0..k)
                .map(|i| {
                    let mut s = SparseRecovery::new(16, 9);
                    LinearSketch::update(&mut s, i as u64, 1);
                    s
                })
                .collect();
            match merge_tree(shards) {
                None => assert_eq!(k, 0),
                Some(m) => assert_eq!(m.decode().unwrap().len(), k),
            }
        }
    }

    #[test]
    fn snapshot_reduction_matches_in_memory() {
        let ups = updates(500);
        let cfg = EngineConfig::new(3).batch_size(32);
        let mut eng = ShardedEngine::start(cfg, |_| SparseRecovery::new(64, 11));
        eng.push_all(&ups);
        let run = eng.finish();
        let snaps = run.snapshots();
        let shipped: SparseRecovery = reduce_snapshots(&snaps).unwrap().unwrap();
        let direct = run.merged().unwrap();
        assert_eq!(shipped.to_bytes(), direct.to_bytes());
    }

    #[test]
    fn corrupted_snapshot_rejected() {
        let mut s = SparseRecovery::new(8, 13);
        LinearSketch::update(&mut s, 1, 1);
        let mut snap = s.snapshot();
        let last = snap.len() - 1;
        snap[last] ^= 0x55;
        let res: Result<Option<SparseRecovery>, _> = reduce_snapshots(&[snap]);
        assert!(res.is_err());
    }

    #[test]
    fn live_snapshot_freezes_prefix_and_ingest_continues() {
        let ups = updates(1000);
        let cfg = EngineConfig::new(3).batch_size(16);
        let mut eng = ShardedEngine::start(cfg, |_| SparseRecovery::new(64, 21));
        let cut = 600usize;
        eng.push_all(&ups[..cut]);
        let frozen = merge_tree(eng.snapshot_shards()).unwrap();
        // The snapshot must equal a direct sketch of exactly the prefix…
        let mut direct_prefix = SparseRecovery::new(64, 21);
        for up in &ups[..cut] {
            LinearSketch::update(&mut direct_prefix, up.key, up.delta);
        }
        assert_eq!(frozen.to_bytes(), direct_prefix.to_bytes());
        // …and the engine keeps ingesting afterwards, unaffected.
        eng.push_all(&ups[cut..]);
        let full = eng.finish().merged().unwrap();
        let mut direct_full = SparseRecovery::new(64, 21);
        for up in &ups {
            LinearSketch::update(&mut direct_full, up.key, up.delta);
        }
        assert_eq!(full.to_bytes(), direct_full.to_bytes());
    }

    #[test]
    fn repeated_snapshots_are_monotone_prefixes() {
        let ups = updates(300);
        let cfg = EngineConfig::new(2).batch_size(7);
        let mut eng = ShardedEngine::start(cfg, |_| SparseRecovery::new(64, 33));
        let mut direct = SparseRecovery::new(64, 33);
        for (i, up) in ups.iter().enumerate() {
            eng.push(*up);
            LinearSketch::update(&mut direct, up.key, up.delta);
            if (i + 1) % 100 == 0 {
                assert_eq!(eng.pushed(), (i + 1) as u64);
                let snap = merge_tree(eng.snapshot_shards()).unwrap();
                assert_eq!(snap.to_bytes(), direct.to_bytes(), "epoch at {}", i + 1);
            }
        }
        let run = eng.finish();
        assert_eq!(run.total_updates, 300);
    }

    #[test]
    fn snapshot_of_empty_engine_is_zero() {
        let cfg = EngineConfig::new(2);
        let mut eng = ShardedEngine::start(cfg, |_| SparseRecovery::new(8, 4));
        let snap = merge_tree(eng.snapshot_shards()).unwrap();
        assert!(snap.is_zero());
        eng.push(EdgeUpdate::new(5, 2));
        let merged = eng.finish().merged().unwrap();
        assert_eq!(merged.decode().unwrap(), vec![(5, 2)]);
    }

    #[test]
    #[should_panic(expected = "incompatible")]
    fn mismatched_shard_seeds_caught_at_merge() {
        let cfg = EngineConfig::new(2).batch_size(4);
        let mut eng = ShardedEngine::start(cfg, |shard| SparseRecovery::new(8, shard as u64));
        eng.push_all(&updates(10));
        let _ = eng.finish().merged();
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        EngineConfig::new(0);
    }

    #[test]
    fn restored_engine_resumes_bit_identically() {
        let ups = updates(900);
        let cut = 500usize;
        let cfg = EngineConfig::new(3).batch_size(17);
        // First life: ingest a prefix, then "crash" at a batch boundary by
        // finishing and keeping the per-shard states.
        let mut first = ShardedEngine::start(cfg, |_| SparseRecovery::new(64, 77));
        first.push_all(&ups[..cut]);
        let run = first.finish();
        assert_eq!(run.total_updates, cut as u64);
        // Second life: restore from the per-shard states and ingest the rest.
        let mut second = ShardedEngine::restore(cfg, run.shards, run.total_updates);
        assert_eq!(second.pushed(), cut as u64);
        second.push_all(&ups[cut..]);
        let merged = second.finish().merged().unwrap();
        let mut direct = SparseRecovery::new(64, 77);
        for up in &ups {
            LinearSketch::update(&mut direct, up.key, up.delta);
        }
        assert_eq!(merged.to_bytes(), direct.to_bytes());
    }

    #[test]
    #[should_panic(expected = "one sketch per shard")]
    fn restore_rejects_shard_count_mismatch() {
        let cfg = EngineConfig::new(3);
        let _ = ShardedEngine::restore(cfg, vec![SparseRecovery::new(8, 1)], 0);
    }

    #[test]
    fn drop_without_finish_joins_cleanly() {
        let cfg = EngineConfig::new(4).batch_size(8);
        let mut eng = ShardedEngine::start(cfg, |_| SparseRecovery::new(32, 9));
        eng.push_all(&updates(200));
        drop(eng); // must join all four workers, not detach them
    }

    #[test]
    fn auto_config_is_positive() {
        assert!(EngineConfig::auto().shards >= 1);
    }

    #[test]
    fn instrumented_engine_counts_routed_updates_and_batches() {
        let shards = 3usize;
        let reg = dsg_telemetry::MetricRegistry::new();
        let metrics = EngineMetrics {
            routed: (0..shards)
                .map(|s| reg.counter(&format!("routed_total{{shard=\"{s}\"}}")))
                .collect(),
            batches_sent: reg.counter("batches_total"),
            send_wait: reg.histogram("send_wait_nanos"),
            load_balance: reg.gauge("load_balance"),
            ..EngineMetrics::default()
        };
        let keys = random_keys(5000, 0xBEEF);
        let cfg = EngineConfig::new(shards).batch_size(64);
        let mut eng = ShardedEngine::start(cfg, |_| SparseRecovery::new(8, 1));
        eng.set_metrics(metrics);
        for &k in &keys {
            eng.push(EdgeUpdate::new(k, 1));
        }
        let run = eng.finish();
        // Every pushed update must be counted on its owning shard.
        let mut expect = vec![0u64; shards];
        for &k in &keys {
            expect[shard_for(k, shards)] += 1;
        }
        let snap = reg.snapshot();
        for (s, &want) in expect.iter().enumerate() {
            assert_eq!(
                snap.counter(&format!("routed_total{{shard=\"{s}\"}}")),
                Some(want),
                "shard {s} routed counter"
            );
        }
        let batches = snap.counter("batches_total").unwrap();
        assert!(batches >= (5000 / 64) as u64, "batches counted: {batches}");
        assert_eq!(
            snap.histogram("send_wait_nanos").unwrap().count(),
            batches,
            "one send-wait sample per dispatched batch"
        );
        let gauge = snap.gauge("load_balance").unwrap();
        assert!(
            (gauge - run.load_balance()).abs() < 1e-12,
            "final live gauge {gauge} must equal the run's ratio {}",
            run.load_balance()
        );
    }

    #[test]
    fn load_balance_ratio_is_shared_with_engine_run() {
        assert_eq!(load_balance_ratio(&[]), 1.0);
        assert_eq!(load_balance_ratio(&[0, 0]), 1.0);
        assert!((load_balance_ratio(&[300, 100, 100, 100]) - 2.0).abs() < 1e-12);
    }
}
