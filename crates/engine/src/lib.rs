//! # dsg-engine — sharded multi-threaded sketch ingest
//!
//! The paper's opening scenario has edge updates "distributed and
//! presented online … on multiple servers": because every sketch in this
//! workspace is *linear*, each server can sketch only its local share of
//! the stream and a coordinator merges the (small) sketches instead of
//! collecting the (large) streams. This crate is that scenario as a
//! subsystem:
//!
//! * [`ShardedEngine`] partitions an incoming update stream across `S`
//!   worker shards (`std::thread` + bounded channels), delivering updates
//!   in batches to amortize synchronization;
//! * any [`LinearSketch`] plugs in directly through the blanket
//!   [`EngineSketch`] impl — `AgmSketch`, `SparseRecovery`, `L0Sampler`,
//!   `DistinctEstimator`, … — while pass-structured algorithms (the
//!   two-pass spanner and KP12 sparsifier) plug in through hand-written
//!   `EngineSketch` wrappers in `dsg-core`;
//! * shard results flow back to the coordinator either in memory
//!   ([`EngineRun::merged`], a log-depth [`merge_tree`]) or as wire-format
//!   snapshots ([`EngineRun::snapshots`] → [`reduce_snapshots`]), the
//!   serialized path a real multi-server deployment would ship over the
//!   network.
//!
//! Correctness rests entirely on linearity: any K-way partition of a
//! stream, sketched under the same shared seed and merged in any order,
//! is bit-identical to one sketch of the whole stream. Property tests in
//! `tests/` and `tests/integration_engine.rs` at the workspace root pin
//! this down end to end (identical spanning forests, spanners, and
//! sparsifiers).
//!
//! ```
//! use dsg_engine::{EdgeUpdate, EngineConfig, ShardedEngine};
//! use dsg_sketch::{LinearSketch, SparseRecovery};
//!
//! let cfg = EngineConfig::new(4).batch_size(64);
//! let mut engine = ShardedEngine::start(cfg, |_shard| SparseRecovery::new(8, 42));
//! for key in 0..100u64 {
//!     engine.push(EdgeUpdate::new(key, 1));
//! }
//! for key in 0..97u64 {
//!     engine.push(EdgeUpdate::new(key, -1));
//! }
//! let merged = engine.finish().merged().unwrap();
//! assert_eq!(
//!     merged.decode().unwrap(),
//!     vec![(97, 1), (98, 1), (99, 1)],
//! );
//! ```

use dsg_sketch::{LinearSketch, WireError};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::thread::JoinHandle;

/// One signed update to the sketched vector: `x[key] += delta`.
///
/// For graph streams, `key` is the edge coordinate under
/// `dsg_graph::pair_to_index` and `delta` is `±1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeUpdate {
    /// The updated coordinate.
    pub key: u64,
    /// The signed change.
    pub delta: i128,
}

impl EdgeUpdate {
    /// Creates an update.
    pub fn new(key: u64, delta: i128) -> Self {
        Self { key, delta }
    }
}

/// Shape of a sharded ingest run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Number of worker shards (threads).
    pub shards: usize,
    /// Updates per batch handed to a shard. Larger batches amortize
    /// channel synchronization; smaller batches reduce latency and peak
    /// buffering. 256 is a good default for µs-scale sketch updates.
    pub batch_size: usize,
    /// Bounded channel depth per shard, in batches (backpressure: a
    /// producer that outruns every shard blocks instead of buffering
    /// unboundedly).
    pub queue_depth: usize,
}

impl EngineConfig {
    /// A config with `shards` workers and default batching.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn new(shards: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        Self {
            shards,
            batch_size: 256,
            queue_depth: 4,
        }
    }

    /// A config sized to the machine (one shard per available core).
    pub fn auto() -> Self {
        let shards = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self::new(shards)
    }

    /// Overrides the batch size.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0`.
    pub fn batch_size(mut self, batch_size: usize) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        self.batch_size = batch_size;
        self
    }

    /// Overrides the per-shard queue depth (in batches).
    ///
    /// # Panics
    ///
    /// Panics if `queue_depth == 0`.
    pub fn queue_depth(mut self, queue_depth: usize) -> Self {
        assert!(queue_depth > 0, "queue depth must be positive");
        self.queue_depth = queue_depth;
        self
    }
}

/// What a shard worker must be able to do: ingest update batches, be
/// folded into a coordinator-side reduction, and fork a consistent copy
/// of its state for live snapshots.
///
/// Every [`LinearSketch`] gets this for free via the blanket impl.
/// Pass-structured stream algorithms whose *per-pass* state is linear but
/// whose whole object is not a `LinearSketch` (the two-pass spanner, the
/// KP12 sparsifier pipeline) implement it directly on a wrapper — see
/// `dsg_core::engine`.
pub trait EngineSketch: Send + 'static {
    /// Ingests a batch of updates.
    fn apply_batch(&mut self, batch: &[EdgeUpdate]);

    /// Folds another shard's result into `self` (linearity: the result
    /// sketches the union of both sub-streams).
    fn absorb(&mut self, other: Self);

    /// A consistent copy of this shard's current state, taken between
    /// batches. This is what an epoch snapshot collects while the worker
    /// keeps ingesting — see [`ShardedEngine::snapshot_shards`].
    fn fork(&self) -> Self;
}

impl<S: LinearSketch + Clone + Send + 'static> EngineSketch for S {
    fn apply_batch(&mut self, batch: &[EdgeUpdate]) {
        for up in batch {
            self.update(up.key, up.delta);
        }
    }

    fn absorb(&mut self, other: Self) {
        self.merge(&other);
    }

    fn fork(&self) -> Self {
        self.clone()
    }
}

/// A message to a shard worker: either a batch of updates or a request to
/// ship back a fork of the shard's current state. Channel FIFO order makes
/// snapshots consistent: a fork reflects exactly the batches sent before
/// the request, never a torn prefix of one.
enum ShardMsg<S> {
    Batch(Vec<EdgeUpdate>),
    Snapshot(SyncSender<S>),
}

/// A running sharded ingest: `S` worker threads, each owning one sketch,
/// fed round-robin with batches of updates.
///
/// Round-robin batch routing balances load regardless of key skew — for a
/// linear sketch *any* partition of the stream merges to the same state,
/// so the router optimizes for balance, not locality.
#[derive(Debug)]
pub struct ShardedEngine<S: EngineSketch> {
    senders: Vec<SyncSender<ShardMsg<S>>>,
    workers: Vec<JoinHandle<(S, u64)>>,
    buffer: Vec<EdgeUpdate>,
    batch_size: usize,
    next_shard: usize,
    pushed: u64,
}

/// The completed result of a sharded ingest.
#[derive(Debug)]
pub struct EngineRun<S> {
    /// One sketch per shard, in shard order.
    pub shards: Vec<S>,
    /// Updates each shard ingested (for load-balance diagnostics).
    pub per_shard_updates: Vec<u64>,
    /// Total updates pushed through the engine.
    pub total_updates: u64,
}

impl<S: EngineSketch> EngineRun<S> {
    /// Reduces the shard sketches to one via [`merge_tree`].
    pub fn merged(self) -> Option<S> {
        merge_tree(self.shards)
    }
}

impl<S: LinearSketch + Send + 'static> EngineRun<S> {
    /// Serializes every shard sketch into its wire snapshot — what each
    /// server ships to the coordinator in the distributed deployment.
    pub fn snapshots(&self) -> Vec<Vec<u8>> {
        self.shards.iter().map(|s| s.snapshot()).collect()
    }
}

impl<S: EngineSketch> ShardedEngine<S> {
    /// Spawns the shard workers. `make_shard(i)` builds shard `i`'s sketch
    /// on the caller's thread — all shards must be built from the same
    /// shared seed/parameters or the final merge will (correctly) panic.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread cannot be spawned.
    pub fn start<F: FnMut(usize) -> S>(cfg: EngineConfig, mut make_shard: F) -> Self {
        let sketches: Vec<S> = (0..cfg.shards).map(&mut make_shard).collect();
        Self::spawn(cfg, sketches, 0)
    }

    /// Spawns the shard workers from **pre-existing** shard states — the
    /// recovery path of a durability layer: a checkpoint stores every
    /// shard's sketch (`LinearSketch::to_bytes` frames), and `restore`
    /// resumes ingest exactly where the checkpoint froze it. By linearity
    /// the restored engine is indistinguishable from one that ingested the
    /// whole stream uninterrupted.
    ///
    /// `already_pushed` seeds the [`pushed`](ShardedEngine::pushed)
    /// counter so stream positions keep counting from the true start of
    /// the stream, not from the restart.
    ///
    /// # Panics
    ///
    /// Panics if `sketches.len() != cfg.shards`, or if a worker thread
    /// cannot be spawned.
    pub fn restore(cfg: EngineConfig, sketches: Vec<S>, already_pushed: u64) -> Self {
        assert_eq!(
            sketches.len(),
            cfg.shards,
            "restore requires one sketch per shard"
        );
        Self::spawn(cfg, sketches, already_pushed)
    }

    /// Shared worker-spawning plumbing behind [`start`](ShardedEngine::start)
    /// and [`restore`](ShardedEngine::restore).
    fn spawn(cfg: EngineConfig, sketches: Vec<S>, already_pushed: u64) -> Self {
        assert!(cfg.shards > 0, "need at least one shard");
        assert!(cfg.batch_size > 0, "batch size must be positive");
        assert_eq!(sketches.len(), cfg.shards, "one sketch per shard");
        let mut senders = Vec::with_capacity(cfg.shards);
        let mut workers = Vec::with_capacity(cfg.shards);
        for (shard, mut sketch) in sketches.into_iter().enumerate() {
            let (tx, rx): (_, Receiver<ShardMsg<S>>) = sync_channel(cfg.queue_depth.max(1));
            let handle = std::thread::Builder::new()
                .name(format!("dsg-engine-shard-{shard}"))
                .spawn(move || {
                    let mut applied = 0u64;
                    while let Ok(msg) = rx.recv() {
                        match msg {
                            ShardMsg::Batch(batch) => {
                                applied += batch.len() as u64;
                                sketch.apply_batch(&batch);
                            }
                            // A dropped reply receiver just means the
                            // coordinator gave up on the snapshot; the
                            // worker keeps ingesting either way.
                            ShardMsg::Snapshot(reply) => {
                                let _ = reply.send(sketch.fork());
                            }
                        }
                    }
                    (sketch, applied)
                })
                .expect("failed to spawn engine shard");
            senders.push(tx);
            workers.push(handle);
        }
        Self {
            senders,
            workers,
            buffer: Vec::with_capacity(cfg.batch_size),
            batch_size: cfg.batch_size,
            next_shard: 0,
            pushed: already_pushed,
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.senders.len()
    }

    /// Total updates pushed so far (including any still buffered).
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    /// Takes a consistent snapshot of every shard **without** tearing the
    /// workers down: flushes the buffered tail batch, asks each worker to
    /// fork its state between batches, and returns the forks in shard
    /// order. Every update pushed before this call is reflected in the
    /// forks; none pushed after is — per-channel FIFO delivery is the
    /// whole synchronization story. Ingest can continue immediately.
    ///
    /// This is the epoch-advance primitive of the serving layer: reduce
    /// the forks with [`merge_tree`] (or serialize them and go through
    /// [`reduce_snapshots`]) to get the coordinator sketch frozen at this
    /// stream position.
    ///
    /// # Panics
    ///
    /// Panics if a shard worker has hung up (i.e. panicked).
    pub fn snapshot_shards(&mut self) -> Vec<S> {
        self.dispatch();
        let replies: Vec<Receiver<S>> = self
            .senders
            .iter()
            .map(|tx| {
                let (rtx, rrx) = sync_channel(1);
                tx.send(ShardMsg::Snapshot(rtx))
                    .expect("engine shard hung up early");
                rrx
            })
            .collect();
        replies
            .into_iter()
            .map(|rx| rx.recv().expect("engine shard dropped snapshot request"))
            .collect()
    }

    /// Enqueues one update (delivered when the current batch fills or at
    /// [`finish`](ShardedEngine::finish)).
    pub fn push(&mut self, update: EdgeUpdate) {
        self.pushed += 1;
        self.buffer.push(update);
        if self.buffer.len() >= self.batch_size {
            self.dispatch();
        }
    }

    /// Enqueues a slice of updates.
    pub fn push_all(&mut self, updates: &[EdgeUpdate]) {
        for &up in updates {
            self.push(up);
        }
    }

    /// Sends the buffered batch to the next shard (round-robin).
    fn dispatch(&mut self) {
        if self.buffer.is_empty() {
            return;
        }
        let batch = std::mem::replace(&mut self.buffer, Vec::with_capacity(self.batch_size));
        self.senders[self.next_shard]
            .send(ShardMsg::Batch(batch))
            .expect("engine shard hung up early");
        self.next_shard = (self.next_shard + 1) % self.senders.len();
    }

    /// Flushes the tail batch, closes the channels, joins every worker,
    /// and returns the per-shard sketches.
    ///
    /// # Panics
    ///
    /// Propagates a panic from any shard worker.
    pub fn finish(mut self) -> EngineRun<S> {
        self.dispatch();
        // Take the channels and handles out so the Drop impl (which joins
        // whatever is left) sees an already-shut-down engine.
        drop(std::mem::take(&mut self.senders));
        let workers = std::mem::take(&mut self.workers);
        let mut shards = Vec::with_capacity(workers.len());
        let mut per_shard_updates = Vec::with_capacity(workers.len());
        for handle in workers {
            let (sketch, applied) = handle.join().expect("engine shard panicked");
            shards.push(sketch);
            per_shard_updates.push(applied);
        }
        EngineRun {
            shards,
            per_shard_updates,
            total_updates: self.pushed,
        }
    }
}

/// Dropping an engine without [`finish`](ShardedEngine::finish) still
/// shuts it down **deterministically**: the channels close and every
/// worker thread is joined (not detached), so no shard thread outlives
/// its engine — a durability layer can flush and delete files right after
/// the drop without racing a straggler. The buffered tail batch is
/// discarded (only `finish` promises delivery); a worker that panicked is
/// ignored here because propagating from `drop` would abort.
impl<S: EngineSketch> Drop for ShardedEngine<S> {
    fn drop(&mut self) {
        self.senders.clear(); // hang up: workers drain their queue and exit
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Log-depth pairwise reduction of shard results — the coordinator's
/// merge tree. Returns `None` for an empty input.
pub fn merge_tree<S: EngineSketch>(mut shards: Vec<S>) -> Option<S> {
    while shards.len() > 1 {
        let mut next = Vec::with_capacity(shards.len().div_ceil(2));
        let mut it = shards.into_iter();
        while let Some(mut a) = it.next() {
            if let Some(b) = it.next() {
                a.absorb(b);
            }
            next.push(a);
        }
        shards = next;
    }
    shards.pop()
}

/// Decodes wire snapshots (one per shard) and merge-tree-reduces them —
/// the coordinator side of the shipped-snapshot protocol.
///
/// # Errors
///
/// The first [`WireError`] hit while decoding a snapshot.
pub fn reduce_snapshots<S: LinearSketch + Clone + Send + 'static>(
    snapshots: &[Vec<u8>],
) -> Result<Option<S>, WireError> {
    let decoded = snapshots
        .iter()
        .map(|b| S::from_bytes(b))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(merge_tree(decoded))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsg_sketch::SparseRecovery;

    fn updates(n: u64) -> Vec<EdgeUpdate> {
        (0..n).map(|i| EdgeUpdate::new(i % 37, 1)).collect()
    }

    #[test]
    fn sharded_ingest_equals_direct() {
        for shards in [1usize, 2, 4, 7] {
            let ups = updates(1000);
            let mut direct = SparseRecovery::new(64, 5);
            for up in &ups {
                LinearSketch::update(&mut direct, up.key, up.delta);
            }
            let cfg = EngineConfig::new(shards).batch_size(13);
            let mut eng = ShardedEngine::start(cfg, |_| SparseRecovery::new(64, 5));
            eng.push_all(&ups);
            let merged = eng.finish().merged().unwrap();
            assert_eq!(merged.to_bytes(), direct.to_bytes(), "shards={shards}");
        }
    }

    #[test]
    fn per_shard_counts_are_balanced() {
        let cfg = EngineConfig::new(4).batch_size(10);
        let mut eng = ShardedEngine::start(cfg, |_| SparseRecovery::new(8, 1));
        eng.push_all(&updates(400));
        let run = eng.finish();
        assert_eq!(run.total_updates, 400);
        assert_eq!(run.per_shard_updates.iter().sum::<u64>(), 400);
        for &c in &run.per_shard_updates {
            assert_eq!(c, 100, "round-robin batches must balance evenly");
        }
    }

    #[test]
    fn tail_batch_flushed_on_finish() {
        let cfg = EngineConfig::new(2).batch_size(1000); // never fills
        let mut eng = ShardedEngine::start(cfg, |_| SparseRecovery::new(8, 2));
        eng.push(EdgeUpdate::new(3, 7));
        let merged = eng.finish().merged().unwrap();
        assert_eq!(merged.decode().unwrap(), vec![(3, 7)]);
    }

    #[test]
    fn empty_run_yields_empty_sketch() {
        let cfg = EngineConfig::new(3);
        let eng = ShardedEngine::start(cfg, |_| SparseRecovery::new(8, 3));
        let run = eng.finish();
        assert_eq!(run.total_updates, 0);
        assert!(run.merged().unwrap().is_zero());
    }

    #[test]
    fn merge_tree_handles_all_sizes() {
        for k in 0usize..9 {
            let shards: Vec<SparseRecovery> = (0..k)
                .map(|i| {
                    let mut s = SparseRecovery::new(16, 9);
                    LinearSketch::update(&mut s, i as u64, 1);
                    s
                })
                .collect();
            match merge_tree(shards) {
                None => assert_eq!(k, 0),
                Some(m) => assert_eq!(m.decode().unwrap().len(), k),
            }
        }
    }

    #[test]
    fn snapshot_reduction_matches_in_memory() {
        let ups = updates(500);
        let cfg = EngineConfig::new(3).batch_size(32);
        let mut eng = ShardedEngine::start(cfg, |_| SparseRecovery::new(64, 11));
        eng.push_all(&ups);
        let run = eng.finish();
        let snaps = run.snapshots();
        let shipped: SparseRecovery = reduce_snapshots(&snaps).unwrap().unwrap();
        let direct = run.merged().unwrap();
        assert_eq!(shipped.to_bytes(), direct.to_bytes());
    }

    #[test]
    fn corrupted_snapshot_rejected() {
        let mut s = SparseRecovery::new(8, 13);
        LinearSketch::update(&mut s, 1, 1);
        let mut snap = s.snapshot();
        let last = snap.len() - 1;
        snap[last] ^= 0x55;
        let res: Result<Option<SparseRecovery>, _> = reduce_snapshots(&[snap]);
        assert!(res.is_err());
    }

    #[test]
    fn live_snapshot_freezes_prefix_and_ingest_continues() {
        let ups = updates(1000);
        let cfg = EngineConfig::new(3).batch_size(16);
        let mut eng = ShardedEngine::start(cfg, |_| SparseRecovery::new(64, 21));
        let cut = 600usize;
        eng.push_all(&ups[..cut]);
        let frozen = merge_tree(eng.snapshot_shards()).unwrap();
        // The snapshot must equal a direct sketch of exactly the prefix…
        let mut direct_prefix = SparseRecovery::new(64, 21);
        for up in &ups[..cut] {
            LinearSketch::update(&mut direct_prefix, up.key, up.delta);
        }
        assert_eq!(frozen.to_bytes(), direct_prefix.to_bytes());
        // …and the engine keeps ingesting afterwards, unaffected.
        eng.push_all(&ups[cut..]);
        let full = eng.finish().merged().unwrap();
        let mut direct_full = SparseRecovery::new(64, 21);
        for up in &ups {
            LinearSketch::update(&mut direct_full, up.key, up.delta);
        }
        assert_eq!(full.to_bytes(), direct_full.to_bytes());
    }

    #[test]
    fn repeated_snapshots_are_monotone_prefixes() {
        let ups = updates(300);
        let cfg = EngineConfig::new(2).batch_size(7);
        let mut eng = ShardedEngine::start(cfg, |_| SparseRecovery::new(64, 33));
        let mut direct = SparseRecovery::new(64, 33);
        for (i, up) in ups.iter().enumerate() {
            eng.push(*up);
            LinearSketch::update(&mut direct, up.key, up.delta);
            if (i + 1) % 100 == 0 {
                assert_eq!(eng.pushed(), (i + 1) as u64);
                let snap = merge_tree(eng.snapshot_shards()).unwrap();
                assert_eq!(snap.to_bytes(), direct.to_bytes(), "epoch at {}", i + 1);
            }
        }
        let run = eng.finish();
        assert_eq!(run.total_updates, 300);
    }

    #[test]
    fn snapshot_of_empty_engine_is_zero() {
        let cfg = EngineConfig::new(2);
        let mut eng = ShardedEngine::start(cfg, |_| SparseRecovery::new(8, 4));
        let snap = merge_tree(eng.snapshot_shards()).unwrap();
        assert!(snap.is_zero());
        eng.push(EdgeUpdate::new(5, 2));
        let merged = eng.finish().merged().unwrap();
        assert_eq!(merged.decode().unwrap(), vec![(5, 2)]);
    }

    #[test]
    #[should_panic(expected = "incompatible")]
    fn mismatched_shard_seeds_caught_at_merge() {
        let cfg = EngineConfig::new(2).batch_size(4);
        let mut eng = ShardedEngine::start(cfg, |shard| SparseRecovery::new(8, shard as u64));
        eng.push_all(&updates(10));
        let _ = eng.finish().merged();
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        EngineConfig::new(0);
    }

    #[test]
    fn restored_engine_resumes_bit_identically() {
        let ups = updates(900);
        let cut = 500usize;
        let cfg = EngineConfig::new(3).batch_size(17);
        // First life: ingest a prefix, then "crash" at a batch boundary by
        // finishing and keeping the per-shard states.
        let mut first = ShardedEngine::start(cfg, |_| SparseRecovery::new(64, 77));
        first.push_all(&ups[..cut]);
        let run = first.finish();
        assert_eq!(run.total_updates, cut as u64);
        // Second life: restore from the per-shard states and ingest the rest.
        let mut second = ShardedEngine::restore(cfg, run.shards, run.total_updates);
        assert_eq!(second.pushed(), cut as u64);
        second.push_all(&ups[cut..]);
        let merged = second.finish().merged().unwrap();
        let mut direct = SparseRecovery::new(64, 77);
        for up in &ups {
            LinearSketch::update(&mut direct, up.key, up.delta);
        }
        assert_eq!(merged.to_bytes(), direct.to_bytes());
    }

    #[test]
    #[should_panic(expected = "one sketch per shard")]
    fn restore_rejects_shard_count_mismatch() {
        let cfg = EngineConfig::new(3);
        let _ = ShardedEngine::restore(cfg, vec![SparseRecovery::new(8, 1)], 0);
    }

    #[test]
    fn drop_without_finish_joins_cleanly() {
        let cfg = EngineConfig::new(4).batch_size(8);
        let mut eng = ShardedEngine::start(cfg, |_| SparseRecovery::new(32, 9));
        eng.push_all(&updates(200));
        drop(eng); // must join all four workers, not detach them
    }

    #[test]
    fn auto_config_is_positive() {
        assert!(EngineConfig::auto().shards >= 1);
    }
}
