//! Routing-invariance property tests for the edge-partitioned engine.
//!
//! The engine routes every update to `shard_for(key) % S`. By linearity
//! that choice is unobservable in the answer: for **every**
//! `LinearSketch` implementor, under churn-heavy permuted streams, the
//! hash-partitioned engine, a manual round-robin split, and one
//! single-threaded sketch of the whole stream must produce bit-identical
//! canonical wire bytes. On top of invariance, the suite pins the
//! partition itself: engine shard `i` must hold a sketch of *exactly*
//! the sub-stream of keys it owns — that locality is what makes churn
//! cancel in place.

use dsg_agm::AgmSketch;
use dsg_engine::{shard_for, EdgeUpdate, EngineConfig, ShardedEngine};
use dsg_sketch::{
    CountSketch, DistinctEstimator, GuardedSketch, L0Sampler, LinearHashTable, LinearSketch,
    SparseRecovery, VectorFingerprint,
};
use proptest::prelude::*;

/// A small universe keeps collision and cancellation cases interesting.
fn updates() -> impl Strategy<Value = Vec<(u64, i64)>> {
    prop::collection::vec((0u64..64, -3i64..=3), 0..30)
}

/// Amplifies a stream with `churn` rounds of insert-then-delete per key
/// (net zero, so the final state is untouched but the history grows) and
/// permutes the result with a seeded Fisher–Yates shuffle. Two calls with
/// different `perm_seed`s are reorderings of the same multiset of
/// updates.
fn churned_permutation(base: &[(u64, i64)], churn: usize, perm_seed: u64) -> Vec<(u64, i64)> {
    let mut stream: Vec<(u64, i64)> = base.to_vec();
    for _ in 0..churn {
        for &(key, _) in base {
            stream.push((key, 1));
            stream.push((key, -1));
        }
    }
    let mut state = perm_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    for i in (1..stream.len()).rev() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (state >> 16) as usize % (i + 1);
        stream.swap(i, j);
    }
    stream
}

/// The three-way routing invariance check for one sketch type:
/// hash-partitioned engine ≡ manual round-robin split ≡ single sketch,
/// all as canonical bytes — plus per-shard locality against `shard_for`.
fn check_routing_invariance<S, F>(make: F, stream: &[(u64, i64)], k: usize)
where
    S: LinearSketch + Clone + Send + 'static,
    F: Fn() -> S,
{
    // Ground truth: one sketch of the whole stream, single-threaded.
    let mut direct = make();
    for &(key, delta) in stream {
        direct.update(key, delta as i128);
    }

    // Round-robin split: update i lands on sketch i % k. This was the
    // engine's old routing policy; linearity keeps it a valid partition.
    let mut rr: Vec<S> = (0..k).map(|_| make()).collect();
    for (i, &(key, delta)) in stream.iter().enumerate() {
        rr[i % k].update(key, delta as i128);
    }
    let mut rr_merged = rr.remove(0);
    for s in &rr {
        rr_merged.merge(s);
    }
    assert_eq!(
        rr_merged.to_bytes(),
        direct.to_bytes(),
        "round-robin split diverged from single sketch"
    );

    // Hash-partitioned engine: the real worker threads, small batches so
    // routing crosses many dispatch boundaries.
    let cfg = EngineConfig::new(k).batch_size(7);
    let mut engine = ShardedEngine::start(cfg, |_| make());
    for &(key, delta) in stream {
        engine.push(EdgeUpdate::new(key, delta as i128));
    }
    let run = engine.finish();

    // Locality: shard i's state must equal a sketch of exactly the keys
    // it owns under `shard_for` — not just merge to the right total.
    for (i, shard) in run.shards.iter().enumerate() {
        let mut owned = make();
        for &(key, delta) in stream {
            if shard_for(key, k) == i {
                owned.update(key, delta as i128);
            }
        }
        assert_eq!(
            shard.to_bytes(),
            owned.to_bytes(),
            "shard {i} does not hold exactly its owned sub-stream"
        );
    }

    let merged = run.merged().expect("k >= 1 shards");
    assert_eq!(
        merged.to_bytes(),
        direct.to_bytes(),
        "hash-partitioned engine diverged from single sketch"
    );
}

macro_rules! routing_properties {
    ($name:ident, $make:expr) => {
        proptest! {
            #[test]
            fn $name(
                xs in updates(),
                churn in 0usize..3,
                perm_seed in 0u64..1000,
                k in 1usize..=4,
                seed in 0u64..200,
            ) {
                let make = $make;
                let stream = churned_permutation(&xs, churn, perm_seed);
                check_routing_invariance(|| make(seed), &stream, k);
            }
        }
    };
}

routing_properties!(sparse_recovery_routing_invariant, |seed| {
    SparseRecovery::new(16, seed)
});
routing_properties!(l0_sampler_routing_invariant, |seed| L0Sampler::new(6, seed));
routing_properties!(distinct_routing_invariant, |seed| DistinctEstimator::new(
    6, 0.5, 3, seed
));
routing_properties!(hashtable_routing_invariant, |seed| LinearHashTable::new(
    32, 2, seed
));
routing_properties!(countsketch_routing_invariant, |seed| CountSketch::new(
    3, 32, seed
));
routing_properties!(guarded_routing_invariant, |seed| GuardedSketch::new(
    8, 6, seed
));
routing_properties!(fingerprint_routing_invariant, |seed| {
    VectorFingerprint::new(seed)
});
routing_properties!(agm_routing_invariant, |seed| AgmSketch::new(16, seed));
