//! Micro-benchmarks for the sketching substrate: per-update costs and
//! decode latency — the "efficiently updatable" claim of linear sketching.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsg_sketch::{DistinctEstimator, L0Sampler, LinearHashTable, SparseRecovery};
use std::hint::black_box;

fn bench_sparse_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("sparse_recovery");
    for budget in [8usize, 32, 128] {
        group.bench_with_input(BenchmarkId::new("update", budget), &budget, |b, &budget| {
            let mut sk = SparseRecovery::new(budget, 42);
            let mut i = 0u64;
            b.iter(|| {
                i = i.wrapping_add(1);
                sk.update(black_box(i % 100_000), 1);
            });
        });
        group.bench_with_input(
            BenchmarkId::new("decode_at_budget", budget),
            &budget,
            |b, &budget| {
                let mut sk = SparseRecovery::new(budget, 43);
                for i in 0..budget as u64 {
                    sk.update(i * 7919, 1);
                }
                b.iter(|| black_box(sk.decode().unwrap()));
            },
        );
    }
    group.finish();
}

fn bench_l0_sampler(c: &mut Criterion) {
    let mut group = c.benchmark_group("l0_sampler");
    group.bench_function("update_20bit_universe", |b| {
        let mut s = L0Sampler::new(20, 1);
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            s.update(black_box(i % (1 << 20)), 1);
        });
    });
    group.bench_function("sample_10k_support", |b| {
        let mut s = L0Sampler::new(20, 2);
        for i in 0..10_000u64 {
            s.update(i * 3, 1);
        }
        b.iter(|| black_box(s.sample().unwrap()));
    });
    group.finish();
}

fn bench_hashtable(c: &mut Criterion) {
    let mut group = c.benchmark_group("linear_hashtable");
    group.bench_function("update_width3", |b| {
        let mut t = LinearHashTable::new(256, 3, 3);
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            t.update(black_box(i % 1000), &[1, 2, 3]);
        });
    });
    group.bench_function("decode_128_keys", |b| {
        let mut t = LinearHashTable::new(256, 3, 4);
        for i in 0..128u64 {
            t.update(i, &[i as i128, 1, 2]);
        }
        b.iter(|| black_box(t.decode().unwrap()));
    });
    group.finish();
}

fn bench_distinct(c: &mut Criterion) {
    c.bench_function("distinct_update", |b| {
        let mut d = DistinctEstimator::new(20, 0.5, 5, 5);
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            d.update(black_box(i % (1 << 20)), 1);
        });
    });
}

criterion_group!(
    benches,
    bench_sparse_recovery,
    bench_l0_sampler,
    bench_hashtable,
    bench_distinct
);
criterion_main!(benches);
