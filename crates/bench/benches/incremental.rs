//! Patch-vs-rebuild microbenchmarks for the incremental epoch artifacts
//! (E26's criterion counterpart): for each artifact — spanning forest,
//! distance oracle, KP12 cut data — one tenant whose `churn_threshold`
//! always admits the O(changes) patch against one that always rebuilds
//! from the sealed segment, at 1%, 10%, and 50% churn per epoch.
//!
//! Both paths produce bit-identical artifacts (the property suites in
//! `dsg-spanner`, `dsg-sparsifier`, and `crates/service/tests/net_props.rs`
//! pin that down); these benches measure only the refresh latency gap the
//! threshold trades on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsg_graph::{gen, Edge, Graph, GraphStream, StreamUpdate, Vertex};
use dsg_service::{EpochSnapshot, GraphConfig, GraphRegistry};
use std::hint::black_box;

/// `k` deterministic non-edges of `g`, toggled on/off between epochs so
/// every iteration's segment diff holds exactly `k` changes.
fn toggle_edges(g: &Graph, k: usize) -> Vec<Edge> {
    let n = g.num_vertices();
    let mut out = Vec::with_capacity(k);
    'hunt: for u in 0..n as Vertex {
        for v in (u + 1)..n as Vertex {
            if !g.has_edge(u, v) {
                out.push(Edge::new(u, v));
                if out.len() >= k {
                    break 'hunt;
                }
            }
        }
    }
    out
}

/// One artifact's patch-vs-rebuild pair across churn levels. Each bench
/// iteration applies the toggle batch, seals an epoch, and builds just
/// the artifact under test; `threshold` decides which refresh path the
/// epoch builder takes.
fn bench_artifact(c: &mut Criterion, name: &str, n: usize, p: f64, build: fn(&EpochSnapshot)) {
    let g = gen::erdos_renyi(n, p, 31);
    let live = g.num_edges();
    let mut group = c.benchmark_group(name);
    group.sample_size(10);
    for frac in [0.01f64, 0.10, 0.50] {
        let toggles = toggle_edges(&g, ((live as f64 * frac) as usize).max(1));
        for (mode, threshold) in [("patch", 1.0e6), ("rebuild", 0.0)] {
            let id = BenchmarkId::new(mode, format!("churn_{:.0}pct", frac * 100.0));
            group.bench_with_input(id, &threshold, |b, &threshold| {
                let registry = GraphRegistry::new();
                let config = GraphConfig::new(n).seed(7).churn_threshold(threshold);
                let tenant = registry.create("t", config).expect("fresh registry");
                tenant
                    .apply(GraphStream::insert_only(&g, 32).updates())
                    .expect("valid stream");
                build(&tenant.advance_epoch());
                let mut on = false;
                b.iter(|| {
                    let batch: Vec<StreamUpdate> = toggles
                        .iter()
                        .map(|e| {
                            if on {
                                StreamUpdate::delete(e.u(), e.v())
                            } else {
                                StreamUpdate::insert(e.u(), e.v())
                            }
                        })
                        .collect();
                    on = !on;
                    tenant.apply(&batch).expect("valid batch");
                    build(black_box(&tenant.advance_epoch()));
                });
            });
        }
    }
    group.finish();
}

fn bench_forest(c: &mut Criterion) {
    bench_artifact(c, "incremental_forest", 160, 0.05, |snap| {
        black_box(snap.forest());
    });
}

fn bench_oracle(c: &mut Criterion) {
    bench_artifact(c, "incremental_oracle", 160, 0.05, |snap| {
        black_box(snap.oracle());
    });
}

fn bench_cut(c: &mut Criterion) {
    // KP12 is the heavy artifact: keep the graph small so the rebuild
    // side stays benchable.
    bench_artifact(c, "incremental_cut", 48, 0.15, |snap| {
        black_box(snap.cut_data());
    });
}

criterion_group!(benches, bench_forest, bench_oracle, bench_cut);
criterion_main!(benches);
