//! Benchmarks for the two-pass spanner (Theorem 1): stream-update
//! throughput and whole-pipeline latency.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsg_graph::{gen, GraphStream, StreamAlgorithm};
use dsg_spanner::{twopass, SpannerParams, TwoPassSpanner};
use std::hint::black_box;

fn bench_pass1_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("twopass_pass1_update");
    for n in [128usize, 512] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let g = gen::erdos_renyi(n, 8.0 / n as f64, 3);
            let stream = GraphStream::insert_only(&g, 4);
            let mut alg = TwoPassSpanner::new(n, SpannerParams::new(2, 5));
            alg.begin_pass(0);
            let updates = stream.updates();
            let mut i = 0usize;
            b.iter(|| {
                alg.process(black_box(&updates[i % updates.len()]));
                i += 1;
            });
        });
    }
    group.finish();
}

fn bench_full_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("twopass_full");
    group.sample_size(10);
    for (n, k) in [(96usize, 2usize), (192, 2), (96, 3)] {
        group.bench_with_input(
            BenchmarkId::new(format!("k{k}"), n),
            &(n, k),
            |b, &(n, k)| {
                let g = gen::erdos_renyi(n, 10.0 / n as f64, 6);
                let stream = GraphStream::with_churn(&g, 1.0, 7);
                b.iter(|| black_box(twopass::run_two_pass(&stream, SpannerParams::new(k, 8))));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_pass1_update, bench_full_run);
criterion_main!(benches);
