//! Engine benchmarks: sharded AGM ingest throughput vs shard count, and
//! the coordinator-side costs (merge tree, wire snapshot roundtrip).
//!
//! The shard sweep is the headline: on a multi-core host, S=4 ingest
//! finishes a fixed update batch strictly faster than S=1 because the
//! per-update sketch work (a few µs for AGM) dominates the per-batch
//! channel handoff. On a single-core host the sweep degenerates to
//! thread-scheduling overhead — the reported host parallelism makes the
//! context explicit.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsg_agm::AgmSketch;
use dsg_engine::{merge_tree, EdgeUpdate, EngineConfig, ShardedEngine};
use dsg_graph::{gen, GraphStream};
use dsg_sketch::LinearSketch;
use std::hint::black_box;

fn agm_updates(n: usize) -> Vec<EdgeUpdate> {
    let g = gen::erdos_renyi(n, 0.05, 7);
    let stream = GraphStream::with_churn(&g, 1.0, 8);
    stream
        .updates()
        .iter()
        .map(|up| EdgeUpdate::new(up.edge.index(n), up.delta as i128))
        .collect()
}

fn bench_shard_sweep(c: &mut Criterion) {
    let n = 200;
    let updates = agm_updates(n);
    eprintln!(
        "engine/agm_ingest: {} updates, host parallelism {}",
        updates.len(),
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1),
    );
    let mut group = c.benchmark_group("engine");
    group.sample_size(10);
    for shards in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("agm_ingest", shards),
            &shards,
            |b, &shards| {
                b.iter(|| {
                    let cfg = EngineConfig::new(shards).batch_size(256);
                    let mut eng = ShardedEngine::start(cfg, |_| AgmSketch::new(n, 42));
                    eng.push_all(black_box(&updates));
                    black_box(eng.finish().merged().unwrap())
                });
            },
        );
    }
    group.finish();
}

fn bench_coordinator(c: &mut Criterion) {
    let n = 200;
    let updates = agm_updates(n);
    // Pre-ingest four shard sketches once; benches measure coordination.
    let make_shards = || -> Vec<AgmSketch> {
        let cfg = EngineConfig::new(4).batch_size(256);
        let mut eng = ShardedEngine::start(cfg, |_| AgmSketch::new(n, 42));
        eng.push_all(&updates);
        eng.finish().shards
    };
    let shards = make_shards();
    let mut group = c.benchmark_group("engine");
    group.sample_size(10);
    group.bench_function("merge_tree_4_shards", |b| {
        b.iter(|| black_box(merge_tree(shards.clone()).unwrap()));
    });
    group.bench_function("snapshot_roundtrip", |b| {
        let sketch = &shards[0];
        b.iter(|| {
            let bytes = sketch.snapshot();
            black_box(AgmSketch::from_bytes(&bytes).unwrap())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_shard_sweep, bench_coordinator);
criterion_main!(benches);
