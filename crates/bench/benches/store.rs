//! Durability benchmarks: WAL append throughput under each sync policy,
//! checkpoint write/restore latency, and end-to-end recovery time as a
//! function of how much WAL tail must be replayed.
//!
//! All benches run against scratch directories under the system temp dir
//! (usually tmpfs-backed on CI, so fsync costs are lower bounds — the
//! *relative* ordering EveryBatch < EveryN < Manual is the signal).

use criterion::{criterion_group, criterion_main, Criterion};
use dsg_graph::{gen, GraphStream, StreamUpdate};
use dsg_service::GraphConfig;
use dsg_store::{
    read_checkpoint, DurableRegistry, ScratchDir, StoreOptions, SyncPolicy, Wal, WalConfig,
};
use std::hint::black_box;

const N: usize = 64;

fn stream(seed: u64) -> Vec<StreamUpdate> {
    let g = gen::erdos_renyi(N, 0.15, seed);
    GraphStream::with_churn(&g, 1.0, seed ^ 0xABCD)
        .updates()
        .to_vec()
}

fn config() -> GraphConfig {
    GraphConfig::new(N).seed(42).shards(2).batch_size(64)
}

/// Appending one 64-update batch record under each sync policy.
fn bench_wal_append(c: &mut Criterion) {
    let updates = stream(1);
    let batch = &updates[..64.min(updates.len())];
    let mut group = c.benchmark_group("store");
    for (label, sync) in [
        ("wal_append_sync_every_batch", SyncPolicy::EveryBatch),
        ("wal_append_sync_every_32", SyncPolicy::EveryN(32)),
        ("wal_append_sync_manual", SyncPolicy::Manual),
    ] {
        group.bench_function(label, |b| {
            let dir = ScratchDir::new("bench-wal");
            let mut wal = Wal::open(
                dir.path(),
                WalConfig {
                    sync,
                    ..WalConfig::default()
                },
            )
            .expect("scratch wal");
            b.iter(|| black_box(wal.append_batch(black_box(batch)).expect("append")));
        });
    }
    group.finish();
}

/// Writing a checkpoint of a warm tenant, and reading it back.
fn bench_checkpoint(c: &mut Criterion) {
    let updates = stream(2);
    let mut group = c.benchmark_group("store");
    group.sample_size(10);
    group.bench_function("checkpoint_write", |b| {
        let dir = ScratchDir::new("bench-cp-write");
        let reg = DurableRegistry::open(dir.path(), StoreOptions::default()).expect("open");
        let g = reg.create("t", config()).expect("fresh");
        g.apply(&updates).expect("in range");
        b.iter(|| black_box(g.checkpoint().expect("checkpoint")));
    });
    group.bench_function("checkpoint_restore_decode", |b| {
        let dir = ScratchDir::new("bench-cp-read");
        let reg = DurableRegistry::open(dir.path(), StoreOptions::default()).expect("open");
        let g = reg.create("t", config()).expect("fresh");
        g.apply(&updates).expect("in range");
        g.checkpoint().expect("checkpoint");
        let tenant = g.dir().to_path_buf();
        drop((g, reg));
        b.iter(|| black_box(read_checkpoint(&tenant).expect("valid checkpoint")));
    });
    // Same live graph under 4x churn: the v2 compacted-segment format
    // must checkpoint at the same cost as the churn-free stream (the
    // segment and canonical shard frames depend only on the net state).
    let churned = {
        let g = gen::erdos_renyi(N, 0.15, 2);
        GraphStream::with_churn(&g, 4.0, 99).updates().to_vec()
    };
    group.bench_function("checkpoint_write_4x_churn", |b| {
        let dir = ScratchDir::new("bench-cp-churn");
        let reg = DurableRegistry::open(dir.path(), StoreOptions::default()).expect("open");
        let g = reg.create("t", config()).expect("fresh");
        g.apply(&churned).expect("in range");
        b.iter(|| black_box(g.checkpoint().expect("checkpoint")));
    });
    group.finish();
}

/// Full registry recovery (checkpoint restore + tail replay + engine
/// spawn) with WAL tails of increasing length.
fn bench_recovery(c: &mut Criterion) {
    let updates = stream(3);
    let mut group = c.benchmark_group("store");
    group.sample_size(10);
    for tail_batches in [0usize, 8, 32] {
        let dir = ScratchDir::new("bench-recover");
        {
            let reg = DurableRegistry::open(dir.path(), StoreOptions::default()).expect("open");
            let g = reg.create("t", config()).expect("fresh");
            g.apply(&updates[..updates.len() / 2]).expect("in range");
            g.checkpoint().expect("checkpoint");
            for batch in updates[updates.len() / 2..].chunks(8).take(tail_batches) {
                g.apply(batch).expect("in range");
            }
        }
        group.bench_function(format!("recovery_tail_{tail_batches}_batches"), |b| {
            b.iter(|| {
                let reg =
                    DurableRegistry::open(dir.path(), StoreOptions::default()).expect("recover");
                black_box(reg.get("t").expect("tenant back"));
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_wal_append, bench_checkpoint, bench_recovery);
criterion_main!(benches);
