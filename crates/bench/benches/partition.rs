//! Partitioned-ingest benchmarks: what hash-routing by edge identity
//! costs and buys on churn-heavy streams.
//!
//! `fork_*` measures the epoch-advance primitive — forking every shard's
//! live sketch between batches — at 1x vs ~10x churn over the same live
//! graph. Under hash-partitioning the forked state is the shard's live
//! subgraph, so the two should cost the same; a router blind to edge
//! identity forks churn residue instead, and its cost tracks the stream.
//! `routed_ingest` is the end-to-end push/dispatch/merge cycle at the
//! production shard count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsg_agm::AgmSketch;
use dsg_engine::{EdgeUpdate, EngineConfig, ShardedEngine};
use dsg_graph::{gen, GraphStream};
use std::hint::black_box;

const N: usize = 200;
const SHARDS: usize = 4;

fn churned_updates(churn: f64) -> Vec<EdgeUpdate> {
    let g = gen::erdos_renyi(N, 0.05, 7);
    GraphStream::with_churn(&g, churn, 8)
        .updates()
        .iter()
        .map(|up| EdgeUpdate::new(up.edge.index(N), up.delta as i128))
        .collect()
}

fn bench_fork_under_churn(c: &mut Criterion) {
    let mut group = c.benchmark_group("partition");
    group.sample_size(10);
    for (label, churn) in [("1x", 0.0), ("10x", 4.5)] {
        let updates = churned_updates(churn);
        // Ingest once; the bench measures only the mid-stream fork.
        let cfg = EngineConfig::new(SHARDS).batch_size(256);
        let mut eng = ShardedEngine::start(cfg, |_| AgmSketch::new(N, 42));
        eng.push_all(&updates);
        group.bench_with_input(
            BenchmarkId::new("fork_live_shards", label),
            &updates.len(),
            |b, _| {
                b.iter(|| black_box(eng.snapshot_shards()));
            },
        );
    }
    group.finish();
}

fn bench_routed_ingest(c: &mut Criterion) {
    let mut group = c.benchmark_group("partition");
    group.sample_size(10);
    for (label, churn) in [("1x", 0.0), ("10x", 4.5)] {
        let updates = churned_updates(churn);
        group.bench_with_input(
            BenchmarkId::new("routed_ingest", label),
            &updates,
            |b, updates| {
                b.iter(|| {
                    let cfg = EngineConfig::new(SHARDS).batch_size(256);
                    let mut eng = ShardedEngine::start(cfg, |_| AgmSketch::new(N, 42));
                    eng.push_all(black_box(updates));
                    black_box(eng.finish().merged().unwrap())
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fork_under_churn, bench_routed_ingest);
criterion_main!(benches);
