//! Benchmarks for the two-pass sparsifier pipeline (Corollary 2) and its
//! numerical verification machinery.

use criterion::{criterion_group, criterion_main, Criterion};
use dsg_graph::{gen, GraphStream};
use dsg_sparsifier::pipeline::run_sparsifier;
use dsg_sparsifier::{resistance, spectral, Laplacian, SparsifierParams};
use std::hint::black_box;

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("sparsifier_pipeline");
    group.sample_size(10);
    group.bench_function("k24_clique", |b| {
        let g = gen::complete(24);
        let stream = GraphStream::insert_only(&g, 1);
        let mut params = SparsifierParams::new(2, 0.5, 2);
        params.z_factor = 0.03;
        params.j_factor = 0.4;
        b.iter(|| black_box(run_sparsifier(&stream, params)));
    });
    group.finish();
}

fn bench_verification(c: &mut Criterion) {
    let mut group = c.benchmark_group("spectral_verification");
    group.sample_size(10);
    group.bench_function("exact_eps_n64", |b| {
        let g = gen::erdos_renyi(64, 0.3, 3);
        let l = Laplacian::from_graph(&g);
        b.iter(|| black_box(spectral::spectral_epsilon(&l, &l)));
    });
    group.bench_function("effective_resistance_n128", |b| {
        let g = gen::erdos_renyi(128, 0.1, 4);
        let l = Laplacian::from_graph(&g);
        b.iter(|| black_box(resistance::effective_resistance(&l, 0, 64)));
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline, bench_verification);
criterion_main!(benches);
