//! Benchmarks for the single-pass additive spanner (Theorem 3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsg_graph::{gen, GraphStream, StreamAlgorithm};
use dsg_spanner::additive::{run_additive, AdditiveParams};
use dsg_spanner::AdditiveSpanner;
use std::hint::black_box;

fn bench_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("additive_update");
    for d in [4usize, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, &d| {
            let n = 256;
            let g = gen::erdos_renyi(n, 8.0 / n as f64, 3);
            let stream = GraphStream::insert_only(&g, 4);
            let mut alg = AdditiveSpanner::new(n, AdditiveParams::new(d, 5));
            alg.begin_pass(0);
            let updates = stream.updates();
            let mut i = 0usize;
            b.iter(|| {
                alg.process(black_box(&updates[i % updates.len()]));
                i += 1;
            });
        });
    }
    group.finish();
}

fn bench_full_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("additive_full");
    group.sample_size(10);
    for n in [128usize, 256] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let g = gen::erdos_renyi(n, 10.0 / n as f64, 6);
            let stream = GraphStream::with_churn(&g, 1.0, 7);
            b.iter(|| black_box(run_additive(&stream, AdditiveParams::new(8, 8))));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_update, bench_full_run);
criterion_main!(benches);
