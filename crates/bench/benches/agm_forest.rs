//! Benchmarks for AGM sketches: per-edge update cost and spanning-forest
//! extraction (Theorem 10's `O(n log^3 n)` object).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsg_agm::AgmSketch;
use dsg_graph::{gen, Edge};
use std::hint::black_box;

fn bench_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("agm_update");
    for n in [128usize, 512] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut sk = AgmSketch::new(n, 7);
            let mut i = 0u32;
            b.iter(|| {
                i = i.wrapping_add(1);
                let u = i % n as u32;
                let v = (u + 1 + i % (n as u32 - 1)) % n as u32;
                if u != v {
                    sk.update(black_box(Edge::new(u, v)), 1);
                }
            });
        });
    }
    group.finish();
}

fn bench_forest(c: &mut Criterion) {
    let mut group = c.benchmark_group("agm_spanning_forest");
    group.sample_size(10);
    for n in [128usize, 256] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let g = gen::erdos_renyi(n, 6.0 / n as f64, 9);
            let mut sk = AgmSketch::new(n, 11);
            for e in g.edges() {
                sk.update(*e, 1);
            }
            b.iter(|| black_box(sk.spanning_forest()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_update, bench_forest);
criterion_main!(benches);
