//! Telemetry primitive benchmarks: the per-event cost of the handles the
//! hot paths touch, active vs no-op, plus snapshot/exposition cost.
//!
//! The numbers to watch: an active counter increment is one relaxed
//! atomic RMW (~1–5 ns), a no-op handle is a branch on an `Option`
//! (well under 1 ns), and a timed span is dominated by its two
//! `Instant::now()` reads — which is why the engine times per *batch*
//! and the store per *append*, never per update.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsg_telemetry::{Counter, EventKind, FlightRecorder, Histogram, MetricRegistry};
use std::hint::black_box;

fn bench_handles(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry");
    for (mode, active) in [("active", true), ("noop", false)] {
        let counter = if active {
            Counter::active()
        } else {
            Counter::noop()
        };
        group.bench_with_input(BenchmarkId::new("counter_inc", mode), &counter, |b, ctr| {
            b.iter(|| {
                for _ in 0..1000 {
                    black_box(ctr).inc();
                }
            });
        });
        let hist = if active {
            Histogram::active()
        } else {
            Histogram::noop()
        };
        group.bench_with_input(BenchmarkId::new("histogram_record", mode), &hist, |b, h| {
            b.iter(|| {
                for v in 0..1000u64 {
                    black_box(h).record(v * 97);
                }
            });
        });
        group.bench_with_input(BenchmarkId::new("timer_span", mode), &hist, |b, h| {
            b.iter(|| {
                for _ in 0..1000 {
                    let _t = black_box(h).start_timer();
                }
            });
        });
    }
    group.finish();
}

fn bench_registry(c: &mut Criterion) {
    // A realistically sized registry: the series mix of a few live
    // tenants across all three layers.
    let reg = MetricRegistry::new();
    for graph in ["a", "b", "c", "d"] {
        for series in [
            "dsg_engine_batches_sent_total",
            "dsg_store_wal_appended_bytes_total",
        ] {
            reg.counter(&format!("{series}{{graph=\"{graph}\"}}"))
                .add(7);
        }
        for series in [
            "dsg_engine_send_wait_nanos",
            "dsg_service_query_nanos",
            "dsg_store_wal_append_nanos",
        ] {
            let h = reg.histogram(&format!("{series}{{graph=\"{graph}\"}}"));
            for v in 0..256u64 {
                h.record(v * 1013);
            }
        }
    }
    let mut group = c.benchmark_group("telemetry");
    group.bench_function("snapshot", |b| b.iter(|| black_box(reg.snapshot())));
    group.bench_function("render_prometheus", |b| {
        b.iter(|| black_box(reg.render_prometheus()))
    });
    group.finish();
}

fn bench_recorder(c: &mut Criterion) {
    // The flight recorder's three cost tiers: enabled (clock read + five
    // relaxed stores into the thread's ring), runtime-disabled (one extra
    // relaxed load past the branch), and no-op (the branch alone).
    let mut group = c.benchmark_group("telemetry");
    let disabled = FlightRecorder::with_capacity(4096);
    disabled.set_enabled(false);
    for (mode, rec) in [
        ("enabled", FlightRecorder::with_capacity(4096)),
        ("disabled", disabled),
        ("noop", FlightRecorder::noop()),
    ] {
        group.bench_with_input(BenchmarkId::new("record_event", mode), &rec, |b, r| {
            b.iter(|| {
                for i in 0..1000u64 {
                    black_box(r).record(EventKind::IngestBatch, i, 1, i * 31);
                }
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_handles, bench_registry, bench_recorder);
criterion_main!(benches);
