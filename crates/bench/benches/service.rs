//! Serving-layer benchmarks: mixed ingest+query throughput with latency
//! percentiles, per-query-type costs against a warm epoch, epoch-advance
//! cost, and the oracle's per-source cache speedup.
//!
//! The mixed-workload report (queries/sec, p50/p95 latency under a live
//! writer) is printed once up front — criterion's shim measures medians
//! of single operations, while a latency *distribution* under concurrency
//! needs its own harness.

use criterion::{criterion_group, criterion_main, Criterion};
use dsg_graph::{gen, GraphStream, Vertex};
use dsg_service::{GraphConfig, GraphRegistry, LoadGen, Query, QueryMix, QueryService};
use dsg_util::Summary;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

const N: usize = 150;

/// A registry with one warm graph: stream ingested, epoch advanced,
/// forest + oracle artifacts built.
fn warm_registry(shards: usize) -> Arc<GraphRegistry> {
    let registry = Arc::new(GraphRegistry::new());
    let g = gen::erdos_renyi(N, 0.05, 7);
    let stream = GraphStream::with_churn(&g, 1.0, 8);
    let served = registry
        .create("bench", GraphConfig::new(N).seed(42).shards(shards))
        .expect("fresh registry");
    served.apply(stream.updates()).expect("in range");
    let epoch = served.advance_epoch();
    let _ = epoch.forest();
    let _ = epoch.oracle();
    registry
}

/// The headline report: a 4-worker pool answering a deterministic mixed
/// workload while a writer thread keeps ingesting churn and advancing
/// epochs. Prints queries/sec and p50/p95/p99 per-query latency.
fn mixed_workload_report() {
    let registry = warm_registry(2);
    let served = registry.get("bench").expect("registered");
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let writer = {
        let served = Arc::clone(&served);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut i = 0u32;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let u = i % (N as u32 - 1);
                let _ = served.insert(u, u + 1);
                let _ = served.delete(u, u + 1);
                i += 1;
                if i % 2048 == 0 {
                    served.advance_epoch();
                }
            }
            i
        })
    };

    let pool = QueryService::start(Arc::clone(&registry), 4);
    let mix = QueryMix {
        cut: 0, // KP12 build cost is its own experiment (E19)
        ..QueryMix::read_heavy()
    };
    let load = LoadGen::new(N, mix, 5).hot_sources(8);
    let total = 3000u64;
    let mut latencies = Summary::new();
    let t0 = Instant::now();
    for i in 0..total {
        let t = Instant::now();
        pool.query_blocking("bench", load.query(i))
            .expect("query failed");
        latencies.push(t.elapsed().as_secs_f64() * 1e6);
    }
    let wall = t0.elapsed().as_secs_f64();
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let writes = writer.join().expect("writer");
    eprintln!(
        "service/mixed_workload: {total} queries in {:.1} ms under live ingest \
         ({} write ops, {} epochs) — {:.0} queries/s; latency p50 {:.1} µs, \
         p95 {:.1} µs, p99 {:.1} µs",
        wall * 1e3,
        2 * writes,
        served.snapshot().epoch(),
        total as f64 / wall,
        latencies.quantile(0.50),
        latencies.quantile(0.95),
        latencies.quantile(0.99),
    );
    pool.shutdown();
}

fn bench_query_types(c: &mut Criterion) {
    mixed_workload_report();

    let registry = warm_registry(2);
    let served = registry.get("bench").expect("registered");
    let snapshot = served.snapshot();
    let mut group = c.benchmark_group("service");
    group.bench_function("connectivity_query", |b| {
        b.iter(|| black_box(snapshot.execute(&Query::Connectivity).unwrap()));
    });
    group.bench_function("same_component_query", |b| {
        let mut v: Vertex = 0;
        b.iter(|| {
            v = (v + 7) % N as Vertex;
            black_box(snapshot.execute(&Query::SameComponent(3, v)).unwrap())
        });
    });
    group.bench_function("stats_query", |b| {
        b.iter(|| black_box(snapshot.execute(&Query::Stats).unwrap()));
    });
    group.finish();
}

/// The oracle-cache claim: repeated-source distance queries must be much
/// cheaper against the (default) caching oracle than with the cache
/// disabled. Reported as two criterion series over identical query sets.
fn bench_oracle_cache(c: &mut Criterion) {
    let registry = warm_registry(2);
    let snapshot = registry.get("bench").expect("registered").snapshot();
    let cached = snapshot.oracle();
    let uncached = (*cached).clone().with_cache_capacity(0);
    let mut group = c.benchmark_group("service");
    let mut v: Vertex = 0;
    group.bench_function("distance_hot_source_cached", |b| {
        b.iter(|| {
            v = (v + 11) % N as Vertex;
            black_box(cached.estimate(9, v))
        });
    });
    group.bench_function("distance_hot_source_uncached", |b| {
        b.iter(|| {
            v = (v + 11) % N as Vertex;
            black_box(uncached.estimate(9, v))
        });
    });
    group.finish();
    let stats = cached.cache_stats();
    eprintln!(
        "service/oracle_cache: hits {} misses {} after hot-source sweep",
        stats.hits, stats.misses
    );
}

/// Epoch advance while workers stay up: the cost readers pay for a fresh
/// view (shard forks + merge + compacted-segment seal + publish;
/// artifacts stay lazy).
fn bench_epoch_advance(c: &mut Criterion) {
    let registry = warm_registry(4);
    let served = registry.get("bench").expect("registered");
    let mut group = c.benchmark_group("service");
    group.sample_size(10);
    group.bench_function("advance_epoch_4_shards", |b| {
        b.iter(|| black_box(served.advance_epoch().epoch()));
    });
    group.bench_function("advance_epoch_wire_4_shards", |b| {
        b.iter(|| black_box(served.advance_epoch_via_wire().unwrap().epoch()));
    });
    group.finish();
}

/// The lazy oracle build per epoch, rebuilt from the compacted net-edge
/// segment — at 1x and 4x stream churn over the same live graph. Under
/// the retired raw-log design the 4x series cost ~4x; compacted, both
/// series read the same O(live graph) segment.
fn bench_artifact_rebuild(c: &mut Criterion) {
    let mut group = c.benchmark_group("service");
    group.sample_size(10);
    for (label, churn) in [
        ("oracle_build_1x_churn", 1.0),
        ("oracle_build_4x_churn", 4.0),
    ] {
        let registry = GraphRegistry::new();
        let g = gen::erdos_renyi(N, 0.05, 7);
        let stream = GraphStream::with_churn(&g, churn, 8);
        let config = GraphConfig::new(N).seed(42).shards(2);
        let served = registry.create("rebuild", config).expect("fresh registry");
        served.apply(stream.updates()).expect("in range");
        let epoch = served.advance_epoch();
        group.bench_function(label, |b| {
            // The exact two-pass rebuild the snapshot's OnceLock performs
            // on first use, timed in isolation (the OnceLock itself only
            // builds once per epoch, so it cannot be iterated directly).
            b.iter(|| {
                black_box(dsg_spanner::twopass::run_two_pass_net(
                    epoch.net_edges().as_ref(),
                    config.oracle_params(),
                ))
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_query_types,
    bench_oracle_cache,
    bench_epoch_advance,
    bench_artifact_rebuild
);
criterion_main!(benches);
