//! The experiment harness: regenerates every experiment table in
//! `EXPERIMENTS.md` (see DESIGN.md's experiment index E1–E25).
//!
//! Usage:
//!
//! ```text
//! experiments all [--quick] [--json]
//! experiments <name> [--quick]    # e.g. spanner-size
//! experiments list
//! ```
//!
//! `--json` additionally measures the perf-trajectory medians and writes
//! them to `BENCH_9.json` in the working directory.

use dsg_bench::{experiments, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json = args.iter().any(|a| a == "--json");
    let names: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    let scale = Scale { quick };

    match names.first().copied() {
        None | Some("list") => {
            eprintln!("available experiments:");
            for name in experiments::ALL {
                eprintln!("  {name}");
            }
            eprintln!("\nrun with: experiments <name> [--quick]  or  experiments all [--quick]");
        }
        Some("all") => {
            let started = std::time::Instant::now();
            println!(
                "# Experiment suite ({} mode)",
                if quick { "quick" } else { "full" }
            );
            for name in experiments::ALL {
                let t0 = std::time::Instant::now();
                assert!(experiments::run(name, scale), "unknown experiment {name}");
                eprintln!("[{name}: {:.1}s]", t0.elapsed().as_secs_f64());
            }
            println!(
                "\n(total wall time: {:.1}s)",
                started.elapsed().as_secs_f64()
            );
        }
        Some(name) => {
            if !experiments::run(name, scale) {
                eprintln!("unknown experiment '{name}'; try 'experiments list'");
                std::process::exit(2);
            }
        }
    }

    if json {
        let t0 = std::time::Instant::now();
        let doc = experiments::summary::bench_summary_json(scale);
        std::fs::write("BENCH_9.json", &doc).expect("write BENCH_9.json");
        eprintln!(
            "[bench summary -> BENCH_9.json: {:.1}s]\n{doc}",
            t0.elapsed().as_secs_f64()
        );
    }
}
