//! Experiment E6: the single-pass additive spanner (Theorem 3/19).

use crate::Scale;
use dsg_graph::{gen, GraphStream};
use dsg_spanner::additive::{run_additive, AdditiveParams};
use dsg_spanner::verify;
use dsg_util::{space::human_bytes, Table};

/// E6: additive distortion and space across the `d` sweep.
pub fn additive(scale: Scale) {
    println!("\n## E6 — additive spanner: distortion O(n/d) in ~O(nd) space\n");
    let n = scale.pick(240, 100);
    // A graph with both dense hubs and sparse periphery.
    let g = gen::power_law(n, 2.3, (n as f64).sqrt(), 53);
    println!("input: power-law graph, n={n}, m={}\n", g.num_edges());
    let ds: &[usize] = scale.pick(&[2, 4, 8, 16, 32][..], &[2, 8, 32][..]);
    let mut t = Table::new(&[
        "d",
        "edges",
        "distortion",
        "n/d",
        "nd-bytes (nominal)",
        "low-degree",
        "attached",
    ]);
    for &d in ds {
        let stream = GraphStream::with_churn(&g, 1.0, 59 + d as u64);
        let out = run_additive(&stream, AdditiveParams::new(d, 1200 + d as u64));
        let distortion = verify::max_additive_distortion(&g, &out.spanner, n.min(80));
        let alg = dsg_spanner::AdditiveSpanner::new(n, AdditiveParams::new(d, 0));
        t.add_row(&[
            d.to_string(),
            out.spanner.num_edges().to_string(),
            distortion.to_string(),
            (n / d).to_string(),
            human_bytes(alg.nominal_neighborhood_bytes()),
            out.stats.num_low_degree.to_string(),
            out.stats.num_attached.to_string(),
        ]);
    }
    println!("{t}");
    println!("(distortion should fall and space rise as d grows — Theorem 3's tradeoff)\n");

    // Second table: a clique, where compression is extreme.
    let kn = scale.pick(120, 60);
    let g2 = gen::complete(kn);
    let mut t2 = Table::new(&["d", "edges kept", "of m", "distortion", "bound 8n/d"]);
    for &d in scale.pick(&[2usize, 4, 8][..], &[2, 8][..]) {
        let stream = GraphStream::insert_only(&g2, 61 + d as u64);
        let out = run_additive(&stream, AdditiveParams::new(d, 1300 + d as u64));
        let distortion = verify::max_additive_distortion(&g2, &out.spanner, kn);
        t2.add_row(&[
            d.to_string(),
            out.spanner.num_edges().to_string(),
            format!(
                "{:.1}%",
                100.0 * out.spanner.num_edges() as f64 / g2.num_edges() as f64
            ),
            distortion.to_string(),
            (8 * kn / d).to_string(),
        ]);
    }
    println!("K_{kn}:");
    println!("{t2}");
}
