//! Experiment E25: the quality auditor's cost and its catch rate.
//!
//! The auditor's contract has two halves and this experiment holds both
//! to numbers. **Cheap:** at the default 1/64 sample rate the hot path
//! pays one modulo plus, on sampled queries, a clone-and-enqueue — so
//! audited serving throughput must stay within 5% of unaudited (part 1),
//! with every shadow recompute happening on the `dsg-audit` worker.
//! **Sharp:** an honest system audits clean (part 2), and a provably
//! wrong served answer — an oracle row sabotaged through the test hook
//! to claim distance 0 everywhere — is caught as a guarantee violation,
//! lands in the flight recorder as a `quality_violation` incident, and
//! shows up on a live `/qualityz` scrape validated structurally with
//! `dsg_util::json` (part 3).

use crate::Scale;
use dsg_graph::{gen, GraphStream};
use dsg_service::{
    AdminServer, AuditConfig, EventKind, FlightRecorder, GraphConfig, GraphRegistry, LoadGen,
    MetricRegistry, Query, QueryMix, QueryService,
};
use dsg_util::json::{parse, JsonValue};
use dsg_util::Table;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Instant;

/// Builds a served registry (active metrics + recorder, matching both
/// sides of the overhead comparison), ingests `stream`, and seals epoch 1.
fn served_registry(n: usize, config: GraphConfig, stream: &GraphStream) -> Arc<GraphRegistry> {
    let registry = Arc::new(GraphRegistry::with_observability(
        Arc::new(MetricRegistry::new()),
        FlightRecorder::with_capacity(64 * 1024),
    ));
    let g = registry.create("q", config).expect("fresh registry");
    for chunk in stream.updates().chunks(256) {
        g.apply(chunk).expect("valid stream");
    }
    g.advance_epoch();
    assert_eq!(g.snapshot().num_vertices(), n);
    registry
}

/// One timed pool round (seconds): the whole mixed workload through the
/// query service — the path audit sampling actually sits on.
fn pool_round(pool: &QueryService, queries: &[Query]) -> f64 {
    let t0 = Instant::now();
    for q in queries {
        pool.query_blocking("q", q.clone()).expect("valid query");
    }
    t0.elapsed().as_secs_f64()
}

/// E25: audited serving within 5% of unaudited at 1/64 sampling; honest
/// answers audit clean; a sabotaged oracle is caught on `/qualityz`.
pub fn audit(scale: Scale) {
    let n = scale.pick(400usize, 120);
    let trials = scale.pick(9usize, 7);
    let queries_per_trial = scale.pick(3000usize, 1200);
    let g = gen::erdos_renyi(n, scale.pick(0.03, 0.08), 31);
    let stream = GraphStream::with_churn(&g, 1.5, 32);
    let config = GraphConfig::new(n).seed(11).shards(4).batch_size(128);
    println!(
        "\n## E25 — quality-audit overhead and catch rate (n = {n}, {} updates, \
         sample 1/64, best of {trials} interleaved trials)\n",
        stream.len(),
    );

    // Part 1: overhead. Two identical served graphs behind two pools;
    // only one registry has the auditor installed (default 1/64 rate).
    let plain = served_registry(n, config, &stream);
    let audited = served_registry(n, config, &stream);
    let auditor = audited.install_auditor(AuditConfig::default());
    let mix = QueryMix {
        cut: 0,
        ..QueryMix::read_heavy()
    };
    let queries = LoadGen::new(n, mix, 177).queries(queries_per_trial as u64);
    let plain_pool = QueryService::start(Arc::clone(&plain), 2);
    let audited_pool = QueryService::start(Arc::clone(&audited), 2);
    // One untimed warmup round per side, then interleaved best-of.
    pool_round(&plain_pool, &queries);
    pool_round(&audited_pool, &queries);
    let mut best = [f64::INFINITY; 2]; // [plain, audited]
    for _ in 0..trials {
        best[0] = best[0].min(pool_round(&plain_pool, &queries));
        best[1] = best[1].min(pool_round(&audited_pool, &queries));
    }
    plain_pool.shutdown();
    audited_pool.shutdown();
    auditor.flush();

    let ratio = best[0] / best[1];
    let mut t = Table::new(&["serving", "throughput", "audited/plain"]);
    t.add_row(&[
        "auditing off".to_string(),
        format!("{:.0} q/s", queries.len() as f64 / best[0]),
        "1.000".to_string(),
    ]);
    t.add_row(&[
        "auditing on (1/64)".to_string(),
        format!("{:.0} q/s", queries.len() as f64 / best[1]),
        format!("{ratio:.3}"),
    ]);
    println!("{t}");
    assert!(
        ratio >= 0.95,
        "audited serving must stay within 5% of unaudited (ratio {ratio:.3})"
    );

    // Part 2: the honest run audits clean — samples were actually taken
    // and verified, and none of them broke a guarantee.
    assert!(
        auditor.audited() >= 1,
        "the 1/64 sampler must fire over {} queries",
        (trials + 1) * queries.len()
    );
    assert_eq!(
        auditor.total_violations(),
        0,
        "an honest system must audit clean: {:?}",
        auditor.recent_violations()
    );
    let verdict = auditor.verdict("q");
    println!(
        "honest run: {} samples audited, {} violations, {} overflow ✓\n",
        verdict.samples,
        verdict.violations,
        auditor.overflow()
    );

    // Part 3: sabotage. A fresh registry audits *every* query; the
    // oracle's cached row for vertex 0 is poisoned to claim distance 0
    // to everyone — every served distance from 0 now undershoots the
    // exact BFS distance, an unambiguous guarantee breach.
    let sabotaged = served_registry(n, config, &stream);
    let catcher = sabotaged.install_auditor(AuditConfig {
        sample_every: 1,
        ..AuditConfig::default()
    });
    let snap = sabotaged.get("q").expect("tenant").snapshot();
    snap.oracle().poison_cached_row(0, vec![0; n]);
    let pool = QueryService::start(Arc::clone(&sabotaged), 2);
    let probes = 16u32;
    for v in 1..=probes {
        pool.query_blocking("q", Query::Distance(0, v))
            .expect("valid query");
    }
    pool.shutdown();
    catcher.flush();
    let caught = catcher.total_violations();
    assert!(
        caught >= 1,
        "a poisoned oracle row must be caught (audited {})",
        catcher.audited()
    );
    let events = sabotaged.tracer().dump();
    assert!(
        events.iter().any(|e| e.kind == EventKind::QualityViolation),
        "violations must reach the flight recorder"
    );
    assert!(
        sabotaged
            .tracer()
            .incidents()
            .iter()
            .any(|i| i.label == "q:distance:quality"),
        "violations must capture an incident window"
    );

    // The live scrape: /qualityz renders the catch, structurally valid.
    let admin = AdminServer::bind("127.0.0.1:0", Arc::clone(&sabotaged)).expect("ephemeral bind");
    let mut conn = TcpStream::connect(admin.local_addr()).expect("connect");
    conn.write_all(b"GET /qualityz HTTP/1.1\r\nHost: e25\r\n\r\n")
        .expect("request");
    let mut raw = String::new();
    conn.read_to_string(&mut raw).expect("response");
    let body = raw.split_once("\r\n\r\n").map(|(_, b)| b).expect("body");
    let doc = parse(body).expect("/qualityz must be valid JSON");
    assert_eq!(doc.get("enabled").and_then(JsonValue::as_bool), Some(true));
    let tenants = doc
        .get("tenants")
        .and_then(JsonValue::as_array)
        .expect("tenants array");
    let tenant = tenants
        .iter()
        .find(|t| t.get("graph").and_then(JsonValue::as_str) == Some("q"))
        .expect("the sabotaged tenant must be listed");
    let scraped_violations = tenant
        .get("violations")
        .and_then(JsonValue::as_u64)
        .expect("violations count");
    assert!(
        scraped_violations >= 1,
        "the scrape must show the catch: {body}"
    );
    let listed = doc
        .get("violations")
        .and_then(JsonValue::as_array)
        .expect("violations array");
    assert!(
        listed
            .iter()
            .any(|v| v.get("query").and_then(JsonValue::as_str) == Some("distance")),
        "the recent-violation ring must name the distance breach"
    );
    admin.shutdown();

    println!(
        "sabotage: {caught}/{probes} poisoned answers caught; live /qualityz scrape shows \
         {scraped_violations} violations across {} tenant(s), {} in the recent ring ✓\n",
        tenants.len(),
        listed.len(),
    );
}
