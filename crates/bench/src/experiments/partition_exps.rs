//! Experiment E22: edge-partitioned ingest — cancel churn where the
//! update lands.
//!
//! The engine routes every update by a deterministic hash of its
//! canonical edge id, so an edge's insert and its later delete always
//! reach the same worker and annihilate in that worker's live sketch.
//! The workload holds the **live graph constant** while insert/delete
//! churn grows the stream ~10x; per-shard fork bytes must stay
//! byte-for-byte flat. The retired round-robin router is simulated as
//! the baseline: batches dealt out blind to edge identity, so a churn
//! pair's two updates usually land on different shards and neither can
//! cancel — its forks carry O(stream) residue. Both partitions still
//! merge to the same sketch (linearity is partition-blind); the
//! difference is purely what each worker holds *live*.

use crate::Scale;
use dsg_agm::AgmSketch;
use dsg_engine::{merge_tree, EdgeUpdate, EngineConfig, ShardedEngine};
use dsg_graph::{gen, GraphStream};
use dsg_service::GraphConfig;
use dsg_sketch::LinearSketch;
use dsg_store::{DurableRegistry, ScratchDir, StoreOptions};
use dsg_util::Table;
use std::time::Instant;

/// E22: per-shard live state must follow the shard's live subgraph, not
/// its share of the stream.
pub fn partition(scale: Scale) {
    let n = scale.pick(200usize, 80);
    let shards = 4usize;
    let batch = 64usize;
    let seed = 17u64;
    let g = gen::erdos_renyi(n, scale.pick(0.05, 0.1), 41);
    println!(
        "\n## E22 — edge-partitioned ingest (n = {n}, {} live edges, {shards} shards; \
         churn grows the stream ~10x at constant live graph)\n",
        g.num_edges(),
    );
    println!(
        "host parallelism: {} hardware threads\n",
        std::thread::available_parallelism().map_or(1, |p| p.get()),
    );

    let mut t = Table::new(&[
        "churn",
        "updates",
        "hash fork bytes (max shard)",
        "rr fork bytes (max shard)",
        "fork",
        "epoch advance",
        "checkpoint",
        "ingest rate",
    ]);
    // (stream length, hash-partitioned fork bytes, round-robin fork bytes)
    let mut rows: Vec<(usize, Vec<usize>, Vec<usize>)> = Vec::new();
    for churn in [0.0, 4.5] {
        let stream = GraphStream::with_churn(&g, churn, 42);

        // Hash-partitioned engine: the one in production.
        let cfg = EngineConfig::new(shards).batch_size(batch);
        let mut eng = ShardedEngine::start(cfg, |_| AgmSketch::new(n, seed));
        let t0 = Instant::now();
        for up in stream.updates() {
            eng.push(EdgeUpdate::new(up.edge.index(n), up.delta as i128));
        }
        let ingest_s = t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        let forks = eng.snapshot_shards();
        let fork_ms = t0.elapsed().as_secs_f64() * 1e3;
        let hash_bytes: Vec<usize> = forks.iter().map(|s| s.snapshot().len()).collect();
        let run = eng.finish();

        // The retired router, simulated: batches dealt round-robin,
        // blind to edge identity.
        let mut rr: Vec<AgmSketch> = (0..shards).map(|_| AgmSketch::new(n, seed)).collect();
        for (i, up) in stream.updates().iter().enumerate() {
            rr[(i / batch) % shards].update(up.edge, up.delta as i128);
        }
        let rr_bytes: Vec<usize> = rr.iter().map(|s| s.snapshot().len()).collect();

        // Bit-identity: both partitions merge to the single-threaded
        // sketch of the whole stream — routing is a pure locality choice.
        let mut single = AgmSketch::new(n, seed);
        for up in stream.updates() {
            single.update(up.edge, up.delta as i128);
        }
        let single_bytes = LinearSketch::to_bytes(&single);
        let merged = run.merged().expect("at least one shard");
        assert_eq!(
            LinearSketch::to_bytes(&merged),
            single_bytes,
            "hash-partitioned merge diverged from the single-threaded replay"
        );
        let rr_merged = merge_tree(rr).expect("at least one shard");
        assert_eq!(
            LinearSketch::to_bytes(&rr_merged),
            single_bytes,
            "round-robin merge diverged from the single-threaded replay"
        );

        // Epoch-advance and checkpoint cost on the full durable stack at
        // this churn level.
        let config = GraphConfig::new(n)
            .seed(seed)
            .shards(shards)
            .batch_size(batch);
        let dir = ScratchDir::new("e22");
        let dreg =
            DurableRegistry::open(dir.path(), StoreOptions::default()).expect("fresh registry");
        let served = dreg.create("p", config).expect("fresh tenant");
        for chunk in stream.updates().chunks(batch) {
            served.apply(chunk).expect("valid stream");
        }
        let t0 = Instant::now();
        served.advance_epoch().expect("epoch advance");
        let advance_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t0 = Instant::now();
        served.checkpoint().expect("checkpoint");
        let cp_ms = t0.elapsed().as_secs_f64() * 1e3;

        t.add_row(&[
            format!("{churn:.1}"),
            stream.len().to_string(),
            hash_bytes.iter().max().copied().unwrap_or(0).to_string(),
            rr_bytes.iter().max().copied().unwrap_or(0).to_string(),
            format!("{fork_ms:.1} ms"),
            format!("{advance_ms:.1} ms"),
            format!("{cp_ms:.1} ms"),
            format!("{:.0}/s", stream.len() as f64 / ingest_s),
        ]);
        rows.push((stream.len(), hash_bytes, rr_bytes));
    }
    println!("{t}");

    let (len0, hash0, _) = &rows[0];
    let (len1, hash1, rr1) = &rows[rows.len() - 1];
    assert!(
        *len1 >= 10 * *len0,
        "churn workload must grow the stream 10x ({len0} -> {len1})"
    );
    // The tentpole claim, byte for byte: because cancellation is local to
    // the shard the edge hashes to, every shard's fork under 10x churn is
    // IDENTICAL to its fork under the clean stream.
    assert_eq!(
        hash0, hash1,
        "hash-partitioned shard forks must stay byte-for-byte flat under churn"
    );
    // The baseline cannot do this: uncancelled churn residue bloats the
    // round-robin forks.
    let hash_max = hash1.iter().max().copied().unwrap_or(0);
    let rr_max = rr1.iter().max().copied().unwrap_or(0);
    assert!(
        rr_max as f64 >= 1.3 * hash_max as f64,
        "round-robin forks should carry visible churn residue \
         (rr {rr_max} vs hash {hash_max} bytes)"
    );
    println!(
        "stream grew {:.1}x; hash-partitioned forks byte-identical across churn levels, \
         round-robin forks {:.2}x larger; merges bit-identical to single-threaded replay ✓\n",
        *len1 as f64 / *len0 as f64,
        rr_max as f64 / hash_max as f64,
    );
}
