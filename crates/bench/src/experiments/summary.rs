//! The machine-readable perf trajectory: `experiments --json` writes
//! `BENCH_9.json`, a small document of per-experiment medians future PRs
//! can diff against instead of eyeballing `EXPERIMENTS.md` tables.
//!
//! The numbers are measured fresh (medians over a few trials of the
//! standard workload), not scraped from other experiments' stdout, so
//! `--json` composes with any experiment selection — including none.

use crate::Scale;
use dsg_graph::{gen, GraphStream};
use dsg_service::{
    AuditConfig, FlightRecorder, GraphConfig, GraphRegistry, LoadGen, MetricRegistry, QueryMix,
    QueryService,
};
use std::sync::Arc;
use std::time::Instant;

/// Median of `trials` runs of `f` (seconds).
fn median_secs(trials: usize, mut f: impl FnMut() -> f64) -> f64 {
    let mut times: Vec<f64> = (0..trials).map(|_| f()).collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    times[times.len() / 2]
}

/// `p`-th percentile of sorted nanosecond samples.
fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn served(config: GraphConfig, stream: &GraphStream) -> Arc<GraphRegistry> {
    let registry = Arc::new(GraphRegistry::with_observability(
        Arc::new(MetricRegistry::new()),
        FlightRecorder::with_capacity(16 * 1024),
    ));
    let g = registry.create("b", config).expect("fresh registry");
    g.apply(stream.updates()).expect("valid stream");
    g.advance_epoch();
    registry
}

/// Measures the trajectory and renders `BENCH_9.json`'s contents.
pub fn bench_summary_json(scale: Scale) -> String {
    let n = scale.pick(400usize, 120);
    let trials = scale.pick(5usize, 3);
    let g = gen::erdos_renyi(n, scale.pick(0.03, 0.08), 31);
    let stream = GraphStream::with_churn(&g, 1.5, 32);
    let config = GraphConfig::new(n).seed(11).shards(4).batch_size(128);

    // Ingest updates/s: fresh registry per trial, median wall time.
    let ingest_secs = median_secs(trials, || {
        let registry = GraphRegistry::new();
        let t = registry.create("b", config).expect("fresh registry");
        let t0 = Instant::now();
        for chunk in stream.updates().chunks(256) {
            t.apply(chunk).expect("valid stream");
        }
        t0.elapsed().as_secs_f64()
    });
    let ingest_updates_per_sec = stream.len() as f64 / ingest_secs;

    // Epoch advance: median over churn + advance cycles on one registry.
    let registry = served(config, &stream);
    let tenant = registry.get("b").expect("tenant");
    let star: Vec<dsg_graph::StreamUpdate> = (1..n as u32 / 4)
        .map(|v| dsg_graph::StreamUpdate::insert(0, v))
        .collect();
    let unstar: Vec<dsg_graph::StreamUpdate> = star
        .iter()
        .map(|up| dsg_graph::StreamUpdate::delete(up.edge.u(), up.edge.v()))
        .collect();
    let mut flip = false;
    let epoch_advance_secs = median_secs(trials, || {
        flip = !flip;
        tenant
            .apply(if flip { &star } else { &unstar })
            .expect("valid delta");
        let t0 = Instant::now();
        tenant.advance_epoch();
        t0.elapsed().as_secs_f64()
    });

    // Query latency percentiles: per-query wall times over one mixed
    // workload through the pool (the serving path users actually hit).
    let mix = QueryMix {
        cut: 0,
        ..QueryMix::read_heavy()
    };
    let queries = LoadGen::new(n, mix, 177).queries(scale.pick(2000u64, 800));
    let pool = QueryService::start(Arc::clone(&registry), 2);
    let mut lat: Vec<u64> = queries
        .iter()
        .map(|q| {
            let t0 = Instant::now();
            pool.query_blocking("b", q.clone()).expect("valid query");
            t0.elapsed().as_nanos() as u64
        })
        .collect();
    pool.shutdown();
    lat.sort_unstable();
    let p50 = percentile(&lat, 0.50);
    let p95 = percentile(&lat, 0.95);

    // Audit overhead %: the same pool workload with and without the
    // auditor at the default 1/64 rate, best-of to damp scheduler noise.
    let run_pool = |reg: &Arc<GraphRegistry>| {
        let pool = QueryService::start(Arc::clone(reg), 2);
        let best = (0..trials).fold(f64::INFINITY, |best, _| {
            let t0 = Instant::now();
            for q in &queries {
                pool.query_blocking("b", q.clone()).expect("valid query");
            }
            best.min(t0.elapsed().as_secs_f64())
        });
        pool.shutdown();
        best
    };
    // Artifact refresh at 1% churn: the incremental patch path vs the
    // full rebuild, E26's headline workload at trajectory size.
    let refresh = crate::experiments::incremental_exps::measure_refresh(
        scale.pick(200, 110),
        scale.pick(0.2, 0.3),
        0.01,
        trials.min(3),
    );

    let plain_secs = run_pool(&registry);
    let audited_reg = served(config, &stream);
    let auditor = audited_reg.install_auditor(AuditConfig::default());
    let audited_secs = run_pool(&audited_reg);
    auditor.flush();
    let audit_overhead_pct = (audited_secs / plain_secs - 1.0) * 100.0;
    // Keep the sanity probe honest: the audited side must have sampled.
    assert!(
        auditor.audited() >= 1,
        "summary run must exercise the auditor"
    );

    format!(
        "{{\n  \"bench\": 9,\n  \"mode\": \"{}\",\n  \"n\": {n},\n  \
         \"ingest_updates_per_sec\": {ingest_updates_per_sec:.0},\n  \
         \"query_p50_nanos\": {p50},\n  \"query_p95_nanos\": {p95},\n  \
         \"epoch_advance_ms\": {:.3},\n  \"audit_overhead_pct\": {audit_overhead_pct:.2},\n  \
         \"artifact_patch_ms\": {:.3},\n  \"artifact_rebuild_ms\": {:.3}\n}}\n",
        if scale.quick { "quick" } else { "full" },
        epoch_advance_secs * 1000.0,
        refresh.patch_ms,
        refresh.rebuild_ms,
    )
}
