//! Experiment E21: log compaction by linearity — epoch advance, artifact
//! rebuild, checkpoint size, and recovery on long delete-heavy streams,
//! where raw-log cost diverges from graph size.
//!
//! The workload holds the **live graph constant** while insert/delete
//! churn grows the stream ~10x. Under the retired raw-log design every
//! per-epoch cost tracked stream length; under compacted net-edge
//! segments they must track the live graph — asserted, not just printed —
//! while pinned-epoch answers stay bit-identical to raw-log
//! single-threaded recomputes.

use crate::Scale;
use dsg_graph::{gen, GraphStream, Vertex};
use dsg_service::{GraphConfig, GraphRegistry};
use dsg_spanner::oracle::DistanceOracle;
use dsg_spanner::twopass;
use dsg_store::{DurableRegistry, ScratchDir, StoreOptions};
use dsg_util::Table;
use std::time::Instant;

/// E21: costs must follow the graph, answers must follow the stream.
pub fn compaction(scale: Scale) {
    let n = scale.pick(160usize, 60);
    let batch = 64usize;
    let g = gen::erdos_renyi(n, scale.pick(0.06, 0.12), 31);
    let config = GraphConfig::new(n).seed(9).shards(2).batch_size(batch);
    println!(
        "\n## E21 — log compaction by linearity (n = {n}, {} live edges, \
         churn grows the stream ~10x at constant live graph)\n",
        g.num_edges(),
    );

    let mut t = Table::new(&[
        "churn",
        "updates",
        "net edges",
        "epoch advance",
        "oracle build (net)",
        "oracle build (raw log)",
        "checkpoint bytes",
        "recovery",
    ]);
    // (stream length, checkpoint bytes, net-build ms, recovery ms)
    let mut rows: Vec<(usize, u64, f64, f64)> = Vec::new();
    for churn in [0.0, 2.0, 4.5] {
        let stream = GraphStream::with_churn(&g, churn, 32);

        // In-memory serving: ingest, advance an epoch, lazily build the
        // distance oracle from the sealed compacted segment.
        let reg = GraphRegistry::new();
        let served = reg.create("c", config).expect("fresh registry");
        served.apply(stream.updates()).expect("valid stream");
        let t0 = Instant::now();
        let epoch = served.advance_epoch();
        let advance_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t0 = Instant::now();
        let oracle = epoch.oracle();
        let net_ms = t0.elapsed().as_secs_f64() * 1e3;

        // The raw-log single-threaded recompute the old design performed
        // (and the reference the compacted answers must match, bit for
        // bit).
        let t0 = Instant::now();
        let raw = twopass::run_two_pass(&stream, config.oracle_params());
        let raw_ms = t0.elapsed().as_secs_f64() * 1e3;
        let raw_oracle = DistanceOracle::new(raw.spanner, 1 << config.spanner_k);
        for i in 0..(n as Vertex) {
            let (u, v) = (i % 7, (i * 13 + 1) % n as Vertex);
            if u != v {
                assert_eq!(
                    oracle.estimate(u, v),
                    raw_oracle.estimate(u, v),
                    "pinned-epoch distance diverged from raw-log recompute at ({u}, {v})"
                );
            }
        }
        let mut offline = dsg_agm::AgmSketch::new(n, config.seed);
        for up in stream.updates() {
            offline.update(up.edge, up.delta as i128);
        }
        assert_eq!(
            epoch.forest().result.edges,
            offline.spanning_forest().edges,
            "pinned-epoch forest diverged from raw-log recompute"
        );

        // Durable: checkpoint size and recovery cost at this churn.
        let dir = ScratchDir::new("e21");
        let dreg =
            DurableRegistry::open(dir.path(), StoreOptions::default()).expect("fresh registry");
        let durable = dreg.create("c", config).expect("fresh tenant");
        for chunk in stream.updates().chunks(batch) {
            durable.apply(chunk).expect("valid stream");
        }
        durable.checkpoint().expect("checkpoint");
        let cp_bytes = std::fs::metadata(durable.dir().join(dsg_store::CHECKPOINT_FILE))
            .expect("checkpoint file")
            .len();
        drop((durable, dreg)); // crash
        let t0 = Instant::now();
        let dreg = DurableRegistry::open(dir.path(), StoreOptions::default()).expect("recovery");
        let recover_ms = t0.elapsed().as_secs_f64() * 1e3;
        let recovered = dreg.get("c").expect("tenant");
        assert_eq!(
            recovered.snapshot().total_updates(),
            stream.len() as u64,
            "recovery lost updates"
        );

        let net_edges = epoch.net_edges().num_edges();
        t.add_row(&[
            format!("{churn:.1}"),
            stream.len().to_string(),
            net_edges.to_string(),
            format!("{advance_ms:.1} ms"),
            format!("{net_ms:.1} ms"),
            format!("{raw_ms:.1} ms"),
            cp_bytes.to_string(),
            format!("{recover_ms:.1} ms"),
        ]);
        rows.push((stream.len(), cp_bytes, net_ms, recover_ms));
    }
    println!("{t}");

    let (len0, bytes0, build0, rec0) = rows[0];
    let (len2, bytes2, build2, rec2) = rows[rows.len() - 1];
    assert!(
        len2 >= 10 * len0,
        "churn workload must grow the stream 10x ({len0} -> {len2})"
    );
    // Checkpoint bytes are a function of the live graph: byte-for-byte
    // flat modulo nothing — the net segment and sketches are identical —
    // but allow a hair of slack for future metadata.
    assert!(
        bytes2 <= bytes0 + bytes0 / 50 + 1024,
        "checkpoint bytes must stay flat under churn ({bytes0} -> {bytes2})"
    );
    // Artifact build reads the compacted segment, so its cost tracks the
    // live graph, not the stream; allow generous noise on shared CI.
    assert!(
        build2 <= 5.0 * build0.max(0.5),
        "compacted oracle build must stay flat under churn ({build0:.1} -> {build2:.1} ms)"
    );
    assert!(
        rec2 <= 5.0 * rec0.max(0.5),
        "post-checkpoint recovery must stay flat under churn ({rec0:.1} -> {rec2:.1} ms)"
    );
    println!(
        "stream grew {:.1}x; checkpoint {:.2}x, oracle build {:.2}x, recovery {:.2}x — \
         O(graph), not O(stream); answers bit-identical to raw-log recomputes ✓",
        len2 as f64 / len0 as f64,
        bytes2 as f64 / bytes0 as f64,
        build2 / build0.max(1e-9),
        rec2 / rec0.max(1e-9),
    );

    if !scale.quick {
        // Cut artifacts ride the same segment: one KP12 comparison
        // against the raw-log recompute (heavy, so full scale only).
        let stream = GraphStream::with_churn(&g, 2.0, 33);
        let reg = GraphRegistry::new();
        let served = reg.create("cut", config).expect("fresh registry");
        served.apply(stream.updates()).expect("valid stream");
        let epoch = served.advance_epoch();
        let t0 = Instant::now();
        let served_cut = epoch.cut_data();
        let net_s = t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        let raw = dsg_sparsifier::pipeline::run_sparsifier(&stream, config.cut_params());
        let raw_s = t0.elapsed().as_secs_f64();
        assert_eq!(served_cut.sparsifier_edges, raw.sparsifier.num_edges());
        let raw_lap = dsg_sparsifier::Laplacian::from_weighted(&raw.sparsifier);
        for shift in 0..4 {
            let mut side = vec![false; n];
            for (v, s) in side.iter_mut().enumerate() {
                *s = (v + shift) % 3 == 0;
            }
            assert_eq!(
                served_cut.laplacian.cut_value(&side),
                raw_lap.cut_value(&side),
                "pinned-epoch cut estimate diverged from raw-log KP12"
            );
        }
        println!(
            "KP12 over the compacted segment: {net_s:.1} s vs {raw_s:.1} s raw-log replay, \
             cut values identical ✓"
        );
    }
    println!();
}
