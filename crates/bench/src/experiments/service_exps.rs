//! Experiment E19: the query-serving layer — mixed read/write throughput
//! with latency percentiles, the oracle cache's repeated-source speedup,
//! epoch-advance cost, and a snapshot-isolation spot check.

use crate::Scale;
use dsg_graph::{gen, GraphStream, Vertex};
use dsg_service::{GraphConfig, GraphRegistry, LoadGen, Query, QueryMix, QueryService, Response};
use dsg_util::{Summary, Table};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// E19: serve a deterministic mixed workload from worker pools of several
/// sizes while a writer ingests churn and advances epochs, then isolate
/// the oracle-cache and epoch-advance costs.
pub fn service(scale: Scale) {
    let n = scale.pick(300usize, 120);
    let queries = scale.pick(4000u64, 800);
    let seed = 42u64;
    let g = gen::erdos_renyi(n, scale.pick(0.03, 0.06), 7);
    let stream = GraphStream::with_churn(&g, 1.0, 8);
    println!(
        "\n## E19 — query-serving layer (n = {n}, {} stream updates, {} queries, host parallelism {})\n",
        stream.len(),
        queries,
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1),
    );

    // Mixed read workload under a live writer, per pool size.
    let mut t = Table::new(&[
        "workers",
        "queries",
        "wall",
        "queries/s",
        "p50",
        "p95",
        "epochs",
    ]);
    for workers in [1usize, 2, 4] {
        let registry = Arc::new(GraphRegistry::new());
        let served = registry
            .create("e19", GraphConfig::new(n).seed(seed).shards(2))
            .expect("fresh registry");
        served.apply(stream.updates()).expect("in range");
        let epoch = served.advance_epoch();
        let _ = epoch.forest();
        let _ = epoch.oracle();

        let stop = Arc::new(AtomicBool::new(false));
        let writer = {
            let served = Arc::clone(&served);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut i = 0u32;
                while !stop.load(Ordering::Relaxed) {
                    let u = i % (n as u32 - 1);
                    let _ = served.insert(u, u + 1);
                    let _ = served.delete(u, u + 1);
                    i += 1;
                    if i % 1024 == 0 {
                        served.advance_epoch();
                    }
                }
            })
        };
        let pool = QueryService::start(Arc::clone(&registry), workers);
        let mix = QueryMix {
            cut: 0, // the KP12 build is timed separately below
            ..QueryMix::read_heavy()
        };
        let load = LoadGen::new(n, mix, 5).hot_sources(8);
        let mut lat = Summary::new();
        let t0 = Instant::now();
        for i in 0..queries {
            let q0 = Instant::now();
            pool.query_blocking("e19", load.query(i)).expect("query");
            lat.push(q0.elapsed().as_secs_f64() * 1e6);
        }
        let wall = t0.elapsed().as_secs_f64();
        stop.store(true, Ordering::Relaxed);
        writer.join().expect("writer");
        let epochs = served.snapshot().epoch();
        pool.shutdown();
        t.add_row(&[
            workers.to_string(),
            queries.to_string(),
            format!("{:.1} ms", wall * 1e3),
            format!("{:.0}", queries as f64 / wall),
            format!("{:.1} µs", lat.quantile(0.5)),
            format!("{:.1} µs", lat.quantile(0.95)),
            epochs.to_string(),
        ]);
    }
    println!("{t}");

    // Oracle cache: repeated-source distance queries, cached vs not.
    let registry = GraphRegistry::new();
    let served = registry
        .create("oracle", GraphConfig::new(n).seed(seed).shards(2))
        .expect("fresh registry");
    served.apply(stream.updates()).expect("in range");
    let snapshot = served.advance_epoch();
    let cached = snapshot.oracle();
    let uncached = (*cached).clone().with_cache_capacity(0);
    let reps = scale.pick(20_000u64, 4_000);
    let run = |oracle: &dsg_spanner::oracle::DistanceOracle| {
        let t0 = Instant::now();
        let mut reach = 0u64;
        for i in 0..reps {
            let v = (i * 31 + 7) % n as u64;
            if oracle.estimate(3, v as Vertex).is_some() {
                reach += 1;
            }
        }
        (t0.elapsed().as_secs_f64(), reach)
    };
    let (cold_secs, r1) = run(&uncached);
    let (hot_secs, r2) = run(&cached);
    assert_eq!(r1, r2, "cache changed answers");
    let speedup = cold_secs / hot_secs;
    let stats = cached.cache_stats();
    let mut t = Table::new(&["oracle", "queries", "wall", "per query"]);
    t.add_row(&[
        "uncached (BFS per query)".into(),
        reps.to_string(),
        format!("{:.1} ms", cold_secs * 1e3),
        format!("{:.2} µs", cold_secs * 1e6 / reps as f64),
    ]);
    t.add_row(&[
        "cached (memoized row)".into(),
        reps.to_string(),
        format!("{:.1} ms", hot_secs * 1e3),
        format!("{:.2} µs", hot_secs * 1e6 / reps as f64),
    ]);
    println!("{t}");
    println!(
        "oracle cache speedup on a hot source: {speedup:.1}x ({} hits / {} misses)",
        stats.hits, stats.misses
    );
    assert!(
        speedup > 1.0,
        "repeated-source queries must beat BFS-per-query (got {speedup:.2}x)"
    );

    // Epoch advance: the price of a fresh consistent view.
    let advances = scale.pick(20u32, 8);
    let t0 = Instant::now();
    for _ in 0..advances {
        served.advance_epoch();
    }
    let mem_ms = t0.elapsed().as_secs_f64() * 1e3 / advances as f64;
    let t0 = Instant::now();
    for _ in 0..advances {
        served.advance_epoch_via_wire().expect("wire epoch");
    }
    let wire_ms = t0.elapsed().as_secs_f64() * 1e3 / advances as f64;
    println!(
        "epoch advance (2 shards, workers stay up): {mem_ms:.1} ms in-memory, \
         {wire_ms:.1} ms via wire snapshots"
    );

    // Snapshot-isolation spot check: the frozen epoch answers like an
    // offline single-sketch recompute of its prefix.
    let mut offline = dsg_agm::AgmSketch::new(n, seed);
    for up in stream.updates() {
        offline.update(up.edge, up.delta as i128);
    }
    let frozen = snapshot.forest();
    assert_eq!(
        frozen.result.edges,
        offline.spanning_forest().edges,
        "snapshot forest diverged from offline recompute"
    );
    println!("snapshot-isolation spot check: frozen epoch == offline recompute ✓");

    if !scale.quick {
        // One cut query, timing the lazy KP12 artifact build.
        let t0 = Instant::now();
        let side: Vec<Vertex> = (0..n as Vertex / 2).collect();
        let Response::CutEstimate(w) = snapshot
            .execute(&Query::CutEstimate(side))
            .expect("cut query")
        else {
            panic!("wrong variant");
        };
        println!(
            "first cut query (lazy KP12 build over frozen prefix): {:.1} s, estimate {w:.1}",
            t0.elapsed().as_secs_f64()
        );
    }
    println!();
}
