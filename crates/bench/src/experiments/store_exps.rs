//! Experiment E20: the durability subsystem — WAL append throughput per
//! sync policy, checkpoint write/restore latency, and the recovery-time
//! gap between full-log replay and checkpoint + tail replay.

use crate::Scale;
use dsg_graph::{gen, GraphStream, StreamUpdate};
use dsg_service::GraphConfig;
use dsg_store::{DurableRegistry, ScratchDir, StoreOptions, SyncPolicy};
use dsg_util::Table;
use std::path::Path;
use std::time::Instant;

/// Copies a tenant directory (flat: checkpoint + WAL segments).
fn copy_tenant(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).expect("scratch space");
    for entry in std::fs::read_dir(src).expect("tenant dir") {
        let entry = entry.expect("tenant dir entry");
        if entry.file_type().expect("file type").is_file() {
            std::fs::copy(entry.path(), dst.join(entry.file_name())).expect("copy tenant file");
        }
    }
}

/// E20: durability costs end to end. The headline assertion — recovery
/// from checkpoint + tail beats full-log replay — is checked, not just
/// printed: compaction is pointless if it does not buy recovery time.
pub fn store(scale: Scale) {
    let n = scale.pick(200usize, 80);
    let batch = 64usize;
    let g = gen::erdos_renyi(n, scale.pick(0.06, 0.1), 17);
    let stream = GraphStream::with_churn(&g, 1.0, 18);
    let updates: Vec<StreamUpdate> = std::iter::repeat(stream.updates())
        .take(scale.pick(6, 3))
        .flatten()
        .copied()
        .collect();
    println!(
        "\n## E20 — durability subsystem (n = {n}, {} stream updates, {}-update batches)\n",
        updates.len(),
        batch,
    );

    // Durable apply throughput (WAL append + engine push) by sync policy.
    // The criterion bench isolates the raw WAL append; this table shows
    // what a tenant actually pays end to end per policy.
    let mut t = Table::new(&["sync policy", "batches", "wall", "updates/s", "per batch"]);
    for (label, sync) in [
        ("every batch (fsync each)", SyncPolicy::EveryBatch),
        ("every 32 batches", SyncPolicy::EveryN(32)),
        ("manual (close-time flush)", SyncPolicy::Manual),
    ] {
        let dir = ScratchDir::new("e20-wal");
        let options = StoreOptions::default().sync(sync);
        let reg = DurableRegistry::open(dir.path(), options).expect("fresh registry");
        let served = reg
            .create("wal", GraphConfig::new(n).seed(7).batch_size(batch))
            .expect("fresh tenant");
        let t0 = Instant::now();
        let mut batches = 0u64;
        for chunk in updates.chunks(batch) {
            served.apply(chunk).expect("in range");
            batches += 1;
        }
        served.sync().expect("final flush");
        let wall = t0.elapsed().as_secs_f64();
        t.add_row(&[
            label.into(),
            batches.to_string(),
            format!("{:.1} ms", wall * 1e3),
            format!("{:.0}", updates.len() as f64 / wall),
            format!("{:.1} µs", wall * 1e6 / batches as f64),
        ]);
    }
    println!("{t}");

    // Checkpoint write and restore latency on a warm tenant.
    let dir = ScratchDir::new("e20-cp");
    let reg = DurableRegistry::open(dir.path(), StoreOptions::default()).expect("fresh registry");
    let served = reg
        .create(
            "cp",
            GraphConfig::new(n).seed(7).shards(2).batch_size(batch),
        )
        .expect("fresh tenant");
    served.apply(&updates).expect("in range");
    let t0 = Instant::now();
    let stats = served.checkpoint().expect("checkpoint");
    let write_ms = t0.elapsed().as_secs_f64() * 1e3;
    let tenant_dir = served.dir().to_path_buf();
    drop((served, reg));
    let t0 = Instant::now();
    let cp = dsg_store::read_checkpoint(&tenant_dir).expect("read back");
    let read_ms = t0.elapsed().as_secs_f64() * 1e3;
    println!(
        "checkpoint at epoch {}: write {write_ms:.1} ms ({} shard frames, {} net edges), \
         decode {read_ms:.1} ms, {} WAL segment(s) compacted\n",
        stats.epoch,
        cp.shards.len(),
        cp.epoch_net().num_edges(),
        stats.segments_removed,
    );

    // Checkpoint size vs stream length: the compacted segment is bounded
    // by the live graph, so on an insert/delete churn workload the file
    // must stay flat while the raw stream grows 10x. Asserted, not just
    // printed — this is the whole point of the v2 format.
    let base = gen::erdos_renyi(n, scale.pick(0.06, 0.1), 23);
    let mut t = Table::new(&["churn stream", "updates", "live edges", "checkpoint bytes"]);
    let mut sizes: Vec<(usize, u64)> = Vec::new();
    for churn in [0.0, 2.0, 4.5] {
        let s = GraphStream::with_churn(&base, churn, 24);
        let dir = ScratchDir::new("e20-cpsize");
        let reg =
            DurableRegistry::open(dir.path(), StoreOptions::default()).expect("fresh registry");
        let served = reg
            .create("size", GraphConfig::new(n).seed(7).batch_size(batch))
            .expect("fresh tenant");
        for chunk in s.updates().chunks(batch) {
            served.apply(chunk).expect("in range");
        }
        served.checkpoint().expect("checkpoint");
        let bytes = std::fs::metadata(served.dir().join(dsg_store::CHECKPOINT_FILE))
            .expect("checkpoint file")
            .len();
        t.add_row(&[
            format!("churn {churn:.1}"),
            s.len().to_string(),
            base.num_edges().to_string(),
            bytes.to_string(),
        ]);
        sizes.push((s.len(), bytes));
    }
    println!("{t}");
    let (len0, bytes0) = sizes[0];
    let (len2, bytes2) = sizes[sizes.len() - 1];
    assert!(
        len2 >= 10 * len0,
        "churn workload must grow the stream 10x ({len0} -> {len2})"
    );
    assert!(
        bytes2 <= bytes0 + bytes0 / 50 + 1024,
        "compacted checkpoint must stay flat under churn ({bytes0} -> {bytes2} bytes)"
    );
    println!(
        "checkpoint stays flat: {bytes0} bytes at {len0} updates vs {bytes2} bytes at {len2} \
         updates (stream {:.1}x, checkpoint {:.2}x)\n",
        len2 as f64 / len0 as f64,
        bytes2 as f64 / bytes0 as f64,
    );

    // Recovery: full-log replay vs checkpoint + tail, same durable state.
    // Build one tenant, snapshot its directory just BEFORE checkpointing
    // (the full-log variant), then checkpoint and keep a short tail (the
    // compacted variant) — both recover to the same stream position.
    let src = ScratchDir::new("e20-recover-src");
    let tail_updates = scale.pick(256usize, 128);
    {
        let reg =
            DurableRegistry::open(src.path(), StoreOptions::default()).expect("fresh registry");
        let served = reg
            .create("r", GraphConfig::new(n).seed(7).shards(2).batch_size(batch))
            .expect("fresh tenant");
        let head = updates.len() - tail_updates;
        for chunk in updates[..head].chunks(batch) {
            served.apply(chunk).expect("in range");
        }
        let full = ScratchDir::new("e20-recover-full");
        copy_tenant(served.dir(), &full.path().join("r"));
        served.checkpoint().expect("checkpoint");
        for chunk in updates[head..].chunks(batch) {
            served.apply(chunk).expect("in range");
        }
        drop(served);
        drop(reg);
        // Bring the full-log copy up to the same durable position.
        let reg =
            DurableRegistry::open(full.path(), StoreOptions::default()).expect("full-log copy");
        let served = reg.get("r").expect("tenant");
        for chunk in updates[head..].chunks(batch) {
            served.apply(chunk).expect("in range");
        }
        drop(served);
        drop(reg);

        let time_recovery = |root: &Path| {
            let t0 = Instant::now();
            let reg = DurableRegistry::open(root, StoreOptions::default()).expect("recovery");
            let report = reg.recovery_report()[0].clone();
            let wall = t0.elapsed().as_secs_f64() * 1e3;
            let total = reg
                .get("r")
                .expect("tenant")
                .served()
                .snapshot()
                .total_updates();
            (wall, report, total)
        };
        let (full_ms, full_report, _) = time_recovery(full.path());
        let (cp_ms, cp_report, _) = time_recovery(src.path());
        let mut t = Table::new(&["recovery mode", "records replayed", "wall"]);
        t.add_row(&[
            "full-log replay (no checkpoint)".into(),
            full_report.records_replayed.to_string(),
            format!("{full_ms:.1} ms"),
        ]);
        t.add_row(&[
            format!("checkpoint + {tail_updates}-update tail"),
            cp_report.records_replayed.to_string(),
            format!("{cp_ms:.1} ms"),
        ]);
        println!("{t}");
        let speedup = full_ms / cp_ms;
        println!("recovery speedup from checkpointing: {speedup:.1}x");
        assert!(
            cp_report.records_replayed < full_report.records_replayed,
            "checkpoint must shorten the replayed tail"
        );
        assert!(
            speedup > 1.0,
            "checkpoint + tail recovery must beat full-log replay (got {speedup:.2}x)"
        );
    }
    println!();
}
