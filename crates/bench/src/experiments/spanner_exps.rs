//! Experiments E1–E5, E13, E14, E16, E17: the two-pass multiplicative
//! spanner (Theorem 1 and its supporting lemmas/claims), weighted reduction
//! and ablations.

use crate::Scale;
use dsg_graph::{gen, Graph, GraphStream};
use dsg_spanner::cluster::NodeId;
use dsg_spanner::{baswana_sen, offline, twopass, verify, SpannerParams};
use dsg_util::{space::human_bytes, Table};
use std::collections::HashSet;

/// A test graph dense enough that spanner size, not input size, binds:
/// `m ≈ min(C(n,2), 6 n^{1.5})` edges.
fn dense_input(n: usize, seed: u64) -> Graph {
    let max_m = n * (n - 1) / 2;
    let m = ((6.0 * (n as f64).powf(1.5)) as usize).min(max_m);
    gen::gnm(n, m, seed)
}

fn run_spanner(g: &Graph, k: usize, seed: u64) -> twopass::TwoPassOutput {
    let stream = GraphStream::with_churn(g, 1.0, seed ^ 0xC0FFEE);
    twopass::run_two_pass(&stream, SpannerParams::new(k, seed))
}

/// E1 (Lemma 12): spanner size vs the `O(k n^{1+1/k} log n)` bound.
pub fn spanner_size(scale: Scale) {
    println!("\n## E1 — spanner size vs Lemma 12 bound `k n^(1+1/k) log2 n`\n");
    let ns: &[usize] = scale.pick(&[64, 128, 256, 512][..], &[64, 128][..]);
    let mut t = Table::new(&["n", "k", "m", "spanner", "bound", "ratio"]);
    for &n in ns {
        for k in [1usize, 2, 3] {
            let g = dense_input(n, 7 + n as u64);
            let out = run_spanner(&g, k, 100 + k as u64);
            let bound = k as f64 * (n as f64).powf(1.0 + 1.0 / k as f64) * (n as f64).log2();
            t.add_row(&[
                n.to_string(),
                k.to_string(),
                g.num_edges().to_string(),
                out.spanner.num_edges().to_string(),
                format!("{bound:.0}"),
                format!("{:.3}", out.spanner.num_edges() as f64 / bound),
            ]);
        }
    }
    println!("{t}");
}

/// E2 (Lemma 13 / Theorem 1): measured stretch vs the `2^k` guarantee.
pub fn spanner_stretch(scale: Scale) {
    println!("\n## E2 — multiplicative stretch vs the 2^k guarantee\n");
    let ns: &[usize] = scale.pick(&[64, 128, 256][..], &[64, 96][..]);
    let trials = scale.pick(5, 2);
    let mut t = Table::new(&["n", "k", "2^k", "max stretch", "mean stretch", "violations"]);
    for &n in ns {
        for k in [1usize, 2, 3] {
            let mut max_s: f64 = 1.0;
            let mut sum = 0.0;
            let mut violations = 0;
            for trial in 0..trials {
                let g = gen::erdos_renyi(n, 12.0 / n as f64, 50 + trial);
                let out = run_spanner(&g, k, 200 + trial * 7 + k as u64);
                let s = verify::max_multiplicative_stretch(&g, &out.spanner, n.min(80));
                if s > (1u64 << k) as f64 {
                    violations += 1;
                }
                max_s = max_s.max(s);
                sum += s;
            }
            t.add_row(&[
                n.to_string(),
                k.to_string(),
                (1u64 << k).to_string(),
                format!("{max_s:.2}"),
                format!("{:.2}", sum / trials as f64),
                violations.to_string(),
            ]);
        }
    }
    println!("{t}");
}

/// E3 (Theorem 1): measured sketch bytes vs `n^{1+1/k}` scaling; pass
/// count is 2 by construction.
pub fn spanner_space(scale: Scale) {
    println!("\n## E3 — two-pass space vs the ~O(n^(1+1/k)) shape\n");
    let ns: &[usize] = scale.pick(&[64, 128, 256, 512][..], &[64, 128][..]);
    let k = 2;
    let mut t = Table::new(&[
        "n",
        "pass1 bytes",
        "pass2 bytes",
        "n^(1+1/k)",
        "pass1 / shape",
        "pass2 / shape",
    ]);
    for &n in ns {
        let g = dense_input(n, 11 + n as u64);
        let out = run_spanner(&g, k, 300 + n as u64);
        let shape = (n as f64).powf(1.0 + 1.0 / k as f64);
        t.add_row(&[
            n.to_string(),
            human_bytes(out.stats.pass1_bytes),
            human_bytes(out.stats.pass2_bytes),
            format!("{shape:.0}"),
            format!("{:.1}", out.stats.pass1_bytes as f64 / shape),
            format!("{:.1}", out.stats.pass2_bytes as f64 / shape),
        ]);
    }
    println!("{t}");
    println!("(ratios should stay near-constant as n doubles — polylog drift is expected)\n");
}

/// E4 (Claim 11): terminal neighborhood sizes vs `(C log n) n^{(i+1)/k}`.
pub fn cluster_expansion(scale: Scale) {
    println!("\n## E4 — terminal neighborhoods |N(T_u)| vs Claim 11 bound\n");
    let n = scale.pick(256, 96);
    let k = 3;
    // A sparse graph produces terminals at every level (dense graphs only
    // terminate at the top).
    let g = gen::erdos_renyi(n, 3.0 / n as f64, 13);
    let out = run_spanner(&g, k, 400);
    let adj = g.adjacency();
    let mut t = Table::new(&[
        "level i",
        "terminals",
        "max |N(T_u)|",
        "bound log2(n)*n^((i+1)/k)",
    ]);
    for i in 0..k {
        let mut max_nbhd = 0usize;
        let mut count = 0usize;
        for node in out.forest.terminals() {
            if node.level as usize != i {
                continue;
            }
            count += 1;
            let members: HashSet<u32> = out.forest.members(node).into_iter().collect();
            let mut nbhd: HashSet<u32> = HashSet::new();
            for &m in &members {
                for &w in adj.neighbors(m) {
                    if !members.contains(&w) {
                        nbhd.insert(w);
                    }
                }
            }
            max_nbhd = max_nbhd.max(nbhd.len());
        }
        let bound = (n as f64).log2() * (n as f64).powf((i + 1) as f64 / k as f64);
        t.add_row(&[
            i.to_string(),
            count.to_string(),
            max_nbhd.to_string(),
            format!("{bound:.0}"),
        ]);
    }
    println!("{t}");
}

/// E5 (Lemma 13 induction): cluster diameters vs `2^{i+1} - 2`.
pub fn cluster_diameter(scale: Scale) {
    println!("\n## E5 — witness-tree diameters vs Lemma 13's 2^(i+1)-2\n");
    let n = scale.pick(256, 96);
    let k = 3;
    let g = dense_input(n, 17);
    let out = run_spanner(&g, k, 500);
    let mut t = Table::new(&[
        "level i",
        "clusters",
        "max diameter",
        "bound 2^(i+1)-2",
        "violations",
    ]);
    for i in 0..k {
        let mut max_d = 0u32;
        let mut count = 0usize;
        let mut violations = 0usize;
        let bound = (1u64 << (i + 1)) - 2;
        for u in out.forest.centers_at(i).collect::<Vec<_>>() {
            let node = NodeId::new(i, u);
            count += 1;
            match out.forest.witness_diameter(node) {
                Some(d) => {
                    max_d = max_d.max(d);
                    if d as u64 > bound {
                        violations += 1;
                    }
                }
                None => violations += 1,
            }
        }
        t.add_row(&[
            i.to_string(),
            count.to_string(),
            max_d.to_string(),
            bound.to_string(),
            violations.to_string(),
        ]);
    }
    println!("{t}");
}

/// E13 (Remark 14): weighted graphs via geometric weight classes.
pub fn weighted(scale: Scale) {
    println!("\n## E13 — weighted spanners via weight classes (Remark 14)\n");
    let n = scale.pick(128, 64);
    let k = 2;
    let gamma = 0.5;
    let mut t = Table::new(&[
        "wmax/wmin",
        "classes",
        "stretch",
        "bound 2^k(1+g)",
        "edges",
        "m",
    ]);
    for ratio in [4.0, 64.0, 1024.0] {
        let g = gen::with_random_weights(&gen::erdos_renyi(n, 10.0 / n as f64, 19), 1.0, ratio, 23);
        let stream = GraphStream::weighted_with_churn(&g, 1.0, 29);
        let mut alg =
            dsg_spanner::WeightedTwoPassSpanner::new(n, gamma, SpannerParams::new(k, 600));
        dsg_graph::pass::run(&mut alg, &stream);
        let out = alg.into_output().expect("finished");
        let stretch = verify::max_weighted_stretch(&g, &out.spanner, n.min(64));
        t.add_row(&[
            format!("{ratio:.0}"),
            out.per_class.len().to_string(),
            format!("{stretch:.2}"),
            format!("{:.2}", (1u64 << k) as f64 * (1.0 + gamma)),
            out.spanner.num_edges().to_string(),
            g.num_edges().to_string(),
        ]);
    }
    println!("{t}");
}

/// E14: passes/stretch/size against the Baswana–Sen and offline baselines.
pub fn baseline_compare(scale: Scale) {
    println!("\n## E14 — two-pass 2^k vs Baswana–Sen (2k-1) vs offline basic algorithm\n");
    let n = scale.pick(256, 96);
    let g = dense_input(n, 31);
    let mut t = Table::new(&[
        "algorithm",
        "model",
        "passes",
        "stretch bound",
        "measured",
        "edges",
    ]);
    for k in [2usize, 3] {
        let stream_out = run_spanner(&g, k, 700 + k as u64);
        let s1 = verify::max_multiplicative_stretch(&g, &stream_out.spanner, n.min(80));
        t.add_row(&[
            format!("two-pass (k={k})"),
            "dynamic stream".to_string(),
            "2".to_string(),
            (1u64 << k).to_string(),
            format!("{s1:.2}"),
            stream_out.spanner.num_edges().to_string(),
        ]);
        let off = offline::build_spanner(&g, SpannerParams::new(k, 800 + k as u64));
        let s2 = verify::max_multiplicative_stretch(&g, &off.spanner, n.min(80));
        t.add_row(&[
            format!("offline basic (k={k})"),
            "offline".to_string(),
            "-".to_string(),
            (1u64 << k).to_string(),
            format!("{s2:.2}"),
            off.spanner.num_edges().to_string(),
        ]);
        let bs = baswana_sen::build_spanner(&g, k, 900 + k as u64);
        let s3 = verify::max_multiplicative_stretch(&g, &bs, n.min(80));
        t.add_row(&[
            format!("Baswana–Sen (k={k})"),
            "offline".to_string(),
            "-".to_string(),
            (2 * k - 1).to_string(),
            format!("{s3:.2}"),
            bs.num_edges().to_string(),
        ]);
    }
    println!("{t}");
}

/// E16 (ablation): pass-1 sketch decode budget `B`.
pub fn ablation_budget(scale: Scale) {
    println!("\n## E16 — ablation: pass-1 sketch budget B\n");
    let n = scale.pick(192, 96);
    let g = dense_input(n, 37);
    let mut t = Table::new(&[
        "budget B",
        "sketch fails",
        "table fails",
        "stretch",
        "edges",
        "pass1 bytes",
    ]);
    for budget in [2usize, 4, 8, 16] {
        let params = SpannerParams::new(2, 1000 + budget as u64).with_sketch_budget(budget);
        let stream = GraphStream::with_churn(&g, 1.0, 41);
        let out = twopass::run_two_pass(&stream, params);
        let stretch = verify::max_multiplicative_stretch(&g, &out.spanner, n.min(64));
        t.add_row(&[
            budget.to_string(),
            out.stats.sketch_decode_failures.to_string(),
            out.stats.table_decode_failures.to_string(),
            format!("{stretch:.2}"),
            out.spanner.num_edges().to_string(),
            human_bytes(out.stats.pass1_bytes),
        ]);
    }
    println!("{t}");
}

/// E17 (ablation): number of edge-sampling levels `E_j`.
pub fn ablation_levels(scale: Scale) {
    println!("\n## E17 — ablation: edge-sampling levels (default log2 n^2)\n");
    let n = scale.pick(192, 96);
    let g = dense_input(n, 43);
    let full_levels = SpannerParams::new(2, 0).edge_levels(n);
    let mut t = Table::new(&["levels", "terminals", "sketch fails", "stretch", "edges"]);
    for levels in [3usize, 6, 10, full_levels] {
        let params = SpannerParams::new(2, 1100 + levels as u64).with_max_edge_levels(levels);
        let stream = GraphStream::with_churn(&g, 1.0, 47);
        let out = twopass::run_two_pass(&stream, params);
        let stretch = verify::max_multiplicative_stretch(&g, &out.spanner, n.min(64));
        t.add_row(&[
            levels.to_string(),
            out.stats.num_terminals.to_string(),
            out.stats.sketch_decode_failures.to_string(),
            format!("{stretch:.2}"),
            out.spanner.num_edges().to_string(),
        ]);
    }
    println!("{t}");
}
