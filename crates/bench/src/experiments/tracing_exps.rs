//! Experiment E24: causal tracing at near-zero cost.
//!
//! The flight recorder's contract mirrors E23's for metrics: a no-op
//! recorder costs one branch, and an active one costs a clock read plus
//! five relaxed stores per event — cheap enough to leave on in
//! production. Part 1 holds that to a number with the same interleaved
//! best-of-N ingest and serving-round workloads as E23, recorder active
//! vs no-op (both sides run an *active* metric registry, so the ratio
//! isolates tracing, not metrics). Part 2 exercises the causal chain on
//! the full durable stack: a crash-recovery reopen traced end to end, a
//! wire-path epoch advance whose trace id survives frame encode/decode,
//! and a watchdog-tripped slow query whose captured incident contains
//! the complete submit → dequeue → execute → artifact-build chain under
//! one trace id — then scrapes it all live off the admin endpoint as
//! Chrome `trace_event` JSON and validates the document structurally.

use crate::Scale;
use dsg_graph::{gen, GraphStream};
use dsg_service::{
    AdminServer, EventKind, FlightRecorder, GraphConfig, GraphRegistry, LoadGen, MetricRegistry,
    Query, QueryMix, QueryService, TraceEvent,
};
use dsg_store::{DurableRegistry, ScratchDir, StoreOptions};
use dsg_util::json::{parse, JsonValue};
use dsg_util::Table;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Ingest wall time (seconds) for one fresh graph traced by `tracer`.
fn ingest_once(tracer: &FlightRecorder, config: GraphConfig, stream: &GraphStream) -> f64 {
    let registry =
        GraphRegistry::with_observability(Arc::new(MetricRegistry::new()), tracer.clone());
    let g = registry.create("t", config).expect("fresh registry");
    let t0 = Instant::now();
    for chunk in stream.updates().chunks(256) {
        g.apply(chunk).expect("valid stream");
    }
    g.advance_epoch();
    t0.elapsed().as_secs_f64()
}

/// One serving round (seconds): churn delta, epoch advance (artifact
/// rebuild included), then the whole mixed read workload — E23's unit.
fn serving_round(
    g: &Arc<dsg_service::ServedGraph>,
    delta: &[dsg_graph::StreamUpdate],
    queries: &[dsg_service::Query],
) -> f64 {
    let t0 = Instant::now();
    g.apply(delta).expect("valid delta");
    g.advance_epoch();
    for q in queries {
        g.query(q).expect("valid query");
    }
    t0.elapsed().as_secs_f64()
}

/// The event kinds present in `events` under `trace_id`.
fn kinds_under(events: &[TraceEvent], trace_id: u64) -> Vec<EventKind> {
    let mut kinds: Vec<EventKind> = events
        .iter()
        .filter(|e| e.trace_id == trace_id)
        .map(|e| e.kind)
        .collect();
    kinds.dedup();
    kinds
}

/// E24: tracing overhead within 5% of no-op, and a complete causal chain
/// through service, wire, and store, scraped live as valid trace JSON.
pub fn tracing(scale: Scale) {
    let n = scale.pick(400usize, 120);
    let shards = 4usize;
    let trials = scale.pick(11usize, 9);
    let queries_per_trial = scale.pick(3000usize, 1500);
    let g = gen::erdos_renyi(n, scale.pick(0.03, 0.08), 31);
    let stream = GraphStream::with_churn(&g, 1.5, 32);
    let config = GraphConfig::new(n).seed(11).shards(shards).batch_size(128);
    println!(
        "\n## E24 — flight-recorder overhead and causal tracing (n = {n}, {} updates, \
         {shards} shards, best of {trials} interleaved trials)\n",
        stream.len(),
    );

    // Part 1: overhead, recorder active vs no-op. A 64Ki-event recorder
    // wraps freely under the workload — wrap-around is the steady state
    // a production deployment runs in.
    let active = FlightRecorder::with_capacity(64 * 1024);
    let noop = FlightRecorder::noop();
    let mut best_ingest = [f64::INFINITY; 2]; // [noop, active]
    for _ in 0..trials {
        best_ingest[0] = best_ingest[0].min(ingest_once(&noop, config, &stream));
        best_ingest[1] = best_ingest[1].min(ingest_once(&active, config, &stream));
    }

    let mix = QueryMix {
        cut: 0,
        ..QueryMix::read_heavy()
    };
    let queries = LoadGen::new(n, mix, 177).queries(queries_per_trial as u64);
    let star: Vec<dsg_graph::StreamUpdate> = (1..n as u32 / 2)
        .map(|v| dsg_graph::StreamUpdate::insert(0, v))
        .collect();
    let unstar: Vec<dsg_graph::StreamUpdate> = star
        .iter()
        .map(|up| dsg_graph::StreamUpdate::delete(up.edge.u(), up.edge.v()))
        .collect();
    let prepared: Vec<Arc<dsg_service::ServedGraph>> = [&noop, &active]
        .iter()
        .map(|tracer| {
            let registry = GraphRegistry::with_observability(
                Arc::new(MetricRegistry::new()),
                (*tracer).clone(),
            );
            let g = registry.create("q", config).expect("fresh registry");
            g.apply(stream.updates()).expect("valid stream");
            g.advance_epoch();
            g
        })
        .collect();
    // One untimed warmup round per side (star + unstar, keeping the
    // churn parity balanced), then the timed best-of rounds.
    serving_round(&prepared[0], &star, &queries);
    serving_round(&prepared[1], &star, &queries);
    serving_round(&prepared[0], &unstar, &queries);
    serving_round(&prepared[1], &unstar, &queries);
    let mut best_query = [f64::INFINITY; 2];
    for round in 0..trials {
        let delta = if round % 2 == 0 { &star } else { &unstar };
        best_query[0] = best_query[0].min(serving_round(&prepared[0], delta, &queries));
        best_query[1] = best_query[1].min(serving_round(&prepared[1], delta, &queries));
    }

    let ingest_ratio = best_ingest[0] / best_ingest[1];
    let query_ratio = best_query[0] / best_query[1];
    let mut t = Table::new(&["workload", "no-op recorder", "tracing on", "on/off"]);
    t.add_row(&[
        "ingest".to_string(),
        format!("{:.0} upd/s", stream.len() as f64 / best_ingest[0]),
        format!("{:.0} upd/s", stream.len() as f64 / best_ingest[1]),
        format!("{:.3}", ingest_ratio),
    ]);
    t.add_row(&[
        "serving round (epoch + mixed queries)".to_string(),
        format!("{:.0} q/s", queries.len() as f64 / best_query[0]),
        format!("{:.0} q/s", queries.len() as f64 / best_query[1]),
        format!("{:.3}", query_ratio),
    ]);
    println!("{t}");
    assert!(
        ingest_ratio >= 0.95,
        "traced ingest must stay within 5% of the no-op baseline (ratio {ingest_ratio:.3})"
    );
    assert!(
        query_ratio >= 0.95,
        "traced serving must stay within 5% of the no-op baseline (ratio {query_ratio:.3})"
    );
    assert!(
        !active.dump().is_empty(),
        "the active recorder must actually have recorded"
    );

    // Part 2: the causal chain on the durable stack. One recorder spans
    // a create → ingest → checkpoint → crash → recover lifecycle.
    let tracer = FlightRecorder::with_capacity(64 * 1024);
    let dir = ScratchDir::new("e24");
    let open = || {
        DurableRegistry::open_with_observability(
            dir.path(),
            StoreOptions::default(),
            Arc::new(MetricRegistry::new()),
            tracer.clone(),
        )
    };
    let store = open().expect("fresh store");
    let tenant = store.create("live", config).expect("fresh tenant");
    for chunk in stream.updates().chunks(256) {
        tenant.apply(chunk).expect("valid stream");
    }
    tenant.checkpoint().expect("checkpoint");
    // Leave a WAL tail so the reopen replays through the traced path.
    tenant.apply(&star).expect("valid delta");
    drop((tenant, store)); // crash
    let store = open().expect("recovery");
    assert_eq!(store.recovery_report().len(), 1);

    let events = store.shared().tracer().dump();
    let recovery_id = events
        .iter()
        .find(|e| e.kind == EventKind::CheckpointLoad)
        .expect("recovery must trace its checkpoint load")
        .trace_id;
    assert_ne!(recovery_id, 0, "recovery must mint a trace id");
    let recovery_kinds = kinds_under(&events, recovery_id);
    for kind in [
        EventKind::CheckpointLoad,
        EventKind::RecoveryRestore,
        EventKind::RecoveryReplay,
        EventKind::RecoveryWalOpen,
        EventKind::IngestBatch, // the replayed tail joins the chain
    ] {
        assert!(
            recovery_kinds.contains(&kind),
            "recovery chain {recovery_id} missing {kind:?} (has {recovery_kinds:?})"
        );
    }

    // Wire-path epoch advance: the advance's id must ride the frames and
    // come back out of the decoder (WireDecode's payload is the id read
    // back from each frame's trailer).
    let served = Arc::clone(store.get("live").expect("tenant").served());
    served.advance_epoch_via_wire().expect("wire advance");
    let events = store.shared().tracer().dump();
    let wire = events
        .iter()
        .rfind(|e| e.kind == EventKind::EpochWire)
        .expect("wire advance must trace");
    assert_ne!(wire.trace_id, 0);
    let decodes: Vec<&TraceEvent> = events
        .iter()
        .filter(|e| e.kind == EventKind::WireDecode && e.trace_id == wire.trace_id)
        .collect();
    assert_eq!(decodes.len(), shards, "one decode per shard frame");
    assert!(
        decodes.iter().all(|e| e.payload == wire.trace_id),
        "every frame must carry the advance's trace id through encode/decode"
    );

    // Slow-query watchdog: a 1 ns threshold trips on any query; a fresh
    // epoch advance right before guarantees the query pays an artifact
    // build inside its own trace.
    let pool = QueryService::start(Arc::clone(store.shared()), 2);
    pool.set_slow_query_threshold(Duration::from_nanos(1));
    served.advance_epoch();
    pool.query_blocking("live", Query::SameComponent(0, n as u32 / 2))
        .expect("valid query");
    pool.shutdown();
    let incidents = store.shared().tracer().incidents();
    let incident = incidents.last().expect("the 1 ns watchdog must trip");
    assert_ne!(incident.trace_id, 0);
    assert!(incident.label.starts_with("live:"));
    assert!(incident.latency_nanos >= 1);
    let chain = kinds_under(&incident.events, incident.trace_id);
    for kind in [
        EventKind::QuerySubmit,
        EventKind::QueryDequeue,
        EventKind::QueryExecute,
        EventKind::ArtifactBuild,
        EventKind::SlowQuery,
    ] {
        assert!(
            chain.contains(&kind),
            "incident chain missing {kind:?} (has {chain:?})"
        );
    }

    // Live scrape: the admin endpoint renders it all as Chrome
    // trace_event JSON a structural parse accepts.
    let admin =
        AdminServer::bind("127.0.0.1:0", Arc::clone(store.shared())).expect("ephemeral bind");
    let mut conn = TcpStream::connect(admin.local_addr()).expect("connect");
    conn.write_all(b"GET /tracez HTTP/1.1\r\nHost: e24\r\n\r\n")
        .expect("request");
    let mut raw = String::new();
    conn.read_to_string(&mut raw).expect("response");
    let body = raw.split_once("\r\n\r\n").map(|(_, b)| b).expect("body");
    let doc = parse(body).expect("/tracez must be valid JSON");
    let trace_events = doc
        .get("traceEvents")
        .and_then(JsonValue::as_array)
        .expect("traceEvents array");
    assert!(!trace_events.is_empty());
    let slow = trace_events
        .iter()
        .filter(|e| e.get("name").and_then(JsonValue::as_str) == Some("slow_query"))
        .count();
    assert!(slow >= 1, "the tripped watchdog must appear in the scrape");
    let rendered_incidents = doc
        .get("incidents")
        .and_then(JsonValue::as_array)
        .expect("incidents array");
    assert!(!rendered_incidents.is_empty());
    admin.shutdown();

    println!(
        "causal chains ✓ (recovery {} kinds, wire id {} across {} frames, incident {} kinds); \
         traced ingest {:.1}% and serving {:.1}% of baseline; \
         /tracez scrape: {} events, {} incidents ✓\n",
        recovery_kinds.len(),
        wire.trace_id,
        decodes.len(),
        chain.len(),
        100.0 * ingest_ratio,
        100.0 * query_ratio,
        trace_events.len(),
        rendered_incidents.len(),
    );
}
