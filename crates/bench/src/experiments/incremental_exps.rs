//! Experiment E26: incremental epoch artifacts — O(changes) refresh.
//!
//! Every derived artifact (spanning forest, distance oracle, cut
//! Laplacian) is an exact function of the compacted net segment, and the
//! segment diff between consecutive epochs is computable in one merge
//! scan. Because the sketches are linear, applying the signed diff to the
//! retained pass state reproduces the full-rebuild state **bit for bit**
//! — so a low-churn epoch can refresh its artifacts by patching the
//! previous epoch's instead of rebuilding from the whole segment.
//!
//! The workload advances epochs over a dense live graph under batches of
//! known churn. At each churn level two identical tenant chains run side
//! by side: one forced down the patch path, one forced down the full
//! rebuild path. The headline (asserted, not just printed): at 1% churn
//! the patched refresh of all three artifacts is at least 5x faster than
//! the full rebuild, with bit-identical forest edges, oracle rows, and
//! cut values. Higher churn levels chart the crossover that motivates
//! the `churn_threshold` fallback knob.

use crate::Scale;
use dsg_graph::{gen, Edge, GraphStream, StreamUpdate, Vertex};
use dsg_service::{EpochSnapshot, GraphConfig, GraphRegistry};
use dsg_util::Table;
use std::collections::HashSet;
use std::time::Instant;

/// One churn level's measurement: medians over the trial epochs.
#[derive(Debug, Clone, Copy)]
pub struct RefreshSample {
    /// Median wall time to refresh all three artifacts by patching, ms.
    pub patch_ms: f64,
    /// Median wall time for the same refresh as full rebuilds, ms.
    pub rebuild_ms: f64,
    /// Live edges in the graph the epochs advance over.
    pub live_edges: usize,
    /// Segment-diff changes per epoch (deletions + insertions).
    pub delta_changes: usize,
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    xs[xs.len() / 2]
}

fn lcg(s: &mut u64) -> u64 {
    *s = s
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *s >> 33
}

/// Deterministic balanced churn batch: `k/2` deletions of live edges and
/// `k/2` insertions of fresh pairs, so the live size stays put while the
/// segment diff has ~`k` changes.
fn churn_batch(live: &mut HashSet<Edge>, n: usize, k: usize, rng: &mut u64) -> Vec<StreamUpdate> {
    let mut batch = Vec::with_capacity(k);
    let mut pool: Vec<Edge> = live.iter().copied().collect();
    pool.sort_unstable();
    for _ in 0..k / 2 {
        let e = pool.swap_remove((lcg(rng) as usize) % pool.len());
        live.remove(&e);
        batch.push(StreamUpdate::delete(e.u(), e.v()));
    }
    let mut added = 0;
    while added < k - k / 2 {
        let u = (lcg(rng) % n as u64) as Vertex;
        let v = (lcg(rng) % n as u64) as Vertex;
        if u == v {
            continue;
        }
        let e = Edge::new(u.min(v), u.max(v));
        if live.insert(e) {
            batch.push(StreamUpdate::insert(e.u(), e.v()));
            added += 1;
        }
    }
    batch
}

/// Builds all three artifacts; what the timers bracket.
fn build_all(snap: &EpochSnapshot) {
    let _ = snap.forest();
    let _ = snap.oracle();
    let _ = snap.cut_data();
}

/// Patched and full snapshots of the same stream position must agree on
/// every answer, bit for bit.
fn assert_identical(patched: &EpochSnapshot, full: &EpochSnapshot, ctx: &str) {
    let (fa, fb) = (patched.forest(), full.forest());
    assert_eq!(fa.result.edges, fb.result.edges, "forest diverged: {ctx}");
    assert_eq!(fa.labels, fb.labels, "labels diverged: {ctx}");
    let (oa, ob) = (patched.oracle(), full.oracle());
    let n = patched.num_vertices();
    for u in 0..n as Vertex {
        assert_eq!(
            oa.estimates_from(u),
            ob.estimates_from(u),
            "oracle row {u} diverged: {ctx}"
        );
    }
    let (ca, cb) = (patched.cut_data(), full.cut_data());
    assert_eq!(ca.sparsifier_edges, cb.sparsifier_edges, "{ctx}");
    let wa: Vec<u64> = ca
        .laplacian
        .edge_triples()
        .iter()
        .map(|&(_, _, w)| w.to_bits())
        .collect();
    let wb: Vec<u64> = cb
        .laplacian
        .edge_triples()
        .iter()
        .map(|&(_, _, w)| w.to_bits())
        .collect();
    assert_eq!(wa, wb, "laplacian weights diverged: {ctx}");
    for shift in 0..3 {
        let mut side = vec![false; n];
        for (v, s) in side.iter_mut().enumerate() {
            *s = (v + shift) % 3 == 0;
        }
        assert_eq!(
            ca.laplacian.cut_value(&side).to_bits(),
            cb.laplacian.cut_value(&side).to_bits(),
            "cut value diverged: {ctx}"
        );
    }
}

/// Runs two identical epoch chains — one patching, one rebuilding — for
/// `trials` churn epochs and returns the median refresh times. Also
/// asserts bit-identity between the chains at every epoch.
pub fn measure_refresh(n: usize, p: f64, churn_frac: f64, trials: usize) -> RefreshSample {
    let g = gen::erdos_renyi(n, p, 31);
    let base = GraphStream::insert_only(&g, 32);
    // A huge threshold forces the patch path at every churn level (the
    // production default 0.2 would cover the 1% column on its own);
    // threshold 0 forces the full path. The answers never depend on it.
    let patch_cfg = GraphConfig::new(n).seed(7).shards(2).churn_threshold(1.0e6);
    let full_cfg = GraphConfig::new(n).seed(7).shards(2).churn_threshold(0.0);
    let reg = GraphRegistry::new();
    let patch_g = reg.create("patch", patch_cfg).expect("fresh registry");
    let full_g = reg.create("full", full_cfg).expect("fresh registry");
    patch_g.apply(base.updates()).expect("valid stream");
    full_g.apply(base.updates()).expect("valid stream");
    build_all(&patch_g.advance_epoch());
    build_all(&full_g.advance_epoch());

    let mut live: HashSet<Edge> = g.edges().iter().copied().collect();
    let k = ((g.num_edges() as f64 * churn_frac).round() as usize).max(2);
    let mut rng = 0x5EED ^ churn_frac.to_bits();
    let (mut patch_times, mut full_times) = (Vec::new(), Vec::new());
    for trial in 0..trials {
        let batch = churn_batch(&mut live, n, k, &mut rng);
        patch_g.apply(&batch).expect("valid batch");
        full_g.apply(&batch).expect("valid batch");

        let patched = patch_g.advance_epoch();
        let t0 = Instant::now();
        build_all(&patched);
        patch_times.push(t0.elapsed().as_secs_f64() * 1e3);

        let rebuilt = full_g.advance_epoch();
        let t0 = Instant::now();
        build_all(&rebuilt);
        full_times.push(t0.elapsed().as_secs_f64() * 1e3);

        assert_identical(
            &patched,
            &rebuilt,
            &format!("churn {churn_frac}, trial {trial}"),
        );
    }
    // The chains must really have split paths: every post-warmup refresh
    // patched on one side and rebuilt on the other.
    let stats = patch_g.epoch_stats();
    assert_eq!(
        stats.incremental_builds,
        (trials * 3) as u64,
        "patch chain must patch every artifact every epoch"
    );
    assert!(stats.last_patch_nanos > 0, "patch duration recorded");
    assert_eq!(
        full_g.epoch_stats().incremental_builds,
        0,
        "threshold 0 must disable patching"
    );
    RefreshSample {
        patch_ms: median(patch_times),
        rebuild_ms: median(full_times),
        live_edges: g.num_edges(),
        delta_changes: k,
    }
}

/// E26: at 1% churn, patched artifact refresh is at least 5x faster than
/// a full rebuild — with bit-identical answers at every churn level.
pub fn incremental(scale: Scale) {
    let n = scale.pick(200usize, 110);
    let p = scale.pick(0.2, 0.3);
    let trials = scale.pick(3usize, 2);
    println!(
        "\n## E26 — incremental epoch artifacts (n = {n}, p = {p}, dense so the segment \
         dominates the diff; medians over {trials} churn epochs per level)\n"
    );

    let mut t = Table::new(&[
        "churn",
        "live edges",
        "diff changes",
        "patched refresh",
        "full rebuild",
        "speedup",
    ]);
    let mut at_one_pct = None;
    for churn_frac in [0.01, 0.10, 0.50] {
        let s = measure_refresh(n, p, churn_frac, trials);
        let speedup = s.rebuild_ms / s.patch_ms.max(1e-9);
        t.add_row(&[
            format!("{:.0}%", churn_frac * 100.0),
            s.live_edges.to_string(),
            s.delta_changes.to_string(),
            format!("{:.2} ms", s.patch_ms),
            format!("{:.2} ms", s.rebuild_ms),
            format!("{speedup:.1}x"),
        ]);
        if churn_frac == 0.01 {
            at_one_pct = Some((s, speedup));
        }
    }
    println!("{t}");

    let (s, speedup) = at_one_pct.expect("1% level measured");
    assert!(
        s.rebuild_ms >= 5.0 * s.patch_ms,
        "at 1% churn the patched refresh must be >= 5x faster than a full rebuild \
         (patch {:.2} ms vs rebuild {:.2} ms)",
        s.patch_ms,
        s.rebuild_ms
    );
    println!(
        "1% churn ({} changes over {} live edges): patched refresh {speedup:.1}x faster than \
         full rebuild, all answers bit-identical ✓ — higher churn erodes the win, which is \
         what the `churn_threshold` fallback (default 0.2) is for\n",
        s.delta_changes, s.live_edges
    );
}
