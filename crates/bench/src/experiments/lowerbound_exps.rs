//! Experiment E7: the Ω(nd) lower bound (Theorem 4) played as an INDEX
//! communication game against the actual streaming algorithm.

use crate::Scale;
use dsg_lowerbound::protocol::sweep_point;
use dsg_util::{space::human_bytes, Table};

/// E7: INDEX success probability vs message size on the hard instance.
pub fn lowerbound(scale: Scale) {
    println!("\n## E7 — Theorem 4: INDEX game vs the one-pass additive spanner\n");
    let blocks = scale.pick(8, 5);
    let instance_d = scale.pick(16, 12);
    let trials = scale.pick(6, 3);
    println!(
        "hard instance: {blocks} blocks of G({instance_d}, 1/2), n = {}, index bits = {}\n",
        blocks * instance_d,
        blocks * instance_d * (instance_d - 1) / 2
    );
    let n = blocks * instance_d;
    let mut t = Table::new(&[
        "algo d",
        "message (nd part)",
        "message (total)",
        "success prob",
        "edge retention",
        "distortion",
        "n/d bound",
    ]);
    for algo_d in [1usize, 2, 4, 8, 16] {
        let p = sweep_point(blocks, instance_d, algo_d, trials, 67 + algo_d as u64);
        t.add_row(&[
            algo_d.to_string(),
            human_bytes(p.mean_nd_bytes as usize),
            human_bytes(p.mean_message_bytes as usize),
            format!("{:.3}", p.mean_success),
            format!("{:.3}", p.mean_retention),
            format!("{:.1}", p.mean_distortion),
            (n / instance_d).to_string(),
        ]);
    }
    println!("{t}");
    println!(
        "(Theorem 4's contrapositive at laptop scale: with a sub-Ω(nd) nd-budget the\n\
         algorithm must either lose INDEX success or blow the n/d distortion bound —\n\
         watch the success and distortion columns against the d sweep)\n"
    );
}
