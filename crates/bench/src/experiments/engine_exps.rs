//! Experiment E18: the sharded ingest engine — throughput vs shard count
//! and end-to-end answer equivalence (sharded vs single-sketch).

use crate::Scale;
use dsg_core::engine::EngineBuilder;
use dsg_core::prelude::*;
use dsg_engine::{EdgeUpdate, EngineConfig, ShardedEngine};
use dsg_graph::components::is_spanning_forest;
use dsg_graph::gen;
use dsg_util::{space::human_bytes, Table};

/// E18: sharded AGM ingest throughput and snapshot sizes per shard count,
/// plus the answer-equivalence checks the engine's correctness rests on.
pub fn engine(scale: Scale) {
    let n = scale.pick(400usize, 150);
    let churn = 2.0;
    let seed = 42u64;
    let g = gen::erdos_renyi(n, scale.pick(0.04, 0.08), 7);
    let stream = GraphStream::with_churn(&g, churn, 8);
    let updates: Vec<EdgeUpdate> = stream
        .updates()
        .iter()
        .map(|up| EdgeUpdate::new(up.edge.index(n), up.delta as i128))
        .collect();
    println!(
        "\n## E18 — sharded ingest engine (n = {n}, {} updates, AGM sketch)\n",
        updates.len()
    );

    // Reference: one sketch, one thread, no engine.
    let t0 = std::time::Instant::now();
    let mut direct = dsg_agm::AgmSketch::new(n, seed);
    for up in &updates {
        LinearSketch::update(&mut direct, up.key, up.delta);
    }
    let direct_secs = t0.elapsed().as_secs_f64();
    let direct_forest = direct.spanning_forest();

    let mut t = Table::new(&[
        "shards",
        "wall time",
        "updates/s",
        "speedup",
        "snapshot bytes",
        "forest == direct",
    ]);
    let mut s1_secs = direct_secs;
    for shards in [1usize, 2, 4, 8] {
        let cfg = EngineConfig::new(shards).batch_size(256);
        let t0 = std::time::Instant::now();
        let mut eng = ShardedEngine::start(cfg, |_| dsg_agm::AgmSketch::new(n, seed));
        eng.push_all(&updates);
        let run = eng.finish();
        let secs = t0.elapsed().as_secs_f64();
        if shards == 1 {
            s1_secs = secs;
        }
        let snap_bytes: usize = run.snapshots().iter().map(Vec::len).sum();
        let merged = run.merged().expect("at least one shard");
        let forest = merged.spanning_forest();
        t.add_row(&[
            shards.to_string(),
            format!("{:.1} ms", secs * 1e3),
            format!("{:.0}", updates.len() as f64 / secs),
            format!("{:.2}x", s1_secs / secs),
            human_bytes(snap_bytes),
            (forest.edges == direct_forest.edges).to_string(),
        ]);
    }
    println!("{t}");
    println!(
        "(direct single-sketch baseline: {:.1} ms; speedup is vs the S=1 engine \
         and tracks available cores — this host reports {})",
        direct_secs * 1e3,
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1),
    );
    assert!(
        is_spanning_forest(&g, &direct_forest.edges),
        "direct forest invalid"
    );

    // End-to-end equivalence through the builder driver: forest via wire
    // snapshots, sharded two-pass spanner vs single-threaded.
    let b = EngineBuilder::new(n).shards(4).seed(seed);
    let wire_forest = b.spanning_forest_via_wire(&stream);
    println!(
        "wire-shipped snapshot path: forest == direct: {}",
        wire_forest.edges == direct_forest.edges
    );
    let small_n = scale.pick(60usize, 40);
    let sg = gen::erdos_renyi(small_n, 0.15, 9);
    let sstream = GraphStream::with_churn(&sg, 1.0, 10);
    let params = SpannerParams::new(2, 11);
    let sharded = EngineBuilder::new(small_n)
        .shards(4)
        .spanner(&sstream, params);
    let single = dsg_spanner::twopass::run_two_pass(&sstream, params);
    println!(
        "sharded two-pass spanner == single-threaded: {}",
        sharded.spanner.edges() == single.spanner.edges()
    );
    assert_eq!(
        sharded.spanner.edges(),
        single.spanner.edges(),
        "sharded spanner diverged"
    );
    println!();
}
