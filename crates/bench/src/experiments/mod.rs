//! One module per experiment family; each `run` prints the tables recorded
//! in `EXPERIMENTS.md`.

pub mod additive_exps;
pub mod audit_exps;
pub mod compaction_exps;
pub mod engine_exps;
pub mod incremental_exps;
pub mod lowerbound_exps;
pub mod partition_exps;
pub mod service_exps;
pub mod sketch_exps;
pub mod spanner_exps;
pub mod sparsifier_exps;
pub mod store_exps;
pub mod summary;
pub mod telemetry_exps;
pub mod tracing_exps;

use crate::Scale;

/// All experiment names, in E-index order.
pub const ALL: &[&str] = &[
    "spanner-size",
    "spanner-stretch",
    "spanner-space",
    "cluster-expansion",
    "cluster-diameter",
    "additive",
    "lowerbound",
    "sparsifier",
    "ss08",
    "sparse-recovery",
    "distinct",
    "agm-forest",
    "weighted",
    "baseline-compare",
    "connectivity-estimates",
    "ablation-budget",
    "ablation-levels",
    "engine",
    "service",
    "store",
    "compaction",
    "partition",
    "telemetry",
    "tracing",
    "audit",
    "incremental",
];

/// Dispatches one experiment by name. Returns false for unknown names.
pub fn run(name: &str, scale: Scale) -> bool {
    match name {
        "spanner-size" => spanner_exps::spanner_size(scale),
        "spanner-stretch" => spanner_exps::spanner_stretch(scale),
        "spanner-space" => spanner_exps::spanner_space(scale),
        "cluster-expansion" => spanner_exps::cluster_expansion(scale),
        "cluster-diameter" => spanner_exps::cluster_diameter(scale),
        "additive" => additive_exps::additive(scale),
        "lowerbound" => lowerbound_exps::lowerbound(scale),
        "sparsifier" => sparsifier_exps::sparsifier(scale),
        "ss08" => sparsifier_exps::ss08(scale),
        "sparse-recovery" => sketch_exps::sparse_recovery(scale),
        "distinct" => sketch_exps::distinct(scale),
        "agm-forest" => sketch_exps::agm_forest(scale),
        "weighted" => spanner_exps::weighted(scale),
        "baseline-compare" => spanner_exps::baseline_compare(scale),
        "connectivity-estimates" => sparsifier_exps::connectivity_estimates(scale),
        "ablation-budget" => spanner_exps::ablation_budget(scale),
        "ablation-levels" => spanner_exps::ablation_levels(scale),
        "engine" => engine_exps::engine(scale),
        "service" => service_exps::service(scale),
        "store" => store_exps::store(scale),
        "compaction" => compaction_exps::compaction(scale),
        "partition" => partition_exps::partition(scale),
        "telemetry" => telemetry_exps::telemetry(scale),
        "tracing" => tracing_exps::tracing(scale),
        "audit" => audit_exps::audit(scale),
        "incremental" => incremental_exps::incremental(scale),
        _ => return false,
    }
    true
}
