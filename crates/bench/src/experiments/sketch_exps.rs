//! Experiments E10–E12: the sketching substrates (Theorems 8, 9, 10).

use crate::Scale;
use dsg_agm::AgmSketch;
use dsg_graph::components::is_spanning_forest;
use dsg_graph::{gen, GraphStream};
use dsg_sketch::{DistinctEstimator, SparseRecovery};
use dsg_util::{space::human_bytes, stats::success_rate, SpaceUsage, Table};

/// E10 (Theorem 8's role): `SKETCH_B` exact-recovery rate vs support size.
pub fn sparse_recovery(scale: Scale) {
    println!("\n## E10 — SKETCH_B decode success vs support (budget B = 16)\n");
    let budget = 16;
    let trials = scale.pick(300u64, 100);
    let mut t = Table::new(&[
        "support",
        "success rate",
        "false decodes",
        "bytes (nominal)",
    ]);
    for support in [4usize, 8, 16, 24, 32, 48, 64, 96, 128] {
        let mut outcomes = Vec::new();
        let mut false_decodes = 0usize;
        let mut nominal = 0usize;
        for seed in 0..trials {
            let mut sk = SparseRecovery::new(budget, seed * 31 + support as u64);
            for i in 0..support as u64 {
                sk.update(i * 7919 + seed, 1 + (i as i128 % 3));
            }
            nominal = sk.nominal_bytes();
            match sk.decode() {
                Ok(items) => {
                    if items.len() == support {
                        outcomes.push(true);
                    } else {
                        false_decodes += 1;
                        outcomes.push(false);
                    }
                }
                Err(_) => outcomes.push(false),
            }
        }
        t.add_row(&[
            support.to_string(),
            format!("{:.3}", success_rate(outcomes)),
            false_decodes.to_string(),
            human_bytes(nominal),
        ]);
    }
    println!("{t}");
    println!("(success should be ~1.0 at or below B and collapse above it, failures detected)\n");
}

/// E11 (Theorem 9's role): distinct-elements accuracy vs space.
pub fn distinct(scale: Scale) {
    println!("\n## E11 — distinct elements: relative error vs sketch size\n");
    let true_support = scale.pick(50_000u64, 10_000);
    let trials = scale.pick(10u64, 4);
    let mut t = Table::new(&["eps param", "reps", "mean rel err", "max rel err", "bytes"]);
    for (eps, reps) in [(1.0, 5usize), (0.5, 7), (0.25, 9)] {
        let mut errs = Vec::new();
        let mut bytes = 0usize;
        for seed in 0..trials {
            let mut d = DistinctEstimator::new(20, eps, reps, seed * 13 + 1);
            for i in 0..true_support {
                d.update(i * 3 + 1, 1);
            }
            bytes = d.space_bytes();
            let est = d.estimate().expect("decodable") as f64;
            errs.push((est - true_support as f64).abs() / true_support as f64);
        }
        let mean = errs.iter().sum::<f64>() / errs.len() as f64;
        let max = errs.iter().cloned().fold(0.0f64, f64::max);
        t.add_row(&[
            format!("{eps:.2}"),
            reps.to_string(),
            format!("{mean:.3}"),
            format!("{max:.3}"),
            human_bytes(bytes),
        ]);
    }
    println!("{t}");
}

/// E12 (Theorem 10): AGM spanning forests under deletion churn.
pub fn agm_forest(scale: Scale) {
    println!("\n## E12 — AGM spanning forest correctness under churn\n");
    let ns: &[usize] = scale.pick(&[64, 128, 256][..], &[64, 128][..]);
    let trials = scale.pick(10u64, 4);
    let mut t = Table::new(&[
        "n",
        "churn",
        "correct forests",
        "decode failures",
        "bytes (touched)",
        "bytes (nominal)",
    ]);
    for &n in ns {
        for churn in [0.0, 1.0, 3.0] {
            let mut correct = Vec::new();
            let mut failures = 0usize;
            let mut touched = 0usize;
            let mut nominal = 0usize;
            for seed in 0..trials {
                let g = gen::erdos_renyi(n, 6.0 / n as f64, seed * 17 + n as u64);
                let stream = GraphStream::with_churn(&g, churn, seed * 19 + 3);
                let mut sk = AgmSketch::new(n, seed * 23 + 5);
                for up in stream.updates() {
                    sk.update(up.edge, up.delta as i128);
                }
                touched = sk.space_bytes();
                nominal = sk.nominal_bytes();
                let f = sk.spanning_forest();
                failures += f.decode_failures;
                correct.push(is_spanning_forest(&g, &f.edges));
            }
            t.add_row(&[
                n.to_string(),
                format!("{churn:.0}x"),
                format!("{:.2}", success_rate(correct)),
                failures.to_string(),
                human_bytes(touched),
                human_bytes(nominal),
            ]);
        }
    }
    println!("{t}");
}
