//! Experiment E23: always-on telemetry at (near) zero cost.
//!
//! The instrumentation contract of `dsg-telemetry` is that every handle
//! is pre-resolved at registration time, so a hot-path event is one
//! relaxed atomic RMW and a timer is two `Instant` reads — and a no-op
//! handle skips even those. This experiment holds the contract to its
//! number: the SAME ingest and serving workloads run against an active
//! registry and against `MetricRegistry::noop()`, interleaved and
//! best-of-N to cancel scheduler noise, and the instrumented run must
//! stay within a few percent of the no-op baseline. The query-side
//! workload is a full serving round — churn batch, epoch advance,
//! artifact (re)build, then the mixed read workload — because that is
//! the unit a serving deployment repeats; a bare cached-lookup
//! microbenchmark (~70 ns/query) would only measure the cost of
//! `Instant::now()` itself (~2×37 ns per timed span on this class of
//! hardware), which no clock-based tracing can amortize. A second part
//! runs the full durable stack live (ingest, epochs, pool queries, a
//! checkpoint, a crash-recovery reopen) and proves one scrape carries
//! non-zero series from all three layers — engine, service, store.

use crate::Scale;
use dsg_graph::{gen, GraphStream};
use dsg_service::{GraphConfig, GraphRegistry, LoadGen, MetricRegistry, QueryMix, QueryService};
use dsg_store::{DurableRegistry, ScratchDir, StoreOptions};
use dsg_util::Table;
use std::sync::Arc;
use std::time::Instant;

/// Ingest wall time (seconds) for one fresh graph on `registry`.
fn ingest_once(telemetry: &Arc<MetricRegistry>, config: GraphConfig, stream: &GraphStream) -> f64 {
    let registry = GraphRegistry::with_telemetry(Arc::clone(telemetry));
    let g = registry.create("t", config).expect("fresh registry");
    let t0 = Instant::now();
    for chunk in stream.updates().chunks(256) {
        g.apply(chunk).expect("valid stream");
    }
    g.advance_epoch();
    t0.elapsed().as_secs_f64()
}

/// One serving round (seconds): apply a churn delta, advance the epoch
/// (which discards the previous epoch's derived artifacts), then answer
/// the whole mixed read workload against the fresh snapshot — forest and
/// oracle rebuilds included, exactly as a live deployment pays them.
fn serving_round(
    g: &Arc<dsg_service::ServedGraph>,
    delta: &[dsg_graph::StreamUpdate],
    queries: &[dsg_service::Query],
) -> f64 {
    let t0 = Instant::now();
    g.apply(delta).expect("valid delta");
    g.advance_epoch();
    for q in queries {
        g.query(q).expect("valid query");
    }
    t0.elapsed().as_secs_f64()
}

/// E23: instrumented throughput within a few percent of a no-op-recorder
/// baseline, and one live scrape covering all three layers.
pub fn telemetry(scale: Scale) {
    let n = scale.pick(400usize, 120);
    let shards = 4usize;
    let trials = scale.pick(7usize, 5);
    let queries_per_trial = scale.pick(2000usize, 500);
    let g = gen::erdos_renyi(n, scale.pick(0.03, 0.08), 23);
    let stream = GraphStream::with_churn(&g, 1.5, 24);
    let config = GraphConfig::new(n).seed(9).shards(shards).batch_size(128);
    println!(
        "\n## E23 — telemetry overhead and cross-layer scrape (n = {n}, {} updates, \
         {shards} shards, best of {trials} interleaved trials)\n",
        stream.len(),
    );

    // Part 1: overhead. Interleave active/no-op trials and keep the best
    // of each, so one scheduler hiccup cannot bias either side.
    let active = Arc::new(MetricRegistry::new());
    let noop = Arc::new(MetricRegistry::noop());
    let mut best_ingest = [f64::INFINITY; 2]; // [noop, active]
    for _ in 0..trials {
        best_ingest[0] = best_ingest[0].min(ingest_once(&noop, config, &stream));
        best_ingest[1] = best_ingest[1].min(ingest_once(&active, config, &stream));
    }

    // Query side: one prepared graph per registry, the same deterministic
    // serving rounds (cut queries excluded from the mix: one KP12 build
    // would dwarf everything else in the round).
    let mix = QueryMix {
        cut: 0,
        ..QueryMix::read_heavy()
    };
    let queries = LoadGen::new(n, mix, 77).queries(queries_per_trial as u64);
    // The per-round churn delta: insert a star on even rounds, delete it
    // on odd rounds, so net multiplicities never go negative and both
    // sides replay the identical sequence.
    let star: Vec<dsg_graph::StreamUpdate> = (1..n as u32 / 2)
        .map(|v| dsg_graph::StreamUpdate::insert(0, v))
        .collect();
    let unstar: Vec<dsg_graph::StreamUpdate> = star
        .iter()
        .map(|up| dsg_graph::StreamUpdate::delete(up.edge.u(), up.edge.v()))
        .collect();
    let prepared: Vec<Arc<dsg_service::ServedGraph>> = [&noop, &active]
        .iter()
        .map(|reg| {
            let registry = GraphRegistry::with_telemetry(Arc::clone(reg));
            let g = registry.create("q", config).expect("fresh registry");
            g.apply(stream.updates()).expect("valid stream");
            g.advance_epoch();
            g
        })
        .collect();
    let mut best_query = [f64::INFINITY; 2];
    for round in 0..trials {
        let delta = if round % 2 == 0 { &star } else { &unstar };
        best_query[0] = best_query[0].min(serving_round(&prepared[0], delta, &queries));
        best_query[1] = best_query[1].min(serving_round(&prepared[1], delta, &queries));
    }

    let ingest_ratio = best_ingest[0] / best_ingest[1];
    let query_ratio = best_query[0] / best_query[1];
    let mut t = Table::new(&[
        "workload",
        "no-op recorder",
        "instrumented",
        "instrumented/baseline",
    ]);
    t.add_row(&[
        "ingest".to_string(),
        format!("{:.0} upd/s", stream.len() as f64 / best_ingest[0]),
        format!("{:.0} upd/s", stream.len() as f64 / best_ingest[1]),
        format!("{:.3}", ingest_ratio),
    ]);
    t.add_row(&[
        "serving round (epoch + mixed queries)".to_string(),
        format!("{:.0} q/s", queries.len() as f64 / best_query[0]),
        format!("{:.0} q/s", queries.len() as f64 / best_query[1]),
        format!("{:.3}", query_ratio),
    ]);
    println!("{t}");
    assert!(
        ingest_ratio >= 0.95,
        "instrumented ingest must stay within 5% of the no-op baseline \
         (ratio {ingest_ratio:.3})"
    );
    assert!(
        query_ratio >= 0.95,
        "instrumented queries must stay within 5% of the no-op baseline \
         (ratio {query_ratio:.3})"
    );
    // The active run actually recorded: the serving layer timed every
    // query it claims to have served.
    let timed: u64 = active
        .snapshot()
        .iter()
        .filter(|(name, _)| name.starts_with("dsg_service_query_nanos{graph=\"q\""))
        .filter_map(|(name, _)| active.snapshot().histogram(name).map(|h| h.count()))
        .sum();
    assert_eq!(
        timed as usize,
        trials * queries.len(),
        "every query of every active trial must be timed"
    );

    // Part 2: one live scrape, three layers. Full durable stack: create,
    // ingest, epoch, pool queries, checkpoint, crash, recover.
    let telemetry = Arc::new(MetricRegistry::new());
    let dir = ScratchDir::new("e23");
    let store = DurableRegistry::open_with_telemetry(
        dir.path(),
        StoreOptions::default(),
        Arc::clone(&telemetry),
    )
    .expect("fresh store");
    let tenant = store.create("live", config).expect("fresh tenant");
    for chunk in stream.updates().chunks(256) {
        tenant.apply(chunk).expect("valid stream");
    }
    tenant.advance_epoch().expect("epoch advance");
    let pool = QueryService::start(Arc::clone(store.shared()), 2);
    for q in queries.iter().take(64) {
        pool.query_blocking("live", q.clone()).expect("valid query");
    }
    pool.shutdown();
    tenant.checkpoint().expect("checkpoint");
    drop((tenant, store)); // crash
    let store = DurableRegistry::open_with_telemetry(
        dir.path(),
        StoreOptions::default(),
        Arc::clone(&telemetry),
    )
    .expect("recovery");
    assert_eq!(store.recovery_report().len(), 1);

    let snap = telemetry.snapshot();
    let live = |series: &str| -> u64 {
        snap.counter(series)
            .or_else(|| snap.histogram(series).map(|h| h.count()))
            .unwrap_or(0)
    };
    let per_layer = [
        ("engine", "dsg_engine_batches_sent_total{graph=\"live\"}"),
        (
            "service",
            "dsg_service_epoch_phase_nanos{graph=\"live\",phase=\"fork\"}",
        ),
        (
            "store",
            "dsg_store_wal_appended_bytes_total{graph=\"live\"}",
        ),
        (
            "store-recovery",
            "dsg_store_recovery_phase_nanos{graph=\"live\",phase=\"replay\"}",
        ),
    ];
    let scrape = telemetry.render_prometheus();
    for (layer, series) in per_layer {
        assert!(
            live(series) > 0,
            "{layer} layer must report non-zero telemetry ({series})"
        );
        let base = series.split('{').next().unwrap_or(series);
        assert!(
            scrape.contains(base),
            "prometheus scrape must carry the {layer} series {base}"
        );
    }
    println!(
        "live scrape: {} series across engine/service/store, {} exposition lines; \
         instrumented ingest {:.1}% and queries {:.1}% of baseline ✓\n",
        snap.len(),
        scrape.lines().count(),
        100.0 * ingest_ratio,
        100.0 * query_ratio,
    );
}
