//! Experiments E8, E9, E15: spectral sparsification (Corollary 2, the SS08
//! baseline of Theorem 7, and Lemma 22's connectivity estimates).

use crate::Scale;
use dsg_graph::{gen, GraphStream};
use dsg_sparsifier::estimate::{ConnectivityEstimator, EstimateParams, NestedSamplers};
use dsg_sparsifier::kp12::measure_quality;
use dsg_sparsifier::pipeline::run_sparsifier;
use dsg_sparsifier::{cut, resistance, spectral, ss08, Laplacian, SparsifierParams};
use dsg_util::{space::human_bytes, Table};

/// E8 (Corollary 2): exact spectral eps of the two-pass streaming
/// sparsifier vs sampling-round budget.
pub fn sparsifier(scale: Scale) {
    println!("\n## E8 — two-pass streaming sparsifier: eps vs sampling rounds\n");
    let n = scale.pick(32, 24);
    let g = gen::complete(n);
    println!(
        "input: K_{n} ({} edges), streamed with churn\n",
        g.num_edges()
    );
    let mut t = Table::new(&[
        "z_factor",
        "rounds Z",
        "instances",
        "edges",
        "exact eps",
        "cut dev",
        "sketch bytes",
    ]);
    let z_factors: &[f64] = scale.pick(&[0.02, 0.05, 0.1, 0.2][..], &[0.02, 0.08][..]);
    for &z_factor in z_factors {
        let mut params = SparsifierParams::new(2, 0.5, 77);
        params.z_factor = z_factor;
        params.j_factor = 0.4;
        let stream = GraphStream::with_churn(&g, 0.5, 83);
        let out = run_sparsifier(&stream, params);
        let q = measure_quality(&g, &out.sparsifier);
        let cut_dev = cut::max_cut_deviation(
            &Laplacian::from_graph(&g),
            &Laplacian::from_weighted(&out.sparsifier),
            200,
            89,
        );
        t.add_row(&[
            format!("{z_factor:.2}"),
            params.z_rounds(n).to_string(),
            (out.stats.estimate_instances + out.stats.sample_instances).to_string(),
            q.edges.to_string(),
            format!("{:.3}", q.epsilon),
            format!("{cut_dev:.3}"),
            human_bytes(out.stats.sketch_bytes),
        ]);
    }
    println!("{t}");
    println!("(eps should fall as Z grows — Lemma 22's averaging; size grows accordingly)\n");
}

/// E9 (Theorem 7): the SS08 effective-resistance baseline.
pub fn ss08(scale: Scale) {
    println!("\n## E9 — SS08 baseline: resistance sampling quality\n");
    let n = scale.pick(64, 40);
    let g = gen::with_random_weights(&gen::complete(n), 1.0, 1.0, 91);
    let mut t = Table::new(&["eps target", "oversample", "edges", "of m", "exact eps"]);
    for (eps, oversample) in [(0.8, 0.5), (0.5, 0.5), (0.3, 1.0)] {
        let h = ss08::sparsify(&g, eps, oversample, 97);
        let measured = spectral::spectral_epsilon(
            &Laplacian::from_weighted(&g),
            &Laplacian::from_weighted(&h),
        );
        t.add_row(&[
            format!("{eps:.1}"),
            format!("{oversample:.1}"),
            h.num_edges().to_string(),
            format!(
                "{:.1}%",
                100.0 * h.num_edges() as f64 / g.num_edges() as f64
            ),
            format!("{measured:.3}"),
        ]);
    }
    println!("{t}");
}

/// E15 (Lemma 22 / equation (1)): `q̂(e)` vs exact effective resistance.
pub fn connectivity_estimates(scale: Scale) {
    println!("\n## E15 — robust connectivity estimates q̂ vs effective resistance\n");
    let clique = scale.pick(12, 8);
    let g = gen::barbell(clique, 2);
    let n = g.num_vertices();
    println!("input: barbell of two K_{clique} with a 2-edge bridge (n={n})\n");
    let k = 2;
    let params = EstimateParams::for_graph(n, 1 << k);
    let samplers = NestedSamplers::new(params.j_reps, params.t_levels, 101);
    let est = ConnectivityEstimator::from_graph_offline(&g, params, &samplers, k, 103);
    let l = Laplacian::from_graph(&g);
    // Bucket edges by resistance and report mean q̂ per bucket.
    let mut rows: Vec<(f64, f64)> = resistance::all_edge_resistances(&l)
        .into_iter()
        .map(|(e, _, r)| (r, est.query(e)))
        .collect();
    rows.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
    let mut t = Table::new(&[
        "R_e bucket",
        "edges",
        "mean q-hat",
        "min q-hat",
        "max q-hat",
    ]);
    let buckets = [(0.0, 0.25), (0.25, 0.75), (0.75, 1.01)];
    for (lo, hi) in buckets {
        let sel: Vec<f64> = rows
            .iter()
            .filter(|(r, _)| *r >= lo && *r < hi)
            .map(|(_, q)| *q)
            .collect();
        if sel.is_empty() {
            continue;
        }
        let mean = sel.iter().sum::<f64>() / sel.len() as f64;
        let min = sel.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = sel.iter().cloned().fold(0.0f64, f64::max);
        t.add_row(&[
            format!("[{lo:.2}, {hi:.2})"),
            sel.len().to_string(),
            format!("{mean:.4}"),
            format!("{min:.4}"),
            format!("{max:.4}"),
        ]);
    }
    println!("{t}");
    println!("(q̂ must grow with R_e — equation (1): q̂(e) = Ω(R_e / λ^2))\n");
}
