//! The sketch wire format: versioned, checksummed snapshot frames.
//!
//! Linear sketches are only useful in the paper's distributed scenario —
//! updates "distributed and presented online … on multiple servers" — if a
//! shard can *ship* its sketch to a coordinator. This module defines the
//! byte-level frame every [`crate::LinearSketch`] snapshot travels in:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  "DSGW"
//! 4       2     format version (little-endian u16, 1 or 2)
//! 6       2     sketch kind tag (see the registry below)
//! 8       8     payload length in bytes (little-endian u64)
//! 16      8     FNV-1a checksum of the payload (little-endian u64)
//! 24      …     payload
//! 24+len  12    trace trailer "DSGT" + u64 trace id (version 2 only)
//! ```
//!
//! Version 2 ([`VERSION_TRACED`]) frames append an optional **trace
//! trailer** carrying the causal trace id of the request that produced
//! the frame, so causality survives `advance_epoch_via_wire` and future
//! shard→coordinator hops. The checksum covers only the payload — a
//! traced frame decodes to exactly the same sketch as its untraced twin,
//! and version-1 readers of [`peek_kind`] still see the header. Readers
//! of both versions go through the same [`open_frame`], which validates
//! the trailer's magic and length when present.
//!
//! The payload never contains hash functions: every sketch's randomness is
//! a deterministic function of its constructor parameters (seeds flow
//! through [`dsg_hash::SeedTree`]), so a snapshot carries only the
//! parameters and the linear state. The coordinator rebuilds the hash
//! machinery from the parameters and trusts *shared-seed determinism* —
//! the property the paper calls randomness "agreed upon" in advance — to
//! make the rebuilt sketch bit-identical to the shard's. `DESIGN.md`
//! ("Wire format and shared-seed determinism") records the argument.
//!
//! All multi-byte integers are little-endian. Map-shaped state (IBLT
//! cells, table buckets) is serialized in sorted key order, so equal
//! sketch states produce equal bytes — tests compare snapshots directly.
//!
//! # Kind registry
//!
//! | tag | sketch |
//! |---|---|
//! | 1 | [`crate::SparseRecovery`] |
//! | 2 | [`crate::L0Sampler`] |
//! | 3 | [`crate::DistinctEstimator`] |
//! | 4 | [`crate::LinearHashTable`] |
//! | 5 | [`crate::CountSketch`] |
//! | 6 | [`crate::GuardedSketch`] |
//! | 7 | [`crate::VectorFingerprint`] |
//! | 8 | `dsg_agm::AgmSketch` (reserved here, implemented in `dsg-agm`) |
//! | 9 | `dsg_store` checkpoint, legacy raw-log format (retired: carried the full O(stream) update log; readers reject it with a typed error) |
//! | 10 | `dsg_store` checkpoint v2 (a frame *of* frames: per-shard snapshots plus the compacted net-edge segment and engine/WAL metadata; reserved here, implemented in `dsg-store`) |

/// Frame magic: identifies a dynamic-stream-graph wire snapshot.
pub const MAGIC: [u8; 4] = *b"DSGW";

/// Current wire-format version. Bump on any layout change; `open_frame`
/// rejects versions it does not understand instead of misreading them.
pub const VERSION: u16 = 1;

/// Wire-format version of frames carrying a **trace trailer**: the frame
/// is byte-identical to a [`VERSION`] frame except that exactly
/// [`TRAILER_BYTES`] follow the payload — [`TRAILER_MAGIC`] plus the
/// little-endian `u64` trace id of the request that produced the frame.
/// The header checksum still covers only the payload, so
/// [`attach_trace`] can upgrade an already-finished frame in place and a
/// traced frame decodes to exactly the same sketch as its untraced twin.
pub const VERSION_TRACED: u16 = 2;

/// Size of the fixed frame header in bytes.
pub const HEADER_BYTES: usize = 24;

/// Magic opening a [`VERSION_TRACED`] trace trailer ("DSG Trace").
pub const TRAILER_MAGIC: [u8; 4] = *b"DSGT";

/// Size of the [`VERSION_TRACED`] trailer: magic plus a `u64` trace id.
pub const TRAILER_BYTES: usize = 12;

/// Kind tag of [`crate::SparseRecovery`].
pub const KIND_SPARSE_RECOVERY: u16 = 1;
/// Kind tag of [`crate::L0Sampler`].
pub const KIND_L0_SAMPLER: u16 = 2;
/// Kind tag of [`crate::DistinctEstimator`].
pub const KIND_DISTINCT: u16 = 3;
/// Kind tag of [`crate::LinearHashTable`].
pub const KIND_HASHTABLE: u16 = 4;
/// Kind tag of [`crate::CountSketch`].
pub const KIND_COUNTSKETCH: u16 = 5;
/// Kind tag of [`crate::GuardedSketch`].
pub const KIND_GUARDED: u16 = 6;
/// Kind tag of [`crate::VectorFingerprint`].
pub const KIND_FINGERPRINT: u16 = 7;
/// Kind tag of `dsg_agm::AgmSketch` (reserved; the impl lives in dsg-agm).
pub const KIND_AGM: u16 = 8;
/// Kind tag of the **retired** raw-log `dsg_store` checkpoint format. Its
/// payload nested the full update log — O(stream length) on disk — and no
/// reader remains: `dsg-store` rejects frames of this kind with a loud
/// typed error rather than misreading them under the v2 layout.
pub const KIND_CHECKPOINT: u16 = 9;
/// Kind tag of the **retired** v2 `dsg_store` checkpoint format. Its
/// payload carried one global compacted net-edge segment next to shard
/// frames in "canonical factorization" (the merged summary in shard 0,
/// zero sketches elsewhere) — a workaround for the round-robin engine,
/// whose raw forks grew with churn residue. The edge-partitioned engine
/// made true per-shard frames canonical and the layout moved to
/// [`KIND_CHECKPOINT_V3`]; `dsg-store` rejects v2 frames with a loud
/// typed error rather than misreading them.
pub const KIND_CHECKPOINT_V2: u16 = 10;
/// Kind tag of a `dsg_store` checkpoint file, format v3 (reserved; the
/// impl lives in dsg-store). The payload nests, **per shard**, the
/// worker's true sketch frame plus the compacted net-edge segment of the
/// edges that shard owns under the engine's hash partition, each segment
/// in canonical sorted order — so checkpoint bytes are bounded by the
/// live graph, deterministic, and restore can re-seed every worker's
/// sketch *and* compacted state. Checkpoints reuse the sketch frame
/// discipline — magic, version, kind, length, FNV-1a checksum — so a
/// corrupt or truncated checkpoint is rejected by the same
/// [`open_frame`] validation path as any shard snapshot.
pub const KIND_CHECKPOINT_V3: u16 = 11;

/// Why a snapshot could not be decoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the declared content did.
    Truncated,
    /// The frame does not start with [`MAGIC`].
    BadMagic,
    /// The frame version is newer than this build understands.
    BadVersion(u16),
    /// The frame holds a different sketch kind than requested.
    WrongKind {
        /// The kind tag the caller asked to decode.
        expected: u16,
        /// The kind tag found in the frame header.
        found: u16,
    },
    /// The payload checksum does not match the header (corruption).
    BadChecksum,
    /// The payload violates a structural invariant of its sketch kind.
    Malformed(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "snapshot truncated"),
            WireError::BadMagic => write!(f, "not a sketch snapshot (bad magic)"),
            WireError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::WrongKind { expected, found } => {
                write!(f, "wrong sketch kind: expected {expected}, found {found}")
            }
            WireError::BadChecksum => write!(f, "payload checksum mismatch"),
            WireError::Malformed(what) => write!(f, "malformed payload: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// FNV-1a over `bytes` — cheap, dependency-free corruption detection.
/// (Not cryptographic; transport-level integrity only.)
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Wraps a finished payload in a checksummed header.
pub fn finish_frame(kind: u16, payload: Vec<u8>) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_BYTES + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&kind.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&checksum(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Wraps a finished payload in a checksummed [`VERSION_TRACED`] header
/// and appends the trace trailer. Equivalent to
/// `attach_trace(finish_frame(kind, payload), trace_id)` without the
/// second pass.
pub fn finish_frame_traced(kind: u16, payload: Vec<u8>, trace_id: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_BYTES + payload.len() + TRAILER_BYTES);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION_TRACED.to_le_bytes());
    out.extend_from_slice(&kind.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&checksum(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out.extend_from_slice(&TRAILER_MAGIC);
    out.extend_from_slice(&trace_id.to_le_bytes());
    out
}

/// Upgrades a finished [`VERSION`] frame to [`VERSION_TRACED`] by
/// rewriting the version field and appending the trace trailer. The
/// checksum covers only the payload, so no re-hash is needed. A frame
/// that is already traced has its trailer's id overwritten instead.
///
/// # Errors
///
/// [`WireError::Truncated`] / [`WireError::BadMagic`] if `frame` is not
/// a frame, [`WireError::BadVersion`] for versions this build does not
/// understand.
pub fn attach_trace(mut frame: Vec<u8>, trace_id: u64) -> Result<Vec<u8>, WireError> {
    let header = peek_kind(&frame)?;
    match header.version {
        VERSION => {
            frame[4..6].copy_from_slice(&VERSION_TRACED.to_le_bytes());
            frame.extend_from_slice(&TRAILER_MAGIC);
            frame.extend_from_slice(&trace_id.to_le_bytes());
            Ok(frame)
        }
        VERSION_TRACED => {
            let len = frame.len();
            if len < TRAILER_BYTES {
                return Err(WireError::Truncated);
            }
            frame[len - 8..].copy_from_slice(&trace_id.to_le_bytes());
            Ok(frame)
        }
        v => Err(WireError::BadVersion(v)),
    }
}

/// Reads the trace id a frame carries: `Some(id)` for a valid
/// [`VERSION_TRACED`] frame, `None` for a plain [`VERSION`] frame.
///
/// # Errors
///
/// [`WireError::Truncated`] if a traced frame's trailer (or the frame
/// itself) is cut short, [`WireError::BadMagic`] for a non-frame or a
/// corrupt trailer magic, [`WireError::BadVersion`] for unknown
/// versions.
pub fn frame_trace_id(bytes: &[u8]) -> Result<Option<u64>, WireError> {
    let header = peek_kind(bytes)?;
    match header.version {
        VERSION => Ok(None),
        VERSION_TRACED => {
            let start = HEADER_BYTES
                .checked_add(header.payload_len)
                .ok_or(WireError::Truncated)?;
            let trailer = bytes.get(start..).ok_or(WireError::Truncated)?;
            if trailer.len() < TRAILER_BYTES {
                return Err(WireError::Truncated);
            }
            if trailer[0..4] != TRAILER_MAGIC {
                return Err(WireError::BadMagic);
            }
            let id = u64::from_le_bytes(trailer[4..12].try_into().expect("8 bytes"));
            Ok(Some(id))
        }
        v => Err(WireError::BadVersion(v)),
    }
}

/// What a frame header declares about its payload, readable without
/// decoding (or even checksumming) the payload itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// The sketch kind tag (see the kind registry in the module docs).
    pub kind: u16,
    /// The wire-format version the frame was written under.
    pub version: u16,
    /// Declared payload length in bytes.
    pub payload_len: usize,
}

/// Header-only inspection of a snapshot frame: magic, kind, version, and
/// declared payload length, in O(1) and without touching the payload.
///
/// This is the cheap routing/validation step a registry or coordinator
/// runs on every incoming frame *before* committing to a full decode: it
/// can reject a frame of the wrong kind or a future version immediately.
/// Unlike [`open_frame`] it deliberately does **not** verify the checksum
/// or the payload length against the buffer — corruption is still caught
/// by the full decode that follows an accepted frame.
///
/// # Errors
///
/// [`WireError::Truncated`] if the buffer is shorter than a header,
/// [`WireError::BadMagic`] if it is not a snapshot frame. A version this
/// build does not understand is *returned*, not rejected — the caller
/// decides whether unknown versions are an error.
pub fn peek_kind(bytes: &[u8]) -> Result<FrameHeader, WireError> {
    if bytes.len() < HEADER_BYTES {
        return Err(WireError::Truncated);
    }
    if bytes[0..4] != MAGIC {
        return Err(WireError::BadMagic);
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    let kind = u16::from_le_bytes([bytes[6], bytes[7]]);
    let payload_len = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes")) as usize;
    Ok(FrameHeader {
        kind,
        version,
        payload_len,
    })
}

/// Validates a frame (magic, version, kind, length, checksum) and returns
/// a reader over its payload.
///
/// # Errors
///
/// Any [`WireError`] the header checks can produce.
pub fn open_frame(kind: u16, bytes: &[u8]) -> Result<ByteReader<'_>, WireError> {
    if bytes.len() < HEADER_BYTES {
        return Err(WireError::Truncated);
    }
    if bytes[0..4] != MAGIC {
        return Err(WireError::BadMagic);
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version != VERSION && version != VERSION_TRACED {
        return Err(WireError::BadVersion(version));
    }
    let found = u16::from_le_bytes([bytes[6], bytes[7]]);
    if found != kind {
        return Err(WireError::WrongKind {
            expected: kind,
            found,
        });
    }
    let len = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes")) as usize;
    let sum = u64::from_le_bytes(bytes[16..24].try_into().expect("8 bytes"));
    let rest = &bytes[HEADER_BYTES..];
    let payload = match version {
        // A v1 frame is exactly header + payload.
        VERSION => {
            if rest.len() != len {
                return Err(WireError::Truncated);
            }
            rest
        }
        // A traced frame carries exactly one trailer after the payload;
        // validate it here so a truncated or corrupt trailer cannot pass
        // as a clean frame (the checksum never covers the trailer).
        _ => {
            if rest.len() != len + TRAILER_BYTES {
                return Err(WireError::Truncated);
            }
            if rest[len..len + 4] != TRAILER_MAGIC {
                return Err(WireError::BadMagic);
            }
            &rest[..len]
        }
    };
    if checksum(payload) != sum {
        return Err(WireError::BadChecksum);
    }
    Ok(ByteReader::new(payload))
}

/// A bounds-checked little-endian cursor over a snapshot payload.
#[derive(Debug)]
pub struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Wraps a raw payload (already header-validated).
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    /// Bytes remaining to read.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Fails unless every payload byte was consumed — catches trailing
    /// garbage that a checksum alone would accept.
    pub fn expect_end(&self) -> Result<(), WireError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError::Malformed("trailing bytes"))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads a `u16`.
    pub fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2")))
    }

    /// Reads a `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    /// Reads a `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    /// Reads an `i128`.
    pub fn i128(&mut self) -> Result<i128, WireError> {
        Ok(i128::from_le_bytes(self.take(16)?.try_into().expect("16")))
    }

    /// Reads a `usize` stored as `u64`, guarding against lengths that
    /// cannot fit in memory anyway (corrupt frames must not trigger huge
    /// pre-allocations).
    pub fn read_len(&mut self) -> Result<usize, WireError> {
        let v = self.u64()?;
        if v > (1 << 40) {
            return Err(WireError::Malformed("implausible length"));
        }
        Ok(v as usize)
    }

    /// Reads a length-prefixed nested byte block (a full inner frame).
    pub fn block(&mut self) -> Result<&'a [u8], WireError> {
        let n = self.read_len()?;
        self.take(n)
    }

    /// Reads exactly `n` raw bytes — for fixed-width records whose layout
    /// a caller owns (e.g. the store's 17-byte `StreamUpdate` encoding).
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        self.take(n)
    }
}

/// Writes a `u16`.
pub fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Writes a `u32`.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Writes a `u64`.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Writes an `i128`.
pub fn put_i128(out: &mut Vec<u8>, v: i128) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Writes a `usize` as `u64` (the length convention of this format).
pub fn put_len(out: &mut Vec<u8>, v: usize) {
    put_u64(out, v as u64);
}

/// Writes a length-prefixed nested byte block.
pub fn put_block(out: &mut Vec<u8>, block: &[u8]) {
    put_len(out, block.len());
    out.extend_from_slice(block);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let payload = vec![1u8, 2, 3, 4, 5];
        let frame = finish_frame(KIND_SPARSE_RECOVERY, payload.clone());
        let mut r = open_frame(KIND_SPARSE_RECOVERY, &frame).unwrap();
        assert_eq!(r.remaining(), 5);
        assert_eq!(r.take(5).unwrap(), &payload[..]);
        r.expect_end().unwrap();
    }

    #[test]
    fn wrong_kind_rejected() {
        let frame = finish_frame(KIND_L0_SAMPLER, vec![]);
        match open_frame(KIND_SPARSE_RECOVERY, &frame) {
            Err(WireError::WrongKind { expected, found }) => {
                assert_eq!(expected, KIND_SPARSE_RECOVERY);
                assert_eq!(found, KIND_L0_SAMPLER);
            }
            other => panic!("expected WrongKind, got {other:?}"),
        }
    }

    #[test]
    fn corruption_detected() {
        let mut frame = finish_frame(KIND_COUNTSKETCH, vec![9u8; 32]);
        let last = frame.len() - 1;
        frame[last] ^= 0xFF;
        assert!(matches!(
            open_frame(KIND_COUNTSKETCH, &frame),
            Err(WireError::BadChecksum)
        ));
    }

    #[test]
    fn truncation_detected() {
        let frame = finish_frame(KIND_COUNTSKETCH, vec![9u8; 32]);
        assert!(matches!(
            open_frame(KIND_COUNTSKETCH, &frame[..frame.len() - 3]),
            Err(WireError::Truncated)
        ));
        assert!(matches!(
            open_frame(KIND_COUNTSKETCH, &frame[..10]),
            Err(WireError::Truncated)
        ));
    }

    #[test]
    fn bad_magic_rejected() {
        let mut frame = finish_frame(KIND_COUNTSKETCH, vec![]);
        frame[0] = b'X';
        assert!(matches!(
            open_frame(KIND_COUNTSKETCH, &frame),
            Err(WireError::BadMagic)
        ));
    }

    #[test]
    fn future_version_rejected() {
        let mut frame = finish_frame(KIND_COUNTSKETCH, vec![]);
        frame[4] = 0xFE;
        frame[5] = 0xFF;
        assert!(matches!(
            open_frame(KIND_COUNTSKETCH, &frame),
            Err(WireError::BadVersion(_))
        ));
    }

    #[test]
    fn reader_primitives_roundtrip() {
        let mut out = Vec::new();
        put_u16(&mut out, 7);
        put_u32(&mut out, 1 << 20);
        put_u64(&mut out, u64::MAX - 3);
        put_i128(&mut out, -12345678901234567890i128);
        put_block(&mut out, b"abc");
        let mut r = ByteReader::new(&out);
        assert_eq!(r.u16().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 1 << 20);
        assert_eq!(r.u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.i128().unwrap(), -12345678901234567890i128);
        assert_eq!(r.block().unwrap(), b"abc");
        r.expect_end().unwrap();
    }

    #[test]
    fn peek_reads_header_without_decoding() {
        let frame = finish_frame(KIND_GUARDED, vec![1, 2, 3]);
        let h = peek_kind(&frame).unwrap();
        assert_eq!(h.kind, KIND_GUARDED);
        assert_eq!(h.version, VERSION);
        assert_eq!(h.payload_len, 3);
        // A corrupt payload is invisible to the peek (and that's the
        // point: peek routes, open_frame verifies).
        let mut corrupt = frame.clone();
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0xFF;
        assert_eq!(peek_kind(&corrupt).unwrap(), h);
        // Future versions are reported, not rejected.
        let mut future = frame;
        future[4] = 0x09;
        assert_eq!(peek_kind(&future).unwrap().version, 9);
    }

    #[test]
    fn peek_rejects_non_frames() {
        assert!(matches!(peek_kind(&[0u8; 10]), Err(WireError::Truncated)));
        let mut frame = finish_frame(KIND_L0_SAMPLER, vec![]);
        frame[2] = b'!';
        assert!(matches!(peek_kind(&frame), Err(WireError::BadMagic)));
    }

    #[test]
    fn traced_frame_roundtrips_and_decodes_identically() {
        let payload = vec![1u8, 2, 3, 4, 5];
        let traced = finish_frame_traced(KIND_GUARDED, payload.clone(), 0xDEAD_BEEF);
        assert_eq!(peek_kind(&traced).unwrap().version, VERSION_TRACED);
        assert_eq!(frame_trace_id(&traced).unwrap(), Some(0xDEAD_BEEF));
        let mut r = open_frame(KIND_GUARDED, &traced).unwrap();
        assert_eq!(r.take(5).unwrap(), &payload[..]);
        r.expect_end().unwrap();
    }

    #[test]
    fn attach_trace_upgrades_v1_frames() {
        let plain = finish_frame(KIND_COUNTSKETCH, vec![7u8; 16]);
        assert_eq!(frame_trace_id(&plain).unwrap(), None);
        let traced = attach_trace(plain.clone(), 42).unwrap();
        assert_eq!(traced.len(), plain.len() + TRAILER_BYTES);
        assert_eq!(frame_trace_id(&traced).unwrap(), Some(42));
        // Same bytes as building traced from scratch.
        assert_eq!(
            traced,
            finish_frame_traced(KIND_COUNTSKETCH, vec![7u8; 16], 42)
        );
        // Re-attaching overwrites the id without growing the frame.
        let retraced = attach_trace(traced, 99).unwrap();
        assert_eq!(retraced.len(), plain.len() + TRAILER_BYTES);
        assert_eq!(frame_trace_id(&retraced).unwrap(), Some(99));
        // The payload decodes identically either way.
        let mut r = open_frame(KIND_COUNTSKETCH, &retraced).unwrap();
        assert_eq!(r.take(16).unwrap(), &[7u8; 16][..]);
        r.expect_end().unwrap();
    }

    #[test]
    fn truncated_or_corrupt_trailer_rejected() {
        let traced = finish_frame_traced(KIND_L0_SAMPLER, vec![1, 2, 3], 5);
        // Trailer cut short.
        let cut = &traced[..traced.len() - 4];
        assert!(matches!(
            open_frame(KIND_L0_SAMPLER, cut),
            Err(WireError::Truncated)
        ));
        assert!(matches!(frame_trace_id(cut), Err(WireError::Truncated)));
        // Trailer magic corrupted.
        let mut bad = traced.clone();
        let at = bad.len() - TRAILER_BYTES;
        bad[at] = b'X';
        assert!(matches!(
            open_frame(KIND_L0_SAMPLER, &bad),
            Err(WireError::BadMagic)
        ));
        assert!(matches!(frame_trace_id(&bad), Err(WireError::BadMagic)));
        // Payload corruption is still caught under the traced version.
        let mut corrupt = traced;
        corrupt[HEADER_BYTES] ^= 0xFF;
        assert!(matches!(
            open_frame(KIND_L0_SAMPLER, &corrupt),
            Err(WireError::BadChecksum)
        ));
    }

    #[test]
    fn frame_trace_id_rejects_unknown_versions() {
        let mut frame = finish_frame(KIND_GUARDED, vec![]);
        frame[4] = 0x09;
        assert!(matches!(
            frame_trace_id(&frame),
            Err(WireError::BadVersion(9))
        ));
        assert!(matches!(
            attach_trace(frame, 1),
            Err(WireError::BadVersion(9))
        ));
    }

    #[test]
    fn implausible_length_rejected() {
        let mut out = Vec::new();
        put_u64(&mut out, 1 << 50);
        let mut r = ByteReader::new(&out);
        assert!(matches!(r.read_len(), Err(WireError::Malformed(_))));
    }
}
