//! Distinct-elements (support size / L0 norm) estimation.
//!
//! Theorem 9 of the paper (after Kane–Nelson–Woodruff) provides a linear
//! sketch estimating the number of distinct elements of a dynamic vector to
//! within `(1 ± eps)` with probability `1 - delta`, used in two places:
//!
//! * as the decodability guard for every `SKETCH_B` instantiation ("declare
//!   the sketch to be not decodable when the number of distinct elements is
//!   estimated to be above `2B`");
//! * as the degree estimate `d_u` in the additive-spanner Algorithm 3.
//!
//! The construction: for each of `reps` independent repetitions, subsample
//! coordinates at rates `2^{-j}` and keep a small sparse-recovery sketch per
//! level. The estimate of one repetition is `count · 2^{j*}` where `j*` is
//! the densest level that decodes; the median over repetitions gives the
//! KNW-style guarantee shape (see `DESIGN.md` for the substitution note).
//!
//! Within one repetition the levels are **nested**: a single
//! `O(log n)`-wise hash `h_r` is drawn per repetition and level `j` keeps
//! the keys with `h_r(key) < p·2^{-j}` — exactly the KNW geometric-level
//! scheme. This is deliberate (and is what makes updates cheap): the
//! original per-level independent samplers cost a full polynomial hash
//! evaluation *per level per repetition* on every update (~23 µs at 20
//! universe bits); one hash per repetition plus an early-exit over the
//! nested thresholds is an order of magnitude cheaper, and the per-level
//! `(1±eps)` concentration argument only ever looks at one level at a
//! time, so nesting does not weaken it. Repetitions stay mutually
//! independent, which is all the median needs.
//!
//! Split into [`DistinctFamily`] (shared hashes) and per-vertex
//! [`DistinctState`]s so that Algorithm 3's `n` degree estimators cost cells
//! rather than hash tables. [`DistinctEstimator`] bundles both.

use crate::error::DecodeError;
use crate::ssparse::{RecoveryFamily, RecoveryState};
use crate::wire::{self, WireError};
use crate::LinearSketch;
use dsg_hash::{field, KWiseHash, SeedTree};
use dsg_util::SpaceUsage;

/// Independence of the per-repetition level hash; `O(log n)`-wise is what
/// the paper's concentration arguments consume.
const LEVEL_INDEPENDENCE: usize = dsg_hash::subset::DEFAULT_INDEPENDENCE;

/// One repetition: a level hash plus a recovery family per nested level.
#[derive(Debug, Clone)]
struct DistinctRep {
    /// Level-j membership is `level_hash(key) < p >> j` (nested).
    level_hash: KWiseHash,
    levels: Vec<RecoveryFamily>,
}

/// Shared randomness of a distinct-elements estimator.
///
/// # Examples
///
/// ```
/// use dsg_sketch::distinct::DistinctFamily;
///
/// let fam = DistinctFamily::new(16, 0.5, 5, 7);
/// let mut st = fam.new_state();
/// for i in 0..12u64 {
///     fam.update(&mut st, i, 1);
/// }
/// assert_eq!(fam.estimate(&st).unwrap(), 12); // small supports are exact
/// ```
#[derive(Debug, Clone)]
pub struct DistinctFamily {
    reps: Vec<DistinctRep>,
    budget: usize,
    universe_bits: u32,
    seed: u64,
    family_id: u64,
}

/// Per-instance cells of a distinct-elements estimator.
#[derive(Debug, Clone, Default)]
pub struct DistinctState {
    reps: Vec<Vec<RecoveryState>>,
    family_id: u64,
}

impl DistinctFamily {
    /// Creates a family for coordinates in `[0, 2^universe_bits)` with
    /// target relative error `eps`, using `reps` repetitions (median).
    ///
    /// The per-level budget is `ceil(4 / eps^2)`, so a decodable level holds
    /// enough surviving coordinates for `(1±eps)` concentration.
    ///
    /// # Panics
    ///
    /// Panics if `eps` is not in `(0, 1]`, `reps == 0`, or
    /// `universe_bits > 60`.
    pub fn new(universe_bits: u32, eps: f64, reps: usize, seed: u64) -> Self {
        assert!(eps > 0.0 && eps <= 1.0, "eps {eps} outside (0, 1]");
        let budget = (4.0 / (eps * eps)).ceil() as usize;
        Self::with_budget(universe_bits, budget, reps, seed)
    }

    /// Creates a family with an explicit per-level decode budget — the
    /// parameterization snapshots travel under (see [`crate::wire`]).
    ///
    /// # Panics
    ///
    /// Panics if `budget == 0`, `reps == 0`, or `universe_bits > 60`.
    pub fn with_budget(universe_bits: u32, budget: usize, reps: usize, seed: u64) -> Self {
        assert!(budget > 0, "budget must be positive");
        assert!(reps > 0, "need at least one repetition");
        assert!(universe_bits <= 60, "universe too large");
        let tree = SeedTree::new(seed ^ 0x4449_5354_494E_4354); // "DISTINCT"
        let reps = (0..reps)
            .map(|r| {
                let rtree = tree.child(r as u64);
                DistinctRep {
                    level_hash: KWiseHash::new(LEVEL_INDEPENDENCE, rtree.child(0xA0).seed()),
                    levels: (0..=universe_bits)
                        .map(|j| RecoveryFamily::new(budget, rtree.child(j as u64).child(1).seed()))
                        .collect(),
                }
            })
            .collect();
        let family_id = tree.child(0x1D).seed();
        Self {
            reps,
            budget,
            universe_bits,
            seed,
            family_id,
        }
    }

    /// The creation seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The per-level decode budget (`ceil(4 / eps^2)`).
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// The universe size exponent this family was built for.
    pub fn universe_bits(&self) -> u32 {
        self.universe_bits
    }

    /// Number of repetitions (the median width).
    pub fn num_reps(&self) -> usize {
        self.reps.len()
    }

    /// Creates an empty state bound to this family.
    pub fn new_state(&self) -> DistinctState {
        DistinctState {
            reps: self
                .reps
                .iter()
                .map(|rep| rep.levels.iter().map(|f| f.new_state()).collect())
                .collect(),
            family_id: self.family_id,
        }
    }

    /// Applies `x[key] += delta` to `state`.
    ///
    /// One level-hash evaluation per repetition decides every nested
    /// level's membership; only the expected-O(1) containing levels touch
    /// their recovery sketches.
    ///
    /// # Panics
    ///
    /// Panics if `state` belongs to a different family.
    pub fn update(&self, state: &mut DistinctState, key: u64, delta: i128) {
        assert_eq!(
            state.family_id, self.family_id,
            "state from a different family"
        );
        if delta == 0 {
            return;
        }
        for (rep, states) in self.reps.iter().zip(&mut state.reps) {
            let h = rep.level_hash.hash(key);
            for (j, (fam, st)) in rep.levels.iter().zip(states.iter_mut()).enumerate() {
                // Nested thresholds are monotone: once a level misses, all
                // sparser levels miss too.
                if h >= field::P >> j {
                    break;
                }
                fam.update(st, key, delta);
            }
        }
    }

    /// Worst-case (dense) footprint of one state in bytes — the space a
    /// deployment must reserve per estimator instance.
    pub fn nominal_state_bytes(&self) -> usize {
        self.reps
            .iter()
            .map(|rep| {
                rep.levels
                    .iter()
                    .map(|f| f.nominal_state_bytes())
                    .sum::<usize>()
            })
            .sum()
    }

    /// Estimates the number of nonzero coordinates of `state`'s vector.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Overloaded`] if some repetition has no decodable
    /// level (whp-failure event).
    ///
    /// # Panics
    ///
    /// Panics if `state` belongs to a different family.
    pub fn estimate(&self, state: &DistinctState) -> Result<u64, DecodeError> {
        assert_eq!(
            state.family_id, self.family_id,
            "state from a different family"
        );
        let mut per_rep: Vec<u64> = Vec::with_capacity(self.reps.len());
        for (rep, states) in self.reps.iter().zip(&state.reps) {
            per_rep.push(Self::estimate_rep(rep, states)?);
        }
        per_rep.sort_unstable();
        Ok(per_rep[per_rep.len() / 2])
    }

    fn estimate_rep(rep: &DistinctRep, states: &[RecoveryState]) -> Result<u64, DecodeError> {
        // Level 0 samples at rate 1: if it decodes, the count is exact.
        // Otherwise scale the densest decodable level's count by 2^j.
        for (j, (fam, st)) in rep.levels.iter().zip(states).enumerate() {
            match fam.decode(st) {
                Ok(items) => {
                    let count = items.len() as u64;
                    return Ok(if j == 0 { count } else { count << j });
                }
                Err(_) => continue,
            }
        }
        Err(DecodeError::Overloaded)
    }

    /// Decodes a state serialized by [`DistinctState::encode_into`].
    pub(crate) fn decode_state(
        &self,
        r: &mut wire::ByteReader<'_>,
    ) -> Result<DistinctState, WireError> {
        let nreps = r.read_len()?;
        if nreps != self.reps.len() {
            return Err(WireError::Malformed("repetition count mismatch"));
        }
        let reps = self
            .reps
            .iter()
            .map(|rep| {
                let nlevels = r.read_len()?;
                if nlevels != rep.levels.len() {
                    return Err(WireError::Malformed("level count mismatch"));
                }
                rep.levels
                    .iter()
                    .map(|fam| fam.decode_state(r))
                    .collect::<Result<Vec<_>, _>>()
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(DistinctState {
            reps,
            family_id: self.family_id,
        })
    }
}

impl SpaceUsage for DistinctFamily {
    fn space_bytes(&self) -> usize {
        self.reps
            .iter()
            .map(|rep| {
                rep.level_hash.space_bytes()
                    + rep
                        .levels
                        .iter()
                        .map(SpaceUsage::space_bytes)
                        .sum::<usize>()
            })
            .sum()
    }
}

impl DistinctState {
    /// Adds another state (linearity).
    ///
    /// # Panics
    ///
    /// Panics if the states belong to different families.
    pub fn merge(&mut self, other: &DistinctState) {
        assert_eq!(
            self.family_id, other.family_id,
            "merging states of different families"
        );
        for (mine, theirs) in self.reps.iter_mut().zip(&other.reps) {
            for (a, b) in mine.iter_mut().zip(theirs) {
                a.merge(b);
            }
        }
    }

    /// Serializes the per-repetition level states (canonical order).
    pub(crate) fn encode_into(&self, out: &mut Vec<u8>) {
        wire::put_len(out, self.reps.len());
        for levels in &self.reps {
            wire::put_len(out, levels.len());
            for st in levels {
                st.encode_into(out);
            }
        }
    }
}

impl SpaceUsage for DistinctState {
    fn space_bytes(&self) -> usize {
        self.reps
            .iter()
            .map(|levels| levels.iter().map(SpaceUsage::space_bytes).sum::<usize>())
            .sum()
    }
}

/// A standalone estimator: a [`DistinctFamily`] bundled with one state.
///
/// # Examples
///
/// ```
/// use dsg_sketch::DistinctEstimator;
///
/// let mut d = DistinctEstimator::new(20, 0.25, 7, 42);
/// for i in 0..1000u64 {
///     d.update(i, 1);
/// }
/// for i in 0..500u64 {
///     d.update(i, -1); // deletions shrink the support
/// }
/// let est = d.estimate().unwrap();
/// assert!((est as f64 - 500.0).abs() < 200.0);
/// ```
#[derive(Debug, Clone)]
pub struct DistinctEstimator {
    family: DistinctFamily,
    state: DistinctState,
}

impl DistinctEstimator {
    /// Creates an estimator; see [`DistinctFamily::new`] for parameters.
    ///
    /// # Panics
    ///
    /// Panics on the same conditions as [`DistinctFamily::new`].
    pub fn new(universe_bits: u32, eps: f64, reps: usize, seed: u64) -> Self {
        let family = DistinctFamily::new(universe_bits, eps, reps, seed);
        let state = family.new_state();
        Self { family, state }
    }

    /// The creation seed (compatibility key for merges).
    pub fn seed(&self) -> u64 {
        self.family.seed()
    }

    /// The per-level decode budget (`ceil(4 / eps^2)`).
    pub fn budget(&self) -> usize {
        self.family.budget()
    }

    /// Applies `x[key] += delta`.
    pub fn update(&mut self, key: u64, delta: i128) {
        self.family.update(&mut self.state, key, delta);
    }

    /// Estimates the number of nonzero coordinates.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Overloaded`] if some repetition has no decodable
    /// level (whp-failure event).
    pub fn estimate(&self) -> Result<u64, DecodeError> {
        self.family.estimate(&self.state)
    }
}

impl SpaceUsage for DistinctEstimator {
    fn space_bytes(&self) -> usize {
        self.family.space_bytes() + self.state.space_bytes()
    }
}

impl LinearSketch for DistinctEstimator {
    const WIRE_KIND: u16 = wire::KIND_DISTINCT;

    fn update(&mut self, key: u64, delta: i128) {
        self.family.update(&mut self.state, key, delta);
    }

    fn merge(&mut self, other: &Self) {
        assert_eq!(self.seed(), other.seed(), "merging incompatible estimators");
        assert_eq!(
            self.family.num_reps(),
            other.family.num_reps(),
            "merging incompatible estimators"
        );
        self.state.merge(&other.state);
    }

    fn to_bytes(&self) -> Vec<u8> {
        let mut payload = Vec::new();
        wire::put_u32(&mut payload, self.family.universe_bits());
        wire::put_len(&mut payload, self.family.budget());
        wire::put_len(&mut payload, self.family.num_reps());
        wire::put_u64(&mut payload, self.family.seed());
        self.state.encode_into(&mut payload);
        wire::finish_frame(Self::WIRE_KIND, payload)
    }

    fn from_bytes(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = wire::open_frame(Self::WIRE_KIND, bytes)?;
        let universe_bits = r.u32()?;
        if universe_bits > 60 {
            return Err(WireError::Malformed("universe too large"));
        }
        let budget = r.read_len()?;
        let reps = r.read_len()?;
        if budget == 0 || reps == 0 {
            return Err(WireError::Malformed("zero budget or repetitions"));
        }
        // Every repetition costs at least 8 payload bytes (its level
        // count); bound the declared count before building hash machinery.
        if reps > r.remaining() / 8 {
            return Err(WireError::Truncated);
        }
        let seed = r.u64()?;
        let family = DistinctFamily::with_budget(universe_bits, budget, reps, seed);
        let state = family.decode_state(&mut r)?;
        r.expect_end()?;
        Ok(Self { family, state })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_for_small_supports() {
        let mut d = DistinctEstimator::new(16, 0.5, 5, 1);
        for i in 0..10u64 {
            d.update(i * 13, 2);
        }
        assert_eq!(d.estimate().unwrap(), 10);
    }

    #[test]
    fn zero_vector_estimates_zero() {
        let d = DistinctEstimator::new(16, 0.5, 3, 2);
        assert_eq!(d.estimate().unwrap(), 0);
    }

    #[test]
    fn cancellations_do_not_count() {
        let mut d = DistinctEstimator::new(16, 0.5, 5, 3);
        for i in 0..20u64 {
            d.update(i, 1);
        }
        for i in 0..15u64 {
            d.update(i, -1);
        }
        assert_eq!(d.estimate().unwrap(), 5);
    }

    #[test]
    fn large_support_within_relative_error() {
        for (seed, n) in [(1u64, 2_000u64), (2, 10_000), (3, 50_000)] {
            let mut d = DistinctEstimator::new(20, 0.25, 9, seed);
            for i in 0..n {
                d.update(i, 1);
            }
            let est = d.estimate().unwrap() as f64;
            let rel = (est - n as f64).abs() / n as f64;
            assert!(rel < 0.35, "n={n}: est={est}, rel={rel}");
        }
    }

    #[test]
    fn merge_matches_direct() {
        let mut a = DistinctEstimator::new(16, 0.5, 3, 9);
        let mut b = DistinctEstimator::new(16, 0.5, 3, 9);
        let mut direct = DistinctEstimator::new(16, 0.5, 3, 9);
        for i in 0..50u64 {
            a.update(i, 1);
            direct.update(i, 1);
        }
        for i in 25..75u64 {
            b.update(i, 1);
            direct.update(i, 1);
        }
        a.merge(&b);
        assert_eq!(a.estimate().unwrap(), direct.estimate().unwrap());
    }

    #[test]
    fn budget_tracks_eps() {
        let coarse = DistinctEstimator::new(8, 1.0, 1, 1);
        let fine = DistinctEstimator::new(8, 0.1, 1, 1);
        assert_eq!(coarse.budget(), 4);
        assert_eq!(fine.budget(), 400);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn invalid_eps_panics() {
        DistinctEstimator::new(8, 0.0, 1, 1);
    }

    #[test]
    fn family_states_are_cheap() {
        let fam = DistinctFamily::new(20, 0.5, 5, 4);
        let st = fam.new_state();
        assert_eq!(st.space_bytes(), 0);
        assert!(fam.space_bytes() > 0);
    }

    #[test]
    fn per_vertex_degree_pattern() {
        // The Algorithm-3 pattern: one family, one state per vertex, each
        // state sketching that vertex's neighborhood.
        let fam = DistinctFamily::new(12, 0.5, 5, 8);
        let mut states: Vec<DistinctState> = (0..20).map(|_| fam.new_state()).collect();
        for u in 0..20u64 {
            for v in 0..u {
                fam.update(&mut states[u as usize], v, 1);
            }
        }
        for u in 0..20u64 {
            assert_eq!(fam.estimate(&states[u as usize]).unwrap(), u, "vertex {u}");
        }
    }

    #[test]
    fn nested_levels_halve_in_expectation() {
        // A sanity check on the nested-level scheme: the number of level-j
        // survivors should be about n·2^{-j}.
        let fam = DistinctFamily::new(20, 0.5, 1, 11);
        let rep = &fam.reps[0];
        let n = 40_000u64;
        for j in [1usize, 3, 5] {
            let hits = (0..n)
                .filter(|&x| rep.level_hash.hash(x) < field::P >> j)
                .count() as f64;
            let expect = n as f64 / (1u64 << j) as f64;
            assert!(
                (hits - expect).abs() < 6.0 * expect.sqrt() + 6.0,
                "level {j}: {hits} vs {expect}"
            );
        }
    }

    #[test]
    fn crafted_repetition_count_rejected_before_allocation() {
        // reps = 2^38 declared over a near-empty payload: bounded by the
        // payload size, not trusted.
        let mut payload = Vec::new();
        wire::put_u32(&mut payload, 10);
        wire::put_len(&mut payload, 4);
        wire::put_len(&mut payload, 1usize << 38);
        wire::put_u64(&mut payload, 0);
        let frame = wire::finish_frame(wire::KIND_DISTINCT, payload);
        assert!(DistinctEstimator::from_bytes(&frame).is_err());
    }

    #[test]
    fn wire_roundtrip_preserves_estimate() {
        let mut d = DistinctEstimator::new(14, 0.5, 3, 21);
        for i in 0..300u64 {
            d.update(i * 7, 1);
        }
        let bytes = d.to_bytes();
        let back = DistinctEstimator::from_bytes(&bytes).unwrap();
        assert_eq!(back.estimate().unwrap(), d.estimate().unwrap());
        assert_eq!(back.to_bytes(), bytes);
    }
}
