//! Exact recovery of 1-sparse signed vectors.
//!
//! A *1-sparse recovery cell* summarizes a dynamic vector `x ∈ Z^U` with
//! three words of state:
//!
//! * `total = Σ_i x_i` (exact, 128-bit),
//! * `key_sum = Σ_i x_i · i (mod p)`,
//! * `fingerprint = Σ_i x_i · h(i) (mod p)` for a 3-wise independent `h`.
//!
//! If `x` has exactly one nonzero coordinate `i*` with value `v`, then
//! `total = v` and `key_sum = v · i*`, so `i* = key_sum / total (mod p)`,
//! and the fingerprint check `fingerprint == total · h(i*)` rejects
//! multi-sparse vectors except with probability `O(1/p)` over `h`.
//!
//! Cells are the bucket payload of [`crate::SparseRecovery`] and are exposed
//! because the two-pass spanner (Algorithm 2 of the paper) stores one cell
//! per hash-table entry as the inner neighborhood sketch.

use crate::error::DecodeError;
use dsg_hash::field;
use dsg_hash::KWiseHash;
use dsg_util::SpaceUsage;

/// The outcome of inspecting a [`OneSparseCell`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OneSparseVerdict {
    /// The summarized vector is (identically) zero.
    Zero,
    /// The vector is exactly 1-sparse: coordinate `key` holds `value`.
    One {
        /// The single nonzero coordinate.
        key: u64,
        /// Its value.
        value: i128,
    },
    /// The vector has two or more nonzero coordinates (or a vanishing
    /// modular total), so no single coordinate can be recovered.
    Many,
}

/// Linear 1-sparse recovery cell over keys in `[0, 2^61 - 1)`.
///
/// # Examples
///
/// ```
/// use dsg_sketch::{OneSparseCell, OneSparseVerdict};
/// use dsg_hash::KWiseHash;
///
/// let h = KWiseHash::new(3, 7);
/// let mut cell = OneSparseCell::new();
/// cell.update(123, 5, &h);
/// cell.update(999, 2, &h);
/// cell.update(999, -2, &h); // deletion cancels
/// assert_eq!(cell.verdict(&h), OneSparseVerdict::One { key: 123, value: 5 });
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OneSparseCell {
    total: i128,
    key_sum: u64,
    fingerprint: u64,
}

impl OneSparseCell {
    /// Creates an empty (all-zero) cell.
    pub fn new() -> Self {
        Self::default()
    }

    /// Applies the update `x[key] += delta`.
    ///
    /// The fingerprint hash `h` must be the same 3-wise (or stronger)
    /// independent function for every update to this cell and to any cell
    /// this one will be merged with.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `key` is not a canonical field element.
    #[inline]
    pub fn update(&mut self, key: u64, delta: i128, h: &KWiseHash) {
        debug_assert!(key < field::P, "key {key} outside field range");
        let d = mod_p(delta);
        self.total += delta;
        self.key_sum = field::add(self.key_sum, field::mul(d, key));
        self.fingerprint = field::add(self.fingerprint, field::mul(d, h.hash(key)));
    }

    /// Adds another cell (sketch of the sum of the two vectors).
    #[inline]
    pub fn merge(&mut self, other: &OneSparseCell) {
        self.total += other.total;
        self.key_sum = field::add(self.key_sum, other.key_sum);
        self.fingerprint = field::add(self.fingerprint, other.fingerprint);
    }

    /// Subtracts another cell (sketch of the difference).
    #[inline]
    pub fn unmerge(&mut self, other: &OneSparseCell) {
        self.total -= other.total;
        self.key_sum = field::sub(self.key_sum, other.key_sum);
        self.fingerprint = field::sub(self.fingerprint, other.fingerprint);
    }

    /// Whether all state words are zero (the vector is zero unless a
    /// `1/p`-probability cancellation occurred).
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.total == 0 && self.key_sum == 0 && self.fingerprint == 0
    }

    /// Classifies the cell as zero, 1-sparse (recovering the coordinate), or
    /// many-sparse. `h` must match the hash used for updates.
    pub fn verdict(&self, h: &KWiseHash) -> OneSparseVerdict {
        if self.is_zero() {
            return OneSparseVerdict::Zero;
        }
        let v = mod_p(self.total);
        if v == 0 {
            // total ≡ 0 (mod p) but state nonzero: cannot invert.
            return OneSparseVerdict::Many;
        }
        let key = field::mul(self.key_sum, field::inv(v));
        let expect = field::mul(v, h.hash(key));
        if expect == self.fingerprint {
            OneSparseVerdict::One {
                key,
                value: self.total,
            }
        } else {
            OneSparseVerdict::Many
        }
    }

    /// Recovers the single nonzero coordinate, or an error.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Overloaded`] if the vector is not 0- or 1-sparse;
    /// a zero vector yields `Ok(None)`.
    pub fn decode(&self, h: &KWiseHash) -> Result<Option<(u64, i128)>, DecodeError> {
        match self.verdict(h) {
            OneSparseVerdict::Zero => Ok(None),
            OneSparseVerdict::One { key, value } => Ok(Some((key, value))),
            OneSparseVerdict::Many => Err(DecodeError::Overloaded),
        }
    }

    /// The raw state words `(total, key_sum, fingerprint)` — the wire
    /// representation of a cell.
    pub(crate) fn raw_parts(&self) -> (i128, u64, u64) {
        (self.total, self.key_sum, self.fingerprint)
    }

    /// Rebuilds a cell from raw state words.
    ///
    /// # Errors
    ///
    /// [`crate::WireError::Malformed`] if a field word is not canonical.
    pub(crate) fn from_raw_parts(
        total: i128,
        key_sum: u64,
        fingerprint: u64,
    ) -> Result<Self, crate::WireError> {
        if key_sum >= dsg_hash::field::P || fingerprint >= dsg_hash::field::P {
            return Err(crate::WireError::Malformed("non-canonical field word"));
        }
        Ok(Self {
            total,
            key_sum,
            fingerprint,
        })
    }

    /// Serializes the cell into three `i128` payload words (for embedding in
    /// a [`crate::LinearHashTable`], whose payload arithmetic is mod-p).
    pub fn to_words(self) -> [i128; 3] {
        [self.total, self.key_sum as i128, self.fingerprint as i128]
    }

    /// Reconstructs a cell from payload words recovered by a
    /// [`crate::LinearHashTable`].
    ///
    /// The table returns balanced lifts of field words, so all three words
    /// are re-canonicalized mod p. The `total` word is taken at face value,
    /// which is exact whenever the summarized vector's values have magnitude
    /// below `p/2` — guaranteed for edge multiplicities, which the stream
    /// model keeps non-negative and polynomially bounded.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Inconsistent`] if a word's magnitude reaches the field
    /// modulus scale, which indicates the payload was not an
    /// exactly-recovered cell.
    pub fn from_words(words: &[i128; 3]) -> Result<Self, DecodeError> {
        let p = field::P as i128;
        if words.iter().any(|w| w.abs() >= p) {
            return Err(DecodeError::Inconsistent);
        }
        Ok(Self {
            total: words[0],
            key_sum: mod_p(words[1]),
            fingerprint: mod_p(words[2]),
        })
    }
}

impl SpaceUsage for OneSparseCell {
    fn space_bytes(&self) -> usize {
        16 + 8 + 8
    }
}

/// Canonical field representative of a possibly-negative integer.
#[inline]
pub(crate) fn mod_p(x: i128) -> u64 {
    let p = field::P as i128;
    let r = x % p;
    if r < 0 {
        (r + p) as u64
    } else {
        r as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h() -> KWiseHash {
        KWiseHash::new(3, 1234)
    }

    #[test]
    fn empty_cell_is_zero() {
        let cell = OneSparseCell::new();
        assert!(cell.is_zero());
        assert_eq!(cell.verdict(&h()), OneSparseVerdict::Zero);
        assert_eq!(cell.decode(&h()).unwrap(), None);
    }

    #[test]
    fn recovers_single_coordinate() {
        let h = h();
        let mut cell = OneSparseCell::new();
        cell.update(42, 7, &h);
        assert_eq!(
            cell.verdict(&h),
            OneSparseVerdict::One { key: 42, value: 7 }
        );
    }

    #[test]
    fn recovers_negative_value() {
        let h = h();
        let mut cell = OneSparseCell::new();
        cell.update(42, -3, &h);
        assert_eq!(
            cell.verdict(&h),
            OneSparseVerdict::One { key: 42, value: -3 }
        );
    }

    #[test]
    fn cancellation_returns_to_zero() {
        let h = h();
        let mut cell = OneSparseCell::new();
        for i in 0..50u64 {
            cell.update(i, i as i128 + 1, &h);
        }
        for i in 0..50u64 {
            cell.update(i, -(i as i128 + 1), &h);
        }
        assert!(cell.is_zero());
    }

    #[test]
    fn two_sparse_detected() {
        let h = h();
        let mut cell = OneSparseCell::new();
        cell.update(1, 1, &h);
        cell.update(2, 1, &h);
        assert_eq!(cell.verdict(&h), OneSparseVerdict::Many);
        assert_eq!(cell.decode(&h), Err(DecodeError::Overloaded));
    }

    #[test]
    fn many_sparse_detected_across_scales() {
        let h = h();
        for support in [3usize, 10, 100] {
            let mut cell = OneSparseCell::new();
            for i in 0..support as u64 {
                cell.update(i * 17 + 3, 2, &h);
            }
            assert_eq!(
                cell.verdict(&h),
                OneSparseVerdict::Many,
                "support {support}"
            );
        }
    }

    #[test]
    fn merge_is_linear() {
        let h = h();
        let mut a = OneSparseCell::new();
        let mut b = OneSparseCell::new();
        a.update(5, 2, &h);
        a.update(9, 1, &h);
        b.update(9, -1, &h);
        a.merge(&b);
        assert_eq!(a.verdict(&h), OneSparseVerdict::One { key: 5, value: 2 });
    }

    #[test]
    fn unmerge_inverts_merge() {
        let h = h();
        let mut a = OneSparseCell::new();
        a.update(5, 2, &h);
        let snapshot = a;
        let mut b = OneSparseCell::new();
        b.update(77, 4, &h);
        a.merge(&b);
        a.unmerge(&b);
        assert_eq!(a, snapshot);
    }

    #[test]
    fn words_roundtrip() {
        let h = h();
        let mut cell = OneSparseCell::new();
        cell.update(1000, -9, &h);
        let words = cell.to_words();
        let back = OneSparseCell::from_words(&words).unwrap();
        assert_eq!(back, cell);
    }

    #[test]
    fn from_words_canonicalizes_balanced_lifts() {
        // A balanced lift -1 represents the field word p-1.
        let words = [2i128, -1, 3];
        let cell = OneSparseCell::from_words(&words).unwrap();
        assert_eq!(cell.key_sum, field::P - 1);
        assert_eq!(cell.fingerprint, 3);
        assert_eq!(cell.total, 2);
    }

    #[test]
    fn from_words_rejects_modulus_scale() {
        let words = [0i128, field::P as i128, 0];
        assert_eq!(
            OneSparseCell::from_words(&words),
            Err(DecodeError::Inconsistent)
        );
    }

    #[test]
    fn mod_p_handles_negatives() {
        assert_eq!(mod_p(-1), field::P - 1);
        assert_eq!(mod_p(0), 0);
        assert_eq!(mod_p(field::P as i128), 0);
        assert_eq!(mod_p(-(field::P as i128)), 0);
    }

    #[test]
    fn space_is_constant() {
        assert_eq!(OneSparseCell::new().space_bytes(), 32);
    }
}
