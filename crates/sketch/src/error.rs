//! Error types for sketch decoding.

use std::error::Error;
use std::fmt;

/// Decoding a linear sketch failed.
///
/// The paper assumes (after Theorem 9) that "we always know if a
/// `SKETCH_B(x)` can be decoded"; this error is how that knowledge
/// surfaces. Failures are *detected*, never silent: peeling either empties
/// the sketch (success) or leaves verifiable residue (failure).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The sketched vector has more nonzero coordinates than the decoding
    /// budget; peeling stalled with nonzero residue.
    Overloaded,
    /// Internal consistency checks failed (fingerprint mismatch), indicating
    /// either an astronomically unlikely hash collision or incompatible
    /// sketch merges.
    Inconsistent,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Overloaded => write!(f, "sketch support exceeds decoding budget"),
            DecodeError::Inconsistent => write!(f, "sketch failed internal consistency checks"),
        }
    }
}

impl Error for DecodeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            DecodeError::Overloaded.to_string(),
            "sketch support exceeds decoding budget"
        );
        assert!(DecodeError::Inconsistent
            .to_string()
            .contains("consistency"));
    }

    #[test]
    fn is_std_error() {
        fn takes_err<E: Error>(_: E) {}
        takes_err(DecodeError::Overloaded);
    }
}
