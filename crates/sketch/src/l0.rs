//! L0 sampling: drawing a (near-)uniform nonzero coordinate of a dynamic
//! vector.
//!
//! The paper's constructions repeatedly need "an arbitrary element in the
//! support" of a sketched vector that survived insertions and deletions:
//! Algorithm 1 recovers witness edges this way, and the AGM spanning-forest
//! sketch (Theorem 10) samples an outgoing edge of each supernode. The
//! classic construction subsamples the coordinate universe at geometric
//! rates `2^{-j}` with independent `O(log n)`-wise hashes and keeps a small
//! sparse-recovery sketch per level; at the level where the expected
//! surviving support is around the budget, decoding succeeds and any
//! surviving coordinate may be reported (we pick the one with minimal
//! tie-breaking hash, which makes the choice stable under merges).
//!
//! Like [`crate::ssparse`], the sampler is split into an [`L0Family`]
//! (shared hashes — one per AGM round, say) and per-vertex [`L0State`]s, so
//! a graph's worth of samplers costs cells rather than hash tables.
//! [`L0Sampler`] bundles the two for standalone use.
//!
//! The paper remarks (Section 3.2) that its `E_j`/`Y_j` machinery "could be
//! eliminated by using L0-SAMPLER in a similar way as AGM12a does" — this
//! module is that sampler.

use crate::error::DecodeError;
use crate::ssparse::{RecoveryFamily, RecoveryState};
use crate::wire::{self, ByteReader, WireError};
use crate::LinearSketch;
use dsg_hash::{KWiseHash, SeedTree, SubsetSampler};
use dsg_util::SpaceUsage;

/// Default per-level decoding budget.
const LEVEL_BUDGET: usize = 8;

/// Shared randomness of an L0 sampler: per-level subset samplers and
/// recovery families, plus the tie-breaking hash.
///
/// # Examples
///
/// ```
/// use dsg_sketch::l0::L0Family;
///
/// let fam = L0Family::new(16, 7);
/// let mut a = fam.new_state();
/// let mut b = fam.new_state();
/// fam.update(&mut a, 3, 1);
/// fam.update(&mut b, 3, -1); // cancels across states
/// fam.update(&mut b, 9, 2);
/// a.merge(&b);
/// assert_eq!(fam.sample(&a).unwrap(), Some((9, 2)));
/// ```
#[derive(Debug, Clone)]
pub struct L0Family {
    levels: Vec<(SubsetSampler, RecoveryFamily)>,
    tie_hash: KWiseHash,
    seed: u64,
    family_id: u64,
}

/// Per-instance cells of an L0 sampler.
#[derive(Debug, Clone, Default)]
pub struct L0State {
    levels: Vec<RecoveryState>,
    family_id: u64,
}

impl L0Family {
    /// Creates a family for coordinates in `[0, 2^universe_bits)`.
    ///
    /// # Panics
    ///
    /// Panics if `universe_bits > 60`.
    pub fn new(universe_bits: u32, seed: u64) -> Self {
        Self::with_budget(universe_bits, LEVEL_BUDGET, seed)
    }

    /// Creates a family with an explicit per-level decoding budget.
    ///
    /// # Panics
    ///
    /// Panics if `universe_bits > 60` or `budget == 0`.
    pub fn with_budget(universe_bits: u32, budget: usize, seed: u64) -> Self {
        assert!(universe_bits <= 60, "universe too large for field keys");
        let tree = SeedTree::new(seed ^ 0x4C30_5341_4D50_4C52); // "L0SAMPLR"
        let levels = (0..=universe_bits)
            .map(|j| {
                (
                    SubsetSampler::at_rate_pow2(tree.child(j as u64).child(0).seed(), j),
                    RecoveryFamily::new(budget, tree.child(j as u64).child(1).seed()),
                )
            })
            .collect();
        let tie_hash = KWiseHash::new(4, tree.child(0x7E).seed());
        let family_id = tree.child(0x1D).seed();
        Self {
            levels,
            tie_hash,
            seed,
            family_id,
        }
    }

    /// The creation seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The per-level decoding budget.
    pub fn budget(&self) -> usize {
        self.levels[0].1.budget()
    }

    /// Number of subsampling levels.
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Decodes a state serialized by [`L0State::encode_into`], binding it
    /// to this family.
    ///
    /// # Errors
    ///
    /// [`WireError`] if the payload is truncated, malformed, or its level
    /// count does not match this family's.
    pub fn decode_state(&self, r: &mut ByteReader<'_>) -> Result<L0State, WireError> {
        let n = r.read_len()?;
        if n != self.levels.len() {
            return Err(WireError::Malformed("level count mismatch"));
        }
        let levels = self
            .levels
            .iter()
            .map(|(_, fam)| fam.decode_state(r))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(L0State {
            levels,
            family_id: self.family_id,
        })
    }

    /// Creates an empty state bound to this family.
    pub fn new_state(&self) -> L0State {
        L0State {
            levels: self.levels.iter().map(|(_, fam)| fam.new_state()).collect(),
            family_id: self.family_id,
        }
    }

    /// Applies `x[key] += delta` to `state`.
    ///
    /// # Panics
    ///
    /// Panics if `state` belongs to a different family.
    pub fn update(&self, state: &mut L0State, key: u64, delta: i128) {
        assert_eq!(
            state.family_id, self.family_id,
            "state from a different family"
        );
        if delta == 0 {
            return;
        }
        for ((sampler, fam), st) in self.levels.iter().zip(&mut state.levels) {
            if sampler.contains(key) {
                fam.update(st, key, delta);
            }
        }
    }

    /// Worst-case (dense) footprint of one state in bytes — the space a
    /// deployment must reserve per sampler instance.
    pub fn nominal_state_bytes(&self) -> usize {
        self.levels
            .iter()
            .map(|(_, fam)| fam.nominal_state_bytes())
            .sum()
    }

    /// Samples a nonzero coordinate of the vector sketched by `state`.
    ///
    /// Scans levels from sparsest to densest (the paper's "largest `j` down
    /// to 0") and returns the minimum-tie-hash element of the first
    /// non-empty decodable level. `Ok(None)` means the vector is zero.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Overloaded`] if no level decodes — the whp failure
    /// event the paper conditions away.
    ///
    /// # Panics
    ///
    /// Panics if `state` belongs to a different family.
    pub fn sample(&self, state: &L0State) -> Result<Option<(u64, i128)>, DecodeError> {
        assert_eq!(
            state.family_id, self.family_id,
            "state from a different family"
        );
        let mut all_failed = true;
        for ((_, fam), st) in self.levels.iter().zip(&state.levels).rev() {
            match fam.decode(st) {
                Ok(items) => {
                    all_failed = false;
                    if let Some(best) = items.iter().min_by_key(|(k, _)| self.tie_hash.hash(*k)) {
                        return Ok(Some(*best));
                    }
                }
                Err(_) => continue,
            }
        }
        if all_failed {
            Err(DecodeError::Overloaded)
        } else {
            Ok(None)
        }
    }
}

impl SpaceUsage for L0Family {
    fn space_bytes(&self) -> usize {
        self.levels
            .iter()
            .map(|(s, f)| s.space_bytes() + f.space_bytes())
            .sum::<usize>()
            + self.tie_hash.space_bytes()
    }
}

impl L0State {
    /// Adds another state (sketch of the vector sum).
    ///
    /// # Panics
    ///
    /// Panics if the states belong to different families.
    pub fn merge(&mut self, other: &L0State) {
        assert_eq!(
            self.family_id, other.family_id,
            "merging states of different families"
        );
        for (mine, theirs) in self.levels.iter_mut().zip(&other.levels) {
            mine.merge(theirs);
        }
    }

    /// Subtracts another state (sketch of the vector difference).
    ///
    /// # Panics
    ///
    /// Panics if the states belong to different families.
    pub fn unmerge(&mut self, other: &L0State) {
        assert_eq!(
            self.family_id, other.family_id,
            "subtracting states of different families"
        );
        for (mine, theirs) in self.levels.iter_mut().zip(&other.levels) {
            mine.unmerge(theirs);
        }
    }

    /// Whether all level states are zero.
    pub fn is_zero(&self) -> bool {
        self.levels.iter().all(RecoveryState::is_zero)
    }

    /// Serializes the per-level states (canonical order). Decode with
    /// [`L0Family::decode_state`] on a family built from the same seed —
    /// snapshots never carry hash functions (see [`crate::wire`]).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        wire::put_len(out, self.levels.len());
        for st in &self.levels {
            st.encode_into(out);
        }
    }
}

impl SpaceUsage for L0State {
    fn space_bytes(&self) -> usize {
        self.levels.iter().map(SpaceUsage::space_bytes).sum()
    }
}

/// A standalone L0 sampler: an [`L0Family`] bundled with one [`L0State`].
///
/// # Examples
///
/// ```
/// use dsg_sketch::L0Sampler;
///
/// let mut s = L0Sampler::new(20, 42); // universe of 2^20 coordinates
/// s.update(7, 1);
/// s.update(8, 1);
/// s.update(7, -1); // delete
/// assert_eq!(s.sample().unwrap(), Some((8, 1)));
/// ```
#[derive(Debug, Clone)]
pub struct L0Sampler {
    family: L0Family,
    state: L0State,
}

impl L0Sampler {
    /// Creates a sampler for coordinates in `[0, 2^universe_bits)`.
    ///
    /// # Panics
    ///
    /// Panics if `universe_bits > 60`.
    pub fn new(universe_bits: u32, seed: u64) -> Self {
        let family = L0Family::new(universe_bits, seed);
        let state = family.new_state();
        Self { family, state }
    }

    /// Creates a sampler with an explicit per-level decoding budget.
    ///
    /// # Panics
    ///
    /// Panics if `universe_bits > 60` or `budget == 0`.
    pub fn with_budget(universe_bits: u32, budget: usize, seed: u64) -> Self {
        let family = L0Family::with_budget(universe_bits, budget, seed);
        let state = family.new_state();
        Self { family, state }
    }

    /// The creation seed (compatibility key for merges).
    pub fn seed(&self) -> u64 {
        self.family.seed()
    }

    /// Number of subsampling levels.
    pub fn num_levels(&self) -> usize {
        self.family.num_levels()
    }

    /// Applies `x[key] += delta`.
    pub fn update(&mut self, key: u64, delta: i128) {
        self.family.update(&mut self.state, key, delta);
    }

    /// Subtracts another sampler's state.
    ///
    /// # Panics
    ///
    /// Panics if the samplers are incompatible.
    pub fn unmerge(&mut self, other: &L0Sampler) {
        assert_eq!(
            self.seed(),
            other.seed(),
            "subtracting incompatible L0 samplers"
        );
        self.state.unmerge(&other.state);
    }

    /// Whether all level sketches are zero.
    pub fn is_zero(&self) -> bool {
        self.state.is_zero()
    }

    /// Samples a nonzero coordinate; see [`L0Family::sample`].
    ///
    /// # Errors
    ///
    /// [`DecodeError::Overloaded`] if no level decodes.
    pub fn sample(&self) -> Result<Option<(u64, i128)>, DecodeError> {
        self.family.sample(&self.state)
    }
}

impl SpaceUsage for L0Sampler {
    fn space_bytes(&self) -> usize {
        self.family.space_bytes() + self.state.space_bytes()
    }
}

impl LinearSketch for L0Sampler {
    const WIRE_KIND: u16 = wire::KIND_L0_SAMPLER;

    fn update(&mut self, key: u64, delta: i128) {
        self.family.update(&mut self.state, key, delta);
    }

    fn merge(&mut self, other: &Self) {
        assert_eq!(
            self.seed(),
            other.seed(),
            "merging incompatible L0 samplers"
        );
        assert_eq!(
            self.num_levels(),
            other.num_levels(),
            "merging incompatible L0 samplers"
        );
        self.state.merge(&other.state);
    }

    fn to_bytes(&self) -> Vec<u8> {
        let mut payload = Vec::new();
        wire::put_u32(&mut payload, (self.family.num_levels() - 1) as u32);
        wire::put_len(&mut payload, self.family.budget());
        wire::put_u64(&mut payload, self.family.seed());
        self.state.encode_into(&mut payload);
        wire::finish_frame(Self::WIRE_KIND, payload)
    }

    fn from_bytes(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = wire::open_frame(Self::WIRE_KIND, bytes)?;
        let universe_bits = r.u32()?;
        if universe_bits > 60 {
            return Err(WireError::Malformed("universe too large"));
        }
        let budget = r.read_len()?;
        if budget == 0 {
            return Err(WireError::Malformed("zero budget"));
        }
        let seed = r.u64()?;
        let family = L0Family::with_budget(universe_bits, budget, seed);
        let state = family.decode_state(&mut r)?;
        r.expect_end()?;
        Ok(Self { family, state })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn zero_vector_samples_none() {
        let s = L0Sampler::new(16, 1);
        assert_eq!(s.sample().unwrap(), None);
    }

    #[test]
    fn singleton_always_found() {
        for seed in 0..20u64 {
            let mut s = L0Sampler::new(16, seed);
            s.update(12345, 3);
            assert_eq!(s.sample().unwrap(), Some((12345, 3)), "seed {seed}");
        }
    }

    #[test]
    fn survives_heavy_churn() {
        let mut s = L0Sampler::new(20, 7);
        for i in 0..5000u64 {
            s.update(i, 1);
        }
        for i in 0..4999u64 {
            s.update(i, -1);
        }
        assert_eq!(s.sample().unwrap(), Some((4999, 1)));
    }

    #[test]
    fn large_support_sampled_from_some_level() {
        let mut ok = 0;
        for seed in 0..20u64 {
            let mut s = L0Sampler::new(20, seed);
            for i in 0..10_000u64 {
                s.update(i * 3, 1);
            }
            if let Ok(Some((k, v))) = s.sample() {
                assert_eq!(k % 3, 0);
                assert_eq!(v, 1);
                ok += 1;
            }
        }
        assert!(ok >= 18, "sampled {ok}/20");
    }

    #[test]
    fn sampling_is_roughly_uniform() {
        let coords: Vec<u64> = (0..8).map(|i| i * 977 + 5).collect();
        let mut counts: HashMap<u64, usize> = HashMap::new();
        let trials = 400;
        for seed in 0..trials {
            let mut s = L0Sampler::new(16, seed);
            for &c in &coords {
                s.update(c, 1);
            }
            if let Ok(Some((k, _))) = s.sample() {
                *counts.entry(k).or_insert(0) += 1;
            }
        }
        for &c in &coords {
            let got = counts.get(&c).copied().unwrap_or(0);
            assert!(
                got > trials as usize / 40,
                "coordinate {c} sampled {got} times"
            );
        }
    }

    #[test]
    fn merge_cancels_internal_mass() {
        // The AGM pattern: two vectors whose shared coordinate cancels.
        let mut a = L0Sampler::new(16, 11);
        let mut b = L0Sampler::new(16, 11);
        a.update(100, 1);
        a.update(200, 1);
        b.update(100, -1);
        a.merge(&b);
        assert_eq!(a.sample().unwrap(), Some((200, 1)));
    }

    #[test]
    fn unmerge_restores() {
        let mut a = L0Sampler::new(12, 3);
        a.update(5, 2);
        let mut b = L0Sampler::new(12, 3);
        b.update(9, 4);
        a.merge(&b);
        a.unmerge(&b);
        assert_eq!(a.sample().unwrap(), Some((5, 2)));
    }

    #[test]
    #[should_panic(expected = "incompatible")]
    fn incompatible_merge_panics() {
        let mut a = L0Sampler::new(12, 1);
        let b = L0Sampler::new(12, 2);
        a.merge(&b);
    }

    #[test]
    fn wire_roundtrip_preserves_sample() {
        let mut s = L0Sampler::new(12, 77);
        s.update(100, 1);
        s.update(200, 2);
        s.update(100, -1);
        let bytes = s.to_bytes();
        let back = L0Sampler::from_bytes(&bytes).unwrap();
        assert_eq!(back.sample().unwrap(), s.sample().unwrap());
        assert_eq!(back.to_bytes(), bytes);
    }

    #[test]
    fn space_scales_with_levels() {
        let small = L0Sampler::new(8, 1);
        let large = L0Sampler::new(32, 1);
        assert!(large.space_bytes() > small.space_bytes());
    }

    #[test]
    fn family_states_are_cheap() {
        let fam = L0Family::new(30, 5);
        let state = fam.new_state();
        // An empty state carries no hash tables, only level stubs.
        assert_eq!(state.space_bytes(), 0);
        assert!(fam.space_bytes() > 1000);
    }

    #[test]
    fn many_states_one_family_merge() {
        let fam = L0Family::new(16, 9);
        let mut states: Vec<L0State> = (0..50).map(|_| fam.new_state()).collect();
        for (i, st) in states.iter_mut().enumerate() {
            fam.update(st, 1000 + i as u64, 1);
        }
        let mut total = fam.new_state();
        for st in &states {
            total.merge(st);
        }
        let got = fam.sample(&total).unwrap();
        assert!(got.is_some());
        let (k, v) = got.unwrap();
        assert!((1000..1050).contains(&k));
        assert_eq!(v, 1);
    }
}
