//! Linear sketches for dynamic streams.
//!
//! This crate implements, from scratch, every sketching primitive consumed
//! by Kapralov–Woodruff's "Spanners and Sparsifiers in Dynamic Streams"
//! (PODC 2014):
//!
//! * [`OneSparseCell`] — exact recovery of 1-sparse signed vectors with a
//!   fingerprint test; the building block of everything below.
//! * [`SparseRecovery`] — the paper's `SKETCH_B` / `DECODE` pair
//!   (Theorem 8's role): a linear sketch from which any `B`-sparse vector is
//!   reconstructed exactly with high probability, and decoding failures are
//!   *detected*. Implemented as an invertible Bloom lookup table (IBLT) with
//!   peeling decode — same guarantee shape as the CM06 matrices the paper
//!   cites (see `DESIGN.md` for the substitution argument).
//! * [`LinearHashTable`] — the `H^u_j` structure of Algorithm 2: a linear
//!   hash table whose *values* are themselves small linear sketches, realized
//!   exactly as the paper outlines ("treating the sketches associated with
//!   nodes `v ∈ V` as poly(log n)-length bit numbers and sketching this
//!   vector").
//! * [`L0Sampler`] — samples a (near-)uniform nonzero coordinate of a
//!   dynamic vector; the primitive behind AGM spanning-forest sketches.
//! * [`DistinctEstimator`] — `(1±eps)` estimation of the number of distinct
//!   (nonzero) coordinates (Theorem 9's role, after KNW10), used by the
//!   paper as a decodability guard and as the degree estimator `d_u` in
//!   Algorithm 3.
//! * [`GuardedSketch`] — `SKETCH_B` bundled with the distinct-elements
//!   decodability guard, exactly as described after Theorem 9.
//! * [`CountSketch`] — the alternative frequency sketch the paper mentions
//!   as a drop-in for Theorem 8.
//!
//! Every sketch is **linear**: it supports positive and negative updates,
//! and [`merge`](LinearSketch::merge)ing the sketches of two vectors gives
//! the sketch of their sum, bit for bit. Property tests in
//! `tests/linearity.rs` pin this down. The shared contract is the
//! [`LinearSketch`] trait, which also fixes the byte-level [`wire`] format
//! (`to_bytes`/`from_bytes`) that lets a shard ship its sketch to a
//! coordinator — the engine crate (`dsg-engine`) builds on exactly this.
//!
//! # Examples
//!
//! ```
//! use dsg_sketch::SparseRecovery;
//!
//! // Sketch a vector, delete most of it, recover what remains.
//! let mut sk = SparseRecovery::new(8, 42);
//! for i in 0..100u64 {
//!     sk.update(i, 1);
//! }
//! for i in 0..97u64 {
//!     sk.update(i, -1); // deletions
//! }
//! let mut support = sk.decode().unwrap();
//! support.sort();
//! assert_eq!(support, vec![(97, 1), (98, 1), (99, 1)]);
//! ```

pub mod countsketch;
pub mod distinct;
pub mod error;
pub mod fingerprint;
pub mod guarded;
pub mod hashtable;
pub mod l0;
pub mod onesparse;
pub mod ssparse;
pub mod wire;

pub use countsketch::CountSketch;
pub use distinct::DistinctEstimator;
pub use error::DecodeError;
pub use fingerprint::VectorFingerprint;
pub use guarded::GuardedSketch;
pub use hashtable::LinearHashTable;
pub use l0::L0Sampler;
pub use onesparse::{OneSparseCell, OneSparseVerdict};
pub use ssparse::SparseRecovery;
pub use wire::WireError;

use dsg_util::SpaceUsage;

/// The contract shared by every linear sketch in the workspace — and the
/// seam the sharded ingest engine (`dsg-engine`) plugs into.
///
/// A linear sketch is a linear function of a dynamic vector
/// `x ∈ Z^U`: [`update`](LinearSketch::update) adds `delta` to one
/// coordinate, and [`merge`](LinearSketch::merge)ing two sketches built
/// with the **same constructor parameters** (same seed, same shape) yields
/// bit-for-bit the sketch of the sum of their vectors. That exact property
/// is what makes the paper's distributed scenario work: shards sketch
/// disjoint sub-streams independently and a coordinator merges the
/// snapshots.
///
/// [`to_bytes`](LinearSketch::to_bytes) / [`from_bytes`](LinearSketch::from_bytes)
/// fix the versioned, checksummed [`wire`] format of a snapshot. Snapshots
/// carry parameters and linear state, never hash functions: randomness is
/// reconstructed deterministically from the shared seed (see the [`wire`]
/// module docs). Serialization is canonical — equal sketch states produce
/// equal bytes — so tests may compare snapshots directly.
///
/// Space accounting comes from the [`SpaceUsage`] supertrait.
///
/// # Examples
///
/// ```
/// use dsg_sketch::{LinearSketch, SparseRecovery};
///
/// let mut a = SparseRecovery::new(4, 7);
/// let mut b = SparseRecovery::new(4, 7); // same parameters: mergeable
/// a.update(10, 1);
/// b.update(20, 2);
/// a.merge(&b);
///
/// // Ship a snapshot and rebuild it elsewhere.
/// let bytes = a.to_bytes();
/// let back = SparseRecovery::from_bytes(&bytes).unwrap();
/// assert_eq!(back.decode().unwrap(), vec![(10, 1), (20, 2)]);
/// ```
pub trait LinearSketch: SpaceUsage + Sized {
    /// The [`wire`] kind tag identifying this sketch in snapshot headers.
    const WIRE_KIND: u16;

    /// Applies the update `x[key] += delta`. Zero deltas are no-ops.
    fn update(&mut self, key: u64, delta: i128);

    /// Adds `other` into `self` (the sketch of the vector sum).
    ///
    /// # Panics
    ///
    /// Panics if the sketches were built with different parameters or
    /// seeds — merging incompatible randomness would silently corrupt the
    /// state, so it is a programming error, not a recoverable one.
    fn merge(&mut self, other: &Self);

    /// Serializes the sketch into a self-contained wire frame.
    fn to_bytes(&self) -> Vec<u8>;

    /// Reconstructs a sketch from a wire frame produced by
    /// [`to_bytes`](LinearSketch::to_bytes).
    ///
    /// # Errors
    ///
    /// Any [`WireError`]: corruption, truncation, version or kind
    /// mismatch, or a structurally invalid payload.
    fn from_bytes(bytes: &[u8]) -> Result<Self, WireError>;

    /// The snapshot a shard ships to the coordinator (alias of
    /// [`to_bytes`](LinearSketch::to_bytes), named after the protocol
    /// step).
    fn snapshot(&self) -> Vec<u8> {
        self.to_bytes()
    }
}
