//! Linear sketches for dynamic streams.
//!
//! This crate implements, from scratch, every sketching primitive consumed
//! by Kapralov–Woodruff's "Spanners and Sparsifiers in Dynamic Streams"
//! (PODC 2014):
//!
//! * [`OneSparseCell`] — exact recovery of 1-sparse signed vectors with a
//!   fingerprint test; the building block of everything below.
//! * [`SparseRecovery`] — the paper's `SKETCH_B` / `DECODE` pair
//!   (Theorem 8's role): a linear sketch from which any `B`-sparse vector is
//!   reconstructed exactly with high probability, and decoding failures are
//!   *detected*. Implemented as an invertible Bloom lookup table (IBLT) with
//!   peeling decode — same guarantee shape as the CM06 matrices the paper
//!   cites (see `DESIGN.md` for the substitution argument).
//! * [`LinearHashTable`] — the `H^u_j` structure of Algorithm 2: a linear
//!   hash table whose *values* are themselves small linear sketches, realized
//!   exactly as the paper outlines ("treating the sketches associated with
//!   nodes `v ∈ V` as poly(log n)-length bit numbers and sketching this
//!   vector").
//! * [`L0Sampler`] — samples a (near-)uniform nonzero coordinate of a
//!   dynamic vector; the primitive behind AGM spanning-forest sketches.
//! * [`DistinctEstimator`] — `(1±eps)` estimation of the number of distinct
//!   (nonzero) coordinates (Theorem 9's role, after KNW10), used by the
//!   paper as a decodability guard and as the degree estimator `d_u` in
//!   Algorithm 3.
//! * [`GuardedSketch`] — `SKETCH_B` bundled with the distinct-elements
//!   decodability guard, exactly as described after Theorem 9.
//! * [`CountSketch`] — the alternative frequency sketch the paper mentions
//!   as a drop-in for Theorem 8.
//!
//! Every sketch is **linear**: it supports positive and negative updates,
//! and [`merge`](SparseRecovery::merge)ing the sketches of two vectors gives
//! the sketch of their sum, bit for bit. Property tests in
//! `tests/linearity.rs` pin this down.
//!
//! # Examples
//!
//! ```
//! use dsg_sketch::SparseRecovery;
//!
//! // Sketch a vector, delete most of it, recover what remains.
//! let mut sk = SparseRecovery::new(8, 42);
//! for i in 0..100u64 {
//!     sk.update(i, 1);
//! }
//! for i in 0..97u64 {
//!     sk.update(i, -1); // deletions
//! }
//! let mut support = sk.decode().unwrap();
//! support.sort();
//! assert_eq!(support, vec![(97, 1), (98, 1), (99, 1)]);
//! ```

pub mod countsketch;
pub mod distinct;
pub mod error;
pub mod fingerprint;
pub mod guarded;
pub mod hashtable;
pub mod l0;
pub mod onesparse;
pub mod ssparse;

pub use countsketch::CountSketch;
pub use distinct::DistinctEstimator;
pub use error::DecodeError;
pub use fingerprint::VectorFingerprint;
pub use guarded::GuardedSketch;
pub use hashtable::LinearHashTable;
pub use l0::L0Sampler;
pub use onesparse::{OneSparseCell, OneSparseVerdict};
pub use ssparse::SparseRecovery;
