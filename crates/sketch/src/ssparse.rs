//! `SKETCH_B` / `DECODE`: exact recovery of `B`-sparse dynamic vectors.
//!
//! This is the workhorse primitive of the paper (used in Algorithms 1–3 and
//! 5): a linear function of a dynamic vector `x ∈ Z^U` from which `x` can be
//! reconstructed exactly, with high probability, whenever `‖x‖_0 ≤ B`.
//! The paper instantiates it with the combinatorial compressed-sensing
//! matrices of Cormode–Muthukrishnan (Theorem 8); we use the equivalent
//! invertible-Bloom-lookup-table construction: `rows` hash functions spread
//! coordinates over `O(B)` buckets of [`OneSparseCell`]s and decoding peels
//! 1-sparse cells until the sketch empties. Failure (support above budget)
//! is detected, never silent — matching the paper's assumption that "we
//! always know if a `SKETCH_B(x)` can be decoded".
//!
//! # Families and states
//!
//! The paper shares sketch randomness across vertices: "the random bits used
//! by SKETCH are a function of `(r, j)`, and independent for different
//! `(r, j)`" — which is exactly what makes `Σ_{v ∈ T_u} S^{r,j}(v)` a valid
//! sketch of the union. [`RecoveryFamily`] holds that shared randomness
//! (hash functions and geometry) once; [`RecoveryState`] holds only the
//! per-instance cells. Maintaining a sketch per vertex therefore costs the
//! cells, not another copy of the hash functions. [`SparseRecovery`]
//! bundles a family with a single state for the common standalone case.
//!
//! Cells are allocated lazily (absent bucket = all-zero cell), so memory
//! scales with the number of *touched* buckets. `nominal_bytes` reports the
//! worst-case (dense) footprint that the paper's space bounds charge.

use crate::error::DecodeError;
use crate::onesparse::{OneSparseCell, OneSparseVerdict};
use crate::wire::{self, ByteReader, WireError};
use crate::LinearSketch;
use dsg_hash::{KWiseHash, SeedTree};
use dsg_util::SpaceUsage;
use std::collections::HashMap;

/// Number of hash rows; 3 gives peeling success for loads below ~0.8 and the
/// bucket head-room below keeps small budgets reliable.
const ROWS: usize = 3;

/// Per-row bucket head-room multiplier over the budget.
const BUCKET_FACTOR: usize = 2;

/// Minimum buckets per row, so tiny budgets still peel reliably.
const MIN_BUCKETS: usize = 4;

/// Independence of the bucket-placement hashes.
const PLACEMENT_INDEPENDENCE: usize = 7;

/// The shared randomness and geometry of a `SKETCH_B` instantiation.
///
/// All states updated against the same family are mutually mergeable, and
/// merging states sketches the sum of their vectors.
///
/// # Examples
///
/// ```
/// use dsg_sketch::ssparse::RecoveryFamily;
///
/// let fam = RecoveryFamily::new(4, 7);
/// let mut a = fam.new_state();
/// let mut b = fam.new_state();
/// fam.update(&mut a, 10, 1);
/// fam.update(&mut b, 11, 2);
/// a.merge(&b);
/// assert_eq!(fam.decode(&a).unwrap(), vec![(10, 1), (11, 2)]);
/// ```
#[derive(Debug, Clone)]
pub struct RecoveryFamily {
    budget: usize,
    seed: u64,
    buckets_per_row: usize,
    row_hashes: Vec<KWiseHash>,
    fingerprint_hash: KWiseHash,
    /// Distinguishes families when states are merged (safety check).
    family_id: u64,
}

/// The per-instance cells of a `SKETCH_B` sketch (lazily allocated).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryState {
    cells: HashMap<u32, OneSparseCell>,
    family_id: u64,
}

impl RecoveryFamily {
    /// Creates a family with the given decoding budget and seed.
    ///
    /// # Panics
    ///
    /// Panics if `budget == 0`.
    pub fn new(budget: usize, seed: u64) -> Self {
        assert!(budget > 0, "decoding budget must be positive");
        let tree = SeedTree::new(seed ^ 0x5353_5041_5253_4531); // "SSPARSE1"
        let buckets_per_row = (budget * BUCKET_FACTOR).max(MIN_BUCKETS);
        let row_hashes = (0..ROWS)
            .map(|r| KWiseHash::new(PLACEMENT_INDEPENDENCE, tree.child(r as u64).seed()))
            .collect();
        let fingerprint_hash = KWiseHash::new(3, tree.child(0xF1).seed());
        let family_id = tree.child(0x1D).seed() ^ budget as u64;
        Self {
            budget,
            seed,
            buckets_per_row,
            row_hashes,
            fingerprint_hash,
            family_id,
        }
    }

    /// The decoding budget `B`.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// The creation seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Creates an empty state bound to this family.
    pub fn new_state(&self) -> RecoveryState {
        RecoveryState {
            cells: HashMap::new(),
            family_id: self.family_id,
        }
    }

    #[inline]
    fn cell_index(&self, row: usize, key: u64) -> u32 {
        let bucket = self.row_hashes[row].hash_below(key, self.buckets_per_row as u64);
        (row * self.buckets_per_row) as u32 + bucket as u32
    }

    /// Applies `x[key] += delta` to `state`.
    ///
    /// Zero deltas are ignored.
    ///
    /// # Panics
    ///
    /// Panics if `state` belongs to a different family.
    pub fn update(&self, state: &mut RecoveryState, key: u64, delta: i128) {
        assert_eq!(
            state.family_id, self.family_id,
            "state from a different family"
        );
        if delta == 0 {
            return;
        }
        for row in 0..ROWS {
            let idx = self.cell_index(row, key);
            let cell = state.cells.entry(idx).or_default();
            cell.update(key, delta, &self.fingerprint_hash);
            if cell.is_zero() {
                state.cells.remove(&idx);
            }
        }
    }

    /// Reconstructs the nonzero coordinates of the vector sketched by
    /// `state`.
    ///
    /// Runs peeling on a copy of the state; `state` is unchanged.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Overloaded`] if peeling stalls (support exceeded the
    /// budget, or an unlucky placement); [`DecodeError::Inconsistent`] if a
    /// peeled coordinate collides with contradictory state.
    ///
    /// # Panics
    ///
    /// Panics if `state` belongs to a different family.
    pub fn decode(&self, state: &RecoveryState) -> Result<Vec<(u64, i128)>, DecodeError> {
        assert_eq!(
            state.family_id, self.family_id,
            "state from a different family"
        );
        let mut cells = state.cells.clone();
        let mut recovered: HashMap<u64, i128> = HashMap::new();
        let mut queue: Vec<u32> = cells.keys().copied().collect();
        // Cap iterations defensively; each successful peel removes a
        // coordinate, so this bound is generous unless the state is corrupt.
        let mut guard = (cells.len() + 1) * (ROWS + 2) + 16 * self.budget;
        while let Some(idx) = queue.pop() {
            let verdict = match cells.get(&idx) {
                Some(cell) => cell.verdict(&self.fingerprint_hash),
                None => continue,
            };
            match verdict {
                OneSparseVerdict::Zero => {
                    cells.remove(&idx);
                }
                OneSparseVerdict::One { key, value } => {
                    *recovered.entry(key).or_insert(0) += value;
                    for row in 0..ROWS {
                        let ridx = self.cell_index(row, key);
                        if let Some(rcell) = cells.get_mut(&ridx) {
                            rcell.update(key, -value, &self.fingerprint_hash);
                            if rcell.is_zero() {
                                cells.remove(&ridx);
                            } else {
                                queue.push(ridx);
                            }
                        } else if ridx != idx {
                            return Err(DecodeError::Inconsistent);
                        }
                    }
                }
                OneSparseVerdict::Many => {}
            }
            if guard == 0 {
                break;
            }
            guard -= 1;
        }
        if !cells.is_empty() {
            return Err(DecodeError::Overloaded);
        }
        let mut out: Vec<(u64, i128)> = recovered.into_iter().filter(|&(_, v)| v != 0).collect();
        out.sort_unstable();
        Ok(out)
    }

    /// Worst-case (dense) footprint of one state in bytes, as the paper's
    /// space accounting charges (hash words included).
    pub fn nominal_state_bytes(&self) -> usize {
        ROWS * self.buckets_per_row * OneSparseCell::new().space_bytes() + self.space_bytes()
    }

    /// Decodes a state serialized by [`RecoveryState::encode_into`],
    /// binding it to this family.
    pub(crate) fn decode_state(&self, r: &mut ByteReader<'_>) -> Result<RecoveryState, WireError> {
        RecoveryState::decode_from(r, self.family_id)
    }
}

impl SpaceUsage for RecoveryFamily {
    fn space_bytes(&self) -> usize {
        self.row_hashes
            .iter()
            .map(SpaceUsage::space_bytes)
            .sum::<usize>()
            + self.fingerprint_hash.space_bytes()
    }
}

impl RecoveryState {
    /// Adds another state (sketch of the vector sum).
    ///
    /// # Panics
    ///
    /// Panics if the states belong to different families.
    pub fn merge(&mut self, other: &RecoveryState) {
        assert_eq!(
            self.family_id, other.family_id,
            "merging states of different families"
        );
        for (&idx, cell) in &other.cells {
            let mine = self.cells.entry(idx).or_default();
            mine.merge(cell);
            if mine.is_zero() {
                self.cells.remove(&idx);
            }
        }
    }

    /// Subtracts another state (sketch of the vector difference).
    ///
    /// # Panics
    ///
    /// Panics if the states belong to different families.
    pub fn unmerge(&mut self, other: &RecoveryState) {
        assert_eq!(
            self.family_id, other.family_id,
            "subtracting states of different families"
        );
        for (&idx, cell) in &other.cells {
            let mine = self.cells.entry(idx).or_default();
            mine.unmerge(cell);
            if mine.is_zero() {
                self.cells.remove(&idx);
            }
        }
    }

    /// Whether the state is identically zero.
    pub fn is_zero(&self) -> bool {
        self.cells.is_empty()
    }

    /// Number of currently allocated (nonzero) cells.
    pub fn touched_cells(&self) -> usize {
        self.cells.len()
    }

    /// Serializes the cells in sorted index order (canonical encoding).
    pub(crate) fn encode_into(&self, out: &mut Vec<u8>) {
        let mut cells: Vec<(u32, &OneSparseCell)> =
            self.cells.iter().map(|(&i, c)| (i, c)).collect();
        cells.sort_unstable_by_key(|&(i, _)| i);
        wire::put_len(out, cells.len());
        for (idx, cell) in cells {
            let (total, key_sum, fingerprint) = cell.raw_parts();
            wire::put_u32(out, idx);
            wire::put_i128(out, total);
            wire::put_u64(out, key_sum);
            wire::put_u64(out, fingerprint);
        }
    }

    /// Decodes cells serialized by [`RecoveryState::encode_into`] into a
    /// state bound to `family_id`.
    pub(crate) fn decode_from(r: &mut ByteReader<'_>, family_id: u64) -> Result<Self, WireError> {
        let n = r.read_len()?;
        // Each cell occupies 36 payload bytes; bound the declared count by
        // what the remaining payload could possibly hold before allocating.
        if n > r.remaining() / 36 {
            return Err(WireError::Truncated);
        }
        let mut cells = HashMap::with_capacity(n);
        for _ in 0..n {
            let idx = r.u32()?;
            let total = r.i128()?;
            let key_sum = r.u64()?;
            let fingerprint = r.u64()?;
            let cell = OneSparseCell::from_raw_parts(total, key_sum, fingerprint)?;
            if cells.insert(idx, cell).is_some() {
                return Err(WireError::Malformed("duplicate cell index"));
            }
        }
        Ok(Self { cells, family_id })
    }
}

impl SpaceUsage for RecoveryState {
    fn space_bytes(&self) -> usize {
        self.cells.len() * (4 + OneSparseCell::new().space_bytes())
    }
}

/// A standalone `SKETCH_B` sketch: a [`RecoveryFamily`] bundled with one
/// [`RecoveryState`].
///
/// # Examples
///
/// ```
/// use dsg_sketch::{LinearSketch, SparseRecovery};
///
/// let mut a = SparseRecovery::new(4, 99);
/// let mut b = SparseRecovery::new(4, 99); // same seed: compatible
/// a.update(10, 1);
/// b.update(10, -1);
/// b.update(20, 5);
/// a.merge(&b);
/// assert_eq!(a.decode().unwrap(), vec![(20, 5)]);
/// ```
#[derive(Debug, Clone)]
pub struct SparseRecovery {
    family: RecoveryFamily,
    state: RecoveryState,
}

impl SparseRecovery {
    /// Creates a sketch with the given decoding budget and seed.
    ///
    /// # Panics
    ///
    /// Panics if `budget == 0`.
    pub fn new(budget: usize, seed: u64) -> Self {
        let family = RecoveryFamily::new(budget, seed);
        let state = family.new_state();
        Self { family, state }
    }

    /// The decoding budget `B`.
    pub fn budget(&self) -> usize {
        self.family.budget()
    }

    /// The creation seed (compatibility key).
    pub fn seed(&self) -> u64 {
        self.family.seed()
    }

    /// Whether `other` can be merged into `self`.
    pub fn compatible(&self, other: &SparseRecovery) -> bool {
        self.family.family_id == other.family.family_id
    }

    /// Applies the update `x[key] += delta`. Zero deltas are ignored.
    pub fn update(&mut self, key: u64, delta: i128) {
        self.family.update(&mut self.state, key, delta);
    }

    /// Subtracts `other` from `self` (sketch of the vector difference).
    ///
    /// # Panics
    ///
    /// Panics if the sketches are incompatible.
    pub fn unmerge(&mut self, other: &SparseRecovery) {
        assert!(self.compatible(other), "subtracting incompatible sketches");
        self.state.unmerge(&other.state);
    }

    /// Whether the sketch state is identically zero.
    pub fn is_zero(&self) -> bool {
        self.state.is_zero()
    }

    /// Reconstructs the sketched vector's nonzero coordinates.
    ///
    /// # Errors
    ///
    /// See [`RecoveryFamily::decode`].
    pub fn decode(&self) -> Result<Vec<(u64, i128)>, DecodeError> {
        self.family.decode(&self.state)
    }

    /// Decodes and returns an arbitrary nonzero coordinate (the paper
    /// frequently wants "an arbitrary element in the support").
    ///
    /// # Errors
    ///
    /// Propagates decode failures; `Ok(None)` when the vector is zero.
    pub fn decode_any(&self) -> Result<Option<(u64, i128)>, DecodeError> {
        Ok(self.decode()?.into_iter().next())
    }

    /// Worst-case (dense) footprint in bytes.
    pub fn nominal_bytes(&self) -> usize {
        self.family.nominal_state_bytes()
    }

    /// Number of currently allocated (nonzero) cells.
    pub fn touched_cells(&self) -> usize {
        self.state.touched_cells()
    }
}

impl SpaceUsage for SparseRecovery {
    fn space_bytes(&self) -> usize {
        self.family.space_bytes() + self.state.space_bytes()
    }
}

impl LinearSketch for SparseRecovery {
    const WIRE_KIND: u16 = wire::KIND_SPARSE_RECOVERY;

    fn update(&mut self, key: u64, delta: i128) {
        self.family.update(&mut self.state, key, delta);
    }

    fn merge(&mut self, other: &Self) {
        assert!(self.compatible(other), "merging incompatible sketches");
        self.state.merge(&other.state);
    }

    fn to_bytes(&self) -> Vec<u8> {
        let mut payload = Vec::new();
        wire::put_len(&mut payload, self.family.budget);
        wire::put_u64(&mut payload, self.family.seed);
        self.state.encode_into(&mut payload);
        wire::finish_frame(Self::WIRE_KIND, payload)
    }

    fn from_bytes(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = wire::open_frame(Self::WIRE_KIND, bytes)?;
        let budget = r.read_len()?;
        if budget == 0 {
            return Err(WireError::Malformed("zero budget"));
        }
        let seed = r.u64()?;
        let family = RecoveryFamily::new(budget, seed);
        let state = RecoveryState::decode_from(&mut r, family.family_id)?;
        r.expect_end()?;
        Ok(Self { family, state })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_decodes_to_nothing() {
        let sk = SparseRecovery::new(4, 1);
        assert!(sk.is_zero());
        assert_eq!(sk.decode().unwrap(), vec![]);
        assert_eq!(sk.decode_any().unwrap(), None);
    }

    #[test]
    fn recovers_exactly_at_budget() {
        let mut sk = SparseRecovery::new(8, 2);
        let items: Vec<(u64, i128)> = (0..8).map(|i| (i * 1000 + 3, i as i128 - 4)).collect();
        for &(k, v) in &items {
            if v != 0 {
                sk.update(k, v);
            }
        }
        let mut expect: Vec<(u64, i128)> = items.into_iter().filter(|&(_, v)| v != 0).collect();
        expect.sort_unstable();
        assert_eq!(sk.decode().unwrap(), expect);
    }

    #[test]
    fn detects_overload() {
        let mut sk = SparseRecovery::new(4, 3);
        for i in 0..200u64 {
            sk.update(i, 1);
        }
        assert_eq!(sk.decode(), Err(DecodeError::Overloaded));
    }

    #[test]
    fn deletions_restore_decodability() {
        let mut sk = SparseRecovery::new(4, 4);
        for i in 0..100u64 {
            sk.update(i, 1);
        }
        for i in 0..98u64 {
            sk.update(i, -1);
        }
        assert_eq!(sk.decode().unwrap(), vec![(98, 1), (99, 1)]);
    }

    #[test]
    fn merge_matches_direct_updates() {
        let mut direct = SparseRecovery::new(6, 77);
        let mut a = SparseRecovery::new(6, 77);
        let mut b = SparseRecovery::new(6, 77);
        for i in 0..5u64 {
            direct.update(i, 2);
            a.update(i, 2);
        }
        for i in 3..8u64 {
            direct.update(i, -1);
            b.update(i, -1);
        }
        a.merge(&b);
        assert_eq!(a.decode().unwrap(), direct.decode().unwrap());
    }

    #[test]
    fn unmerge_isolates_difference() {
        let mut a = SparseRecovery::new(4, 5);
        let mut b = SparseRecovery::new(4, 5);
        a.update(1, 1);
        a.update(2, 1);
        b.update(1, 1);
        a.unmerge(&b);
        assert_eq!(a.decode().unwrap(), vec![(2, 1)]);
    }

    #[test]
    #[should_panic(expected = "incompatible")]
    fn incompatible_merge_panics() {
        let mut a = SparseRecovery::new(4, 1);
        let b = SparseRecovery::new(4, 2);
        a.merge(&b);
    }

    #[test]
    fn update_zero_is_noop() {
        let mut sk = SparseRecovery::new(4, 9);
        sk.update(5, 0);
        assert!(sk.is_zero());
    }

    #[test]
    fn cancellation_frees_cells() {
        let mut sk = SparseRecovery::new(4, 9);
        sk.update(5, 3);
        assert!(sk.touched_cells() > 0);
        sk.update(5, -3);
        assert_eq!(sk.touched_cells(), 0);
        assert!(sk.is_zero());
    }

    #[test]
    fn success_rate_high_at_half_budget() {
        let mut failures = 0;
        let trials = 200;
        for seed in 0..trials {
            let mut sk = SparseRecovery::new(16, seed);
            for i in 0..8u64 {
                sk.update(i * 7919 + seed, 1);
            }
            if sk.decode().is_err() {
                failures += 1;
            }
        }
        assert!(failures <= 2, "failures={failures}/{trials}");
    }

    #[test]
    fn large_keys_supported() {
        let mut sk = SparseRecovery::new(2, 11);
        let big = (1u64 << 61) - 2; // largest canonical key
        sk.update(big, 42);
        assert_eq!(sk.decode().unwrap(), vec![(big, 42)]);
    }

    #[test]
    fn nominal_exceeds_actual_for_sparse_use() {
        let mut sk = SparseRecovery::new(32, 1);
        sk.update(1, 1);
        assert!(sk.nominal_bytes() > sk.space_bytes());
    }

    #[test]
    fn decode_does_not_mutate() {
        let mut sk = SparseRecovery::new(4, 13);
        sk.update(10, 1);
        sk.update(20, 2);
        let before = sk.decode().unwrap();
        let after = sk.decode().unwrap();
        assert_eq!(before, after);
    }

    #[test]
    fn family_states_share_randomness() {
        let fam = RecoveryFamily::new(4, 42);
        let mut states: Vec<RecoveryState> = (0..10).map(|_| fam.new_state()).collect();
        for (i, st) in states.iter_mut().enumerate() {
            fam.update(st, i as u64, 1);
        }
        // Merging all states sketches the union.
        let mut total = fam.new_state();
        for st in &states {
            total.merge(st);
        }
        let decoded = fam.decode(&total).unwrap();
        assert_eq!(decoded.len(), 10);
    }

    #[test]
    #[should_panic(expected = "different family")]
    fn cross_family_update_panics() {
        let fam_a = RecoveryFamily::new(4, 1);
        let fam_b = RecoveryFamily::new(4, 2);
        let mut st = fam_a.new_state();
        fam_b.update(&mut st, 1, 1);
    }

    #[test]
    fn wire_roundtrip_preserves_state() {
        let mut sk = SparseRecovery::new(8, 321);
        for i in 0..6u64 {
            sk.update(i * 911, i as i128 - 3);
        }
        let bytes = sk.to_bytes();
        let back = SparseRecovery::from_bytes(&bytes).unwrap();
        assert_eq!(back.decode(), sk.decode());
        // Canonical encoding: re-serializing gives identical bytes.
        assert_eq!(back.to_bytes(), bytes);
    }

    #[test]
    fn wire_snapshot_merges_like_original() {
        let mut a = SparseRecovery::new(4, 5);
        let mut b = SparseRecovery::new(4, 5);
        a.update(1, 2);
        b.update(9, -7);
        let mut shipped = SparseRecovery::from_bytes(&b.snapshot()).unwrap();
        shipped.merge(&a);
        let mut direct = a.clone();
        direct.merge(&b);
        assert_eq!(shipped.decode(), direct.decode());
    }

    #[test]
    fn family_space_counted_once() {
        let fam = RecoveryFamily::new(8, 3);
        let st = fam.new_state();
        assert!(st.space_bytes() == 0);
        assert!(fam.space_bytes() > 0);
        assert!(fam.nominal_state_bytes() > fam.space_bytes());
    }
}
