//! CountSketch: frequency estimation for dynamic vectors.
//!
//! The paper notes after Theorem 8 that "we could also use other sketches,
//! such as CountSketch ... improving upon the logarithmic factors in the
//! space, though the reconstruction time will be larger". This module
//! provides that alternative: a `rows × buckets` array of signed counters
//! with median-of-rows point queries. It is used by the benchmark suite to
//! compare against [`crate::SparseRecovery`] and completes the sketching
//! toolbox a downstream user would expect.

use crate::wire::{self, WireError};
use crate::LinearSketch;
use dsg_hash::{KWiseHash, SeedTree};
use dsg_util::SpaceUsage;

/// A CountSketch frequency estimator.
///
/// Point queries return `x[key]` within `±‖x‖_2 / sqrt(buckets)` per row,
/// sharpened by taking the median over rows.
///
/// # Examples
///
/// ```
/// use dsg_sketch::CountSketch;
///
/// let mut cs = CountSketch::new(5, 256, 42);
/// cs.update(7, 100);
/// for i in 0..50u64 {
///     cs.update(1000 + i, 1); // light noise
/// }
/// let est = cs.query(7);
/// assert!((est - 100).abs() <= 10, "est={est}");
/// ```
#[derive(Debug, Clone)]
pub struct CountSketch {
    rows: usize,
    buckets: usize,
    seed: u64,
    bucket_hashes: Vec<KWiseHash>,
    sign_hashes: Vec<KWiseHash>,
    counters: Vec<i128>,
}

impl CountSketch {
    /// Creates a CountSketch with `rows` independent rows of `buckets`
    /// counters each.
    ///
    /// # Panics
    ///
    /// Panics if `rows == 0` or `buckets == 0`.
    pub fn new(rows: usize, buckets: usize, seed: u64) -> Self {
        assert!(rows > 0, "rows must be positive");
        assert!(buckets > 0, "buckets must be positive");
        let tree = SeedTree::new(seed ^ 0x434F_554E_5453_4B31); // "COUNTSK1"
        let bucket_hashes = (0..rows)
            .map(|r| KWiseHash::new(2, tree.child(r as u64).child(0).seed()))
            .collect();
        let sign_hashes = (0..rows)
            .map(|r| KWiseHash::new(4, tree.child(r as u64).child(1).seed()))
            .collect();
        Self {
            rows,
            buckets,
            seed,
            bucket_hashes,
            sign_hashes,
            counters: vec![0; rows * buckets],
        }
    }

    /// Applies `x[key] += delta`.
    pub fn update(&mut self, key: u64, delta: i128) {
        if delta == 0 {
            return;
        }
        for r in 0..self.rows {
            let b = self.bucket_hashes[r].hash_below(key, self.buckets as u64) as usize;
            let s = self.sign_hashes[r].hash_sign(key) as i128;
            self.counters[r * self.buckets + b] += s * delta;
        }
    }

    /// Estimates `x[key]` (median over rows).
    pub fn query(&self, key: u64) -> i128 {
        let mut ests: Vec<i128> = (0..self.rows)
            .map(|r| {
                let b = self.bucket_hashes[r].hash_below(key, self.buckets as u64) as usize;
                let s = self.sign_hashes[r].hash_sign(key) as i128;
                s * self.counters[r * self.buckets + b]
            })
            .collect();
        ests.sort_unstable();
        ests[ests.len() / 2]
    }

    /// Whether all counters are zero.
    pub fn is_zero(&self) -> bool {
        self.counters.iter().all(|&c| c == 0)
    }

    /// Heavy hitters: all candidates whose estimated magnitude is at least
    /// `threshold`, from a candidate key set.
    ///
    /// CountSketch cannot enumerate keys by itself (that is what
    /// [`crate::SparseRecovery`] adds); given candidates — e.g. the vertex
    /// ids of a graph — it reports the heavy ones.
    pub fn heavy_hitters<I: IntoIterator<Item = u64>>(
        &self,
        candidates: I,
        threshold: i128,
    ) -> Vec<(u64, i128)> {
        assert!(threshold > 0, "threshold must be positive");
        let mut out: Vec<(u64, i128)> = candidates
            .into_iter()
            .filter_map(|k| {
                let est = self.query(k);
                (est.abs() >= threshold).then_some((k, est))
            })
            .collect();
        out.sort_unstable_by_key(|&(_, v)| std::cmp::Reverse(v.abs()));
        out
    }
}

impl LinearSketch for CountSketch {
    const WIRE_KIND: u16 = wire::KIND_COUNTSKETCH;

    fn update(&mut self, key: u64, delta: i128) {
        CountSketch::update(self, key, delta);
    }

    fn merge(&mut self, other: &Self) {
        assert!(
            self.rows == other.rows && self.buckets == other.buckets && self.seed == other.seed,
            "merging incompatible CountSketches"
        );
        for (a, b) in self.counters.iter_mut().zip(&other.counters) {
            *a += b;
        }
    }

    fn to_bytes(&self) -> Vec<u8> {
        let mut payload = Vec::new();
        wire::put_len(&mut payload, self.rows);
        wire::put_len(&mut payload, self.buckets);
        wire::put_u64(&mut payload, self.seed);
        for &c in &self.counters {
            wire::put_i128(&mut payload, c);
        }
        wire::finish_frame(Self::WIRE_KIND, payload)
    }

    fn from_bytes(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = wire::open_frame(Self::WIRE_KIND, bytes)?;
        let rows = r.read_len()?;
        let buckets = r.read_len()?;
        if rows == 0 || buckets == 0 {
            return Err(WireError::Malformed("zero rows or buckets"));
        }
        let seed = r.u64()?;
        // The counters are the rest of the payload, 16 bytes each: the
        // declared shape must match exactly before anything is allocated.
        if rows.saturating_mul(buckets) != r.remaining() / 16 {
            return Err(WireError::Malformed("table size disagrees with payload"));
        }
        let mut sk = CountSketch::new(rows, buckets, seed);
        for slot in sk.counters.iter_mut() {
            *slot = r.i128()?;
        }
        r.expect_end()?;
        Ok(sk)
    }
}

impl SpaceUsage for CountSketch {
    fn space_bytes(&self) -> usize {
        self.counters.space_bytes()
            + self
                .bucket_hashes
                .iter()
                .map(SpaceUsage::space_bytes)
                .sum::<usize>()
            + self
                .sign_hashes
                .iter()
                .map(SpaceUsage::space_bytes)
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_on_isolated_key() {
        let mut cs = CountSketch::new(3, 64, 1);
        cs.update(42, -17);
        assert_eq!(cs.query(42), -17);
    }

    #[test]
    fn absent_key_estimates_near_zero() {
        let mut cs = CountSketch::new(5, 512, 2);
        for i in 0..100u64 {
            cs.update(i, 1);
        }
        let est = cs.query(999_999);
        assert!(est.abs() <= 3, "est={est}");
    }

    #[test]
    fn deletions_cancel() {
        let mut cs = CountSketch::new(3, 64, 3);
        cs.update(5, 10);
        cs.update(5, -10);
        assert!(cs.is_zero());
    }

    #[test]
    fn heavy_hitter_dominates_noise() {
        let mut cs = CountSketch::new(7, 1024, 4);
        cs.update(1, 10_000);
        for i in 2..2000u64 {
            cs.update(i, 1);
        }
        let est = cs.query(1);
        assert!((est - 10_000).abs() < 500, "est={est}");
    }

    #[test]
    fn merge_matches_direct() {
        let mut a = CountSketch::new(3, 32, 5);
        let mut b = CountSketch::new(3, 32, 5);
        let mut direct = CountSketch::new(3, 32, 5);
        a.update(1, 4);
        direct.update(1, 4);
        b.update(2, -4);
        direct.update(2, -4);
        a.merge(&b);
        assert_eq!(a.query(1), direct.query(1));
        assert_eq!(a.query(2), direct.query(2));
    }

    #[test]
    #[should_panic(expected = "incompatible")]
    fn incompatible_merge_panics() {
        let mut a = CountSketch::new(3, 32, 1);
        let b = CountSketch::new(3, 32, 2);
        a.merge(&b);
    }

    #[test]
    fn wire_roundtrip_preserves_queries() {
        let mut cs = CountSketch::new(3, 32, 17);
        cs.update(5, 40);
        cs.update(9, -3);
        let bytes = cs.to_bytes();
        let back = CountSketch::from_bytes(&bytes).unwrap();
        assert_eq!(back.query(5), cs.query(5));
        assert_eq!(back.query(9), cs.query(9));
        assert_eq!(back.to_bytes(), bytes);
    }

    #[test]
    fn crafted_shape_frame_rejected_before_allocation() {
        // rows × buckets = 2^34 counters declared over an empty payload:
        // the shape/payload consistency check must reject it.
        let mut payload = Vec::new();
        wire::put_len(&mut payload, 1usize << 17);
        wire::put_len(&mut payload, 1usize << 17);
        wire::put_u64(&mut payload, 0);
        let frame = wire::finish_frame(wire::KIND_COUNTSKETCH, payload);
        assert!(CountSketch::from_bytes(&frame).is_err());
    }

    #[test]
    fn heavy_hitters_found_and_ranked() {
        let mut cs = CountSketch::new(7, 512, 9);
        cs.update(100, 5_000);
        cs.update(200, -3_000);
        for i in 0..500u64 {
            cs.update(1000 + i, 1);
        }
        let hh = cs.heavy_hitters(0..2000u64, 1_000);
        assert_eq!(hh.len(), 2, "hh = {hh:?}");
        assert_eq!(hh[0].0, 100);
        assert_eq!(hh[1].0, 200);
        assert!(hh[1].1 < 0);
    }

    #[test]
    #[should_panic(expected = "threshold must be positive")]
    fn zero_threshold_panics() {
        CountSketch::new(2, 8, 1).heavy_hitters(0..4u64, 0);
    }
}
