//! Polynomial fingerprints for dynamic-vector equality testing.
//!
//! A fingerprint is the cheapest linear sketch: a single field word
//! `Σ_i x_i · h(i) (mod p)` that equals for two vectors only if the vectors
//! are equal, except with probability `O(1/p)`. The workspace uses
//! fingerprints inside every recovery cell; this standalone version is
//! handy in tests and for verifying that two differently-built sketch
//! pipelines observed the same stream.

use crate::onesparse::mod_p;
use crate::wire::{self, WireError};
use crate::LinearSketch;
use dsg_hash::{field, KWiseHash};
use dsg_util::SpaceUsage;

/// A one-word linear fingerprint of a dynamic vector.
///
/// # Examples
///
/// ```
/// use dsg_sketch::VectorFingerprint;
///
/// let mut a = VectorFingerprint::new(42);
/// let mut b = VectorFingerprint::new(42);
/// a.update(1, 5);
/// a.update(2, -3);
/// b.update(2, -3);
/// b.update(1, 5); // order doesn't matter
/// assert_eq!(a, b);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VectorFingerprint {
    hash: KWiseHash,
    value: u64,
    seed: u64,
}

impl VectorFingerprint {
    /// Creates a zero fingerprint with randomness from `seed`.
    pub fn new(seed: u64) -> Self {
        Self {
            hash: KWiseHash::new(3, seed ^ 0x4650_5249_4E54_5631),
            value: 0,
            seed,
        }
    }

    /// The creation seed (compatibility key for merges).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Applies `x[key] += delta`.
    pub fn update(&mut self, key: u64, delta: i128) {
        let d = mod_p(delta);
        self.value = field::add(self.value, field::mul(d, self.hash.hash(key)));
    }

    /// Whether the fingerprint is zero (vector is zero whp).
    pub fn is_zero(&self) -> bool {
        self.value == 0
    }

    /// The raw fingerprint word.
    pub fn value(&self) -> u64 {
        self.value
    }
}

impl LinearSketch for VectorFingerprint {
    const WIRE_KIND: u16 = wire::KIND_FINGERPRINT;

    fn update(&mut self, key: u64, delta: i128) {
        VectorFingerprint::update(self, key, delta);
    }

    fn merge(&mut self, other: &Self) {
        assert_eq!(self.seed, other.seed, "merging incompatible fingerprints");
        self.value = field::add(self.value, other.value);
    }

    fn to_bytes(&self) -> Vec<u8> {
        let mut payload = Vec::new();
        wire::put_u64(&mut payload, self.seed);
        wire::put_u64(&mut payload, self.value);
        wire::finish_frame(Self::WIRE_KIND, payload)
    }

    fn from_bytes(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = wire::open_frame(Self::WIRE_KIND, bytes)?;
        let seed = r.u64()?;
        let value = r.u64()?;
        if value >= field::P {
            return Err(WireError::Malformed("non-canonical field word"));
        }
        r.expect_end()?;
        let mut fp = VectorFingerprint::new(seed);
        fp.value = value;
        Ok(fp)
    }
}

impl SpaceUsage for VectorFingerprint {
    fn space_bytes(&self) -> usize {
        self.hash.space_bytes() + 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_vectors_equal_fingerprints() {
        let mut a = VectorFingerprint::new(7);
        let mut b = VectorFingerprint::new(7);
        for i in 0..100u64 {
            a.update(i, i as i128);
        }
        for i in (0..100u64).rev() {
            b.update(i, i as i128);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn different_vectors_differ() {
        let mut a = VectorFingerprint::new(7);
        let mut b = VectorFingerprint::new(7);
        a.update(1, 1);
        b.update(2, 1);
        assert_ne!(a.value(), b.value());
    }

    #[test]
    fn cancellation_zeroes() {
        let mut a = VectorFingerprint::new(9);
        a.update(5, 3);
        a.update(5, -3);
        assert!(a.is_zero());
    }

    #[test]
    fn wire_roundtrip_is_exact() {
        let mut a = VectorFingerprint::new(31);
        a.update(5, 9);
        a.update(77, -2);
        let bytes = a.to_bytes();
        let back = VectorFingerprint::from_bytes(&bytes).unwrap();
        assert_eq!(back, a);
        assert_eq!(back.to_bytes(), bytes);
    }

    #[test]
    fn merge_is_additive() {
        let mut a = VectorFingerprint::new(3);
        let mut b = VectorFingerprint::new(3);
        let mut direct = VectorFingerprint::new(3);
        a.update(1, 2);
        b.update(9, 4);
        direct.update(1, 2);
        direct.update(9, 4);
        a.merge(&b);
        assert_eq!(a, direct);
    }
}
