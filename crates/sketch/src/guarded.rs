//! `SKETCH_B` with the distinct-elements decodability guard.
//!
//! Immediately after Theorem 9 the paper explains how an algorithm "always
//! knows if a `SKETCH_B(x)` can be decoded": maintain a distinct-elements
//! sketch alongside each `SKETCH_B` instantiation and "declare the sketch to
//! be not decodable when the number of distinct elements is estimated to be
//! above `2B`". [`GuardedSketch`] packages that pairing.
//!
//! Our [`SparseRecovery`] already *detects* decoding failure internally via
//! fingerprints, so the production algorithms use it directly (cheaper
//! constants, same contract); the guarded variant exists for fidelity to the
//! paper's description and is exercised by the ablation experiments.

use crate::distinct::DistinctEstimator;
use crate::error::DecodeError;
use crate::ssparse::SparseRecovery;
use crate::wire::{self, WireError};
use crate::LinearSketch;
use dsg_hash::SeedTree;
use dsg_util::SpaceUsage;

/// A `B`-sparse recovery sketch paired with a support-size guard.
///
/// # Examples
///
/// ```
/// use dsg_sketch::GuardedSketch;
///
/// let mut g = GuardedSketch::new(4, 16, 42);
/// g.update(3, 1);
/// g.update(9, 2);
/// assert!(g.declared_decodable());
/// assert_eq!(g.decode().unwrap(), vec![(3, 1), (9, 2)]);
/// ```
#[derive(Debug, Clone)]
pub struct GuardedSketch {
    sketch: SparseRecovery,
    guard: DistinctEstimator,
    budget: usize,
}

impl GuardedSketch {
    /// Creates a guarded sketch with decode budget `budget` over a universe
    /// of `2^universe_bits` coordinates.
    ///
    /// # Panics
    ///
    /// Panics if `budget == 0` or `universe_bits > 60`.
    pub fn new(budget: usize, universe_bits: u32, seed: u64) -> Self {
        let tree = SeedTree::new(seed ^ 0x4755_4152_4445_4421); // "GUARDED!"
        Self {
            sketch: SparseRecovery::new(budget, tree.child(0).seed()),
            // eps = 1/2 suffices to separate "≤ B" from "> 2B".
            guard: DistinctEstimator::new(universe_bits, 0.5, 5, tree.child(1).seed()),
            budget,
        }
    }

    /// Applies `x[key] += delta` to both the sketch and the guard.
    pub fn update(&mut self, key: u64, delta: i128) {
        self.sketch.update(key, delta);
        self.guard.update(key, delta);
    }

    /// The paper's decodability declaration: the guard estimates the support
    /// at `≤ 2B`.
    ///
    /// A guard-side decode failure (itself a whp event) declares the sketch
    /// undecodable, which is the conservative direction.
    pub fn declared_decodable(&self) -> bool {
        match self.guard.estimate() {
            Ok(est) => est as usize <= 2 * self.budget,
            Err(_) => false,
        }
    }

    /// Decodes the sketched vector, first consulting the guard.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Overloaded`] when the guard declares the sketch
    /// undecodable or peeling fails.
    pub fn decode(&self) -> Result<Vec<(u64, i128)>, DecodeError> {
        if !self.declared_decodable() {
            return Err(DecodeError::Overloaded);
        }
        self.sketch.decode()
    }

    /// The underlying recovery sketch.
    pub fn sketch(&self) -> &SparseRecovery {
        &self.sketch
    }
}

impl SpaceUsage for GuardedSketch {
    fn space_bytes(&self) -> usize {
        self.sketch.space_bytes() + self.guard.space_bytes()
    }
}

impl LinearSketch for GuardedSketch {
    const WIRE_KIND: u16 = wire::KIND_GUARDED;

    fn update(&mut self, key: u64, delta: i128) {
        GuardedSketch::update(self, key, delta);
    }

    fn merge(&mut self, other: &Self) {
        assert_eq!(self.budget, other.budget, "merging incompatible sketches");
        self.sketch.merge(&other.sketch);
        self.guard.merge(&other.guard);
    }

    fn to_bytes(&self) -> Vec<u8> {
        let mut payload = Vec::new();
        wire::put_len(&mut payload, self.budget);
        wire::put_block(&mut payload, &self.sketch.to_bytes());
        wire::put_block(&mut payload, &self.guard.to_bytes());
        wire::finish_frame(Self::WIRE_KIND, payload)
    }

    fn from_bytes(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = wire::open_frame(Self::WIRE_KIND, bytes)?;
        let budget = r.read_len()?;
        if budget == 0 {
            return Err(WireError::Malformed("zero budget"));
        }
        let sketch = SparseRecovery::from_bytes(r.block()?)?;
        let guard = DistinctEstimator::from_bytes(r.block()?)?;
        r.expect_end()?;
        Ok(Self {
            sketch,
            guard,
            budget,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decodes_within_budget() {
        let mut g = GuardedSketch::new(8, 16, 1);
        for i in 0..6u64 {
            g.update(i * 5, 1);
        }
        assert!(g.declared_decodable());
        assert_eq!(g.decode().unwrap().len(), 6);
    }

    #[test]
    fn guard_rejects_oversized_support() {
        let mut g = GuardedSketch::new(4, 16, 2);
        for i in 0..1000u64 {
            g.update(i, 1);
        }
        assert!(!g.declared_decodable());
        assert_eq!(g.decode(), Err(DecodeError::Overloaded));
    }

    #[test]
    fn guard_recovers_after_deletions() {
        let mut g = GuardedSketch::new(4, 16, 3);
        for i in 0..1000u64 {
            g.update(i, 1);
        }
        for i in 2..1000u64 {
            g.update(i, -1);
        }
        assert!(g.declared_decodable());
        assert_eq!(g.decode().unwrap(), vec![(0, 1), (1, 1)]);
    }

    #[test]
    fn merge_combines_both_parts() {
        let mut a = GuardedSketch::new(4, 16, 4);
        let mut b = GuardedSketch::new(4, 16, 4);
        a.update(1, 1);
        b.update(2, 1);
        a.merge(&b);
        assert_eq!(a.decode().unwrap(), vec![(1, 1), (2, 1)]);
    }

    #[test]
    fn wire_roundtrip_preserves_guarded_decode() {
        let mut g = GuardedSketch::new(4, 12, 6);
        g.update(7, 2);
        g.update(11, 1);
        let bytes = g.to_bytes();
        let back = GuardedSketch::from_bytes(&bytes).unwrap();
        assert_eq!(back.decode(), g.decode());
        assert_eq!(back.to_bytes(), bytes);
    }

    #[test]
    fn guard_costs_space() {
        let g = GuardedSketch::new(4, 16, 5);
        assert!(g.space_bytes() > g.sketch().space_bytes());
    }
}
