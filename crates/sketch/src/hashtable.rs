//! Linear hash tables with sketch-valued payloads — the `H^u_j` of
//! Algorithm 2.
//!
//! The second pass of the paper's spanner construction stores, for each
//! terminal node `u` and sampling level `j`, a hash table keyed by vertices
//! `v ∈ V \ T_u`, where the value for key `v` is itself a small linear
//! sketch of `N(v) ∩ T_u ∩ Y_j`. The paper implements this by "treating the
//! sketches associated with nodes `v` as poly(log n)-length bit numbers and
//! sketching this vector `x ∈ R^V`". [`LinearHashTable`] is that object:
//!
//! * keys are `u64` coordinates; the payload of a key is a width-`w` vector
//!   of words, updated additively **in the field `GF(2^61-1)`** — so
//!   payloads can hold the state of any field-linear sketch (e.g.
//!   [`crate::OneSparseCell::to_words`]) and insertions/deletions cancel
//!   exactly;
//! * the table itself is an IBLT over (key, payload) pairs: each bucket
//!   keeps the component-wise payload sum plus three field words
//!   `(a, b, f) = Σ_v (c_v, v·c_v, h(v)·c_v)` where `c_v` compresses the
//!   payload through a random evaluation point `α`;
//! * decoding peels buckets containing a single key, recovering both the key
//!   and its *exact* payload, as long as the number of distinct keys stays
//!   within the capacity — mirroring Lemma 17's argument that the tables of
//!   terminal nodes hold `O(n^{(i+1)/k} log n)` keys and can be decoded.
//!
//! Recovered payload words are returned as **balanced lifts**: a field word
//! `w` decodes to `w` if `w ≤ p/2` and `w - p` otherwise, so any integer
//! payload with magnitude below `p/2 ≈ 2^60` round-trips exactly, signs
//! included.

use crate::error::DecodeError;
use crate::onesparse::mod_p;
use crate::wire::{self, WireError};
use crate::LinearSketch;
use dsg_hash::{field, KWiseHash, SeedTree};
use dsg_util::SpaceUsage;
use std::collections::HashMap;

const ROWS: usize = 3;
const BUCKET_FACTOR: usize = 2;
const MIN_BUCKETS: usize = 4;
const PLACEMENT_INDEPENDENCE: usize = 7;

/// One bucket: field payload word sums plus key-recovery field words.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Bucket {
    /// Component-wise payload sums in `GF(p)`.
    payload: Vec<u64>,
    /// `Σ c_v (mod p)` over keys `v` in this bucket.
    a: u64,
    /// `Σ v · c_v (mod p)`.
    b: u64,
    /// `Σ h(v) · c_v (mod p)` — fingerprint.
    f: u64,
}

impl Bucket {
    fn zero(width: usize) -> Self {
        Self {
            payload: vec![0; width],
            a: 0,
            b: 0,
            f: 0,
        }
    }

    fn is_zero(&self) -> bool {
        self.a == 0 && self.b == 0 && self.f == 0 && self.payload.iter().all(|&w| w == 0)
    }
}

/// Balanced lift of a field element into `(-p/2, p/2]`.
#[inline]
fn balanced(w: u64) -> i128 {
    if w > field::P / 2 {
        w as i128 - field::P as i128
    } else {
        w as i128
    }
}

/// A linear (mergeable, deletion-tolerant) hash table mapping `u64` keys to
/// additively-updated payload vectors of fixed width.
///
/// Decodable whenever the number of distinct keys with nonzero payload is at
/// most the construction capacity, with high probability.
///
/// # Examples
///
/// ```
/// use dsg_sketch::LinearHashTable;
///
/// let mut t = LinearHashTable::new(4, 2, 7); // capacity 4, width 2
/// t.update(100, &[1, -1]);
/// t.update(200, &[5, 0]);
/// t.update(100, &[2, 1]); // accumulates
/// let entries = t.decode().unwrap();
/// assert_eq!(entries.len(), 2);
/// let e100 = entries.iter().find(|e| e.0 == 100).unwrap();
/// assert_eq!(e100.1, vec![3, 0]);
/// ```
#[derive(Debug, Clone)]
pub struct LinearHashTable {
    capacity: usize,
    width: usize,
    seed: u64,
    buckets_per_row: usize,
    row_hashes: Vec<KWiseHash>,
    fingerprint_hash: KWiseHash,
    /// Random payload-combining point `α`.
    alpha: u64,
    buckets: HashMap<u32, Bucket>,
}

impl LinearHashTable {
    /// Creates a table able to hold `capacity` distinct keys with payload
    /// vectors of `width` words.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` or `width == 0`.
    pub fn new(capacity: usize, width: usize, seed: u64) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        assert!(width > 0, "payload width must be positive");
        let tree = SeedTree::new(seed ^ 0x4C48_5441_424C_4531); // "LHTABLE1"
        let buckets_per_row = (capacity * BUCKET_FACTOR).max(MIN_BUCKETS);
        let row_hashes = (0..ROWS)
            .map(|r| KWiseHash::new(PLACEMENT_INDEPENDENCE, tree.child(r as u64).seed()))
            .collect();
        let fingerprint_hash = KWiseHash::new(3, tree.child(0xF2).seed());
        let alpha = tree.child(0xA1).rng().next_below(field::P - 2) + 1;
        Self {
            capacity,
            width,
            seed,
            buckets_per_row,
            row_hashes,
            fingerprint_hash,
            alpha,
            buckets: HashMap::new(),
        }
    }

    /// The key capacity this table was sized for.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The payload width in words.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Whether `other` was built with identical parameters and seed.
    pub fn compatible(&self, other: &LinearHashTable) -> bool {
        self.capacity == other.capacity && self.width == other.width && self.seed == other.seed
    }

    /// Compresses a field payload to `c = Σ_t α^t · payload[t] (mod p)`.
    fn combine(&self, payload: &[u64]) -> u64 {
        let mut c = 0u64;
        let mut apow = 1u64;
        for &d in payload {
            c = field::add(c, field::mul(apow, d));
            apow = field::mul(apow, self.alpha);
        }
        c
    }

    #[inline]
    fn bucket_index(&self, row: usize, key: u64) -> u32 {
        let b = self.row_hashes[row].hash_below(key, self.buckets_per_row as u64);
        (row * self.buckets_per_row) as u32 + b as u32
    }

    /// Applies a signed delta (one word per payload slot) plus the check
    /// sums `(c, kc, fc)` to the bucket state at `idx`; `negate` retracts
    /// instead of applying.
    fn apply(
        buckets: &mut HashMap<u32, Bucket>,
        idx: u32,
        width: usize,
        delta: &[u64],
        checks: (u64, u64, u64),
        negate: bool,
    ) {
        let (c, kc, fc) = checks;
        let bucket = buckets.entry(idx).or_insert_with(|| Bucket::zero(width));
        if negate {
            for (slot, d) in bucket.payload.iter_mut().zip(delta) {
                *slot = field::sub(*slot, *d);
            }
            bucket.a = field::sub(bucket.a, c);
            bucket.b = field::sub(bucket.b, kc);
            bucket.f = field::sub(bucket.f, fc);
        } else {
            for (slot, d) in bucket.payload.iter_mut().zip(delta) {
                *slot = field::add(*slot, *d);
            }
            bucket.a = field::add(bucket.a, c);
            bucket.b = field::add(bucket.b, kc);
            bucket.f = field::add(bucket.f, fc);
        }
        if bucket.is_zero() {
            buckets.remove(&idx);
        }
    }

    /// Adds `delta` (component-wise, in the field) to the payload of `key`.
    ///
    /// # Panics
    ///
    /// Panics if `delta.len() != self.width()`.
    pub fn update(&mut self, key: u64, delta: &[i128]) {
        assert_eq!(delta.len(), self.width, "payload width mismatch");
        let fdelta: Vec<u64> = delta.iter().map(|&d| mod_p(d)).collect();
        if fdelta.iter().all(|&d| d == 0) {
            return;
        }
        let c = self.combine(&fdelta);
        let kc = field::mul(field::canon(key), c);
        let fc = field::mul(self.fingerprint_hash.hash(field::canon(key)), c);
        for row in 0..ROWS {
            let idx = self.bucket_index(row, key);
            Self::apply(
                &mut self.buckets,
                idx,
                self.width,
                &fdelta,
                (c, kc, fc),
                false,
            );
        }
    }

    /// Whether the table state is identically zero.
    pub fn is_zero(&self) -> bool {
        self.buckets.is_empty()
    }

    /// Recovers all `(key, payload)` pairs with a nonzero payload
    /// compression `c_v`. Payload words are balanced lifts (exact for
    /// magnitudes below `p/2`).
    ///
    /// A key whose payload is nonzero but compresses to `c_v ≡ 0 (mod p)`
    /// (probability `O(width / p)` over `α`) blocks decoding and surfaces as
    /// an error — never a silent wrong answer.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Overloaded`] when more keys than capacity (or an
    /// unlucky placement) stall peeling; [`DecodeError::Inconsistent`] on
    /// contradictory peel state.
    pub fn decode(&self) -> Result<Vec<(u64, Vec<i128>)>, DecodeError> {
        let mut buckets = self.buckets.clone();
        let mut out: Vec<(u64, Vec<i128>)> = Vec::new();
        let mut queue: Vec<u32> = buckets.keys().copied().collect();
        let mut guard = (buckets.len() + 1) * (ROWS + 2) + 16 * self.capacity;
        while let Some(idx) = queue.pop() {
            let single = match buckets.get(&idx) {
                None => continue,
                Some(bk) => {
                    if bk.is_zero() {
                        buckets.remove(&idx);
                        continue;
                    }
                    self.try_single(bk)
                }
            };
            if let Some((key, payload)) = single {
                // Subtract the recovered pair from every row.
                let c = self.combine(&payload);
                let kc = field::mul(field::canon(key), c);
                let fc = field::mul(self.fingerprint_hash.hash(field::canon(key)), c);
                for row in 0..ROWS {
                    let ridx = self.bucket_index(row, key);
                    if !buckets.contains_key(&ridx) {
                        return Err(DecodeError::Inconsistent);
                    }
                    Self::apply(&mut buckets, ridx, self.width, &payload, (c, kc, fc), true);
                    if buckets.contains_key(&ridx) {
                        queue.push(ridx);
                    }
                }
                out.push((key, payload.iter().map(|&w| balanced(w)).collect()));
            }
            if guard == 0 {
                break;
            }
            guard -= 1;
        }
        if !buckets.is_empty() {
            return Err(DecodeError::Overloaded);
        }
        out.sort_unstable_by_key(|(k, _)| *k);
        Ok(out)
    }

    /// Tests whether a bucket holds exactly one key and returns it with its
    /// exact field payload.
    fn try_single(&self, bk: &Bucket) -> Option<(u64, Vec<u64>)> {
        if bk.a == 0 {
            return None;
        }
        let key = field::mul(bk.b, field::inv(bk.a));
        if field::mul(self.fingerprint_hash.hash(key), bk.a) != bk.f {
            return None;
        }
        // Single key: the payload sums are exactly its payload. Validate the
        // compression to guard against fingerprint false positives.
        if self.combine(&bk.payload) != bk.a {
            return None;
        }
        Some((key, bk.payload.clone()))
    }

    /// Worst-case (dense) footprint the paper's space accounting charges.
    pub fn nominal_bytes(&self) -> usize {
        let per_bucket = self.width * 8 + 3 * 8;
        ROWS * self.buckets_per_row * per_bucket + self.hash_bytes()
    }

    fn hash_bytes(&self) -> usize {
        self.row_hashes
            .iter()
            .map(SpaceUsage::space_bytes)
            .sum::<usize>()
            + self.fingerprint_hash.space_bytes()
            + 8
    }

    /// Adds `delta` to a single slot of `key`'s payload without
    /// allocating a scratch width-vector — the engine's per-update hot
    /// path ([`LinearSketch::update`] routes through slot 0).
    ///
    /// # Panics
    ///
    /// Panics if `slot >= self.width()`.
    pub fn update_slot(&mut self, key: u64, slot: usize, delta: i128) {
        assert!(slot < self.width, "slot {slot} out of range");
        let d = mod_p(delta);
        if d == 0 {
            return;
        }
        // A single-slot delta compresses to `c = α^slot · d`.
        let mut apow = 1u64;
        for _ in 0..slot {
            apow = field::mul(apow, self.alpha);
        }
        let c = field::mul(apow, d);
        let kc = field::mul(field::canon(key), c);
        let fc = field::mul(self.fingerprint_hash.hash(field::canon(key)), c);
        for row in 0..ROWS {
            let idx = self.bucket_index(row, key);
            let width = self.width;
            let bucket = self
                .buckets
                .entry(idx)
                .or_insert_with(|| Bucket::zero(width));
            bucket.payload[slot] = field::add(bucket.payload[slot], d);
            bucket.a = field::add(bucket.a, c);
            bucket.b = field::add(bucket.b, kc);
            bucket.f = field::add(bucket.f, fc);
            if bucket.is_zero() {
                self.buckets.remove(&idx);
            }
        }
    }

    /// Number of currently allocated buckets.
    pub fn touched_buckets(&self) -> usize {
        self.buckets.len()
    }
}

impl LinearSketch for LinearHashTable {
    const WIRE_KIND: u16 = wire::KIND_HASHTABLE;

    /// Scalar view of the table: `update(key, delta)` adds `delta` to slot
    /// 0 of `key`'s payload vector (the natural embedding of a plain
    /// dynamic vector into a width-`w` table), allocation-free.
    fn update(&mut self, key: u64, delta: i128) {
        self.update_slot(key, 0, delta);
    }

    fn merge(&mut self, other: &Self) {
        assert!(self.compatible(other), "merging incompatible tables");
        for (&idx, theirs) in &other.buckets {
            let width = self.width;
            let mine = self
                .buckets
                .entry(idx)
                .or_insert_with(|| Bucket::zero(width));
            for (slot, d) in mine.payload.iter_mut().zip(&theirs.payload) {
                *slot = field::add(*slot, *d);
            }
            mine.a = field::add(mine.a, theirs.a);
            mine.b = field::add(mine.b, theirs.b);
            mine.f = field::add(mine.f, theirs.f);
            if mine.is_zero() {
                self.buckets.remove(&idx);
            }
        }
    }

    fn to_bytes(&self) -> Vec<u8> {
        let mut payload = Vec::new();
        wire::put_len(&mut payload, self.capacity);
        wire::put_len(&mut payload, self.width);
        wire::put_u64(&mut payload, self.seed);
        let mut buckets: Vec<(u32, &Bucket)> = self.buckets.iter().map(|(&i, b)| (i, b)).collect();
        buckets.sort_unstable_by_key(|&(i, _)| i);
        wire::put_len(&mut payload, buckets.len());
        for (idx, bk) in buckets {
            wire::put_u32(&mut payload, idx);
            for &w in &bk.payload {
                wire::put_u64(&mut payload, w);
            }
            wire::put_u64(&mut payload, bk.a);
            wire::put_u64(&mut payload, bk.b);
            wire::put_u64(&mut payload, bk.f);
        }
        wire::finish_frame(Self::WIRE_KIND, payload)
    }

    fn from_bytes(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = wire::open_frame(Self::WIRE_KIND, bytes)?;
        let capacity = r.read_len()?;
        let width = r.read_len()?;
        if capacity == 0 || width == 0 {
            return Err(WireError::Malformed("zero capacity or width"));
        }
        let seed = r.u64()?;
        let mut table = LinearHashTable::new(capacity, width, seed);
        let n = r.read_len()?;
        for _ in 0..n {
            let idx = r.u32()?;
            let mut bucket = Bucket::zero(width);
            for slot in bucket.payload.iter_mut() {
                *slot = r.u64()?;
            }
            bucket.a = r.u64()?;
            bucket.b = r.u64()?;
            bucket.f = r.u64()?;
            if bucket.payload.iter().any(|&w| w >= field::P)
                || bucket.a >= field::P
                || bucket.b >= field::P
                || bucket.f >= field::P
            {
                return Err(WireError::Malformed("non-canonical field word"));
            }
            if table.buckets.insert(idx, bucket).is_some() {
                return Err(WireError::Malformed("duplicate bucket index"));
            }
        }
        r.expect_end()?;
        Ok(table)
    }
}

impl SpaceUsage for LinearHashTable {
    fn space_bytes(&self) -> usize {
        let per_bucket = self.width * 8 + 3 * 8 + 4;
        self.buckets.len() * per_bucket + self.hash_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_table_decodes_empty() {
        let t = LinearHashTable::new(4, 3, 1);
        assert!(t.is_zero());
        assert_eq!(t.decode().unwrap(), vec![]);
    }

    #[test]
    fn single_entry_roundtrip() {
        let mut t = LinearHashTable::new(4, 3, 2);
        t.update(42, &[1, -2, 3]);
        assert_eq!(t.decode().unwrap(), vec![(42, vec![1, -2, 3])]);
    }

    #[test]
    fn payload_accumulates() {
        let mut t = LinearHashTable::new(4, 2, 3);
        t.update(7, &[1, 0]);
        t.update(7, &[0, 5]);
        t.update(7, &[-1, 0]);
        assert_eq!(t.decode().unwrap(), vec![(7, vec![0, 5])]);
    }

    #[test]
    fn field_words_cancel_exactly() {
        // The regression that motivated field arithmetic: a field word `w`
        // inserted and a word `p - w` (its negation mod p) must cancel.
        let mut t = LinearHashTable::new(4, 1, 11);
        let w = 123_456_789u64;
        t.update(5, &[w as i128]);
        t.update(5, &[-(w as i128)]);
        assert!(t.is_zero(), "field negation left residue");
    }

    #[test]
    fn full_capacity_recovers() {
        let mut t = LinearHashTable::new(8, 2, 4);
        for i in 0..8u64 {
            t.update(i * 31 + 5, &[i as i128, -(i as i128)]);
        }
        let entries = t.decode().unwrap();
        // key for i=0 has zero payload and drops out of the support.
        assert_eq!(entries.len(), 7);
        for (k, p) in entries {
            let i = ((k - 5) / 31) as i128;
            assert_eq!(p, vec![i, -i]);
        }
    }

    #[test]
    fn overload_detected() {
        let mut t = LinearHashTable::new(4, 1, 5);
        for i in 0..100u64 {
            t.update(i, &[1]);
        }
        assert_eq!(t.decode(), Err(DecodeError::Overloaded));
    }

    #[test]
    fn deletions_shrink_support() {
        let mut t = LinearHashTable::new(4, 1, 6);
        for i in 0..50u64 {
            t.update(i, &[2]);
        }
        for i in 0..48u64 {
            t.update(i, &[-2]);
        }
        assert_eq!(t.decode().unwrap(), vec![(48, vec![2]), (49, vec![2])]);
    }

    #[test]
    fn merge_is_linear() {
        let mut a = LinearHashTable::new(4, 2, 7);
        let mut b = LinearHashTable::new(4, 2, 7);
        let mut direct = LinearHashTable::new(4, 2, 7);
        a.update(1, &[1, 1]);
        direct.update(1, &[1, 1]);
        b.update(1, &[-1, 0]);
        b.update(2, &[4, 4]);
        direct.update(1, &[-1, 0]);
        direct.update(2, &[4, 4]);
        a.merge(&b);
        assert_eq!(a.decode().unwrap(), direct.decode().unwrap());
    }

    #[test]
    #[should_panic(expected = "incompatible")]
    fn incompatible_merge_panics() {
        let mut a = LinearHashTable::new(4, 2, 1);
        let b = LinearHashTable::new(4, 2, 2);
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn wrong_width_update_panics() {
        let mut t = LinearHashTable::new(4, 2, 1);
        t.update(1, &[1]);
    }

    #[test]
    fn zero_delta_ignored() {
        let mut t = LinearHashTable::new(4, 2, 8);
        t.update(9, &[0, 0]);
        assert!(t.is_zero());
    }

    #[test]
    fn embeds_one_sparse_cells_with_churn() {
        use crate::onesparse::OneSparseCell;
        use dsg_hash::KWiseHash;
        // The Algorithm-2 pattern under churn: inner cells stream through
        // the table as payload deltas; a deleted inner edge cancels exactly.
        let inner_hash = KWiseHash::new(3, 404);
        let mut t = LinearHashTable::new(4, 3, 9);
        let apply = |t: &mut LinearHashTable, key: u64, x: u64, d: i128| {
            let mut cell = OneSparseCell::new();
            cell.update(x, d, &inner_hash);
            t.update(key, &cell.to_words());
        };
        apply(&mut t, 500, 17, 1);
        apply(&mut t, 500, 23, 1);
        apply(&mut t, 500, 23, -1); // churn cancels
        apply(&mut t, 600, 99, 1);
        apply(&mut t, 600, 99, -1); // whole key cancels
        let entries = t.decode().unwrap();
        assert_eq!(entries.len(), 1);
        let (key, words) = &entries[0];
        assert_eq!(*key, 500);
        let recovered = OneSparseCell::from_words(&[words[0], words[1], words[2]]).unwrap();
        assert_eq!(recovered.decode(&inner_hash).unwrap(), Some((17, 1)));
    }

    #[test]
    fn wire_roundtrip_preserves_decode() {
        let mut t = LinearHashTable::new(8, 2, 33);
        t.update(4, &[5, -6]);
        t.update(900, &[1, 0]);
        let bytes = t.to_bytes();
        let back = LinearHashTable::from_bytes(&bytes).unwrap();
        assert_eq!(back.decode().unwrap(), t.decode().unwrap());
        assert_eq!(back.to_bytes(), bytes);
    }

    #[test]
    fn scalar_trait_update_uses_slot_zero() {
        let mut t = LinearHashTable::new(4, 3, 12);
        LinearSketch::update(&mut t, 9, 5);
        assert_eq!(t.decode().unwrap(), vec![(9, vec![5, 0, 0])]);
    }

    #[test]
    fn update_slot_matches_vector_update() {
        let mut by_slot = LinearHashTable::new(4, 3, 14);
        let mut by_vec = LinearHashTable::new(4, 3, 14);
        for (key, slot, d) in [(7u64, 0usize, 5i128), (7, 2, -3), (9, 1, 4), (7, 2, 3)] {
            by_slot.update_slot(key, slot, d);
            let mut payload = [0i128; 3];
            payload[slot] = d;
            by_vec.update(key, &payload);
        }
        assert_eq!(by_slot.to_bytes(), by_vec.to_bytes());
        // Cancellation through the slot path frees buckets identically.
        by_slot.update_slot(9, 1, -4);
        by_vec.update(9, &[0, -4, 0]);
        assert_eq!(by_slot.to_bytes(), by_vec.to_bytes());
    }

    #[test]
    fn success_rate_at_half_capacity() {
        let mut failures = 0;
        for seed in 0..100u64 {
            let mut t = LinearHashTable::new(16, 1, seed);
            for i in 0..8u64 {
                t.update(i * 101 + seed, &[1]);
            }
            if t.decode().is_err() {
                failures += 1;
            }
        }
        assert!(failures <= 1, "failures={failures}");
    }

    #[test]
    fn nominal_vs_actual_space() {
        let mut t = LinearHashTable::new(64, 3, 1);
        t.update(1, &[1, 2, 3]);
        assert!(t.nominal_bytes() > t.space_bytes());
    }

    #[test]
    fn large_field_payloads_roundtrip() {
        // Words near the top of the field must survive (as balanced lifts).
        let mut t = LinearHashTable::new(4, 2, 13);
        let big = (dsg_hash::field::P - 5) as i128; // ≡ -5
        t.update(3, &[big, 7]);
        let entries = t.decode().unwrap();
        assert_eq!(entries, vec![(3, vec![-5, 7])]);
    }
}
