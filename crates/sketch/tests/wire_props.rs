//! Property tests for the `LinearSketch` contract across every
//! implementor in this crate:
//!
//! * **shard-split invariance** — any K-way partition of an update
//!   stream, sketched per-shard under the shared seed and merged, is
//!   bit-identical (canonical wire bytes) to one sketch of the whole
//!   stream;
//! * **wire roundtrip** — `from_bytes(to_bytes(s))` behaves identically
//!   to `s`: same bytes now, and same bytes after further updates;
//! * **header peek** — `wire::peek_kind` reads the kind/version/length
//!   of any snapshot without decoding it.
//!
//! `AgmSketch`, the eighth implementor, is covered by the same properties
//! in `crates/agm/tests/wire_props.rs`.

use dsg_sketch::{
    wire, CountSketch, DistinctEstimator, GuardedSketch, L0Sampler, LinearHashTable, LinearSketch,
    SparseRecovery, VectorFingerprint,
};
use proptest::prelude::*;

/// A small universe keeps collision cases interesting.
fn updates() -> impl Strategy<Value = Vec<(u64, i64)>> {
    prop::collection::vec((0u64..64, -5i64..=5), 0..40)
}

/// Splits `updates` into `k` shards by a deterministic skewed rule,
/// sketches each shard, folds the shards together, and checks the result
/// is bit-identical to the unsharded sketch.
fn check_shard_split<S, F>(make: F, updates: &[(u64, i64)], k: usize)
where
    S: LinearSketch,
    F: Fn() -> S,
{
    let mut direct = make();
    let mut shards: Vec<S> = (0..k).map(|_| make()).collect();
    for (i, &(key, delta)) in updates.iter().enumerate() {
        direct.update(key, delta as i128);
        // Deliberately skewed assignment — linearity must not care.
        shards[(i * i + i / 3) % k].update(key, delta as i128);
    }
    let mut merged = shards.remove(0);
    for s in &shards {
        merged.merge(s);
    }
    assert_eq!(
        merged.to_bytes(),
        direct.to_bytes(),
        "{k}-way split diverged"
    );
}

/// Roundtrips `sketch` through the wire and checks behavioral identity:
/// identical bytes immediately, and identical bytes after both copies
/// ingest the same extra updates.
fn check_roundtrip<S: LinearSketch>(mut sketch: S, extra: &[(u64, i64)]) {
    let bytes = sketch.to_bytes();
    let mut back = S::from_bytes(&bytes).expect("roundtrip decodes");
    assert_eq!(back.to_bytes(), bytes, "re-serialization diverged");
    for &(key, delta) in extra {
        sketch.update(key, delta as i128);
        back.update(key, delta as i128);
    }
    assert_eq!(
        back.to_bytes(),
        sketch.to_bytes(),
        "roundtripped sketch behaves differently"
    );
}

/// Checks that [`wire::peek_kind`] on a snapshot reports the implementor's
/// `WIRE_KIND`, the current format version, and the exact payload length —
/// the header-only routing contract a snapshot registry relies on.
fn check_peek_kind<S: LinearSketch>(sketch: &S) {
    let snap = sketch.snapshot();
    let header = wire::peek_kind(&snap).expect("snapshot frames always peek");
    assert_eq!(header.kind, S::WIRE_KIND, "kind tag mismatch");
    assert_eq!(header.version, wire::VERSION, "version mismatch");
    assert_eq!(
        header.payload_len,
        snap.len() - wire::HEADER_BYTES,
        "declared payload length mismatch"
    );
}

macro_rules! sketch_properties {
    ($split_name:ident, $roundtrip_name:ident, $peek_name:ident, $make:expr) => {
        proptest! {
            #[test]
            fn $split_name(xs in updates(), k in 1usize..=5, seed in 0u64..500) {
                let make = $make;
                check_shard_split(|| make(seed), &xs, k);
            }

            #[test]
            fn $roundtrip_name(xs in updates(), extra in updates(), seed in 0u64..500) {
                let make = $make;
                let mut sk = make(seed);
                for &(key, delta) in &xs {
                    LinearSketch::update(&mut sk, key, delta as i128);
                }
                check_roundtrip(sk, &extra);
            }

            #[test]
            fn $peek_name(xs in updates(), seed in 0u64..500) {
                let make = $make;
                let mut sk = make(seed);
                for &(key, delta) in &xs {
                    LinearSketch::update(&mut sk, key, delta as i128);
                }
                check_peek_kind(&sk);
            }
        }
    };
}

sketch_properties!(
    sparse_recovery_shard_split,
    sparse_recovery_roundtrip,
    sparse_recovery_peek_kind,
    |seed| SparseRecovery::new(16, seed)
);

sketch_properties!(
    l0_sampler_shard_split,
    l0_sampler_roundtrip,
    l0_sampler_peek_kind,
    |seed| { L0Sampler::new(6, seed) }
);

sketch_properties!(
    distinct_shard_split,
    distinct_roundtrip,
    distinct_peek_kind,
    |seed| { DistinctEstimator::new(6, 0.5, 3, seed) }
);

sketch_properties!(
    hashtable_shard_split,
    hashtable_roundtrip,
    hashtable_peek_kind,
    |seed| { LinearHashTable::new(32, 2, seed) }
);

sketch_properties!(
    countsketch_shard_split,
    countsketch_roundtrip,
    countsketch_peek_kind,
    |seed| { CountSketch::new(3, 32, seed) }
);

sketch_properties!(
    guarded_shard_split,
    guarded_roundtrip,
    guarded_peek_kind,
    |seed| { GuardedSketch::new(8, 6, seed) }
);

sketch_properties!(
    fingerprint_shard_split,
    fingerprint_roundtrip,
    fingerprint_peek_kind,
    |seed| { VectorFingerprint::new(seed) }
);

proptest! {
    /// Decoded answers (not just bytes) survive the split+merge for the
    /// exact-recovery sketch.
    #[test]
    fn sparse_recovery_split_decodes_identically(xs in updates(), k in 1usize..=4, seed in 0u64..200) {
        let mut direct = SparseRecovery::new(64, seed);
        let mut shards: Vec<SparseRecovery> = (0..k).map(|_| SparseRecovery::new(64, seed)).collect();
        for (i, &(key, delta)) in xs.iter().enumerate() {
            direct.update(key, delta as i128);
            shards[i % k].update(key, delta as i128);
        }
        let mut merged = shards.remove(0);
        for s in &shards {
            merged.merge(s);
        }
        prop_assert_eq!(merged.decode(), direct.decode());
    }

    /// Truncating any snapshot must produce an error, never a sketch.
    #[test]
    fn truncated_snapshots_never_decode(xs in updates(), cut in 1usize..40, seed in 0u64..100) {
        let mut sk = SparseRecovery::new(16, seed);
        for &(key, delta) in &xs {
            sk.update(key, delta as i128);
        }
        let bytes = sk.to_bytes();
        let cut = cut.min(bytes.len());
        prop_assert!(SparseRecovery::from_bytes(&bytes[..bytes.len() - cut]).is_err());
    }

    /// Flipping any single byte must be caught by the checksum (or the
    /// header validation, if the flip lands there).
    #[test]
    fn corrupted_snapshots_never_decode(xs in updates(), pos_frac in 0.0f64..1.0, seed in 0u64..100) {
        let mut sk = SparseRecovery::new(16, seed);
        for &(key, delta) in &xs {
            sk.update(key, delta as i128);
        }
        let mut bytes = sk.to_bytes();
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] ^= 0x2A;
        prop_assert!(SparseRecovery::from_bytes(&bytes).is_err());
    }
}
