//! Property tests pinning down the linearity and correctness contracts of
//! every sketch: `sketch(x) + sketch(y) == sketch(x + y)` bit-for-bit, and
//! decode inverts sketch on within-budget supports.

use dsg_sketch::{
    CountSketch, DistinctEstimator, L0Sampler, LinearHashTable, LinearSketch, SparseRecovery,
    VectorFingerprint,
};
use proptest::prelude::*;
use std::collections::HashMap;

/// A small universe keeps collision cases interesting.
fn updates() -> impl Strategy<Value = Vec<(u64, i64)>> {
    prop::collection::vec((0u64..64, -5i64..=5), 0..40)
}

/// Applies updates to a map, dropping zeroed coordinates.
fn apply(updates: &[(u64, i64)]) -> HashMap<u64, i128> {
    let mut m: HashMap<u64, i128> = HashMap::new();
    for &(k, v) in updates {
        *m.entry(k).or_insert(0) += v as i128;
    }
    m.retain(|_, v| *v != 0);
    m
}

proptest! {
    #[test]
    fn sparse_recovery_merge_equals_direct(xs in updates(), ys in updates(), seed in 0u64..1000) {
        let mut a = SparseRecovery::new(64, seed);
        let mut b = SparseRecovery::new(64, seed);
        let mut direct = SparseRecovery::new(64, seed);
        for &(k, v) in &xs {
            a.update(k, v as i128);
            direct.update(k, v as i128);
        }
        for &(k, v) in &ys {
            b.update(k, v as i128);
            direct.update(k, v as i128);
        }
        a.merge(&b);
        prop_assert_eq!(a.decode(), direct.decode());
    }

    #[test]
    fn sparse_recovery_decode_inverts_sketch(xs in updates(), seed in 0u64..1000) {
        // Budget 64 over a 64-key universe: decode must always succeed.
        let mut sk = SparseRecovery::new(64, seed);
        for &(k, v) in &xs {
            sk.update(k, v as i128);
        }
        let expect = apply(&xs);
        let got = sk.decode().expect("within budget");
        let got_map: HashMap<u64, i128> = got.into_iter().collect();
        prop_assert_eq!(got_map, expect);
    }

    #[test]
    fn sparse_recovery_unmerge_cancels(xs in updates(), seed in 0u64..1000) {
        let mut a = SparseRecovery::new(64, seed);
        let mut b = SparseRecovery::new(64, seed);
        for &(k, v) in &xs {
            a.update(k, v as i128);
            b.update(k, v as i128);
        }
        a.unmerge(&b);
        prop_assert!(a.is_zero());
    }

    #[test]
    fn hashtable_decode_matches_model(xs in prop::collection::vec((0u64..32, -3i64..=3, -3i64..=3), 0..30), seed in 0u64..1000) {
        let mut t = LinearHashTable::new(32, 2, seed);
        let mut model: HashMap<u64, (i128, i128)> = HashMap::new();
        for &(k, v0, v1) in &xs {
            t.update(k, &[v0 as i128, v1 as i128]);
            let e = model.entry(k).or_insert((0, 0));
            e.0 += v0 as i128;
            e.1 += v1 as i128;
        }
        model.retain(|_, v| v.0 != 0 || v.1 != 0);
        let got = t.decode().expect("within capacity");
        let got_map: HashMap<u64, (i128, i128)> =
            got.into_iter().map(|(k, p)| (k, (p[0], p[1]))).collect();
        prop_assert_eq!(got_map, model);
    }

    #[test]
    fn hashtable_merge_equals_direct(xs in prop::collection::vec((0u64..32, -3i64..=3), 0..20), ys in prop::collection::vec((0u64..32, -3i64..=3), 0..20), seed in 0u64..1000) {
        let mut a = LinearHashTable::new(32, 1, seed);
        let mut b = LinearHashTable::new(32, 1, seed);
        let mut direct = LinearHashTable::new(32, 1, seed);
        for &(k, v) in &xs {
            a.update(k, &[v as i128]);
            direct.update(k, &[v as i128]);
        }
        for &(k, v) in &ys {
            b.update(k, &[v as i128]);
            direct.update(k, &[v as i128]);
        }
        a.merge(&b);
        prop_assert_eq!(a.decode(), direct.decode());
    }

    #[test]
    fn l0_sampler_returns_true_support(xs in updates(), seed in 0u64..200) {
        let mut s = L0Sampler::new(6, seed);
        for &(k, v) in &xs {
            s.update(k, v as i128);
        }
        let model = apply(&xs);
        match s.sample() {
            Ok(None) => prop_assert!(model.is_empty(), "sampler said zero but support={}", model.len()),
            Ok(Some((k, v))) => {
                prop_assert_eq!(model.get(&k).copied(), Some(v), "sampled wrong value");
            }
            Err(_) => {
                // Allowed whp-failure; must only happen on nonzero vectors.
                prop_assert!(!model.is_empty());
            }
        }
    }

    #[test]
    fn fingerprint_agrees_iff_vectors_equal(xs in updates(), ys in updates(), seed in 0u64..1000) {
        let mut a = VectorFingerprint::new(seed);
        let mut b = VectorFingerprint::new(seed);
        for &(k, v) in &xs {
            a.update(k, v as i128);
        }
        for &(k, v) in &ys {
            b.update(k, v as i128);
        }
        if apply(&xs) == apply(&ys) {
            prop_assert_eq!(a.value(), b.value());
        } else {
            // 1/p false-positive chance: astronomically unlikely to trip.
            prop_assert_ne!(a.value(), b.value());
        }
    }

    #[test]
    fn countsketch_exact_on_small_supports(xs in prop::collection::vec((0u64..8, -5i64..=5), 0..20), seed in 0u64..1000) {
        // 8 possible keys in 256 buckets: queries are exact whp.
        let mut cs = CountSketch::new(5, 256, seed);
        for &(k, v) in &xs {
            cs.update(k, v as i128);
        }
        let model = apply(&xs);
        for k in 0u64..8 {
            prop_assert_eq!(cs.query(k), model.get(&k).copied().unwrap_or(0));
        }
    }

    #[test]
    fn distinct_estimator_exact_when_small(xs in updates(), seed in 0u64..200) {
        let mut d = DistinctEstimator::new(6, 0.5, 3, seed);
        for &(k, v) in &xs {
            d.update(k, v as i128);
        }
        let support = apply(&xs).len() as u64;
        // Budget 16 over a 64-key universe: level 0 decodes whenever
        // support ≤ 16, giving the exact count.
        if support <= 16 {
            prop_assert_eq!(d.estimate().unwrap(), support);
        }
    }
}
