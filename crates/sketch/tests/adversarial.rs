//! Adversarial and failure-injection tests: the sketches must *detect*
//! every failure they cannot avoid — the paper's algorithms condition on
//! decode success, so a silent wrong answer would invalidate everything
//! downstream.

use dsg_sketch::{DecodeError, L0Sampler, LinearHashTable, LinearSketch, SparseRecovery};

/// Overloads must be detected across two orders of magnitude of abuse.
#[test]
fn overload_always_detected_never_wrong() {
    for scale in [2usize, 10, 100] {
        let budget = 8;
        let mut sk = SparseRecovery::new(budget, scale as u64);
        let support = budget * scale;
        for i in 0..support as u64 {
            sk.update(i * 31 + 1, 1);
        }
        match sk.decode() {
            Ok(items) => {
                // A successful decode must be exactly right even above
                // budget (possible when peeling gets lucky).
                assert_eq!(items.len(), support, "silent partial decode");
            }
            Err(DecodeError::Overloaded) => {}
            Err(e) => panic!("unexpected error {e:?}"),
        }
    }
}

/// Clustered keys (worst case for bucket hashing) still decode at budget.
#[test]
fn clustered_keys_decode() {
    let mut failures = 0;
    for seed in 0..50u64 {
        let mut sk = SparseRecovery::new(16, seed);
        // All keys consecutive — maximal correlation pressure on placement.
        for i in 0..16u64 {
            sk.update(1_000_000 + i, (i + 1) as i128);
        }
        if sk.decode().is_err() {
            failures += 1;
        }
    }
    assert!(failures <= 2, "clustered keys broke {failures}/50 decodes");
}

/// The same coordinate updated forward and backward millions of times must
/// behave exactly like its net value.
#[test]
fn churn_torture_single_coordinate() {
    let mut sk = SparseRecovery::new(4, 99);
    for round in 0..10_000i128 {
        sk.update(777, round % 5 - 2); // sums to 0 over each 5-cycle
    }
    // 10_000 rounds of (-2,-1,0,1,2) sum to 0: sketch must be zero.
    assert!(sk.is_zero());
    sk.update(777, 42);
    assert_eq!(sk.decode().unwrap(), vec![(777, 42)]);
}

/// Values at the magnitude limit the stream model allows (poly(n)) are
/// recovered exactly.
#[test]
fn large_values_exact() {
    let mut sk = SparseRecovery::new(4, 7);
    let big = 1i128 << 60;
    sk.update(5, big);
    sk.update(6, -big);
    let decoded = sk.decode().unwrap();
    assert_eq!(decoded, vec![(5, big), (6, -big)]);
}

/// Merging many empty sketches is a no-op; merging then unmerging returns
/// to the start (group structure).
#[test]
fn merge_group_structure() {
    let mut acc = SparseRecovery::new(8, 1);
    acc.update(3, 9);
    let snapshot = acc.decode().unwrap();
    let mut other = SparseRecovery::new(8, 1);
    for i in 0..100u64 {
        other.update(i, (i % 7) as i128);
    }
    acc.merge(&other);
    acc.unmerge(&other);
    assert_eq!(acc.decode().unwrap(), snapshot);
}

/// L0 sampler: a vector that becomes zero after heavy churn reports zero,
/// not a stale coordinate.
#[test]
fn l0_no_ghost_coordinates() {
    for seed in 0..20u64 {
        let mut s = L0Sampler::new(16, seed);
        for i in 0..1000u64 {
            s.update(i, 2);
        }
        for i in 0..1000u64 {
            s.update(i, -2);
        }
        assert_eq!(s.sample().unwrap(), None, "ghost at seed {seed}");
    }
}

/// Hash table: key sets crossing the capacity boundary either decode fully
/// or fail loudly.
#[test]
fn hashtable_boundary_behaviour() {
    for extra in 0..30usize {
        let cap = 16;
        let mut t = LinearHashTable::new(cap, 2, extra as u64);
        let keys = cap + extra;
        for i in 0..keys as u64 {
            t.update(i * 17, &[1, -1]);
        }
        match t.decode() {
            Ok(entries) => assert_eq!(entries.len(), keys, "partial decode at {keys}"),
            Err(_) => assert!(extra > 0, "failed below capacity"),
        }
    }
}

/// Hash table payload churn: interleaved ± payload updates across many keys
/// leave exactly the net state.
#[test]
fn hashtable_payload_churn() {
    let mut t = LinearHashTable::new(32, 3, 5);
    for round in 0..50i128 {
        for key in 0..20u64 {
            t.update(key, &[round, -round, 1]);
            t.update(key, &[-round, round, 0]);
        }
    }
    // Net payload per key: [0, 0, 50].
    let entries = t.decode().unwrap();
    assert_eq!(entries.len(), 20);
    for (_, p) in entries {
        assert_eq!(p, vec![0, 0, 50]);
    }
}

/// Decode must be read-only even through failures.
#[test]
fn failed_decode_does_not_corrupt() {
    let mut sk = SparseRecovery::new(4, 11);
    for i in 0..100u64 {
        sk.update(i, 1);
    }
    assert!(sk.decode().is_err());
    // Remove the overload; the sketch must recover.
    for i in 2..100u64 {
        sk.update(i, -1);
    }
    assert_eq!(sk.decode().unwrap(), vec![(0, 1), (1, 1)]);
}
