//! Net edge multisets — the order-free summary a dynamic stream leaves
//! behind.
//!
//! The defining property of the paper's linear-sketch toolkit is that
//! every sketch of a dynamic stream is a function of the stream's **net
//! edge multiset** alone: insertions and deletions of the same pair
//! cancel, and neither update order nor stream length is observable.
//! [`NetMultiset`] is the canonical materialization of that multiset — a
//! sorted vector of [`NetEdge`] entries with strictly positive net
//! multiplicity — and [`EdgeMultiset`] is the view trait multi-pass
//! algorithms accept instead of a materialized [`GraphStream`], so their
//! inputs can be rebuilt in O(current edges) rather than O(stream
//! length).
//!
//! Rebuilding from the net multiset is *exact*, not approximate: each
//! pass of a two-pass algorithm keeps stream-facing state that is a
//! linear function of the updates, so feeding one `+1` update per unit of
//! net multiplicity reproduces the pass state bit for bit (the property
//! `crates/spanner` and `crates/sparsifier` test against raw-stream
//! replay).

use crate::graph::{Graph, WeightedGraph};
use crate::ids::Edge;
use crate::stream::{GraphStream, StreamUpdate};
use std::collections::HashMap;

/// The exact difference between two canonical segments (`prev → cur`),
/// as computed by [`NetMultiset::diff`]: O(changes) output, each bucket
/// sorted by edge.
///
/// Because every linear sketch is a function of the net multiset alone,
/// this delta is not an approximation of "what changed" — it *is* the
/// update stream (up to reordering) that carries any sketch of `prev` to
/// the bit-identical sketch of `cur`. That is what makes O(changes)
/// artifact patching exact rather than heuristic.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SegmentDelta {
    /// Pairs live in `cur` but not in `prev` (the `cur` entry).
    pub added: Vec<NetEdge>,
    /// Pairs live in `prev` but not in `cur` (the `prev` entry).
    pub removed: Vec<NetEdge>,
    /// Pairs live in both but with a different multiplicity and/or
    /// weight: `(prev, cur)` entry pairs over the same edge.
    pub reweighted: Vec<(NetEdge, NetEdge)>,
}

impl SegmentDelta {
    /// Whether the two segments were identical.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty() && self.reweighted.is_empty()
    }

    /// Number of changed pairs — the `delta_size` the churn-threshold
    /// patch-vs-rebuild decision compares against the live edge count.
    pub fn num_changes(&self) -> usize {
        self.added.len() + self.removed.len() + self.reweighted.len()
    }

    /// Visits the net **multiplicity** delta of every changed pair (the
    /// signed update a linear sketch must absorb to move from `prev` to
    /// `cur`). Reweighted pairs whose multiplicity is unchanged are
    /// skipped: sketches see multiplicities only, so a pure weight change
    /// is a no-op on every sketch state. The weight argument is the
    /// pair's surviving weight (`cur` for additions and reweights, `prev`
    /// for removals — per the model a deletion carries its insertion's
    /// weight).
    pub fn for_each_multiplicity_delta(&self, f: &mut dyn FnMut(Edge, i128, f64)) {
        for e in &self.added {
            f(e.edge, e.multiplicity as i128, e.weight);
        }
        for e in &self.removed {
            f(e.edge, -(e.multiplicity as i128), e.weight);
        }
        for (prev, cur) in &self.reweighted {
            let d = cur.multiplicity as i128 - prev.multiplicity as i128;
            if d != 0 {
                f(prev.edge, d, cur.weight);
            }
        }
    }

    /// The sub-delta of changed pairs whose canonical edge coordinate
    /// (over `n` vertices) satisfies `pred` — how one segment delta is
    /// routed to each member of a bank of filter-restricted algorithms
    /// (e.g. the KP12 pipeline's subsampled inner spanners). Restricting
    /// commutes with diffing: `filtered(diff(prev, cur)) ==
    /// diff(filtered(prev), filtered(cur))`, because the filters are
    /// deterministic functions of edge identity.
    pub fn filtered(&self, n: usize, pred: &dyn Fn(u64) -> bool) -> SegmentDelta {
        SegmentDelta {
            added: self
                .added
                .iter()
                .filter(|e| pred(e.edge.index(n)))
                .copied()
                .collect(),
            removed: self
                .removed
                .iter()
                .filter(|e| pred(e.edge.index(n)))
                .copied()
                .collect(),
            reweighted: self
                .reweighted
                .iter()
                .filter(|(p, _)| pred(p.edge.index(n)))
                .copied()
                .collect(),
        }
    }
}

/// A filter-restricted view of an [`EdgeMultiset`]: the sub-multiset of
/// pairs whose canonical edge coordinate satisfies the predicate, without
/// materializing it. The lazy counterpart of
/// [`SegmentDelta::filtered`] for full segments — a bank algorithm hands
/// each member the same base segment behind its own filter.
pub struct FilteredMultiset<'a, M: ?Sized, P> {
    base: &'a M,
    pred: P,
}

impl<'a, M: EdgeMultiset + ?Sized, P: Fn(u64) -> bool> FilteredMultiset<'a, M, P> {
    /// Restricts `base` to the pairs whose coordinate satisfies `pred`.
    pub fn new(base: &'a M, pred: P) -> Self {
        Self { base, pred }
    }
}

impl<M: EdgeMultiset + ?Sized, P: Fn(u64) -> bool> EdgeMultiset for FilteredMultiset<'_, M, P> {
    fn num_vertices(&self) -> usize {
        self.base.num_vertices()
    }

    fn for_each_net_edge(&self, f: &mut dyn FnMut(NetEdge)) {
        let n = self.base.num_vertices();
        self.base.for_each_net_edge(&mut |e| {
            if (self.pred)(e.edge.index(n)) {
                f(e);
            }
        });
    }
}

/// One entry of a net edge multiset: the pair, its weight, and its net
/// multiplicity (always ≥ 1 inside a [`NetMultiset`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetEdge {
    /// The vertex pair.
    pub edge: Edge,
    /// The edge weight (`1.0` for unweighted streams; per the model a
    /// deletion carries its insertion's weight, so the surviving weight
    /// is well defined).
    pub weight: f64,
    /// Net multiplicity: insertions minus deletions, strictly positive.
    pub multiplicity: u32,
}

/// A view of a graph as a net edge multiset — the generalized input of
/// the multi-pass entry points ([`crate::pass::run_multiset`],
/// `dsg_spanner::twopass::run_two_pass_net`,
/// `dsg_sparsifier::pipeline::run_sparsifier_net`). Implementors promise
/// to visit each distinct pair at most once, with multiplicity ≥ 1, in a
/// deterministic order.
pub trait EdgeMultiset {
    /// Number of vertices of the underlying graph.
    fn num_vertices(&self) -> usize;

    /// Visits every net edge once.
    fn for_each_net_edge(&self, f: &mut dyn FnMut(NetEdge));
}

/// The canonical materialized net edge multiset: entries sorted by edge,
/// every multiplicity strictly positive. Two streams with the same net
/// effect produce the same `NetMultiset` — and therefore the same
/// canonical bytes wherever it is serialized.
///
/// # Examples
///
/// ```
/// use dsg_graph::{gen, GraphStream};
///
/// let g = gen::erdos_renyi(30, 0.2, 3);
/// // Two very different streams (order, churn volume) with one net effect:
/// let a = GraphStream::with_churn(&g, 0.5, 4).net_multiset();
/// let b = GraphStream::with_churn(&g, 2.0, 5).net_multiset();
/// assert_eq!(a.entries(), b.entries());
/// assert_eq!(a.final_graph(), g);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct NetMultiset {
    n: usize,
    entries: Vec<NetEdge>,
}

impl NetMultiset {
    /// An empty multiset over `n` vertices.
    pub fn empty(n: usize) -> Self {
        Self {
            n,
            entries: Vec::new(),
        }
    }

    /// Builds the canonical form from unordered entries.
    ///
    /// # Panics
    ///
    /// Panics if an entry has multiplicity 0, an endpoint out of range,
    /// or the same pair appears twice — callers hold the "net" invariant.
    pub fn from_entries(n: usize, mut entries: Vec<NetEdge>) -> Self {
        entries.sort_unstable_by_key(|e| e.edge);
        for pair in entries.windows(2) {
            assert!(
                pair[0].edge < pair[1].edge,
                "duplicate pair {}",
                pair[1].edge
            );
        }
        for e in &entries {
            assert!(e.multiplicity > 0, "zero multiplicity for {}", e.edge);
            assert!((e.edge.v() as usize) < n, "edge {} out of range", e.edge);
        }
        Self { n, entries }
    }

    /// Builds the canonical form from entries the caller guarantees are
    /// already canonical (sorted by edge, no duplicate pair, positive
    /// in-range multiplicities) — e.g. a sealed segment, or the output of
    /// a merge over sealed segments. The invariant is checked only under
    /// `debug_assertions`; release builds trust the caller and skip the
    /// redundant validation pass.
    pub fn from_sorted_entries(n: usize, entries: Vec<NetEdge>) -> Self {
        #[cfg(debug_assertions)]
        {
            for pair in entries.windows(2) {
                debug_assert!(
                    pair[0].edge < pair[1].edge,
                    "entries not in canonical order at {}",
                    pair[1].edge
                );
            }
            for e in &entries {
                debug_assert!(e.multiplicity > 0, "zero multiplicity for {}", e.edge);
                debug_assert!((e.edge.v() as usize) < n, "edge {} out of range", e.edge);
            }
        }
        Self { n, entries }
    }

    /// The exact segment delta carrying `prev` to `self`, computed in one
    /// merge-scan of the two sorted entry vectors: O(|prev| + |self|)
    /// worst case, O(changes) output. Weight changes compare bitwise
    /// (`f64::to_bits`), so the delta is empty iff the canonical segments
    /// are byte-identical.
    ///
    /// # Panics
    ///
    /// Panics if the two segments disagree on the vertex count.
    pub fn diff(&self, prev: &NetMultiset) -> SegmentDelta {
        assert_eq!(
            self.n, prev.n,
            "cannot diff segments over different vertex counts"
        );
        let mut delta = SegmentDelta::default();
        let (mut i, mut j) = (0, 0);
        while i < prev.entries.len() && j < self.entries.len() {
            let (p, c) = (prev.entries[i], self.entries[j]);
            match p.edge.cmp(&c.edge) {
                std::cmp::Ordering::Less => {
                    delta.removed.push(p);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    delta.added.push(c);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    if p.multiplicity != c.multiplicity || p.weight.to_bits() != c.weight.to_bits()
                    {
                        delta.reweighted.push((p, c));
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        delta.removed.extend_from_slice(&prev.entries[i..]);
        delta.added.extend_from_slice(&self.entries[j..]);
        delta
    }

    /// Applies a [`SegmentDelta`] produced by [`diff`](NetMultiset::diff)
    /// to `self` (the `prev` segment), reconstructing `cur` exactly:
    /// `prev.apply_delta(&cur.diff(&prev)) == cur`. One merge-scan,
    /// O(|self| + changes).
    ///
    /// # Panics
    ///
    /// Panics if the delta does not match this segment (a removed or
    /// reweighted pair that is not live, or an added pair that is).
    pub fn apply_delta(&self, delta: &SegmentDelta) -> NetMultiset {
        let mut out = Vec::with_capacity(
            (self.entries.len() + delta.added.len()).saturating_sub(delta.removed.len()),
        );
        let (mut add, mut rem, mut rew) = (0, 0, 0);
        for &e in &self.entries {
            while add < delta.added.len() && delta.added[add].edge < e.edge {
                out.push(delta.added[add]);
                add += 1;
            }
            assert!(
                add >= delta.added.len() || delta.added[add].edge != e.edge,
                "added pair {} is already live",
                e.edge
            );
            if rem < delta.removed.len() && delta.removed[rem].edge == e.edge {
                rem += 1;
                continue;
            }
            if rew < delta.reweighted.len() && delta.reweighted[rew].0.edge == e.edge {
                out.push(delta.reweighted[rew].1);
                rew += 1;
                continue;
            }
            out.push(e);
        }
        out.extend_from_slice(&delta.added[add..]);
        assert!(
            rem == delta.removed.len() && rew == delta.reweighted.len(),
            "delta references pairs not live in this segment"
        );
        Self::from_sorted_entries(self.n, out)
    }

    /// The net multiset of an update sequence. Pairs whose insertions and
    /// deletions cancel vanish; the tracked weight is the last weight an
    /// update carried for the pair (well defined in the model, where a
    /// deletion repeats its insertion's weight).
    ///
    /// # Panics
    ///
    /// Panics if some pair's net multiplicity is negative — such a
    /// sequence is outside the dynamic-stream model.
    pub fn from_updates<'a, I>(n: usize, updates: I) -> Self
    where
        I: IntoIterator<Item = &'a StreamUpdate>,
    {
        let mut net: HashMap<Edge, (i64, f64)> = HashMap::new();
        for up in updates {
            let entry = net.entry(up.edge).or_insert((0, up.weight));
            entry.0 += up.delta as i64;
            entry.1 = up.weight;
        }
        let entries = net
            .into_iter()
            .map(|(edge, (m, weight))| {
                assert!(m >= 0, "negative net multiplicity for {edge}");
                (edge, m, weight)
            })
            .filter(|&(_, m, _)| m > 0)
            .map(|(edge, m, weight)| NetEdge {
                edge,
                weight,
                multiplicity: m as u32,
            })
            .collect();
        Self::from_entries(n, entries)
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of distinct live pairs.
    pub fn num_edges(&self) -> usize {
        self.entries.len()
    }

    /// Whether no pair is live.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Sum of multiplicities (the minimum update count any stream with
    /// this net effect must contain).
    pub fn total_multiplicity(&self) -> u64 {
        self.entries.iter().map(|e| e.multiplicity as u64).sum()
    }

    /// The sorted entries.
    pub fn entries(&self) -> &[NetEdge] {
        &self.entries
    }

    /// The live graph (every pair with positive multiplicity).
    pub fn final_graph(&self) -> Graph {
        Graph::from_edges(self.n, self.entries.iter().map(|e| e.edge))
    }

    /// The live weighted graph.
    pub fn final_weighted_graph(&self) -> WeightedGraph {
        WeightedGraph::from_edges(self.n, self.entries.iter().map(|e| (e.edge, e.weight)))
    }

    /// Merges multisets over *disjoint* pair sets (e.g. the sealed
    /// per-shard segments of an edge-partitioned engine, where routing by
    /// edge identity guarantees disjointness) into one canonical
    /// multiset. Each part is already sorted, so a k-way merge produces
    /// the canonical order directly — O(total · k) with no re-sort and no
    /// re-validation of entries the parts already validated (each part
    /// held the canonical invariant when it was sealed; the k-way merge
    /// preserves it, checked under `debug_assertions` in
    /// [`from_sorted_entries`](NetMultiset::from_sorted_entries)).
    ///
    /// # Panics
    ///
    /// Panics if a part disagrees on the vertex count or if the same pair
    /// appears in two parts — both are caller bugs (the parts were not a
    /// partition).
    pub fn merge_disjoint<'a, I>(n: usize, parts: I) -> Self
    where
        I: IntoIterator<Item = &'a NetMultiset>,
    {
        let parts: Vec<&NetMultiset> = parts.into_iter().collect();
        for part in &parts {
            assert_eq!(
                part.num_vertices(),
                n,
                "vertex count mismatch in disjoint merge"
            );
        }
        let total: usize = parts.iter().map(|p| p.entries.len()).sum();
        let mut entries = Vec::with_capacity(total);
        let mut heads = vec![0usize; parts.len()];
        loop {
            // Shard counts are small, so scanning the k heads per step
            // beats a heap's constant factor.
            let mut next: Option<(usize, Edge)> = None;
            for (i, part) in parts.iter().enumerate() {
                if let Some(e) = part.entries.get(heads[i]) {
                    let better = match next {
                        None => true,
                        Some((_, best)) => e.edge < best,
                    };
                    if better {
                        next = Some((i, e.edge));
                    }
                }
            }
            let Some((i, _)) = next else { break };
            let e = parts[i].entries[heads[i]];
            heads[i] += 1;
            // One compare per entry is the whole disjointness check.
            if let Some(last) = entries.last() {
                let last: &NetEdge = last;
                assert!(last.edge < e.edge, "duplicate pair {} across parts", e.edge);
            }
            entries.push(e);
        }
        Self::from_sorted_entries(n, entries)
    }

    /// An insertion-only stream with this net effect (one `+1` update per
    /// unit of multiplicity, in canonical order) — the bridge back to
    /// stream-shaped APIs for callers that still need one.
    pub fn to_stream(&self) -> GraphStream {
        let mut updates = Vec::with_capacity(self.total_multiplicity() as usize);
        self.for_each_net_edge(&mut |e| {
            for _ in 0..e.multiplicity {
                updates.push(StreamUpdate {
                    edge: e.edge,
                    delta: 1,
                    weight: e.weight,
                });
            }
        });
        GraphStream::new(self.n, updates)
    }
}

impl EdgeMultiset for NetMultiset {
    fn num_vertices(&self) -> usize {
        self.n
    }

    fn for_each_net_edge(&self, f: &mut dyn FnMut(NetEdge)) {
        for e in &self.entries {
            f(*e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn net_of_stream_matches_final_graph() {
        let g = gen::erdos_renyi(25, 0.2, 1);
        let s = GraphStream::with_churn(&g, 2.0, 2);
        let net = s.net_multiset();
        assert_eq!(net.final_graph(), g);
        assert!(net.num_edges() < s.len(), "compaction must shrink churn");
        assert!(net.entries().iter().all(|e| e.multiplicity == 1));
    }

    #[test]
    fn net_is_order_free() {
        let g = gen::erdos_renyi(20, 0.3, 3);
        let a = GraphStream::with_churn(&g, 1.0, 4).net_multiset();
        let b = GraphStream::with_churn(&g, 3.0, 5).net_multiset();
        assert_eq!(a, b);
    }

    #[test]
    fn entries_are_sorted_and_canonical() {
        let g = gen::erdos_renyi(20, 0.3, 6);
        let net = GraphStream::insert_only(&g, 7).net_multiset();
        assert!(net.entries().windows(2).all(|w| w[0].edge < w[1].edge));
        assert_eq!(net.total_multiplicity(), g.num_edges() as u64);
    }

    #[test]
    fn multiplicities_above_one_survive() {
        let ups = vec![
            StreamUpdate::insert(0, 1),
            StreamUpdate::insert(0, 1),
            StreamUpdate::insert(1, 2),
            StreamUpdate::delete(1, 2),
        ];
        let net = NetMultiset::from_updates(4, &ups);
        assert_eq!(net.num_edges(), 1);
        assert_eq!(net.entries()[0].multiplicity, 2);
        let back = net.to_stream();
        assert_eq!(back.len(), 2);
        assert_eq!(back.net_multiset(), net);
    }

    #[test]
    #[should_panic(expected = "negative net multiplicity")]
    fn negative_net_rejected() {
        NetMultiset::from_updates(3, &[StreamUpdate::delete(0, 1)]);
    }

    #[test]
    fn weighted_net_keeps_weights() {
        let g = gen::with_random_weights(&gen::cycle(12), 1.0, 4.0, 8);
        let s = GraphStream::weighted_with_churn(&g, 1.0, 9);
        assert_eq!(s.net_multiset().final_weighted_graph(), g);
    }

    fn entry(u: u32, v: u32, mult: u32, weight: f64) -> NetEdge {
        NetEdge {
            edge: Edge::new(u, v),
            weight,
            multiplicity: mult,
        }
    }

    #[test]
    fn diff_buckets_added_removed_reweighted() {
        let prev = NetMultiset::from_entries(
            6,
            vec![
                entry(0, 1, 1, 1.0),
                entry(1, 2, 2, 1.0),
                entry(2, 3, 1, 2.0),
            ],
        );
        let cur = NetMultiset::from_entries(
            6,
            vec![
                entry(0, 1, 1, 1.0),
                entry(1, 2, 3, 1.0),
                entry(4, 5, 1, 1.0),
            ],
        );
        let d = cur.diff(&prev);
        assert_eq!(d.added, vec![entry(4, 5, 1, 1.0)]);
        assert_eq!(d.removed, vec![entry(2, 3, 1, 2.0)]);
        assert_eq!(
            d.reweighted,
            vec![(entry(1, 2, 2, 1.0), entry(1, 2, 3, 1.0))]
        );
        assert_eq!(d.num_changes(), 3);
        assert_eq!(prev.apply_delta(&d), cur);

        // The multiplicity-delta view: +1 for the add, -1 for the remove,
        // +1 for the reweight; the unchanged pair never appears.
        let mut seen = Vec::new();
        d.for_each_multiplicity_delta(&mut |e, dm, w| seen.push((e, dm, w)));
        assert_eq!(
            seen,
            vec![
                (Edge::new(4, 5), 1, 1.0),
                (Edge::new(2, 3), -1, 2.0),
                (Edge::new(1, 2), 1, 1.0),
            ]
        );
    }

    #[test]
    fn diff_of_identical_segments_is_empty() {
        let g = gen::erdos_renyi(20, 0.3, 11);
        let net = GraphStream::with_churn(&g, 1.0, 12).net_multiset();
        let d = net.diff(&net.clone());
        assert!(d.is_empty());
        assert_eq!(d.num_changes(), 0);
        assert_eq!(net.apply_delta(&d), net);
    }

    #[test]
    fn pure_weight_change_diffs_but_yields_no_multiplicity_delta() {
        let prev = NetMultiset::from_entries(4, vec![entry(0, 1, 2, 1.0)]);
        let cur = NetMultiset::from_entries(4, vec![entry(0, 1, 2, 3.5)]);
        let d = cur.diff(&prev);
        assert_eq!(d.num_changes(), 1);
        let mut calls = 0;
        d.for_each_multiplicity_delta(&mut |_, _, _| calls += 1);
        assert_eq!(calls, 0, "same multiplicity means no sketch update");
        assert_eq!(prev.apply_delta(&d), cur);
    }

    #[test]
    #[should_panic(expected = "not live")]
    fn mismatched_delta_is_rejected() {
        let prev = NetMultiset::from_entries(4, vec![entry(0, 1, 1, 1.0)]);
        let other = NetMultiset::from_entries(4, vec![entry(2, 3, 1, 1.0)]);
        let cur = NetMultiset::from_entries(4, vec![entry(0, 2, 1, 1.0)]);
        let _ = other.apply_delta(&cur.diff(&prev));
    }

    #[test]
    fn merge_disjoint_is_a_kway_merge() {
        let a = NetMultiset::from_entries(8, vec![entry(0, 1, 1, 1.0), entry(3, 4, 2, 1.0)]);
        let b = NetMultiset::from_entries(8, vec![entry(0, 2, 1, 1.0), entry(5, 6, 1, 1.0)]);
        let c = NetMultiset::from_entries(8, vec![entry(1, 2, 1, 1.0)]);
        let merged = NetMultiset::merge_disjoint(8, [&a, &b, &c]);
        assert!(merged.entries().windows(2).all(|w| w[0].edge < w[1].edge));
        assert_eq!(merged.num_edges(), 5);
        assert_eq!(merged.total_multiplicity(), 6);
    }

    #[test]
    #[should_panic(expected = "duplicate pair")]
    fn overlapping_parts_are_rejected() {
        let a = NetMultiset::from_entries(4, vec![entry(0, 1, 1, 1.0)]);
        let b = NetMultiset::from_entries(4, vec![entry(0, 1, 1, 1.0)]);
        let _ = NetMultiset::merge_disjoint(4, [&a, &b]);
    }
}
