//! Net edge multisets — the order-free summary a dynamic stream leaves
//! behind.
//!
//! The defining property of the paper's linear-sketch toolkit is that
//! every sketch of a dynamic stream is a function of the stream's **net
//! edge multiset** alone: insertions and deletions of the same pair
//! cancel, and neither update order nor stream length is observable.
//! [`NetMultiset`] is the canonical materialization of that multiset — a
//! sorted vector of [`NetEdge`] entries with strictly positive net
//! multiplicity — and [`EdgeMultiset`] is the view trait multi-pass
//! algorithms accept instead of a materialized [`GraphStream`], so their
//! inputs can be rebuilt in O(current edges) rather than O(stream
//! length).
//!
//! Rebuilding from the net multiset is *exact*, not approximate: each
//! pass of a two-pass algorithm keeps stream-facing state that is a
//! linear function of the updates, so feeding one `+1` update per unit of
//! net multiplicity reproduces the pass state bit for bit (the property
//! `crates/spanner` and `crates/sparsifier` test against raw-stream
//! replay).

use crate::graph::{Graph, WeightedGraph};
use crate::ids::Edge;
use crate::stream::{GraphStream, StreamUpdate};
use std::collections::HashMap;

/// One entry of a net edge multiset: the pair, its weight, and its net
/// multiplicity (always ≥ 1 inside a [`NetMultiset`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetEdge {
    /// The vertex pair.
    pub edge: Edge,
    /// The edge weight (`1.0` for unweighted streams; per the model a
    /// deletion carries its insertion's weight, so the surviving weight
    /// is well defined).
    pub weight: f64,
    /// Net multiplicity: insertions minus deletions, strictly positive.
    pub multiplicity: u32,
}

/// A view of a graph as a net edge multiset — the generalized input of
/// the multi-pass entry points ([`crate::pass::run_multiset`],
/// `dsg_spanner::twopass::run_two_pass_net`,
/// `dsg_sparsifier::pipeline::run_sparsifier_net`). Implementors promise
/// to visit each distinct pair at most once, with multiplicity ≥ 1, in a
/// deterministic order.
pub trait EdgeMultiset {
    /// Number of vertices of the underlying graph.
    fn num_vertices(&self) -> usize;

    /// Visits every net edge once.
    fn for_each_net_edge(&self, f: &mut dyn FnMut(NetEdge));
}

/// The canonical materialized net edge multiset: entries sorted by edge,
/// every multiplicity strictly positive. Two streams with the same net
/// effect produce the same `NetMultiset` — and therefore the same
/// canonical bytes wherever it is serialized.
///
/// # Examples
///
/// ```
/// use dsg_graph::{gen, GraphStream};
///
/// let g = gen::erdos_renyi(30, 0.2, 3);
/// // Two very different streams (order, churn volume) with one net effect:
/// let a = GraphStream::with_churn(&g, 0.5, 4).net_multiset();
/// let b = GraphStream::with_churn(&g, 2.0, 5).net_multiset();
/// assert_eq!(a.entries(), b.entries());
/// assert_eq!(a.final_graph(), g);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct NetMultiset {
    n: usize,
    entries: Vec<NetEdge>,
}

impl NetMultiset {
    /// An empty multiset over `n` vertices.
    pub fn empty(n: usize) -> Self {
        Self {
            n,
            entries: Vec::new(),
        }
    }

    /// Builds the canonical form from unordered entries.
    ///
    /// # Panics
    ///
    /// Panics if an entry has multiplicity 0, an endpoint out of range,
    /// or the same pair appears twice — callers hold the "net" invariant.
    pub fn from_entries(n: usize, mut entries: Vec<NetEdge>) -> Self {
        entries.sort_unstable_by_key(|e| e.edge);
        for pair in entries.windows(2) {
            assert!(
                pair[0].edge < pair[1].edge,
                "duplicate pair {}",
                pair[1].edge
            );
        }
        for e in &entries {
            assert!(e.multiplicity > 0, "zero multiplicity for {}", e.edge);
            assert!((e.edge.v() as usize) < n, "edge {} out of range", e.edge);
        }
        Self { n, entries }
    }

    /// The net multiset of an update sequence. Pairs whose insertions and
    /// deletions cancel vanish; the tracked weight is the last weight an
    /// update carried for the pair (well defined in the model, where a
    /// deletion repeats its insertion's weight).
    ///
    /// # Panics
    ///
    /// Panics if some pair's net multiplicity is negative — such a
    /// sequence is outside the dynamic-stream model.
    pub fn from_updates<'a, I>(n: usize, updates: I) -> Self
    where
        I: IntoIterator<Item = &'a StreamUpdate>,
    {
        let mut net: HashMap<Edge, (i64, f64)> = HashMap::new();
        for up in updates {
            let entry = net.entry(up.edge).or_insert((0, up.weight));
            entry.0 += up.delta as i64;
            entry.1 = up.weight;
        }
        let entries = net
            .into_iter()
            .map(|(edge, (m, weight))| {
                assert!(m >= 0, "negative net multiplicity for {edge}");
                (edge, m, weight)
            })
            .filter(|&(_, m, _)| m > 0)
            .map(|(edge, m, weight)| NetEdge {
                edge,
                weight,
                multiplicity: m as u32,
            })
            .collect();
        Self::from_entries(n, entries)
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of distinct live pairs.
    pub fn num_edges(&self) -> usize {
        self.entries.len()
    }

    /// Whether no pair is live.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Sum of multiplicities (the minimum update count any stream with
    /// this net effect must contain).
    pub fn total_multiplicity(&self) -> u64 {
        self.entries.iter().map(|e| e.multiplicity as u64).sum()
    }

    /// The sorted entries.
    pub fn entries(&self) -> &[NetEdge] {
        &self.entries
    }

    /// The live graph (every pair with positive multiplicity).
    pub fn final_graph(&self) -> Graph {
        Graph::from_edges(self.n, self.entries.iter().map(|e| e.edge))
    }

    /// The live weighted graph.
    pub fn final_weighted_graph(&self) -> WeightedGraph {
        WeightedGraph::from_edges(self.n, self.entries.iter().map(|e| (e.edge, e.weight)))
    }

    /// Merges multisets over *disjoint* pair sets (e.g. the sealed
    /// per-shard segments of an edge-partitioned engine, where routing by
    /// edge identity guarantees disjointness) into one canonical
    /// multiset. Concatenation is exact: because no pair appears in two
    /// parts, no multiplicities need combining.
    ///
    /// # Panics
    ///
    /// Panics if a part disagrees on the vertex count or if the same pair
    /// appears in two parts — both are caller bugs (the parts were not a
    /// partition).
    pub fn merge_disjoint<'a, I>(n: usize, parts: I) -> Self
    where
        I: IntoIterator<Item = &'a NetMultiset>,
    {
        let mut entries = Vec::new();
        for part in parts {
            assert_eq!(
                part.num_vertices(),
                n,
                "vertex count mismatch in disjoint merge"
            );
            entries.extend_from_slice(part.entries());
        }
        // from_entries re-sorts and panics on any duplicate pair, which is
        // exactly the disjointness check.
        Self::from_entries(n, entries)
    }

    /// An insertion-only stream with this net effect (one `+1` update per
    /// unit of multiplicity, in canonical order) — the bridge back to
    /// stream-shaped APIs for callers that still need one.
    pub fn to_stream(&self) -> GraphStream {
        let mut updates = Vec::with_capacity(self.total_multiplicity() as usize);
        self.for_each_net_edge(&mut |e| {
            for _ in 0..e.multiplicity {
                updates.push(StreamUpdate {
                    edge: e.edge,
                    delta: 1,
                    weight: e.weight,
                });
            }
        });
        GraphStream::new(self.n, updates)
    }
}

impl EdgeMultiset for NetMultiset {
    fn num_vertices(&self) -> usize {
        self.n
    }

    fn for_each_net_edge(&self, f: &mut dyn FnMut(NetEdge)) {
        for e in &self.entries {
            f(*e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn net_of_stream_matches_final_graph() {
        let g = gen::erdos_renyi(25, 0.2, 1);
        let s = GraphStream::with_churn(&g, 2.0, 2);
        let net = s.net_multiset();
        assert_eq!(net.final_graph(), g);
        assert!(net.num_edges() < s.len(), "compaction must shrink churn");
        assert!(net.entries().iter().all(|e| e.multiplicity == 1));
    }

    #[test]
    fn net_is_order_free() {
        let g = gen::erdos_renyi(20, 0.3, 3);
        let a = GraphStream::with_churn(&g, 1.0, 4).net_multiset();
        let b = GraphStream::with_churn(&g, 3.0, 5).net_multiset();
        assert_eq!(a, b);
    }

    #[test]
    fn entries_are_sorted_and_canonical() {
        let g = gen::erdos_renyi(20, 0.3, 6);
        let net = GraphStream::insert_only(&g, 7).net_multiset();
        assert!(net.entries().windows(2).all(|w| w[0].edge < w[1].edge));
        assert_eq!(net.total_multiplicity(), g.num_edges() as u64);
    }

    #[test]
    fn multiplicities_above_one_survive() {
        let ups = vec![
            StreamUpdate::insert(0, 1),
            StreamUpdate::insert(0, 1),
            StreamUpdate::insert(1, 2),
            StreamUpdate::delete(1, 2),
        ];
        let net = NetMultiset::from_updates(4, &ups);
        assert_eq!(net.num_edges(), 1);
        assert_eq!(net.entries()[0].multiplicity, 2);
        let back = net.to_stream();
        assert_eq!(back.len(), 2);
        assert_eq!(back.net_multiset(), net);
    }

    #[test]
    #[should_panic(expected = "negative net multiplicity")]
    fn negative_net_rejected() {
        NetMultiset::from_updates(3, &[StreamUpdate::delete(0, 1)]);
    }

    #[test]
    fn weighted_net_keeps_weights() {
        let g = gen::with_random_weights(&gen::cycle(12), 1.0, 4.0, 8);
        let s = GraphStream::weighted_with_churn(&g, 1.0, 9);
        assert_eq!(s.net_multiset().final_weighted_graph(), g);
    }
}
