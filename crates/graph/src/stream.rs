//! The dynamic graph stream model.
//!
//! A stream is a sequence of signed edge updates `(i, j, ±1)`; the graph at
//! the end of the stream is determined by the net multiplicity of every
//! pair, which the model requires to be non-negative (here: 0 or 1 — the
//! generators keep final graphs simple; sketches themselves tolerate general
//! multiplicities and are tested for that separately).
//!
//! For weighted graphs the paper's convention applies: an update either adds
//! a weighted edge or removes a previously added edge entirely, with the
//! weight known at update time — never incremental weight changes.

use crate::graph::{Graph, WeightedGraph};
use crate::ids::{Edge, Vertex};
use dsg_hash::SplitMix64;
use std::collections::HashMap;

/// A single signed update to the edge-indicator vector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamUpdate {
    /// The affected pair.
    pub edge: Edge,
    /// `+1` for insertion, `-1` for deletion.
    pub delta: i8,
    /// The edge weight (`1.0` for unweighted streams). A deletion carries
    /// the same weight as its insertion, per the model.
    pub weight: f64,
}

impl StreamUpdate {
    /// An unweighted insertion.
    pub fn insert(u: Vertex, v: Vertex) -> Self {
        Self {
            edge: Edge::new(u, v),
            delta: 1,
            weight: 1.0,
        }
    }

    /// An unweighted deletion.
    pub fn delete(u: Vertex, v: Vertex) -> Self {
        Self {
            edge: Edge::new(u, v),
            delta: -1,
            weight: 1.0,
        }
    }
}

/// A dynamic stream over a graph on `n` vertices.
///
/// # Examples
///
/// ```
/// use dsg_graph::{gen, GraphStream};
///
/// let g = gen::erdos_renyi(40, 0.2, 3);
/// let s = GraphStream::insert_only(&g, 17);
/// assert_eq!(s.len(), g.num_edges());
/// assert_eq!(&s.final_graph(), &g);
/// ```
#[derive(Debug, Clone)]
pub struct GraphStream {
    n: usize,
    updates: Vec<StreamUpdate>,
}

impl GraphStream {
    /// Wraps a raw update sequence.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range, a delta is not ±1, or a
    /// prefix drives some multiplicity negative.
    pub fn new(n: usize, updates: Vec<StreamUpdate>) -> Self {
        let mut mult: HashMap<Edge, i64> = HashMap::new();
        for up in &updates {
            assert!((up.edge.v() as usize) < n, "edge {} out of range", up.edge);
            assert!(up.delta == 1 || up.delta == -1, "delta must be ±1");
            let m = mult.entry(up.edge).or_insert(0);
            *m += up.delta as i64;
            assert!(*m >= 0, "negative multiplicity for {}", up.edge);
        }
        Self { n, updates }
    }

    /// An insertion-only stream of `g`'s edges in seeded random order.
    pub fn insert_only(g: &Graph, seed: u64) -> Self {
        let mut updates: Vec<StreamUpdate> = g
            .edges()
            .iter()
            .map(|e| StreamUpdate {
                edge: *e,
                delta: 1,
                weight: 1.0,
            })
            .collect();
        shuffle(&mut updates, seed);
        Self {
            n: g.num_vertices(),
            updates,
        }
    }

    /// A stream with deletions: inserts all of `g` plus `churn` × |E(g)|
    /// decoy non-edges, then deletes every decoy, with deletions interleaved
    /// after their insertions. The final graph is exactly `g`.
    ///
    /// The decoy count is capped at the size of `g`'s complement (dense
    /// graphs simply cannot sustain arbitrary churn).
    ///
    /// # Panics
    ///
    /// Panics if `churn` is negative.
    pub fn with_churn(g: &Graph, churn: f64, seed: u64) -> Self {
        assert!(churn >= 0.0, "churn must be non-negative");
        let n = g.num_vertices();
        let mut rng = SplitMix64::new(seed);
        let complement_size = crate::ids::num_pairs(n) as usize - g.num_edges();
        let want = ((churn * g.num_edges() as f64).round() as usize).min(complement_size);
        let mut decoy_set = std::collections::HashSet::with_capacity(want);
        while decoy_set.len() < want {
            let idx = rng.next_below(crate::ids::num_pairs(n));
            let (u, v) = crate::ids::index_to_pair(idx, n);
            let e = Edge::new(u, v);
            if !g.has_edge(u, v) {
                decoy_set.insert(e);
            }
        }
        // Sort for determinism (HashSet iteration order is per-instance).
        let mut decoys: Vec<Edge> = decoy_set.into_iter().collect();
        decoys.sort_unstable();
        // Phase 1: all real inserts + decoy inserts, shuffled.
        let mut phase1: Vec<StreamUpdate> = g
            .edges()
            .iter()
            .map(|e| StreamUpdate {
                edge: *e,
                delta: 1,
                weight: 1.0,
            })
            .chain(decoys.iter().map(|e| StreamUpdate {
                edge: *e,
                delta: 1,
                weight: 1.0,
            }))
            .collect();
        shuffle(&mut phase1, rng.next_u64());
        // Phase 2: decoy deletes, shuffled.
        let mut phase2: Vec<StreamUpdate> = decoys
            .iter()
            .map(|e| StreamUpdate {
                edge: *e,
                delta: -1,
                weight: 1.0,
            })
            .collect();
        shuffle(&mut phase2, rng.next_u64());
        // Interleave: phase-2 updates are spliced into the second half, so
        // deletions race with late insertions without going negative.
        let mut updates = phase1;
        let split = updates.len() / 2;
        let mut tail: Vec<StreamUpdate> = updates.split_off(split);
        tail.extend(phase2);
        shuffle(&mut tail, rng.next_u64());
        // A decoy deletion may now precede its insertion: repair order by
        // tracking multiplicity and deferring premature deletions.
        let mut mult: HashMap<Edge, i64> = HashMap::new();
        for up in &updates {
            *mult.entry(up.edge).or_insert(0) += up.delta as i64;
        }
        let mut repaired = updates;
        let mut deferred: Vec<StreamUpdate> = Vec::new();
        for up in tail {
            if up.delta == -1 && mult.get(&up.edge).copied().unwrap_or(0) <= 0 {
                deferred.push(up);
            } else {
                *mult.entry(up.edge).or_insert(0) += up.delta as i64;
                repaired.push(up);
                // Flush any deferred deletions now legal.
                let mut i = 0;
                while i < deferred.len() {
                    let d = deferred[i];
                    if mult.get(&d.edge).copied().unwrap_or(0) > 0 {
                        *mult.entry(d.edge).or_insert(0) -= 1;
                        repaired.push(d);
                        deferred.swap_remove(i);
                    } else {
                        i += 1;
                    }
                }
            }
        }
        repaired.extend(deferred);
        Self::new(n, repaired)
    }

    /// A weighted stream delivering `g`'s weighted edges (plus optional
    /// decoy churn on non-edges with random weights) in seeded order.
    pub fn weighted_with_churn(g: &WeightedGraph, churn: f64, seed: u64) -> Self {
        let skeleton = g.skeleton();
        let base = Self::with_churn(&skeleton, churn, seed);
        let mut decoy_weights: HashMap<Edge, f64> = HashMap::new();
        let (w_lo, w_hi) = g.weight_range().unwrap_or((1.0, 1.0));
        let mut rng = SplitMix64::new(seed ^ 0xD15C_0DE5);
        let updates = base
            .updates
            .into_iter()
            .map(|mut up| {
                if let Some(w) = g.weight(up.edge.u(), up.edge.v()) {
                    up.weight = w;
                } else {
                    // Decoy edge: a stable random weight within range, shared
                    // by its insertion and deletion.
                    let w = *decoy_weights
                        .entry(up.edge)
                        .or_insert_with(|| w_lo + rng.next_f64() * (w_hi - w_lo));
                    up.weight = w;
                }
                up
            })
            .collect();
        Self { n: base.n, updates }
    }

    /// Number of vertices of the underlying graph.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of updates.
    pub fn len(&self) -> usize {
        self.updates.len()
    }

    /// Whether the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.updates.is_empty()
    }

    /// The update sequence.
    pub fn updates(&self) -> &[StreamUpdate] {
        &self.updates
    }

    /// Replays the stream into the final (unweighted) graph.
    pub fn final_graph(&self) -> Graph {
        let mut mult: HashMap<Edge, i64> = HashMap::new();
        for up in &self.updates {
            *mult.entry(up.edge).or_insert(0) += up.delta as i64;
        }
        Graph::from_edges(
            self.n,
            mult.into_iter().filter(|&(_, m)| m > 0).map(|(e, _)| e),
        )
    }

    /// Replays the stream into the final weighted graph.
    pub fn final_weighted_graph(&self) -> WeightedGraph {
        let mut mult: HashMap<Edge, (i64, f64)> = HashMap::new();
        for up in &self.updates {
            let entry = mult.entry(up.edge).or_insert((0, up.weight));
            entry.0 += up.delta as i64;
            entry.1 = up.weight;
        }
        WeightedGraph::from_edges(
            self.n,
            mult.into_iter()
                .filter(|&(_, (m, _))| m > 0)
                .map(|(e, (_, w))| (e, w)),
        )
    }

    /// Count of deletion updates.
    pub fn num_deletions(&self) -> usize {
        self.updates.iter().filter(|u| u.delta < 0).count()
    }

    /// The canonical net edge multiset this stream leaves behind —
    /// insertions and deletions cancelled, order forgotten. Every linear
    /// algorithm over this stream is a function of the result alone (see
    /// [`crate::multiset`]).
    pub fn net_multiset(&self) -> crate::multiset::NetMultiset {
        crate::multiset::NetMultiset::from_updates(self.n, &self.updates)
    }
}

fn shuffle<T>(items: &mut [T], seed: u64) {
    let mut rng = SplitMix64::new(seed);
    for i in (1..items.len()).rev() {
        let j = rng.next_below(i as u64 + 1) as usize;
        items.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn insert_only_replays_to_graph() {
        let g = gen::erdos_renyi(30, 0.2, 1);
        let s = GraphStream::insert_only(&g, 2);
        assert_eq!(s.final_graph(), g);
        assert_eq!(s.num_deletions(), 0);
    }

    #[test]
    fn churn_preserves_final_graph() {
        let g = gen::erdos_renyi(30, 0.15, 3);
        for churn in [0.5, 1.0, 3.0] {
            let s = GraphStream::with_churn(&g, churn, 4);
            assert_eq!(s.final_graph(), g, "churn={churn}");
            assert!(s.num_deletions() > 0, "churn={churn} produced no deletions");
        }
    }

    #[test]
    fn churn_volume_scales() {
        let g = gen::erdos_renyi(40, 0.2, 5);
        let s = GraphStream::with_churn(&g, 2.0, 6);
        let expect_deletes = (2.0 * g.num_edges() as f64).round() as usize;
        assert_eq!(s.num_deletions(), expect_deletes);
        assert_eq!(s.len(), g.num_edges() + 2 * expect_deletes);
    }

    #[test]
    fn prefix_multiplicities_stay_nonnegative() {
        let g = gen::erdos_renyi(25, 0.2, 7);
        let s = GraphStream::with_churn(&g, 2.5, 8);
        let mut mult: HashMap<Edge, i64> = HashMap::new();
        for up in s.updates() {
            let m = mult.entry(up.edge).or_insert(0);
            *m += up.delta as i64;
            assert!(*m >= 0);
        }
    }

    #[test]
    #[should_panic(expected = "negative multiplicity")]
    fn negative_multiplicity_rejected() {
        GraphStream::new(3, vec![StreamUpdate::delete(0, 1)]);
    }

    #[test]
    fn churn_capped_on_dense_graphs() {
        let g = gen::complete(12); // no non-edges at all
        let s = GraphStream::with_churn(&g, 5.0, 1);
        assert_eq!(s.num_deletions(), 0);
        assert_eq!(s.final_graph(), g);
    }

    #[test]
    fn weighted_stream_replays_weights() {
        let g = gen::with_random_weights(&gen::cycle(12), 1.0, 4.0, 9);
        let s = GraphStream::weighted_with_churn(&g, 1.0, 10);
        assert_eq!(s.final_weighted_graph(), g);
    }

    #[test]
    fn weighted_deletion_carries_same_weight() {
        let g = gen::with_random_weights(&gen::cycle(10), 1.0, 4.0, 11);
        let s = GraphStream::weighted_with_churn(&g, 2.0, 12);
        let mut seen: HashMap<Edge, f64> = HashMap::new();
        for up in s.updates() {
            match seen.entry(up.edge) {
                std::collections::hash_map::Entry::Occupied(o) => {
                    assert_eq!(
                        *o.get(),
                        up.weight,
                        "weight changed mid-stream for {}",
                        up.edge
                    );
                }
                std::collections::hash_map::Entry::Vacant(v) => {
                    v.insert(up.weight);
                }
            }
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let g = gen::erdos_renyi(20, 0.3, 1);
        let a = GraphStream::with_churn(&g, 1.0, 42);
        let b = GraphStream::with_churn(&g, 1.0, 42);
        assert_eq!(a.updates(), b.updates());
    }

    #[test]
    fn stream_update_constructors() {
        let i = StreamUpdate::insert(3, 1);
        assert_eq!(i.delta, 1);
        assert_eq!(i.edge, Edge::new(1, 3));
        let d = StreamUpdate::delete(1, 3);
        assert_eq!(d.delta, -1);
    }
}
