//! Vertex, edge and coordinate identifiers.
//!
//! The dynamic-stream model treats the graph as a vector indexed by
//! unordered vertex pairs. [`pair_to_index`] and [`index_to_pair`] implement
//! the row-major bijection between pairs `{u, v}` (with `u < v`) and
//! coordinates `0 .. C(n,2)`; every sketch in the workspace hashes these
//! coordinates.

/// A vertex identifier in `[0, n)`.
pub type Vertex = u32;

/// An unordered pair of distinct vertices, stored with `u < v`.
///
/// # Examples
///
/// ```
/// use dsg_graph::Edge;
///
/// let e = Edge::new(5, 2);
/// assert_eq!((e.u(), e.v()), (2, 5)); // normalized
/// assert_eq!(e, Edge::new(2, 5));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Edge {
    u: Vertex,
    v: Vertex,
}

impl Edge {
    /// Creates the unordered pair `{a, b}`.
    ///
    /// # Panics
    ///
    /// Panics if `a == b`: the model has no self-loops.
    pub fn new(a: Vertex, b: Vertex) -> Self {
        assert_ne!(a, b, "self-loops are not part of the model");
        if a < b {
            Self { u: a, v: b }
        } else {
            Self { u: b, v: a }
        }
    }

    /// The smaller endpoint.
    pub fn u(&self) -> Vertex {
        self.u
    }

    /// The larger endpoint.
    pub fn v(&self) -> Vertex {
        self.v
    }

    /// Both endpoints as a tuple `(u, v)` with `u < v`.
    pub fn endpoints(&self) -> (Vertex, Vertex) {
        (self.u, self.v)
    }

    /// Whether `w` is the smaller endpoint (`u`) of this edge.
    ///
    /// This is the single endpoint-identity check every incidence
    /// computation routes through. Debug builds assert that `w` really is
    /// an endpoint; release builds classify any foreign vertex as the
    /// larger side, so one malformed update degrades into a recoverable
    /// wrong-sign contribution instead of aborting a whole ingest shard
    /// (linear sketches tolerate and cancel such noise; a process abort
    /// loses everything).
    #[inline]
    pub fn is_lower_endpoint(&self, w: Vertex) -> bool {
        debug_assert!(self.touches(w), "vertex {w} is not an endpoint of {self:?}");
        w == self.u
    }

    /// The endpoint that is not `w`.
    ///
    /// # Panics
    ///
    /// Debug builds panic if `w` is not an endpoint of this edge; release
    /// builds return the smaller endpoint (see
    /// [`is_lower_endpoint`](Edge::is_lower_endpoint)).
    pub fn other(&self, w: Vertex) -> Vertex {
        if self.is_lower_endpoint(w) {
            self.v
        } else {
            self.u
        }
    }

    /// Whether `w` is an endpoint.
    pub fn touches(&self, w: Vertex) -> bool {
        self.u == w || self.v == w
    }

    /// The stream coordinate of this edge in an `n`-vertex graph.
    pub fn index(&self, n: usize) -> u64 {
        pair_to_index(self.u, self.v, n)
    }
}

impl std::fmt::Display for Edge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}, {})", self.u, self.v)
    }
}

/// Number of coordinates in the edge-indicator vector: `C(n,2)`.
pub fn num_pairs(n: usize) -> u64 {
    let n = n as u64;
    n * (n - 1) / 2
}

/// Maps an unordered pair (`u < v`, both below `n`) to its coordinate in
/// `[0, C(n,2))`, row-major: pairs with smaller `u` come first.
///
/// # Panics
///
/// Panics if `u >= v` or `v >= n`.
///
/// # Examples
///
/// ```
/// use dsg_graph::pair_to_index;
/// assert_eq!(pair_to_index(0, 1, 4), 0);
/// assert_eq!(pair_to_index(0, 3, 4), 2);
/// assert_eq!(pair_to_index(1, 2, 4), 3);
/// assert_eq!(pair_to_index(2, 3, 4), 5);
/// ```
pub fn pair_to_index(u: Vertex, v: Vertex, n: usize) -> u64 {
    assert!(u < v, "pair must be ordered: {u} >= {v}");
    assert!((v as usize) < n, "vertex {v} out of range for n={n}");
    let (u, v, n) = (u as u64, v as u64, n as u64);
    // Pairs with first coordinate < u occupy sum_{i<u} (n-1-i) slots.
    u * (n - 1) - u * u.saturating_sub(1) / 2 + (v - u - 1)
}

/// Inverts [`pair_to_index`].
///
/// # Panics
///
/// Panics if `index >= C(n,2)`.
///
/// # Examples
///
/// ```
/// use dsg_graph::{index_to_pair, pair_to_index};
/// let n = 10;
/// for idx in 0..45u64 {
///     let (u, v) = index_to_pair(idx, n);
///     assert_eq!(pair_to_index(u, v, n), idx);
/// }
/// ```
pub fn index_to_pair(index: u64, n: usize) -> (Vertex, Vertex) {
    assert!(index < num_pairs(n), "index {index} out of range for n={n}");
    let nu = n as u64;
    // Find u: the largest u with offset(u) <= index, where
    // offset(u) = u*(n-1) - u*(u-1)/2. Solve by binary search (robust
    // against floating-point edge cases at large n).
    let offset = |u: u64| u * (nu - 1) - u * (u.saturating_sub(1)) / 2;
    let (mut lo, mut hi) = (0u64, nu - 1);
    while lo < hi {
        let mid = (lo + hi).div_ceil(2);
        if offset(mid) <= index {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    let u = lo;
    let v = u + 1 + (index - offset(u));
    (u as Vertex, v as Vertex)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_normalizes() {
        let e = Edge::new(9, 3);
        assert_eq!(e.endpoints(), (3, 9));
        assert_eq!(e.other(3), 9);
        assert_eq!(e.other(9), 3);
        assert!(e.touches(3) && e.touches(9) && !e.touches(4));
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_panics() {
        Edge::new(2, 2);
    }

    #[test]
    #[cfg(debug_assertions)] // release builds degrade instead of panicking
    #[should_panic(expected = "not an endpoint")]
    fn other_rejects_non_endpoint() {
        Edge::new(1, 2).other(3);
    }

    #[test]
    fn pair_index_bijection_small() {
        for n in 2..40usize {
            let mut seen = std::collections::HashSet::new();
            for u in 0..n as Vertex {
                for v in (u + 1)..n as Vertex {
                    let idx = pair_to_index(u, v, n);
                    assert!(idx < num_pairs(n));
                    assert!(seen.insert(idx), "duplicate index {idx} at n={n}");
                    assert_eq!(index_to_pair(idx, n), (u, v));
                }
            }
            assert_eq!(seen.len() as u64, num_pairs(n));
        }
    }

    #[test]
    fn pair_index_large_n() {
        let n = 1_000_000usize;
        let cases = [
            (0, 1),
            (0, 999_999),
            (1, 2),
            (499_999, 500_000),
            (999_998, 999_999),
        ];
        for (u, v) in cases {
            let idx = pair_to_index(u, v, n);
            assert_eq!(index_to_pair(idx, n), (u, v));
        }
        assert_eq!(pair_to_index(0, 1, n), 0);
        assert_eq!(pair_to_index(999_998, 999_999, n), num_pairs(n) - 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn index_out_of_range_panics() {
        index_to_pair(num_pairs(5), 5);
    }

    #[test]
    fn edge_index_matches_pair_index() {
        let e = Edge::new(7, 2);
        assert_eq!(e.index(10), pair_to_index(2, 7, 10));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Edge::new(3, 1).to_string(), "(1, 3)");
    }
}
