//! Dijkstra shortest paths for weighted graphs.
//!
//! Verification machinery for the weighted spanner reduction (Remark 14):
//! weighted stretch is measured against these exact distances.

use crate::graph::WeightedGraph;
use crate::ids::Vertex;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Weighted adjacency in CSR form.
#[derive(Debug, Clone)]
pub struct WeightedAdjacency {
    offsets: Vec<usize>,
    targets: Vec<Vertex>,
    weights: Vec<f64>,
}

impl WeightedAdjacency {
    /// Builds weighted adjacency from a weighted graph.
    pub fn new(g: &WeightedGraph) -> Self {
        let n = g.num_vertices();
        let mut degree = vec![0usize; n];
        for (e, _) in g.edges() {
            degree[e.u() as usize] += 1;
            degree[e.v() as usize] += 1;
        }
        let mut offsets = vec![0usize; n + 1];
        for i in 0..n {
            offsets[i + 1] = offsets[i] + degree[i];
        }
        let mut cursor = offsets.clone();
        let mut targets = vec![0 as Vertex; g.num_edges() * 2];
        let mut weights = vec![0.0f64; g.num_edges() * 2];
        for (e, w) in g.edges() {
            let (u, v) = e.endpoints();
            targets[cursor[u as usize]] = v;
            weights[cursor[u as usize]] = *w;
            cursor[u as usize] += 1;
            targets[cursor[v as usize]] = u;
            weights[cursor[v as usize]] = *w;
            cursor[v as usize] += 1;
        }
        Self {
            offsets,
            targets,
            weights,
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    fn edges_of(&self, u: Vertex) -> impl Iterator<Item = (Vertex, f64)> + '_ {
        let range = self.offsets[u as usize]..self.offsets[u as usize + 1];
        range
            .clone()
            .map(move |i| (self.targets[i], self.weights[i]))
    }
}

#[derive(PartialEq)]
struct HeapItem {
    dist: f64,
    vertex: Vertex,
}

impl Eq for HeapItem {}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on distance; distances are finite non-NaN by invariant.
        other
            .dist
            .partial_cmp(&self.dist)
            .expect("no NaN distances")
    }
}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Single-source Dijkstra distances; unreachable vertices get `f64::INFINITY`.
///
/// # Examples
///
/// ```
/// use dsg_graph::{WeightedGraph, Edge, dijkstra};
///
/// let g = WeightedGraph::from_edges(3, [(Edge::new(0, 1), 2.0), (Edge::new(1, 2), 0.5)]);
/// let adj = dijkstra::WeightedAdjacency::new(&g);
/// let d = dijkstra::dijkstra_distances(&adj, 0);
/// assert_eq!(d, vec![0.0, 2.0, 2.5]);
/// ```
pub fn dijkstra_distances(adj: &WeightedAdjacency, src: Vertex) -> Vec<f64> {
    let n = adj.num_vertices();
    let mut dist = vec![f64::INFINITY; n];
    let mut heap = BinaryHeap::new();
    dist[src as usize] = 0.0;
    heap.push(HeapItem {
        dist: 0.0,
        vertex: src,
    });
    while let Some(HeapItem {
        dist: du,
        vertex: u,
    }) = heap.pop()
    {
        if du > dist[u as usize] {
            continue; // stale entry
        }
        for (w, len) in adj.edges_of(u) {
            let cand = du + len;
            if cand < dist[w as usize] {
                dist[w as usize] = cand;
                heap.push(HeapItem {
                    dist: cand,
                    vertex: w,
                });
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::ids::Edge;

    #[test]
    fn matches_bfs_on_unit_weights() {
        let g = gen::grid(4, 5);
        let wg = crate::graph::WeightedGraph::from_edges(
            g.num_vertices(),
            g.edges().iter().map(|&e| (e, 1.0)),
        );
        let wd = dijkstra_distances(&WeightedAdjacency::new(&wg), 0);
        let bd = crate::bfs::bfs_distances(&g.adjacency(), 0);
        for (w, b) in wd.iter().zip(&bd) {
            assert_eq!(*w as u32, *b);
        }
    }

    #[test]
    fn prefers_lighter_detour() {
        // 0-2 direct costs 10; 0-1-2 costs 3.
        let g = WeightedGraph::from_edges(
            3,
            [
                (Edge::new(0, 2), 10.0),
                (Edge::new(0, 1), 1.0),
                (Edge::new(1, 2), 2.0),
            ],
        );
        let d = dijkstra_distances(&WeightedAdjacency::new(&g), 0);
        assert_eq!(d[2], 3.0);
    }

    #[test]
    fn unreachable_is_infinite() {
        let g = WeightedGraph::from_edges(4, [(Edge::new(0, 1), 1.0)]);
        let d = dijkstra_distances(&WeightedAdjacency::new(&g), 0);
        assert!(d[2].is_infinite());
        assert!(d[3].is_infinite());
    }

    #[test]
    fn empty_graph_only_source_reachable() {
        let g = WeightedGraph::empty(3);
        let d = dijkstra_distances(&WeightedAdjacency::new(&g), 1);
        assert_eq!(d[1], 0.0);
        assert!(d[0].is_infinite() && d[2].is_infinite());
    }
}
