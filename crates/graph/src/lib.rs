//! Graph substrate for dynamic-stream algorithms.
//!
//! The paper views a multigraph on `n` vertices as its `C(n,2)`-dimensional
//! edge-indicator vector, delivered as a stream of signed updates. This
//! crate provides everything around that view:
//!
//! * [`ids`] — the bijection between unordered vertex pairs and coordinates
//!   of the `C(n,2)`-dimensional vector (the index space every sketch hashes);
//! * [`Graph`] / [`WeightedGraph`] — in-memory reference graphs with CSR
//!   adjacency, used to generate streams and to verify streaming outputs;
//! * [`gen`] — seeded generators: Erdős–Rényi, fixed-size `G(n,m)`, paths,
//!   cycles, grids, stars, complete graphs, barbells/dumbbells, Chung–Lu
//!   power-law graphs, and the disjoint-cliques-plus-path hard instance of
//!   the paper's Theorem 4 lower bound;
//! * [`bfs`] / [`dijkstra`] — shortest-path machinery for measuring spanner
//!   stretch and additive distortion;
//! * [`components`] / [`mst`] — union–find, connected components, spanning
//!   forests and Kruskal MST (verification targets for AGM sketches);
//! * [`stream`] — the dynamic stream model itself: signed edge updates,
//!   churn generators that interleave insertions with deletions, and
//!   weighted streams where deletions remove a known weight (the model the
//!   paper adopts for weighted graphs);
//! * [`multiset`] — the order-free **net edge multiset** a stream leaves
//!   behind ([`NetMultiset`]), the O(current edges) input every linear
//!   algorithm can be rebuilt from;
//! * [`compact`] — the write side of that summary: [`CompactedLog`]
//!   maintains net multiplicities incrementally at ingest (insert/delete
//!   churn cancels on arrival) and seals into a [`NetMultiset`];
//! * [`pass`] — the multi-pass driver trait tying streaming algorithms to
//!   streams (and, via [`pass::run_multiset`], to net multisets).
//!
//! # Examples
//!
//! ```
//! use dsg_graph::{gen, stream::GraphStream};
//!
//! let g = gen::erdos_renyi(100, 0.1, 7);
//! // A dynamic stream that inserts 3x the final edges and deletes 2/3.
//! let stream = GraphStream::with_churn(&g, 2.0, 99);
//! assert_eq!(stream.final_graph().edges().len(), g.edges().len());
//! ```

pub mod bfs;
pub mod compact;
pub mod components;
pub mod dijkstra;
pub mod gen;
pub mod graph;
pub mod ids;
pub mod mst;
pub mod multiset;
pub mod pass;
pub mod stream;

pub use compact::{CompactError, CompactedLog};
pub use graph::{Graph, WeightedGraph};
pub use ids::{index_to_pair, pair_to_index, Edge, Vertex};
pub use multiset::{EdgeMultiset, FilteredMultiset, NetEdge, NetMultiset, SegmentDelta};
pub use pass::StreamAlgorithm;
pub use stream::{GraphStream, StreamUpdate};
