//! Kruskal minimum spanning forest.
//!
//! One of the AGM applications (AGM12a builds MSFs from `O(log n)` rounds
//! of connectivity sketches); here it serves as a weighted verification
//! target and a utility for examples.

use crate::components::UnionFind;
use crate::graph::WeightedGraph;
use crate::ids::Edge;

/// Computes a minimum spanning forest, returning `(edges, total_weight)`.
///
/// # Examples
///
/// ```
/// use dsg_graph::{WeightedGraph, Edge, mst};
///
/// let g = WeightedGraph::from_edges(3, [
///     (Edge::new(0, 1), 1.0),
///     (Edge::new(1, 2), 2.0),
///     (Edge::new(0, 2), 10.0),
/// ]);
/// let (edges, weight) = mst::minimum_spanning_forest(&g);
/// assert_eq!(edges.len(), 2);
/// assert_eq!(weight, 3.0);
/// ```
pub fn minimum_spanning_forest(g: &WeightedGraph) -> (Vec<Edge>, f64) {
    let mut order: Vec<(f64, Edge)> = g.edges().iter().map(|&(e, w)| (w, e)).collect();
    order.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("weights are finite"));
    let mut uf = UnionFind::new(g.num_vertices());
    let mut picked = Vec::new();
    let mut total = 0.0;
    for (w, e) in order {
        if uf.union(e.u(), e.v()) {
            picked.push(e);
            total += w;
        }
    }
    (picked, total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn tree_of_connected_graph_has_n_minus_1_edges() {
        let g = gen::with_random_weights(&gen::complete(12), 1.0, 10.0, 3);
        let (edges, _) = minimum_spanning_forest(&g);
        assert_eq!(edges.len(), 11);
    }

    #[test]
    fn forest_of_disconnected_graph() {
        let g = WeightedGraph::from_edges(5, [(Edge::new(0, 1), 1.0), (Edge::new(3, 4), 2.0)]);
        let (edges, weight) = minimum_spanning_forest(&g);
        assert_eq!(edges.len(), 2);
        assert_eq!(weight, 3.0);
    }

    #[test]
    fn picks_cheapest_cycle_break() {
        let g = WeightedGraph::from_edges(
            3,
            [
                (Edge::new(0, 1), 5.0),
                (Edge::new(1, 2), 1.0),
                (Edge::new(0, 2), 2.0),
            ],
        );
        let (edges, weight) = minimum_spanning_forest(&g);
        assert_eq!(weight, 3.0);
        assert!(!edges.contains(&Edge::new(0, 1)));
    }

    #[test]
    fn empty_graph_empty_forest() {
        let g = WeightedGraph::empty(4);
        let (edges, weight) = minimum_spanning_forest(&g);
        assert!(edges.is_empty());
        assert_eq!(weight, 0.0);
    }
}
