//! In-memory reference graphs with CSR adjacency.
//!
//! These are *not* streaming structures — they are the ground truth that
//! streams are generated from and that streaming outputs are verified
//! against. Simple graphs only (the model forbids self-loops, and our
//! streams deliver multiplicity-1 indicators; multigraph multiplicities are
//! exercised at the sketch level).

use crate::ids::{Edge, Vertex};
use std::collections::HashSet;

/// An undirected simple graph on vertices `0..n`.
///
/// # Examples
///
/// ```
/// use dsg_graph::{Graph, Edge};
///
/// let g = Graph::from_edges(4, [Edge::new(0, 1), Edge::new(1, 2)]);
/// assert_eq!(g.num_vertices(), 4);
/// assert_eq!(g.num_edges(), 2);
/// assert_eq!(g.adjacency().degree(1), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    n: usize,
    edges: Vec<Edge>,
}

impl Graph {
    /// Creates an empty graph on `n` vertices.
    pub fn empty(n: usize) -> Self {
        Self {
            n,
            edges: Vec::new(),
        }
    }

    /// Builds a graph from an edge collection, deduplicating.
    ///
    /// # Panics
    ///
    /// Panics if any edge endpoint is `>= n`.
    pub fn from_edges<I: IntoIterator<Item = Edge>>(n: usize, edges: I) -> Self {
        let mut set: Vec<Edge> = edges.into_iter().collect();
        set.sort_unstable();
        set.dedup();
        for e in &set {
            assert!((e.v() as usize) < n, "edge {e} out of range for n={n}");
        }
        Self { n, edges: set }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The edge list, sorted.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Whether `{u, v}` is an edge (binary search on the sorted list).
    pub fn has_edge(&self, u: Vertex, v: Vertex) -> bool {
        if u == v {
            return false;
        }
        self.edges.binary_search(&Edge::new(u, v)).is_ok()
    }

    /// Builds the CSR adjacency structure.
    pub fn adjacency(&self) -> Adjacency {
        Adjacency::new(self.n, &self.edges)
    }

    /// The edge set as a hash set (for verification code).
    pub fn edge_set(&self) -> HashSet<Edge> {
        self.edges.iter().copied().collect()
    }

    /// A new graph with `other`'s edges removed.
    pub fn minus(&self, other: &HashSet<Edge>) -> Graph {
        Graph {
            n: self.n,
            edges: self
                .edges
                .iter()
                .filter(|e| !other.contains(e))
                .copied()
                .collect(),
        }
    }
}

/// Compressed-sparse-row adjacency for fast traversal.
#[derive(Debug, Clone)]
pub struct Adjacency {
    offsets: Vec<usize>,
    neighbors: Vec<Vertex>,
}

impl Adjacency {
    /// Builds adjacency from an edge list.
    pub fn new(n: usize, edges: &[Edge]) -> Self {
        let mut degree = vec![0usize; n];
        for e in edges {
            degree[e.u() as usize] += 1;
            degree[e.v() as usize] += 1;
        }
        let mut offsets = vec![0usize; n + 1];
        for i in 0..n {
            offsets[i + 1] = offsets[i] + degree[i];
        }
        let mut cursor = offsets.clone();
        let mut neighbors = vec![0 as Vertex; edges.len() * 2];
        for e in edges {
            neighbors[cursor[e.u() as usize]] = e.v();
            cursor[e.u() as usize] += 1;
            neighbors[cursor[e.v() as usize]] = e.u();
            cursor[e.v() as usize] += 1;
        }
        Self { offsets, neighbors }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The neighbors of `u`.
    pub fn neighbors(&self, u: Vertex) -> &[Vertex] {
        &self.neighbors[self.offsets[u as usize]..self.offsets[u as usize + 1]]
    }

    /// The degree of `u`.
    pub fn degree(&self, u: Vertex) -> usize {
        self.offsets[u as usize + 1] - self.offsets[u as usize]
    }
}

/// An undirected weighted simple graph with positive edge weights.
///
/// The paper's weighted model: a stream either adds a weighted edge or
/// removes it entirely (the weight is known at update time).
///
/// # Examples
///
/// ```
/// use dsg_graph::{WeightedGraph, Edge};
///
/// let g = WeightedGraph::from_edges(3, [(Edge::new(0, 1), 2.5), (Edge::new(1, 2), 1.0)]);
/// assert_eq!(g.total_weight(), 3.5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct WeightedGraph {
    n: usize,
    edges: Vec<(Edge, f64)>,
}

impl WeightedGraph {
    /// Creates an empty weighted graph on `n` vertices.
    pub fn empty(n: usize) -> Self {
        Self {
            n,
            edges: Vec::new(),
        }
    }

    /// Builds a weighted graph from `(edge, weight)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if a weight is not strictly positive and finite, if an edge
    /// repeats, or if an endpoint is out of range.
    pub fn from_edges<I: IntoIterator<Item = (Edge, f64)>>(n: usize, edges: I) -> Self {
        let mut list: Vec<(Edge, f64)> = edges.into_iter().collect();
        list.sort_unstable_by_key(|(e, _)| *e);
        for window in list.windows(2) {
            assert_ne!(window[0].0, window[1].0, "duplicate edge {}", window[0].0);
        }
        for (e, w) in &list {
            assert!((e.v() as usize) < n, "edge {e} out of range for n={n}");
            assert!(
                w.is_finite() && *w > 0.0,
                "weight {w} for {e} must be positive"
            );
        }
        Self { n, edges: list }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The `(edge, weight)` list, sorted by edge.
    pub fn edges(&self) -> &[(Edge, f64)] {
        &self.edges
    }

    /// Sum of all edge weights.
    pub fn total_weight(&self) -> f64 {
        self.edges.iter().map(|(_, w)| w).sum()
    }

    /// Smallest and largest edge weight, or `None` for an empty graph.
    pub fn weight_range(&self) -> Option<(f64, f64)> {
        if self.edges.is_empty() {
            return None;
        }
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for (_, w) in &self.edges {
            lo = lo.min(*w);
            hi = hi.max(*w);
        }
        Some((lo, hi))
    }

    /// The unweighted skeleton.
    pub fn skeleton(&self) -> Graph {
        Graph::from_edges(self.n, self.edges.iter().map(|(e, _)| *e))
    }

    /// The weight of `{u, v}` if present.
    pub fn weight(&self, u: Vertex, v: Vertex) -> Option<f64> {
        if u == v {
            return None;
        }
        let e = Edge::new(u, v);
        self.edges
            .binary_search_by_key(&e, |(e, _)| *e)
            .ok()
            .map(|i| self.edges[i].1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        Graph::from_edges(3, [Edge::new(0, 1), Edge::new(1, 2), Edge::new(0, 2)])
    }

    #[test]
    fn from_edges_dedups() {
        let g = Graph::from_edges(3, [Edge::new(0, 1), Edge::new(1, 0), Edge::new(0, 1)]);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn has_edge_queries() {
        let g = triangle();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 0));
        let g2 = Graph::from_edges(4, [Edge::new(0, 1)]);
        assert!(!g2.has_edge(2, 3));
    }

    #[test]
    fn adjacency_round_trip() {
        let g = triangle();
        let adj = g.adjacency();
        assert_eq!(adj.num_vertices(), 3);
        for u in 0..3 {
            assert_eq!(adj.degree(u), 2);
            let mut nbrs = adj.neighbors(u).to_vec();
            nbrs.sort_unstable();
            let expect: Vec<Vertex> = (0..3).filter(|&w| w != u).collect();
            assert_eq!(nbrs, expect);
        }
    }

    #[test]
    fn empty_graph() {
        let g = Graph::empty(5);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.adjacency().degree(0), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        Graph::from_edges(2, [Edge::new(0, 5)]);
    }

    #[test]
    fn minus_removes_edges() {
        let g = triangle();
        let mut kill = HashSet::new();
        kill.insert(Edge::new(0, 1));
        let h = g.minus(&kill);
        assert_eq!(h.num_edges(), 2);
        assert!(!h.has_edge(0, 1));
    }

    #[test]
    fn weighted_graph_basics() {
        let g = WeightedGraph::from_edges(3, [(Edge::new(0, 1), 2.0), (Edge::new(1, 2), 3.0)]);
        assert_eq!(g.weight(0, 1), Some(2.0));
        assert_eq!(g.weight(1, 0), Some(2.0));
        assert_eq!(g.weight(0, 2), None);
        assert_eq!(g.weight_range(), Some((2.0, 3.0)));
        assert_eq!(g.skeleton().num_edges(), 2);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn nonpositive_weight_panics() {
        WeightedGraph::from_edges(2, [(Edge::new(0, 1), 0.0)]);
    }

    #[test]
    #[should_panic(expected = "duplicate edge")]
    fn duplicate_weighted_edge_panics() {
        WeightedGraph::from_edges(2, [(Edge::new(0, 1), 1.0), (Edge::new(1, 0), 2.0)]);
    }

    #[test]
    fn weight_range_empty_is_none() {
        assert_eq!(WeightedGraph::empty(3).weight_range(), None);
    }
}
