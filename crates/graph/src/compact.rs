//! The compacted update log: net edge multiplicities maintained
//! incrementally at ingest.
//!
//! A raw update log grows with *stream length* — every insert/delete
//! churn cycle leaves two updates behind forever, even though every
//! linear sketch (and every artifact derived from one) is a function of
//! the stream's **net edge multiset** alone. [`CompactedLog`] is the
//! write-side fix: a net-multiplicity edge map where an insertion and a
//! deletion of the same pair cancel on arrival, weights ride along, and
//! [`seal`](CompactedLog::seal) produces the canonical order-free
//! [`NetMultiset`] multi-pass artifacts rebuild from. State is O(current
//! edges), never O(stream length).
//!
//! Cancellation is only sound if multiplicities stay non-negative — the
//! dynamic-stream model's own precondition. The map therefore doubles as
//! the validator: [`check_batch`](CompactedLog::check_batch) simulates a
//! batch prefix-wise and rejects (typed, whole-batch-atomically) any
//! deletion that would drive a pair below zero, before anything reaches
//! a sketch.
//!
//! This module lives in `dsg-graph` (rather than the serving layer that
//! first needed it) because the map is pure stream semantics: the
//! sharded engine's per-shard segments, the service's epoch segments,
//! and the store's checkpoint segments are all [`CompactedLog`]s sealed
//! at different granularities.

use crate::ids::Edge;
use crate::multiset::{NetEdge, NetMultiset};
use crate::stream::StreamUpdate;
use std::collections::HashMap;

/// Why a batch was refused by the compacted log's validator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompactError {
    /// An update carried a delta outside ±1 — not a dynamic-stream
    /// update at all.
    InvalidDelta {
        /// The offending delta.
        delta: i8,
    },
    /// A deletion would drive some pair's net multiplicity below zero —
    /// outside the dynamic-stream model, and the one thing a compacted
    /// log cannot represent. The whole batch is rejected atomically.
    NegativeMultiplicity {
        /// The pair the deletion would over-delete.
        edge: Edge,
    },
}

impl std::fmt::Display for CompactError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompactError::InvalidDelta { delta } => {
                write!(f, "update delta {delta} is not ±1")
            }
            CompactError::NegativeMultiplicity { edge } => {
                write!(
                    f,
                    "deletion of {edge} would drive its net multiplicity below zero"
                )
            }
        }
    }
}

impl std::error::Error for CompactError {}

/// One live pair's tracked state.
#[derive(Debug, Clone, Copy)]
struct LiveEdge {
    /// Net multiplicity, strictly positive (zero entries are removed).
    multiplicity: u32,
    /// Weight of the last update that touched the pair (the model keeps
    /// this constant while a pair is live: deletions repeat their
    /// insertion's weight).
    weight: f64,
}

/// A net-multiplicity edge map maintained incrementally at ingest —
/// the write side of log compaction by linearity.
#[derive(Debug, Clone)]
pub struct CompactedLog {
    n: usize,
    live: HashMap<Edge, LiveEdge>,
}

impl CompactedLog {
    /// An empty compacted log over `n` vertices.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            live: HashMap::new(),
        }
    }

    /// Rebuilds the map from a sealed segment (the restore path).
    pub fn from_net(net: &NetMultiset) -> Self {
        let live = net
            .entries()
            .iter()
            .map(|e| {
                (
                    e.edge,
                    LiveEdge {
                        multiplicity: e.multiplicity,
                        weight: e.weight,
                    },
                )
            })
            .collect();
        Self {
            n: net.num_vertices(),
            live,
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of distinct live pairs — the O(graph) size everything
    /// downstream of the log is bounded by.
    pub fn live_edges(&self) -> usize {
        self.live.len()
    }

    /// The current net multiplicity of `edge` (0 if the pair is not
    /// live).
    pub fn multiplicity(&self, edge: Edge) -> u32 {
        self.live.get(&edge).map_or(0, |e| e.multiplicity)
    }

    /// Validates a whole batch against the current map without mutating
    /// it: every delta must be ±1 and no prefix of the batch may drive
    /// any pair's net multiplicity below zero. Callers run this before
    /// anything lands, so a bad batch never half-applies.
    ///
    /// # Errors
    ///
    /// [`CompactError::InvalidDelta`] for a delta outside ±1,
    /// [`CompactError::NegativeMultiplicity`] for a deletion below zero.
    pub fn check_batch(&self, updates: &[StreamUpdate]) -> Result<(), CompactError> {
        let mut offsets: HashMap<Edge, i64> = HashMap::new();
        for up in updates {
            if up.delta != 1 && up.delta != -1 {
                return Err(CompactError::InvalidDelta { delta: up.delta });
            }
            let off = offsets.entry(up.edge).or_insert(0);
            *off += up.delta as i64;
            let base = self.multiplicity(up.edge) as i64;
            if base + *off < 0 {
                return Err(CompactError::NegativeMultiplicity { edge: up.edge });
            }
        }
        Ok(())
    }

    /// Applies one (already validated) update: insertions and deletions
    /// of the same pair cancel, and a pair whose multiplicity returns to
    /// zero leaves the map entirely.
    pub fn apply(&mut self, up: &StreamUpdate) {
        debug_assert!(up.delta == 1 || up.delta == -1, "validated upstream");
        match self.live.entry(up.edge) {
            std::collections::hash_map::Entry::Occupied(mut o) => {
                let e = o.get_mut();
                if up.delta > 0 {
                    e.multiplicity += 1;
                    e.weight = up.weight;
                } else {
                    debug_assert!(e.multiplicity > 0, "validated upstream");
                    e.multiplicity -= 1;
                    if e.multiplicity == 0 {
                        o.remove();
                    } else {
                        e.weight = up.weight;
                    }
                }
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                debug_assert!(up.delta > 0, "validated upstream");
                v.insert(LiveEdge {
                    multiplicity: 1,
                    weight: up.weight,
                });
            }
        }
    }

    /// Seals the current state into the canonical order-free net edge
    /// segment — O(current edges), the epoch-advance cost of compaction.
    pub fn seal(&self) -> NetMultiset {
        let entries = self
            .live
            .iter()
            .map(|(&edge, e)| NetEdge {
                edge,
                weight: e.weight,
                multiplicity: e.multiplicity,
            })
            .collect();
        NetMultiset::from_entries(self.n, entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancellation_keeps_state_at_live_edges() {
        let mut log = CompactedLog::new(8);
        for _ in 0..100 {
            for up in [StreamUpdate::insert(0, 1), StreamUpdate::delete(0, 1)] {
                log.check_batch(std::slice::from_ref(&up)).unwrap();
                log.apply(&up);
            }
        }
        assert_eq!(log.live_edges(), 0);
        log.apply(&StreamUpdate::insert(2, 3));
        assert_eq!(log.live_edges(), 1);
        assert_eq!(log.multiplicity(Edge::new(2, 3)), 1);
        let net = log.seal();
        assert_eq!(net.num_edges(), 1);
        assert_eq!(net.entries()[0].edge, Edge::new(2, 3));
    }

    #[test]
    fn deletion_below_zero_is_guarded() {
        let log = CompactedLog::new(8);
        assert!(matches!(
            log.check_batch(&[StreamUpdate::delete(0, 1)]),
            Err(CompactError::NegativeMultiplicity { edge }) if edge == Edge::new(0, 1)
        ));
        // A batch may delete what it inserts, in order…
        log.check_batch(&[StreamUpdate::insert(0, 1), StreamUpdate::delete(0, 1)])
            .unwrap();
        // …but not the other way around (prefix-wise validation).
        assert!(matches!(
            log.check_batch(&[StreamUpdate::delete(0, 1), StreamUpdate::insert(0, 1)]),
            Err(CompactError::NegativeMultiplicity { .. })
        ));
    }

    #[test]
    fn weird_deltas_are_rejected() {
        let log = CompactedLog::new(4);
        let mut up = StreamUpdate::insert(0, 1);
        up.delta = 0;
        assert!(matches!(
            log.check_batch(&[up]),
            Err(CompactError::InvalidDelta { delta: 0 })
        ));
    }

    #[test]
    fn seal_roundtrips_through_from_net() {
        let mut log = CompactedLog::new(10);
        for up in [
            StreamUpdate::insert(0, 1),
            StreamUpdate::insert(0, 1),
            StreamUpdate::insert(4, 7),
            StreamUpdate::delete(0, 1),
        ] {
            log.apply(&up);
        }
        let net = log.seal();
        let back = CompactedLog::from_net(&net);
        assert_eq!(back.seal(), net);
        assert_eq!(back.live_edges(), 2);
        assert_eq!(back.multiplicity(Edge::new(0, 1)), 1);
    }
}
