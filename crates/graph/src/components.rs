//! Union–find and connected components.
//!
//! The verification targets for the AGM spanning-forest sketch (Theorem 10):
//! a correct forest must connect exactly the pairs connected in the input
//! graph.

use crate::graph::Graph;
use crate::ids::{Edge, Vertex};

/// Disjoint-set union with path compression and union by rank.
///
/// # Examples
///
/// ```
/// use dsg_graph::components::UnionFind;
///
/// let mut uf = UnionFind::new(4);
/// assert!(uf.union(0, 1));
/// assert!(!uf.union(1, 0)); // already joined
/// assert!(uf.connected(0, 1));
/// assert_eq!(uf.num_components(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
    components: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        Self {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
            components: n,
        }
    }

    /// The representative of `x`'s set.
    pub fn find(&mut self, x: Vertex) -> Vertex {
        let mut root = x;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        // Path compression.
        let mut cur = x;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root
    }

    /// Joins the sets of `a` and `b`; returns whether they were distinct.
    pub fn union(&mut self, a: Vertex, b: Vertex) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (hi, lo) = if self.rank[ra as usize] >= self.rank[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo as usize] = hi;
        if self.rank[hi as usize] == self.rank[lo as usize] {
            self.rank[hi as usize] += 1;
        }
        self.components -= 1;
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn connected(&mut self, a: Vertex, b: Vertex) -> bool {
        self.find(a) == self.find(b)
    }

    /// Current number of disjoint sets.
    pub fn num_components(&self) -> usize {
        self.components
    }
}

/// Labels each vertex with a component id (the smallest vertex in its
/// component).
pub fn connected_components(g: &Graph) -> Vec<Vertex> {
    let mut uf = UnionFind::new(g.num_vertices());
    for e in g.edges() {
        uf.union(e.u(), e.v());
    }
    let n = g.num_vertices();
    let mut label = vec![0 as Vertex; n];
    let mut smallest = vec![Vertex::MAX; n];
    for v in 0..n as Vertex {
        let r = uf.find(v) as usize;
        if smallest[r] == Vertex::MAX {
            smallest[r] = v;
        }
        label[v as usize] = smallest[r];
    }
    label
}

/// Number of connected components.
pub fn num_components(g: &Graph) -> usize {
    let mut uf = UnionFind::new(g.num_vertices());
    for e in g.edges() {
        uf.union(e.u(), e.v());
    }
    uf.num_components()
}

/// Checks that `forest` is a spanning forest of `g`: acyclic, a subgraph of
/// `g`, and connecting exactly the pairs `g` connects.
pub fn is_spanning_forest(g: &Graph, forest: &[Edge]) -> bool {
    let edge_set = g.edge_set();
    let mut uf = UnionFind::new(g.num_vertices());
    for e in forest {
        if !edge_set.contains(e) {
            return false; // not a subgraph
        }
        if !uf.union(e.u(), e.v()) {
            return false; // cycle
        }
    }
    // Same connectivity relation as g: every g-edge's endpoints must be
    // joined by the forest (the converse holds because the forest is a
    // subgraph).
    let mut forest_uf = UnionFind::new(g.num_vertices());
    for e in forest {
        forest_uf.union(e.u(), e.v());
    }
    for e in g.edges() {
        if !forest_uf.connected(e.u(), e.v()) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn union_find_components() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.num_components(), 5);
        uf.union(0, 1);
        uf.union(2, 3);
        assert_eq!(uf.num_components(), 3);
        assert!(uf.connected(1, 0));
        assert!(!uf.connected(0, 2));
        uf.union(1, 3);
        assert!(uf.connected(0, 2));
    }

    #[test]
    fn component_labels() {
        let g = Graph::from_edges(5, [Edge::new(0, 1), Edge::new(3, 4)]);
        let labels = connected_components(&g);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[3], labels[4]);
        assert_ne!(labels[0], labels[3]);
        assert_eq!(labels[2], 2);
        assert_eq!(num_components(&g), 3);
    }

    #[test]
    fn spanning_forest_accepts_tree() {
        let g = gen::cycle(5);
        // Remove one edge of the cycle: a valid spanning tree.
        let forest: Vec<Edge> = g.edges()[1..].to_vec();
        assert!(is_spanning_forest(&g, &forest));
    }

    #[test]
    fn spanning_forest_rejects_cycle() {
        let g = gen::cycle(5);
        assert!(!is_spanning_forest(&g, g.edges()));
    }

    #[test]
    fn spanning_forest_rejects_disconnecting() {
        let g = gen::path(4);
        let forest = vec![Edge::new(0, 1)]; // leaves 2,3 disconnected
        assert!(!is_spanning_forest(&g, &forest));
    }

    #[test]
    fn spanning_forest_rejects_non_subgraph() {
        let g = gen::path(4);
        let forest = vec![Edge::new(0, 3)];
        assert!(!is_spanning_forest(&g, &forest));
    }

    #[test]
    fn forest_of_disconnected_graph() {
        let g = Graph::from_edges(6, [Edge::new(0, 1), Edge::new(1, 2), Edge::new(4, 5)]);
        let forest = vec![Edge::new(0, 1), Edge::new(1, 2), Edge::new(4, 5)];
        assert!(is_spanning_forest(&g, &forest));
    }
}
