//! The multi-pass streaming driver.
//!
//! A streaming algorithm sees the same update sequence once per pass and
//! may keep only its sketch state between updates. The driver enforces the
//! discipline; algorithms expose how many passes they need (the paper's
//! headline results are 1-pass and 2-pass).

use crate::stream::{GraphStream, StreamUpdate};

/// A streaming algorithm processing a dynamic stream in one or more passes.
///
/// # Examples
///
/// ```
/// use dsg_graph::{gen, GraphStream, StreamAlgorithm, StreamUpdate};
///
/// /// Counts net edges in two passes (trivially).
/// struct Counter { passes_seen: usize, net: i64 }
/// impl StreamAlgorithm for Counter {
///     fn num_passes(&self) -> usize { 2 }
///     fn begin_pass(&mut self, _pass: usize) {}
///     fn process(&mut self, up: &StreamUpdate) { self.net += up.delta as i64; }
///     fn end_pass(&mut self, _pass: usize) { self.passes_seen += 1; }
/// }
///
/// let g = gen::cycle(5);
/// let stream = GraphStream::insert_only(&g, 1);
/// let mut alg = Counter { passes_seen: 0, net: 0 };
/// dsg_graph::pass::run(&mut alg, &stream);
/// assert_eq!(alg.passes_seen, 2);
/// assert_eq!(alg.net, 10); // 5 edges × 2 passes
/// ```
pub trait StreamAlgorithm {
    /// How many passes over the stream this algorithm requires.
    fn num_passes(&self) -> usize;

    /// Called before each pass (0-indexed).
    fn begin_pass(&mut self, pass: usize);

    /// Called once per update within the current pass.
    fn process(&mut self, update: &StreamUpdate);

    /// Called after each pass; post-pass computation (e.g. Algorithm 1's
    /// cluster construction "after the first pass") belongs here.
    fn end_pass(&mut self, pass: usize);
}

/// Drives `alg` over `stream` for `alg.num_passes()` passes.
pub fn run<A: StreamAlgorithm + ?Sized>(alg: &mut A, stream: &GraphStream) {
    for pass in 0..alg.num_passes() {
        alg.begin_pass(pass);
        for update in stream.updates() {
            alg.process(update);
        }
        alg.end_pass(pass);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    struct Recorder {
        begins: Vec<usize>,
        ends: Vec<usize>,
        per_pass_updates: Vec<usize>,
    }

    impl StreamAlgorithm for Recorder {
        fn num_passes(&self) -> usize {
            3
        }
        fn begin_pass(&mut self, pass: usize) {
            self.begins.push(pass);
            self.per_pass_updates.push(0);
        }
        fn process(&mut self, _update: &StreamUpdate) {
            *self.per_pass_updates.last_mut().unwrap() += 1;
        }
        fn end_pass(&mut self, pass: usize) {
            self.ends.push(pass);
        }
    }

    #[test]
    fn driver_runs_declared_passes_in_order() {
        let g = gen::path(6);
        let stream = GraphStream::with_churn(&g, 1.0, 3);
        let mut alg = Recorder {
            begins: vec![],
            ends: vec![],
            per_pass_updates: vec![],
        };
        run(&mut alg, &stream);
        assert_eq!(alg.begins, vec![0, 1, 2]);
        assert_eq!(alg.ends, vec![0, 1, 2]);
        assert!(alg.per_pass_updates.iter().all(|&c| c == stream.len()));
    }
}
