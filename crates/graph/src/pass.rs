//! The multi-pass streaming driver.
//!
//! A streaming algorithm sees the same update sequence once per pass and
//! may keep only its sketch state between updates. The driver enforces the
//! discipline; algorithms expose how many passes they need (the paper's
//! headline results are 1-pass and 2-pass).

use crate::stream::{GraphStream, StreamUpdate};

/// A streaming algorithm processing a dynamic stream in one or more passes.
///
/// # Examples
///
/// ```
/// use dsg_graph::{gen, GraphStream, StreamAlgorithm, StreamUpdate};
///
/// /// Counts net edges in two passes (trivially).
/// struct Counter { passes_seen: usize, net: i64 }
/// impl StreamAlgorithm for Counter {
///     fn num_passes(&self) -> usize { 2 }
///     fn begin_pass(&mut self, _pass: usize) {}
///     fn process(&mut self, up: &StreamUpdate) { self.net += up.delta as i64; }
///     fn end_pass(&mut self, _pass: usize) { self.passes_seen += 1; }
/// }
///
/// let g = gen::cycle(5);
/// let stream = GraphStream::insert_only(&g, 1);
/// let mut alg = Counter { passes_seen: 0, net: 0 };
/// dsg_graph::pass::run(&mut alg, &stream);
/// assert_eq!(alg.passes_seen, 2);
/// assert_eq!(alg.net, 10); // 5 edges × 2 passes
/// ```
pub trait StreamAlgorithm {
    /// How many passes over the stream this algorithm requires.
    fn num_passes(&self) -> usize;

    /// Called before each pass (0-indexed).
    fn begin_pass(&mut self, pass: usize);

    /// Called once per update within the current pass.
    fn process(&mut self, update: &StreamUpdate);

    /// Called after each pass; post-pass computation (e.g. Algorithm 1's
    /// cluster construction "after the first pass") belongs here.
    fn end_pass(&mut self, pass: usize);
}

/// Drives `alg` over `stream` for `alg.num_passes()` passes.
pub fn run<A: StreamAlgorithm + ?Sized>(alg: &mut A, stream: &GraphStream) {
    for pass in 0..alg.num_passes() {
        alg.begin_pass(pass);
        for update in stream.updates() {
            alg.process(update);
        }
        alg.end_pass(pass);
    }
}

/// Drives `alg` over a **net edge multiset** instead of a raw stream:
/// each pass visits every net edge once, feeding one `+1` update per unit
/// of multiplicity. For an algorithm whose per-pass stream-facing state
/// is linear (every algorithm in this workspace), the resulting state —
/// and therefore the output — is bit-identical to a raw-stream replay
/// with the same net effect, at O(current edges) per pass instead of
/// O(stream length).
pub fn run_multiset<A, M>(alg: &mut A, view: &M)
where
    A: StreamAlgorithm + ?Sized,
    M: crate::multiset::EdgeMultiset + ?Sized,
{
    for pass in 0..alg.num_passes() {
        alg.begin_pass(pass);
        view.for_each_net_edge(&mut |e| {
            let up = StreamUpdate {
                edge: e.edge,
                delta: 1,
                weight: e.weight,
            };
            for _ in 0..e.multiplicity {
                alg.process(&up);
            }
        });
        alg.end_pass(pass);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    struct Recorder {
        begins: Vec<usize>,
        ends: Vec<usize>,
        per_pass_updates: Vec<usize>,
    }

    impl StreamAlgorithm for Recorder {
        fn num_passes(&self) -> usize {
            3
        }
        fn begin_pass(&mut self, pass: usize) {
            self.begins.push(pass);
            self.per_pass_updates.push(0);
        }
        fn process(&mut self, _update: &StreamUpdate) {
            *self.per_pass_updates.last_mut().unwrap() += 1;
        }
        fn end_pass(&mut self, pass: usize) {
            self.ends.push(pass);
        }
    }

    #[test]
    fn multiset_driver_feeds_net_updates() {
        let g = gen::path(6);
        let stream = GraphStream::with_churn(&g, 2.0, 9);
        let net = stream.net_multiset();
        let mut alg = Recorder {
            begins: vec![],
            ends: vec![],
            per_pass_updates: vec![],
        };
        run_multiset(&mut alg, &net);
        assert_eq!(alg.begins, vec![0, 1, 2]);
        assert_eq!(alg.ends, vec![0, 1, 2]);
        // The compacted pass touches net edges only, not churn.
        assert!(alg
            .per_pass_updates
            .iter()
            .all(|&c| c == g.num_edges() && c < stream.len()));
    }

    #[test]
    fn driver_runs_declared_passes_in_order() {
        let g = gen::path(6);
        let stream = GraphStream::with_churn(&g, 1.0, 3);
        let mut alg = Recorder {
            begins: vec![],
            ends: vec![],
            per_pass_updates: vec![],
        };
        run(&mut alg, &stream);
        assert_eq!(alg.begins, vec![0, 1, 2]);
        assert_eq!(alg.ends, vec![0, 1, 2]);
        assert!(alg.per_pass_updates.iter().all(|&c| c == stream.len()));
    }
}
