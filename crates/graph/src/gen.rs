//! Seeded graph generators.
//!
//! All generators are deterministic functions of their seed, so every
//! experiment row in `EXPERIMENTS.md` can be regenerated exactly.

use crate::graph::{Graph, WeightedGraph};
use crate::ids::{index_to_pair, num_pairs, Edge, Vertex};
use dsg_hash::SplitMix64;

/// Erdős–Rényi `G(n, p)`: each of the `C(n,2)` pairs independently.
///
/// # Panics
///
/// Panics if `p` is not in `[0, 1]`.
///
/// # Examples
///
/// ```
/// let g = dsg_graph::gen::erdos_renyi(50, 0.1, 7);
/// assert_eq!(g.num_vertices(), 50);
/// ```
pub fn erdos_renyi(n: usize, p: f64, seed: u64) -> Graph {
    assert!((0.0..=1.0).contains(&p), "p {p} outside [0, 1]");
    let mut rng = SplitMix64::new(seed);
    let mut edges = Vec::new();
    for u in 0..n as Vertex {
        for v in (u + 1)..n as Vertex {
            if rng.next_f64() < p {
                edges.push(Edge::new(u, v));
            }
        }
    }
    Graph::from_edges(n, edges)
}

/// Uniform `G(n, m)`: exactly `m` distinct edges.
///
/// # Panics
///
/// Panics if `m > C(n,2)`.
pub fn gnm(n: usize, m: usize, seed: u64) -> Graph {
    assert!(m as u64 <= num_pairs(n), "m={m} exceeds C({n},2)");
    let mut rng = SplitMix64::new(seed);
    let mut set = std::collections::HashSet::with_capacity(m);
    while set.len() < m {
        let idx = rng.next_below(num_pairs(n));
        set.insert(idx);
    }
    Graph::from_edges(
        n,
        set.into_iter().map(|i| {
            let (u, v) = index_to_pair(i, n);
            Edge::new(u, v)
        }),
    )
}

/// Path `0 - 1 - … - (n-1)`.
pub fn path(n: usize) -> Graph {
    Graph::from_edges(
        n,
        (0..n.saturating_sub(1)).map(|i| Edge::new(i as Vertex, i as Vertex + 1)),
    )
}

/// Cycle on `n >= 3` vertices.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "a cycle needs at least 3 vertices");
    let mut edges: Vec<Edge> = (0..n - 1)
        .map(|i| Edge::new(i as Vertex, i as Vertex + 1))
        .collect();
    edges.push(Edge::new(0, (n - 1) as Vertex));
    Graph::from_edges(n, edges)
}

/// `rows × cols` grid.
///
/// # Panics
///
/// Panics if either dimension is zero.
pub fn grid(rows: usize, cols: usize) -> Graph {
    assert!(rows > 0 && cols > 0, "grid dimensions must be positive");
    let id = |r: usize, c: usize| (r * cols + c) as Vertex;
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                edges.push(Edge::new(id(r, c), id(r, c + 1)));
            }
            if r + 1 < rows {
                edges.push(Edge::new(id(r, c), id(r + 1, c)));
            }
        }
    }
    Graph::from_edges(rows * cols, edges)
}

/// Star: vertex 0 joined to all others.
pub fn star(n: usize) -> Graph {
    Graph::from_edges(n, (1..n).map(|i| Edge::new(0, i as Vertex)))
}

/// Complete graph `K_n`.
pub fn complete(n: usize) -> Graph {
    let mut edges = Vec::new();
    for u in 0..n as Vertex {
        for v in (u + 1)..n as Vertex {
            edges.push(Edge::new(u, v));
        }
    }
    Graph::from_edges(n, edges)
}

/// Barbell: two `K_{cliques}` joined by a path of `bridge` edges.
///
/// A classic hard case for spectral methods — the bridge edges have high
/// effective resistance and must survive sparsification.
///
/// # Panics
///
/// Panics if `clique < 2`.
pub fn barbell(clique: usize, bridge: usize) -> Graph {
    assert!(clique >= 2, "cliques need at least 2 vertices");
    let n = 2 * clique + bridge.saturating_sub(1);
    let mut edges = Vec::new();
    // Left clique on 0..clique.
    for u in 0..clique {
        for v in (u + 1)..clique {
            edges.push(Edge::new(u as Vertex, v as Vertex));
        }
    }
    // Right clique on the last `clique` vertices.
    let right0 = clique + bridge.saturating_sub(1);
    for u in 0..clique {
        for v in (u + 1)..clique {
            edges.push(Edge::new((right0 + u) as Vertex, (right0 + v) as Vertex));
        }
    }
    // Bridge path from vertex clique-1 to vertex right0.
    let mut prev = clique - 1;
    for b in 0..bridge {
        let next = if b + 1 == bridge { right0 } else { clique + b };
        edges.push(Edge::new(prev as Vertex, next as Vertex));
        prev = next;
    }
    Graph::from_edges(n.max(right0 + clique), edges)
}

/// Chung–Lu power-law graph: vertex `i` has target weight `∝ (i+1)^{-1/(β-1)}`.
///
/// Produces heavy-tailed degree sequences like social networks — the
/// motivating workload of the paper's introduction.
///
/// # Panics
///
/// Panics if `beta <= 1`.
pub fn power_law(n: usize, beta: f64, avg_degree: f64, seed: u64) -> Graph {
    assert!(beta > 1.0, "beta must exceed 1");
    let mut rng = SplitMix64::new(seed);
    let exponent = -1.0 / (beta - 1.0);
    let weights: Vec<f64> = (0..n).map(|i| ((i + 1) as f64).powf(exponent)).collect();
    let wsum: f64 = weights.iter().sum();
    // Scale so the expected average degree is as requested.
    let scale = avg_degree * n as f64 / (wsum * wsum);
    let mut edges = Vec::new();
    for u in 0..n {
        for v in (u + 1)..n {
            let p = (weights[u] * weights[v] * scale).min(1.0);
            if rng.next_f64() < p {
                edges.push(Edge::new(u as Vertex, v as Vertex));
            }
        }
    }
    Graph::from_edges(n, edges)
}

/// The Theorem-4 hard instance: `blocks` disjoint `G(d, 1/2)` graphs, plus
/// Bob's chaining path connecting a designated pair `(U_ℓ, V_ℓ)` per block.
///
/// Returns the graph and the designated pairs (one per block).
pub fn lower_bound_instance(blocks: usize, d: usize, seed: u64) -> (Graph, Vec<(Vertex, Vertex)>) {
    assert!(d >= 2, "blocks need at least 2 vertices");
    let mut rng = SplitMix64::new(seed);
    let n = blocks * d;
    let mut edges = Vec::new();
    let mut pairs = Vec::with_capacity(blocks);
    for b in 0..blocks {
        let base = (b * d) as Vertex;
        for u in 0..d as Vertex {
            for v in (u + 1)..d as Vertex {
                if rng.next_u64() & 1 == 1 {
                    edges.push(Edge::new(base + u, base + v));
                }
            }
        }
        // Bob's uniformly random distinct pair in this block.
        let u = rng.next_below(d as u64) as Vertex;
        let mut v = rng.next_below(d as u64) as Vertex;
        while v == u {
            v = rng.next_below(d as u64) as Vertex;
        }
        pairs.push((base + u, base + v));
    }
    // Chain: V_b -- U_{b+1}.
    for b in 0..blocks.saturating_sub(1) {
        edges.push(Edge::new(pairs[b].1, pairs[b + 1].0));
    }
    (Graph::from_edges(n, edges), pairs)
}

/// Assigns seeded random weights in `[w_min, w_max]` (log-uniform) to a
/// graph's edges.
///
/// # Panics
///
/// Panics if the range is invalid or non-positive.
pub fn with_random_weights(g: &Graph, w_min: f64, w_max: f64, seed: u64) -> WeightedGraph {
    assert!(
        w_min > 0.0 && w_max >= w_min,
        "invalid weight range [{w_min}, {w_max}]"
    );
    let mut rng = SplitMix64::new(seed);
    let (lo, hi) = (w_min.ln(), w_max.ln());
    WeightedGraph::from_edges(
        g.num_vertices(),
        g.edges()
            .iter()
            .map(|&e| (e, (lo + rng.next_f64() * (hi - lo)).exp())),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::connected_components;

    #[test]
    fn erdos_renyi_edge_count_concentrates() {
        let n = 100;
        let p = 0.2;
        let g = erdos_renyi(n, p, 1);
        let expect = p * num_pairs(n) as f64;
        assert!((g.num_edges() as f64 - expect).abs() < 5.0 * expect.sqrt());
    }

    #[test]
    fn erdos_renyi_deterministic() {
        assert_eq!(erdos_renyi(30, 0.3, 5), erdos_renyi(30, 0.3, 5));
        assert_ne!(erdos_renyi(30, 0.3, 5), erdos_renyi(30, 0.3, 6));
    }

    #[test]
    fn gnm_exact_count() {
        let g = gnm(20, 50, 3);
        assert_eq!(g.num_edges(), 50);
    }

    #[test]
    fn path_cycle_shapes() {
        assert_eq!(path(10).num_edges(), 9);
        assert_eq!(cycle(10).num_edges(), 10);
        assert_eq!(path(1).num_edges(), 0);
    }

    #[test]
    fn grid_shape() {
        let g = grid(3, 4);
        assert_eq!(g.num_vertices(), 12);
        assert_eq!(g.num_edges(), 3 * 3 + 2 * 4); // horizontal + vertical
    }

    #[test]
    fn star_and_complete() {
        assert_eq!(star(10).num_edges(), 9);
        assert_eq!(complete(10).num_edges(), 45);
        assert_eq!(star(10).adjacency().degree(0), 9);
    }

    #[test]
    fn barbell_connected_with_long_distance() {
        let g = barbell(10, 5);
        let labels = connected_components(&g);
        assert!(
            labels.iter().all(|&c| c == labels[0]),
            "barbell must be connected"
        );
        let dist = crate::bfs::bfs_distances(&g.adjacency(), 0);
        let far = *dist.iter().max().unwrap();
        assert!(far >= 6, "far={far}");
    }

    #[test]
    fn power_law_has_heavy_head() {
        let g = power_law(200, 2.5, 8.0, 9);
        let adj = g.adjacency();
        let max_deg = (0..200).map(|u| adj.degree(u)).max().unwrap();
        let avg = 2.0 * g.num_edges() as f64 / 200.0;
        assert!(max_deg as f64 > 2.5 * avg, "max={max_deg}, avg={avg}");
    }

    #[test]
    fn lower_bound_instance_shape() {
        let (g, pairs) = lower_bound_instance(6, 10, 4);
        assert_eq!(g.num_vertices(), 60);
        assert_eq!(pairs.len(), 6);
        // Blocks + chain must be connected as one component whp.
        let labels = connected_components(&g);
        let first = labels[pairs[0].0 as usize];
        for (u, v) in &pairs {
            assert_eq!(labels[*u as usize], first);
            assert_eq!(labels[*v as usize], first);
        }
        // Each designated pair lives inside one block.
        for (b, (u, v)) in pairs.iter().enumerate() {
            assert_eq!(*u as usize / 10, b);
            assert_eq!(*v as usize / 10, b);
            assert_ne!(u, v);
        }
    }

    #[test]
    fn random_weights_in_range() {
        let g = cycle(20);
        let wg = with_random_weights(&g, 0.5, 8.0, 2);
        let (lo, hi) = wg.weight_range().unwrap();
        assert!(lo >= 0.5 && hi <= 8.0);
        assert_eq!(wg.num_edges(), 20);
    }
}
