//! Breadth-first shortest paths for unweighted graphs.
//!
//! Used to measure spanner stretch (Lemma 13: `d_H(u,v) <= 2^k · d_G(u,v)`)
//! and additive distortion (Theorem 19: `d_H <= d_G + O(n/d)`).

use crate::graph::Adjacency;
use crate::ids::Vertex;
use std::collections::VecDeque;

/// Distance label for unreachable vertices.
pub const UNREACHABLE: u32 = u32::MAX;

/// Single-source BFS distances; unreachable vertices get [`UNREACHABLE`].
///
/// # Examples
///
/// ```
/// use dsg_graph::{gen, bfs};
///
/// let g = gen::path(5);
/// let d = bfs::bfs_distances(&g.adjacency(), 0);
/// assert_eq!(d, vec![0, 1, 2, 3, 4]);
/// ```
pub fn bfs_distances(adj: &Adjacency, src: Vertex) -> Vec<u32> {
    let n = adj.num_vertices();
    let mut dist = vec![UNREACHABLE; n];
    let mut queue = VecDeque::new();
    dist[src as usize] = 0;
    queue.push_back(src);
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        for &w in adj.neighbors(u) {
            if dist[w as usize] == UNREACHABLE {
                dist[w as usize] = du + 1;
                queue.push_back(w);
            }
        }
    }
    dist
}

/// BFS truncated at `radius`: vertices farther than `radius` keep
/// [`UNREACHABLE`]. Used by the `ESTIMATE` oracle queries, which only need
/// to distinguish `d(u,v) > ρλ` from `d(u,v) <= ρλ`.
pub fn bfs_distances_bounded(adj: &Adjacency, src: Vertex, radius: u32) -> Vec<u32> {
    let n = adj.num_vertices();
    let mut dist = vec![UNREACHABLE; n];
    let mut queue = VecDeque::new();
    dist[src as usize] = 0;
    queue.push_back(src);
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        if du == radius {
            continue;
        }
        for &w in adj.neighbors(u) {
            if dist[w as usize] == UNREACHABLE {
                dist[w as usize] = du + 1;
                queue.push_back(w);
            }
        }
    }
    dist
}

/// All-pairs shortest paths by repeated BFS. Quadratic memory — intended
/// for verification at experiment scales.
pub fn apsp(adj: &Adjacency) -> Vec<Vec<u32>> {
    (0..adj.num_vertices() as Vertex)
        .map(|s| bfs_distances(adj, s))
        .collect()
}

/// The eccentricity-based diameter of the component containing `src`
/// (maximum finite distance from `src`).
pub fn eccentricity(adj: &Adjacency, src: Vertex) -> u32 {
    bfs_distances(adj, src)
        .into_iter()
        .filter(|&d| d != UNREACHABLE)
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::graph::Graph;
    use crate::ids::Edge;

    #[test]
    fn distances_on_cycle() {
        let g = gen::cycle(6);
        let d = bfs_distances(&g.adjacency(), 0);
        assert_eq!(d, vec![0, 1, 2, 3, 2, 1]);
    }

    #[test]
    fn unreachable_marked() {
        let g = Graph::from_edges(4, [Edge::new(0, 1)]);
        let d = bfs_distances(&g.adjacency(), 0);
        assert_eq!(d[1], 1);
        assert_eq!(d[2], UNREACHABLE);
        assert_eq!(d[3], UNREACHABLE);
    }

    #[test]
    fn bounded_bfs_truncates() {
        let g = gen::path(10);
        let d = bfs_distances_bounded(&g.adjacency(), 0, 3);
        assert_eq!(d[3], 3);
        assert_eq!(d[4], UNREACHABLE);
    }

    #[test]
    fn bounded_radius_zero_is_source_only() {
        let g = gen::path(5);
        let d = bfs_distances_bounded(&g.adjacency(), 2, 0);
        assert_eq!(d[2], 0);
        assert!(d.iter().filter(|&&x| x != UNREACHABLE).count() == 1);
    }

    #[test]
    fn apsp_symmetric() {
        let g = gen::grid(4, 4);
        let all = apsp(&g.adjacency());
        for (u, row) in all.iter().enumerate() {
            for (v, &d) in row.iter().enumerate() {
                assert_eq!(d, all[v][u]);
            }
        }
        assert_eq!(all[0][15], 6); // manhattan distance corner-to-corner
    }

    #[test]
    fn eccentricity_of_path_end() {
        let g = gen::path(8);
        assert_eq!(eccentricity(&g.adjacency(), 0), 7);
        assert_eq!(eccentricity(&g.adjacency(), 4), 4);
    }
}
