//! Property tests for the graph substrate: codec bijections, stream
//! invariants, and algorithm cross-checks.

use dsg_graph::bfs::{bfs_distances, UNREACHABLE};
use dsg_graph::components::{num_components, UnionFind};
use dsg_graph::dijkstra::{dijkstra_distances, WeightedAdjacency};
use dsg_graph::{gen, index_to_pair, pair_to_index, Edge, Graph, GraphStream, WeightedGraph};
use proptest::prelude::*;

proptest! {
    #[test]
    fn pair_index_roundtrip(n in 2usize..500, idx_frac in 0.0f64..1.0) {
        let pairs = dsg_graph::ids::num_pairs(n);
        let idx = ((pairs as f64 - 1.0) * idx_frac) as u64;
        let (u, v) = index_to_pair(idx, n);
        prop_assert!(u < v);
        prop_assert!((v as usize) < n);
        prop_assert_eq!(pair_to_index(u, v, n), idx);
    }

    #[test]
    fn pair_index_is_monotone_in_rows(n in 3usize..100) {
        // Coordinates are row-major: (0,1) < (0,2) < … < (1,2) < …
        let mut prev = None;
        for u in 0..(n as u32).min(10) {
            for v in (u + 1)..(n as u32) {
                let idx = pair_to_index(u, v, n);
                if let Some(p) = prev {
                    prop_assert!(idx == p + 1, "gap at ({u},{v})");
                }
                prev = Some(idx);
            }
        }
    }

    #[test]
    fn stream_final_graph_invariant(n in 5usize..60, p in 0.05f64..0.5, churn in 0.0f64..3.0, seed in 0u64..500) {
        let g = gen::erdos_renyi(n, p, seed);
        let stream = GraphStream::with_churn(&g, churn, seed ^ 0xFF);
        prop_assert_eq!(stream.final_graph(), g);
    }

    #[test]
    fn stream_prefix_multiplicities_nonnegative(n in 5usize..40, seed in 0u64..200) {
        let g = gen::erdos_renyi(n, 0.2, seed);
        let stream = GraphStream::with_churn(&g, 2.0, seed ^ 0xAA);
        let mut mult = std::collections::HashMap::new();
        for up in stream.updates() {
            let m = mult.entry(up.edge).or_insert(0i64);
            *m += up.delta as i64;
            prop_assert!(*m >= 0);
        }
    }

    #[test]
    fn bfs_satisfies_triangle_steps(n in 5usize..60, p in 0.05f64..0.4, seed in 0u64..200) {
        // Adjacent vertices differ by at most 1 in BFS distance.
        let g = gen::erdos_renyi(n, p, seed);
        let adj = g.adjacency();
        let d = bfs_distances(&adj, 0);
        for e in g.edges() {
            let (du, dv) = (d[e.u() as usize], d[e.v() as usize]);
            if du != UNREACHABLE && dv != UNREACHABLE {
                prop_assert!(du.abs_diff(dv) <= 1, "edge {e}: {du} vs {dv}");
            } else {
                prop_assert_eq!(du, dv); // same component or both unreachable
            }
        }
    }

    #[test]
    fn dijkstra_matches_bfs_on_unit_weights(n in 5usize..40, p in 0.1f64..0.4, seed in 0u64..100) {
        let g = gen::erdos_renyi(n, p, seed);
        let wg = WeightedGraph::from_edges(n, g.edges().iter().map(|&e| (e, 1.0)));
        let bd = bfs_distances(&g.adjacency(), 0);
        let dd = dijkstra_distances(&WeightedAdjacency::new(&wg), 0);
        for v in 0..n {
            if bd[v] == UNREACHABLE {
                prop_assert!(dd[v].is_infinite());
            } else {
                prop_assert_eq!(dd[v] as u32, bd[v]);
            }
        }
    }

    #[test]
    fn union_find_agrees_with_bfs_reachability(n in 4usize..50, p in 0.02f64..0.3, seed in 0u64..100) {
        let g = gen::erdos_renyi(n, p, seed);
        let mut uf = UnionFind::new(n);
        for e in g.edges() {
            uf.union(e.u(), e.v());
        }
        let d = bfs_distances(&g.adjacency(), 0);
        for v in 0..n as u32 {
            prop_assert_eq!(uf.connected(0, v), d[v as usize] != UNREACHABLE);
        }
    }

    #[test]
    fn generators_respect_bounds(n in 2usize..80, seed in 0u64..100) {
        let m_max = n * (n - 1) / 2;
        let g = gen::gnm(n, m_max.min(3 * n), seed);
        prop_assert_eq!(g.num_edges(), m_max.min(3 * n));
        for e in g.edges() {
            prop_assert!((e.v() as usize) < n);
        }
    }

    #[test]
    fn minus_is_set_difference(n in 4usize..40, seed in 0u64..100) {
        let g = gen::erdos_renyi(n, 0.3, seed);
        let kill: std::collections::HashSet<Edge> =
            g.edges().iter().step_by(3).copied().collect();
        let h = g.minus(&kill);
        prop_assert_eq!(h.num_edges(), g.num_edges() - kill.len());
        for e in h.edges() {
            prop_assert!(!kill.contains(e));
        }
    }

    #[test]
    fn components_monotone_under_edge_addition(n in 4usize..40, seed in 0u64..100) {
        let g = gen::erdos_renyi(n, 0.1, seed);
        let mut edges = g.edges().to_vec();
        let before = num_components(&g);
        // Add one more non-edge if any exists.
        'outer: for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                if !g.has_edge(u, v) {
                    edges.push(Edge::new(u, v));
                    break 'outer;
                }
            }
        }
        let h = Graph::from_edges(n, edges);
        prop_assert!(num_components(&h) <= before);
    }
}

// ---- Segment-delta properties (`NetMultiset::diff` / `apply_delta`) ----
//
// Two epochs of one evolving stream give a (prev, cur) segment pair; the
// delta between them must be exact: empty on self-diff, invertible via
// `apply_delta`, and exactly the symmetric difference in size.

proptest! {
    #[test]
    fn diff_of_a_segment_with_itself_is_empty(n in 5usize..50, seed in 0u64..200) {
        let g = gen::erdos_renyi(n, 0.2, seed);
        let net = GraphStream::with_churn(&g, 1.5, seed ^ 0x55).net_multiset();
        let d = net.diff(&net.clone());
        prop_assert!(d.is_empty());
        prop_assert_eq!(net.apply_delta(&d), net);
    }

    #[test]
    fn apply_delta_reconstructs_cur(
        n in 5usize..40,
        p in 0.05f64..0.4,
        churn in 0.0f64..2.0,
        seed in 0u64..200,
    ) {
        // Two independent live graphs play "before" and "after" an epoch.
        let prev = GraphStream::with_churn(&gen::erdos_renyi(n, p, seed), churn, seed)
            .net_multiset();
        let cur = GraphStream::with_churn(&gen::erdos_renyi(n, p, seed ^ 0x1), churn, seed ^ 0x2)
            .net_multiset();
        let d = cur.diff(&prev);
        prop_assert_eq!(prev.apply_delta(&d), cur);
        // And backwards: the reverse delta reconstructs prev.
        prop_assert_eq!(cur.apply_delta(&prev.diff(&cur)), prev);
    }

    #[test]
    fn diff_size_is_the_symmetric_difference(
        n in 5usize..40,
        p in 0.05f64..0.4,
        seed in 0u64..200,
    ) {
        let a = GraphStream::insert_only(&gen::erdos_renyi(n, p, seed), seed).net_multiset();
        let b = GraphStream::insert_only(&gen::erdos_renyi(n, p, seed ^ 0x9), seed).net_multiset();
        let d = b.diff(&a);
        let live_a: std::collections::HashSet<Edge> =
            a.entries().iter().map(|e| e.edge).collect();
        let live_b: std::collections::HashSet<Edge> =
            b.entries().iter().map(|e| e.edge).collect();
        let sym = live_a.symmetric_difference(&live_b).count();
        // Insert-only multisets have unit multiplicities and unit weights,
        // so no pair can land in the reweighted bucket: the delta size IS
        // the symmetric difference of the live edge sets.
        prop_assert_eq!(d.reweighted.len(), 0);
        prop_assert_eq!(d.num_changes(), sym);
        prop_assert_eq!(d.added.len() + d.removed.len(), sym);
    }
}
