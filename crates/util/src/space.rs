//! Measured space accounting for sketches and streaming-algorithm state.
//!
//! The dynamic-stream model charges an algorithm for every bit of state it
//! keeps between stream updates. [`SpaceUsage::space_bytes`] reports the
//! *payload* size of a value: the bytes that would have to be persisted to
//! reconstruct the sketch state, excluding allocator bookkeeping. For flat
//! collections this equals `len * size_of::<Item>()`; nested structures
//! recurse.
//!
//! Random seeds are counted by the structures that store them; shared
//! pseudorandomness that would be communicated once (e.g. the seed of a
//! k-wise independent hash family, which the paper's distributed servers
//! "agree upon") is a handful of machine words and is included wherever a
//! sketch owns it.

/// Types that can report the number of bytes of sketch state they hold.
///
/// # Examples
///
/// ```
/// use dsg_util::SpaceUsage;
///
/// assert_eq!(7u64.space_bytes(), 8);
/// assert_eq!(vec![0u32; 10].space_bytes(), 40);
/// assert_eq!(Some(3i64).space_bytes(), 8);
/// ```
pub trait SpaceUsage {
    /// Payload bytes held by `self`.
    fn space_bytes(&self) -> usize;

    /// Payload bits held by `self` (`8 * space_bytes`).
    fn space_bits(&self) -> usize {
        self.space_bytes() * 8
    }
}

macro_rules! impl_space_primitive {
    ($($t:ty),* $(,)?) => {
        $(impl SpaceUsage for $t {
            fn space_bytes(&self) -> usize {
                core::mem::size_of::<$t>()
            }
        })*
    };
}

impl_space_primitive!(
    u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64, bool, char
);

impl<T: SpaceUsage> SpaceUsage for Vec<T> {
    fn space_bytes(&self) -> usize {
        self.iter().map(SpaceUsage::space_bytes).sum()
    }
}

impl<T: SpaceUsage> SpaceUsage for [T] {
    fn space_bytes(&self) -> usize {
        self.iter().map(SpaceUsage::space_bytes).sum()
    }
}

impl<T: SpaceUsage> SpaceUsage for Option<T> {
    fn space_bytes(&self) -> usize {
        self.as_ref().map_or(0, SpaceUsage::space_bytes)
    }
}

impl<T: SpaceUsage + ?Sized> SpaceUsage for &T {
    fn space_bytes(&self) -> usize {
        (**self).space_bytes()
    }
}

impl<T: SpaceUsage + ?Sized> SpaceUsage for Box<T> {
    fn space_bytes(&self) -> usize {
        (**self).space_bytes()
    }
}

impl<A: SpaceUsage, B: SpaceUsage> SpaceUsage for (A, B) {
    fn space_bytes(&self) -> usize {
        self.0.space_bytes() + self.1.space_bytes()
    }
}

impl<A: SpaceUsage, B: SpaceUsage, C: SpaceUsage> SpaceUsage for (A, B, C) {
    fn space_bytes(&self) -> usize {
        self.0.space_bytes() + self.1.space_bytes() + self.2.space_bytes()
    }
}

/// Renders a byte count as a short human-readable string.
///
/// # Examples
///
/// ```
/// assert_eq!(dsg_util::space::human_bytes(512), "512 B");
/// assert_eq!(dsg_util::space::human_bytes(2048), "2.00 KiB");
/// assert_eq!(dsg_util::space::human_bytes(3 * 1024 * 1024), "3.00 MiB");
/// ```
pub fn human_bytes(bytes: usize) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut value = bytes as f64;
    let mut unit = 0;
    while value >= 1024.0 && unit + 1 < UNITS.len() {
        value /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes} B")
    } else {
        format!("{value:.2} {}", UNITS[unit])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_report_native_size() {
        assert_eq!(1u8.space_bytes(), 1);
        assert_eq!(1u16.space_bytes(), 2);
        assert_eq!(1u32.space_bytes(), 4);
        assert_eq!(1u64.space_bytes(), 8);
        assert_eq!(1u128.space_bytes(), 16);
        assert_eq!(1.0f64.space_bytes(), 8);
        assert_eq!(true.space_bytes(), 1);
    }

    #[test]
    fn vec_sums_elements() {
        let v = vec![0u64; 5];
        assert_eq!(v.space_bytes(), 40);
        assert_eq!(v.space_bits(), 320);
    }

    #[test]
    fn nested_vec_recurses() {
        let v = vec![vec![0u32; 2], vec![0u32; 3]];
        assert_eq!(v.space_bytes(), 20);
    }

    #[test]
    fn option_counts_payload_only() {
        let none: Option<u64> = None;
        assert_eq!(none.space_bytes(), 0);
        assert_eq!(Some(1u64).space_bytes(), 8);
    }

    #[test]
    fn tuples_sum_components() {
        assert_eq!((1u8, 2u64).space_bytes(), 9);
        assert_eq!((1u8, 2u64, 3u32).space_bytes(), 13);
    }

    #[test]
    fn human_bytes_formats() {
        assert_eq!(human_bytes(0), "0 B");
        assert_eq!(human_bytes(1023), "1023 B");
        assert_eq!(human_bytes(1024), "1.00 KiB");
        assert_eq!(human_bytes(1536), "1.50 KiB");
    }
}
