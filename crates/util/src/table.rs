//! Fixed-width table rendering for the experiment harness.
//!
//! The experiment binaries regenerate the quantitative claims of the paper
//! as tables; this module renders them with aligned columns so the output in
//! `EXPERIMENTS.md` is directly comparable across runs.

use std::fmt;

/// A simple fixed-width text table.
///
/// Columns are declared once with [`Table::new`]; rows are appended with
/// [`Table::add_row`]. Rendering pads every cell to the widest entry of its
/// column. Numeric-looking cells are right-aligned, all others left-aligned.
///
/// # Examples
///
/// ```
/// use dsg_util::Table;
///
/// let mut t = Table::new(&["n", "edges", "ratio"]);
/// t.add_row(&["100", "5230", "1.13"]);
/// t.add_row(&["1000", "81021", "0.97"]);
/// let s = t.to_string();
/// assert!(s.contains("edges"));
/// assert!(s.lines().count() >= 4);
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `headers` is empty.
    pub fn new<S: AsRef<str>>(headers: &[S]) -> Self {
        assert!(!headers.is_empty(), "a table needs at least one column");
        Self {
            headers: headers.iter().map(|h| h.as_ref().to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row of cells.
    ///
    /// # Panics
    ///
    /// Panics if the number of cells differs from the number of columns.
    pub fn add_row<S: AsRef<str>>(&mut self, cells: &[S]) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} does not match column count {}",
            cells.len(),
            self.headers.len()
        );
        self.rows
            .push(cells.iter().map(|c| c.as_ref().to_string()).collect());
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    fn widths(&self) -> Vec<usize> {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        widths
    }
}

fn looks_numeric(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .all(|c| c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E' | 'x' | '%'))
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths = self.widths();
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (cell, w) in cells.iter().zip(&widths) {
                if looks_numeric(cell) {
                    write!(f, " {cell:>w$} |", w = w)?;
                } else {
                    write!(f, " {cell:<w$} |", w = w)?;
                }
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        write!(f, "|")?;
        for w in &widths {
            write!(f, "{}|", "-".repeat(w + 2))?;
        }
        writeln!(f)?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_header_separator_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.add_row(&["1", "hello"]);
        let out = t.to_string();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[1].starts_with("|--"));
        assert!(lines[2].contains("hello"));
    }

    #[test]
    fn columns_align_to_widest() {
        let mut t = Table::new(&["col"]);
        t.add_row(&["x"]);
        t.add_row(&["longer-cell"]);
        let out = t.to_string();
        let widths: Vec<usize> = out.lines().map(str::len).collect();
        assert!(
            widths.windows(2).all(|w| w[0] == w[1]),
            "all lines same width: {out}"
        );
    }

    #[test]
    fn numeric_cells_right_align() {
        let mut t = Table::new(&["value"]);
        t.add_row(&["7"]);
        let out = t.to_string();
        assert!(out.lines().nth(2).unwrap().contains("     7"), "{out}");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new(&["a", "b"]);
        t.add_row(&["only-one"]);
    }

    #[test]
    fn row_count_tracks() {
        let mut t = Table::new(&["a"]);
        assert_eq!(t.row_count(), 0);
        t.add_row(&["1"]);
        assert_eq!(t.row_count(), 1);
    }
}
