//! Summary statistics over repeated randomized trials.
//!
//! Every algorithm in this workspace is randomized, so experiments repeat
//! measurements over independent seeds and report aggregates. [`Summary`]
//! collects `f64` observations and exposes the usual descriptive statistics.

/// Accumulates a set of `f64` observations and reports summary statistics.
///
/// # Examples
///
/// ```
/// use dsg_util::Summary;
///
/// let s: Summary = [1.0, 2.0, 3.0, 4.0].into_iter().collect();
/// assert_eq!(s.len(), 4);
/// assert_eq!(s.mean(), 2.5);
/// assert_eq!(s.min(), 1.0);
/// assert_eq!(s.max(), 4.0);
/// assert_eq!(s.median(), 2.5);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Summary {
    values: Vec<f64>,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN; NaN observations indicate a broken
    /// measurement and must not be silently aggregated.
    pub fn push(&mut self, value: f64) {
        assert!(!value.is_nan(), "NaN observation pushed into Summary");
        self.values.push(value);
    }

    /// Number of observations collected so far.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no observations have been collected.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Arithmetic mean. Returns 0 for an empty summary.
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    /// Population standard deviation. Returns 0 for fewer than two samples.
    pub fn stddev(&self) -> f64 {
        if self.values.len() < 2 {
            return 0.0;
        }
        let m = self.mean();
        let var =
            self.values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / self.values.len() as f64;
        var.sqrt()
    }

    /// Smallest observation. Returns 0 for an empty summary.
    pub fn min(&self) -> f64 {
        self.values
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
            .min_finite()
    }

    /// Largest observation. Returns 0 for an empty summary.
    pub fn max(&self) -> f64 {
        self.values
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
            .max_finite()
    }

    /// Median (average of the two middle elements for even counts).
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Empirical quantile by linear interpolation between order statistics.
    ///
    /// `q` is clamped to `[0, 1]`. Returns 0 for an empty summary.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        let mut sorted = self.values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in Summary"));
        let q = q.clamp(0.0, 1.0);
        let pos = q * (sorted.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        if lo == hi {
            sorted[lo]
        } else {
            let frac = pos - lo as f64;
            sorted[lo] * (1.0 - frac) + sorted[hi] * frac
        }
    }

    /// All collected observations, in insertion order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Summary::new();
        for v in iter {
            s.push(v);
        }
        s
    }
}

impl Extend<f64> for Summary {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for v in iter {
            self.push(v);
        }
    }
}

/// Extension that maps the +/- infinity sentinels from empty folds to 0.
trait FiniteOrZero {
    fn min_finite(self) -> f64;
    fn max_finite(self) -> f64;
}

impl FiniteOrZero for f64 {
    fn min_finite(self) -> f64 {
        if self.is_finite() {
            self
        } else {
            0.0
        }
    }
    fn max_finite(self) -> f64 {
        if self.is_finite() {
            self
        } else {
            0.0
        }
    }
}

/// Fraction of observations satisfying a predicate.
///
/// # Examples
///
/// ```
/// let rate = dsg_util::stats::success_rate([true, true, false, true]);
/// assert_eq!(rate, 0.75);
/// ```
pub fn success_rate<I: IntoIterator<Item = bool>>(outcomes: I) -> f64 {
    let mut total = 0usize;
    let mut ok = 0usize;
    for o in outcomes {
        total += 1;
        if o {
            ok += 1;
        }
    }
    if total == 0 {
        0.0
    } else {
        ok as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_zeroed() {
        let s = Summary::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.stddev(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.median(), 0.0);
    }

    #[test]
    fn basic_statistics() {
        let s: Summary = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert_eq!(s.mean(), 5.0);
        assert!((s.stddev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn median_odd_and_even() {
        let odd: Summary = [3.0, 1.0, 2.0].into_iter().collect();
        assert_eq!(odd.median(), 2.0);
        let even: Summary = [4.0, 1.0, 3.0, 2.0].into_iter().collect();
        assert_eq!(even.median(), 2.5);
    }

    #[test]
    fn quantiles_interpolate() {
        let s: Summary = [0.0, 10.0].into_iter().collect();
        assert_eq!(s.quantile(0.25), 2.5);
        assert_eq!(s.quantile(0.0), 0.0);
        assert_eq!(s.quantile(1.0), 10.0);
        assert_eq!(s.quantile(2.0), 10.0); // clamped
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        let mut s = Summary::new();
        s.push(f64::NAN);
    }

    #[test]
    fn success_rate_counts() {
        assert_eq!(success_rate([]), 0.0);
        assert_eq!(success_rate([true]), 1.0);
        assert_eq!(success_rate([false, true]), 0.5);
    }

    #[test]
    fn extend_appends() {
        let mut s: Summary = [1.0].into_iter().collect();
        s.extend([2.0, 3.0]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.values(), &[1.0, 2.0, 3.0]);
    }
}
