//! Shared utilities for the dynamic-stream graph workspace.
//!
//! This crate hosts the cross-cutting concerns that every other crate in the
//! workspace relies on:
//!
//! * [`SpaceUsage`] — measured space accounting. The currency of the paper
//!   ("Spanners and Sparsifiers in Dynamic Streams", Kapralov–Woodruff,
//!   PODC 2014) is *bits of sketch state*; every sketch and streaming
//!   algorithm in this workspace reports its real memory footprint through
//!   this trait so experiments can compare measured space against the
//!   `~O(n^{1+1/k})`-style bounds claimed by the theorems.
//! * [`stats`] — small summary-statistics helpers (mean/median/quantiles)
//!   used when aggregating repeated randomized trials.
//! * [`table`] — a fixed-width table renderer used by the experiment harness
//!   to print the rows recorded in `EXPERIMENTS.md`.
//!
//! # Examples
//!
//! ```
//! use dsg_util::SpaceUsage;
//!
//! let v: Vec<u64> = vec![1, 2, 3];
//! assert_eq!(v.space_bytes(), 3 * 8);
//! ```

pub mod json;
pub mod space;
pub mod stats;
pub mod table;

pub use space::SpaceUsage;
pub use stats::Summary;
pub use table::Table;
