//! A minimal std-only JSON parser for validating the admin endpoint's
//! output in tests and experiments.
//!
//! This is deliberately not a serialization framework: the workspace's
//! producers (`/epochz`, `/tracez`) render JSON by hand, and this module
//! exists so their consumers can check the output *structurally* — parse
//! it, walk it, assert on fields — without pulling in a dependency. It
//! accepts strict JSON (RFC 8259): no comments, no trailing commas, no
//! `NaN`/`Infinity` literals.
//!
//! ```
//! use dsg_util::json::{parse, JsonValue};
//!
//! let v = parse(r#"{"traceEvents":[{"ts":1.5,"name":"x"}]}"#).unwrap();
//! let events = v.get("traceEvents").and_then(JsonValue::as_array).unwrap();
//! assert_eq!(events[0].get("name").and_then(JsonValue::as_str), Some("x"));
//! ```

use std::collections::BTreeMap;

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always parsed as `f64`).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object. `BTreeMap` keeps iteration deterministic.
    Obj(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Member lookup on an object; `None` on anything else.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The elements if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string contents if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number if this is a number representing a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }
}

/// Parses one complete JSON document; trailing non-whitespace is an error.
///
/// # Errors
///
/// A human-readable message naming the byte offset of the first problem.
pub fn parse(input: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected value at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            map.insert(key, self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| format!("bad \\u at byte {}", self.pos))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u at byte {}", self.pos))?;
                            self.pos += 4;
                            // Surrogate pairs are not reassembled — the
                            // workspace's producers never emit them; a
                            // lone surrogate maps to the replacement
                            // character rather than failing the parse.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos - 1)),
                    }
                }
                Some(b) if b < 0x20 => {
                    return Err(format!("raw control byte in string at {}", self.pos))
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // boundaries are already valid).
                    let s = &self.bytes[self.pos..];
                    let ch = std::str::from_utf8(s)
                        .map_err(|_| "invalid utf-8".to_string())?
                        .chars()
                        .next()
                        .ok_or_else(|| "unterminated string".to_string())?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("bad number at byte {start}"))?;
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| format!("bad number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)] // test code may unwrap freely

    use super::*;

    #[test]
    fn parses_scalars_and_nesting() {
        assert_eq!(parse("null").unwrap(), JsonValue::Null);
        assert_eq!(parse(" true ").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse("-12.5e2").unwrap(), JsonValue::Num(-1250.0));
        let v = parse(r#"{"a":[1,{"b":"x"},[]],"c":null}"#).unwrap();
        let a = v.get("a").and_then(JsonValue::as_array).unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(a[1].get("b").and_then(JsonValue::as_str), Some("x"));
        assert_eq!(v.get("c"), Some(&JsonValue::Null));
    }

    #[test]
    fn unescapes_strings() {
        let v = parse(r#""a\"b\\c\ndAémoji—""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndAémoji—"));
    }

    #[test]
    fn integer_accessor_is_strict() {
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse("42.5").unwrap().as_u64(), None);
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("\"42\"").unwrap().as_u64(), None);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "tru",
            "1 2",
            "\"unterminated",
            "{\"a\":1,}",
            "[01x]",
            "nan",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn roundtrips_the_tracez_shape() {
        let doc = r#"{"displayTimeUnit":"ns","traceEvents":[
            {"name":"query_submit","ph":"i","s":"t","ts":1.25,"pid":1,"tid":2,
             "args":{"trace_id":7,"tenant":2,"payload":0,"nanos":1250}}
        ],"incidents":[]}"#;
        let v = parse(doc).unwrap();
        let events = v.get("traceEvents").and_then(JsonValue::as_array).unwrap();
        assert_eq!(
            events[0].get("name").and_then(JsonValue::as_str),
            Some("query_submit")
        );
        assert_eq!(
            events[0]
                .get("args")
                .and_then(|a| a.get("trace_id"))
                .and_then(JsonValue::as_u64),
            Some(7)
        );
        assert_eq!(events[0].get("ts").and_then(JsonValue::as_f64), Some(1.25));
    }
}
