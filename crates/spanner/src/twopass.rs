//! The two-pass streaming `2^k`-spanner (Theorem 1; Algorithms 1 and 2).
//!
//! **Pass 1 (Algorithm 1)** maintains, for every vertex `u`, level
//! `r ∈ [0, k-1]` and edge-sampling level `j ∈ [0, log2 n^2]`, the sketch
//! `S^{r,j}(u) = SKETCH_{O(log n)}(({u} × C_r) ∩ E ∩ E_j)`. The sketch
//! randomness is a function of `(r, j)` only (a [`RecoveryFamily`] per
//! pair), so after the pass the algorithm can form, for any tree `T_u`,
//! `Q^{i+1}_j(u) = Σ_{v ∈ T_u} S^{i+1,j}(v)` — by linearity a sketch of
//! `(T_u × C_{i+1}) ∩ E ∩ E_j` — and scan `j` from sparsest to densest
//! until a nonempty decode yields a parent and a witness edge.
//!
//! **Pass 2 (Algorithm 2)** stores, for every terminal copy `u` at level
//! `i` and vertex-sampling level `j ∈ [0, log2 n]`, a linear hash table
//! `H^u_j` with `~O(n^{(i+1)/k})` cells whose entry at key `v ∉ T_u` is a
//! small sketch of `N(v) ∩ T_u ∩ Y_j` (here: a [`OneSparseCell`]). After
//! the pass, each terminal recovers one edge to every outside neighbor of
//! its cluster; together with the pass-1 witness edges this is the spanner.
//!
//! The implementation also realizes Claims 16/18/20: every edge recovered
//! from any successfully decoded sketch is reported in
//! [`TwoPassOutput::observed_edges`] (`Ω(R)`), which is what Algorithm 5 of
//! the sparsification pipeline consumes.

use crate::cluster::{ClusterForest, NodeId};
use crate::params::SpannerParams;
use dsg_graph::stream::StreamUpdate;
use dsg_graph::{index_to_pair, Edge, Graph, StreamAlgorithm, Vertex};
use dsg_hash::{KWiseHash, SeedTree, SubsetSampler};
use dsg_sketch::onesparse::OneSparseCell;
use dsg_sketch::ssparse::{RecoveryFamily, RecoveryState};
use dsg_sketch::{LinearHashTable, LinearSketch};
use dsg_util::SpaceUsage;
use std::collections::{HashMap, HashSet};

/// Execution statistics of a two-pass run.
#[derive(Debug, Clone, Default)]
pub struct TwoPassStats {
    /// Measured sketch bytes at the end of pass 1.
    pub pass1_bytes: usize,
    /// Measured sketch bytes at the end of pass 2 (tables included).
    pub pass2_bytes: usize,
    /// Pass-1 `Q` decodes that failed (whp events).
    pub sketch_decode_failures: usize,
    /// Pass-2 table decodes that failed (whp events).
    pub table_decode_failures: usize,
    /// Pass-2 inner neighborhood-cell decodes that failed.
    pub inner_decode_failures: usize,
    /// Number of terminal copies after pass 1.
    pub num_terminals: usize,
}

/// The result of a completed two-pass run.
#[derive(Debug, Clone)]
pub struct TwoPassOutput {
    /// The spanner `H = (V, E')`.
    pub spanner: Graph,
    /// The cluster forest constructed in pass 1.
    pub forest: ClusterForest,
    /// `Ω(R)`: every edge recovered from a successfully decoded sketch
    /// during execution (Claims 16/18/20) — a superset of the spanner
    /// edges, consumed by the sparsifier's sampling analysis.
    pub observed_edges: Vec<Edge>,
    /// Execution statistics.
    pub stats: TwoPassStats,
}

/// The two-pass streaming spanner algorithm (implements
/// [`StreamAlgorithm`]; drive it with [`dsg_graph::pass::run`], or shard
/// each pass across threads and recombine with
/// [`merge_pass_state`](TwoPassSpanner::merge_pass_state)).
#[derive(Debug, Clone)]
pub struct TwoPassSpanner {
    n: usize,
    params: SpannerParams,
    k: usize,
    edge_levels: usize,
    vertex_levels: usize,
    /// `E_j` samplers over edge coordinates.
    edge_samplers: Vec<SubsetSampler>,
    /// `Y_j` samplers over vertices.
    vertex_samplers: Vec<SubsetSampler>,
    /// `sketch_families[r][j]` — shared randomness of `S^{r,j}(·)`.
    sketch_families: Vec<Vec<RecoveryFamily>>,
    /// Fingerprint hash of the inner neighborhood cells, per `j`.
    inner_hashes: Vec<KWiseHash>,
    /// Pass-1 states `S^{r,j}(u)`, allocated lazily.
    s_states: HashMap<(Vertex, u8, u8), RecoveryState>,
    /// The forest (centers fixed at construction; edges added after pass 1).
    forest: Option<ClusterForest>,
    /// Terminal copies in index order (fixed after pass 1).
    terminals: Vec<NodeId>,
    /// Chain-class index of each vertex (into `terminals`).
    class_of: Vec<usize>,
    /// Pass-2 tables `H^{terminal}_j`, indexed `[terminal][j]`.
    tables: Vec<Vec<LinearHashTable>>,
    /// All edges recovered from decoded sketches (`Ω(R)`).
    observed: HashSet<Edge>,
    current_pass: usize,
    stats: TwoPassStats,
    output: Option<TwoPassOutput>,
}

impl TwoPassSpanner {
    /// Creates the algorithm for graphs on `n` vertices.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn new(n: usize, params: SpannerParams) -> Self {
        assert!(n >= 2, "need at least two vertices");
        let k = params.k;
        let edge_levels = params.edge_levels(n);
        let vertex_levels = params.vertex_levels(n);
        let budget = params.resolved_sketch_budget(n);
        let tree = SeedTree::new(params.seed ^ 0x5350_414E_3250_4153); // "SPAN2PAS"
        let edge_samplers = (0..edge_levels)
            .map(|j| SubsetSampler::at_rate_pow2(tree.child(1).child(j as u64).seed(), j as u32))
            .collect();
        let vertex_samplers = (0..vertex_levels)
            .map(|j| SubsetSampler::at_rate_pow2(tree.child(2).child(j as u64).seed(), j as u32))
            .collect();
        let sketch_families = (0..k)
            .map(|r| {
                (0..edge_levels)
                    .map(|j| {
                        RecoveryFamily::new(
                            budget,
                            tree.child(3).child(r as u64).child(j as u64).seed(),
                        )
                    })
                    .collect()
            })
            .collect();
        let inner_hashes = (0..vertex_levels)
            .map(|j| KWiseHash::new(3, tree.child(4).child(j as u64).seed()))
            .collect();
        let forest = ClusterForest::new(n, k, params.seed);
        Self {
            n,
            params,
            k,
            edge_levels,
            vertex_levels,
            edge_samplers,
            vertex_samplers,
            sketch_families,
            inner_hashes,
            s_states: HashMap::new(),
            forest: Some(forest),
            terminals: Vec::new(),
            class_of: Vec::new(),
            tables: Vec::new(),
            observed: HashSet::new(),
            current_pass: 0,
            stats: TwoPassStats::default(),
            output: None,
        }
    }

    /// The construction parameters.
    pub fn params(&self) -> &SpannerParams {
        &self.params
    }

    /// The pass currently being processed (0-indexed).
    pub fn current_pass(&self) -> usize {
        self.current_pass
    }

    /// Consumes the algorithm, returning the output if both passes ran.
    pub fn into_output(self) -> Option<TwoPassOutput> {
        self.output
    }

    /// Adds `other`'s pass-local linear state into `self` — the
    /// distributed-ingest merge.
    ///
    /// Within each pass the algorithm's stream-facing state is a *linear*
    /// function of the updates: pass 1 accumulates the `S^{r,j}(u)`
    /// recovery states, pass 2 the `H^u_j` hash tables; everything else
    /// (forest, terminals, observed edges) is computed between passes and
    /// never touched by `process`. So shards built with the same `n` and
    /// params can each ingest a slice of the stream and be merged here,
    /// bit-for-bit equal to one instance seeing the whole stream — the
    /// simultaneous-communication pattern of Filtser–Kapralov–Nouri.
    ///
    /// # Panics
    ///
    /// Panics if `other` was built with different `n`, seed, or `k`, or
    /// sits in a different pass.
    pub fn merge_pass_state(&mut self, other: &Self) {
        assert_eq!(self.n, other.n, "vertex count mismatch");
        assert_eq!(self.params.seed, other.params.seed, "seed mismatch");
        assert_eq!(self.params.k, other.params.k, "depth mismatch");
        assert_eq!(self.current_pass, other.current_pass, "pass mismatch");
        for (&(v, r, j), st) in &other.s_states {
            let family = &self.sketch_families[r as usize][j as usize];
            let mine = self
                .s_states
                .entry((v, r, j))
                .or_insert_with(|| family.new_state());
            mine.merge(st);
            if mine.is_zero() {
                self.s_states.remove(&(v, r, j));
            }
        }
        assert_eq!(
            self.tables.len(),
            other.tables.len(),
            "table shape mismatch"
        );
        for (mine, theirs) in self.tables.iter_mut().zip(&other.tables) {
            for (a, b) in mine.iter_mut().zip(theirs) {
                a.merge(b);
            }
        }
    }

    fn process_pass1(&mut self, up: &StreamUpdate) {
        let delta = up.delta as i128;
        let coord = up.edge.index(self.n);
        // Which E_j contain this coordinate (independent per level).
        let js: Vec<u8> = (0..self.edge_levels)
            .filter(|&j| self.edge_samplers[j].contains(coord))
            .map(|j| j as u8)
            .collect();
        if js.is_empty() {
            return;
        }
        let forest = self.forest.as_ref().expect("pass 1 forest present");
        let (eu, ev) = up.edge.endpoints();
        for (a, b) in [(eu, ev), (ev, eu)] {
            for r in 0..self.k {
                if !forest.is_center(r, b) {
                    continue;
                }
                for &j in &js {
                    let family = &self.sketch_families[r][j as usize];
                    let state = self
                        .s_states
                        .entry((a, r as u8, j))
                        .or_insert_with(|| family.new_state());
                    family.update(state, coord, delta);
                    if state.is_zero() {
                        self.s_states.remove(&(a, r as u8, j));
                    }
                }
            }
        }
    }

    /// Algorithm 1, lines 8–20: builds the forest from the pass-1 sketches.
    fn build_clusters(&mut self) {
        let mut forest = self.forest.take().expect("pass-1 forest present");
        for i in 0..self.k {
            let centers: Vec<Vertex> = forest.centers_at(i).collect();
            for u in centers {
                let node = NodeId::new(i, u);
                if i == self.k - 1 {
                    forest.set_terminal(node);
                    continue;
                }
                let members = forest.members(node);
                let r = (i + 1) as u8;
                let mut attached = false;
                for j in (0..self.edge_levels).rev() {
                    let family = &self.sketch_families[r as usize][j];
                    let mut q = family.new_state();
                    for &v in &members {
                        if let Some(st) = self.s_states.get(&(v, r, j as u8)) {
                            q.merge(st);
                        }
                    }
                    match family.decode(&q) {
                        Ok(items) if !items.is_empty() => {
                            for &(c, _) in &items {
                                let (x, y) = index_to_pair(c, self.n);
                                self.observed.insert(Edge::new(x, y));
                            }
                            let (c, _) = items[0];
                            let (x, y) = index_to_pair(c, self.n);
                            // The parent is an endpoint in C_{i+1}.
                            let w = if forest.is_center(i + 1, y) { y } else { x };
                            debug_assert!(forest.is_center(i + 1, w));
                            forest.set_parent(node, w, Edge::new(x, y));
                            attached = true;
                            break;
                        }
                        Ok(_) => {} // decodable but empty: keep descending
                        Err(_) => self.stats.sketch_decode_failures += 1,
                    }
                }
                if !attached {
                    forest.set_terminal(node);
                }
            }
        }
        // Fix the terminal order and chain classes for pass 2.
        self.terminals = forest.terminals();
        let index: HashMap<NodeId, usize> = self
            .terminals
            .iter()
            .enumerate()
            .map(|(i, &t)| (t, i))
            .collect();
        self.class_of = (0..self.n as Vertex)
            .map(|v| {
                let t = forest.chain_terminal(v).expect("complete forest");
                index[&t]
            })
            .collect();
        self.stats.num_terminals = self.terminals.len();
        self.forest = Some(forest);
        // The per-vertex pass-1 sketches are no longer needed; a real
        // deployment frees them between passes, so space accounting should
        // not double-charge pass 2 for them.
        self.s_states.clear();
    }

    fn setup_tables(&mut self) {
        let tree = SeedTree::new(self.params.seed ^ 0x5441_424C_4553_3253); // "TABLES2S"
        self.tables = self
            .terminals
            .iter()
            .enumerate()
            .map(|(ti, t)| {
                let capacity = self.params.table_capacity(self.n, t.level as usize);
                (0..self.vertex_levels)
                    .map(|j| {
                        LinearHashTable::new(
                            capacity,
                            3,
                            tree.child(ti as u64).child(j as u64).seed(),
                        )
                    })
                    .collect()
            })
            .collect();
    }

    fn process_pass2(&mut self, up: &StreamUpdate) {
        let delta = up.delta as i128;
        let (eu, ev) = up.edge.endpoints();
        let (ta, tb) = (self.class_of[eu as usize], self.class_of[ev as usize]);
        if ta == tb {
            return; // both endpoints in the same terminal cluster
        }
        for (inside, outside, t) in [(eu, ev, ta), (ev, eu, tb)] {
            for j in 0..self.vertex_levels {
                if self.vertex_samplers[j].contains(inside as u64) {
                    let mut cell = OneSparseCell::new();
                    cell.update(inside as u64, delta, &self.inner_hashes[j]);
                    self.tables[t][j].update(outside as u64, &cell.to_words());
                }
            }
        }
    }

    /// Algorithm 2, lines 19–33: assembles the spanner.
    fn build_spanner(&mut self) {
        let forest = self.forest.take().expect("forest present");
        let mut edges: HashSet<Edge> = forest.witness_edges().into_iter().collect();
        for (ti, _t) in self.terminals.iter().enumerate() {
            // Decode all tables of this terminal, sparsest level first.
            let decoded: Vec<Option<HashMap<u64, [i128; 3]>>> = (0..self.vertex_levels)
                .map(|j| match self.tables[ti][j].decode() {
                    Ok(entries) => Some(
                        entries
                            .into_iter()
                            .map(|(key, p)| (key, [p[0], p[1], p[2]]))
                            .collect(),
                    ),
                    Err(_) => {
                        self.stats.table_decode_failures += 1;
                        None
                    }
                })
                .collect();
            // Union of keys across decodable levels.
            let mut keys: HashSet<u64> = HashSet::new();
            for d in decoded.iter().flatten() {
                keys.extend(d.keys().copied());
            }
            for &v in &keys {
                for j in (0..self.vertex_levels).rev() {
                    let Some(table) = &decoded[j] else { continue };
                    let Some(words) = table.get(&v) else { continue };
                    let Ok(cell) = OneSparseCell::from_words(words) else {
                        self.stats.inner_decode_failures += 1;
                        continue;
                    };
                    match cell.decode(&self.inner_hashes[j]) {
                        Ok(Some((w, _))) if w != v && w < self.n as u64 => {
                            let e = Edge::new(w as Vertex, v as Vertex);
                            edges.insert(e);
                            self.observed.insert(e);
                            break;
                        }
                        Ok(Some(_)) => self.stats.inner_decode_failures += 1,
                        Ok(None) => {} // empty at this level: descend
                        Err(_) => self.stats.inner_decode_failures += 1,
                    }
                }
            }
        }
        let spanner = Graph::from_edges(self.n, edges);
        let mut observed: Vec<Edge> = self.observed.iter().copied().collect();
        observed.sort_unstable();
        self.output = Some(TwoPassOutput {
            spanner,
            forest,
            observed_edges: observed,
            stats: self.stats.clone(),
        });
    }

    fn measured_bytes(&self) -> usize {
        let samplers: usize = self.edge_samplers.space_bytes() + self.vertex_samplers.space_bytes();
        let families: usize = self
            .sketch_families
            .iter()
            .map(|row| row.iter().map(SpaceUsage::space_bytes).sum::<usize>())
            .sum();
        let states: usize = self
            .s_states
            .values()
            .map(SpaceUsage::space_bytes)
            .sum::<usize>()
            + self.s_states.len() * 8;
        let tables: usize = self
            .tables
            .iter()
            .map(|row| row.iter().map(SpaceUsage::space_bytes).sum::<usize>())
            .sum();
        let inner: usize = self.inner_hashes.iter().map(SpaceUsage::space_bytes).sum();
        samplers + families + states + tables + inner
    }
}

impl StreamAlgorithm for TwoPassSpanner {
    fn num_passes(&self) -> usize {
        2
    }

    fn begin_pass(&mut self, pass: usize) {
        self.current_pass = pass;
        if pass == 1 {
            assert!(
                !self.terminals.is_empty() || self.n == 0,
                "pass 2 requires the pass-1 forest"
            );
            self.setup_tables();
        }
    }

    fn process(&mut self, update: &StreamUpdate) {
        match self.current_pass {
            0 => self.process_pass1(update),
            1 => self.process_pass2(update),
            _ => unreachable!("two-pass algorithm"),
        }
    }

    fn end_pass(&mut self, pass: usize) {
        if pass == 0 {
            self.stats.pass1_bytes = self.measured_bytes();
            self.build_clusters();
        } else {
            self.stats.pass2_bytes = self.measured_bytes();
            self.build_spanner();
        }
    }
}

impl SpaceUsage for TwoPassSpanner {
    fn space_bytes(&self) -> usize {
        self.measured_bytes()
    }
}

/// Convenience: runs the two-pass spanner over a stream and returns the
/// output.
///
/// # Examples
///
/// ```
/// use dsg_graph::{gen, GraphStream};
/// use dsg_spanner::{twopass, SpannerParams};
///
/// let g = gen::erdos_renyi(50, 0.2, 1);
/// let stream = GraphStream::with_churn(&g, 1.0, 2);
/// let out = twopass::run_two_pass(&stream, SpannerParams::new(2, 3));
/// assert!(out.spanner.num_edges() > 0);
/// ```
pub fn run_two_pass(stream: &dsg_graph::GraphStream, params: SpannerParams) -> TwoPassOutput {
    let mut alg = TwoPassSpanner::new(stream.num_vertices(), params);
    dsg_graph::pass::run(&mut alg, stream);
    alg.into_output().expect("both passes completed")
}

/// Runs the two-pass spanner over a **net edge multiset** view instead of
/// a materialized stream — the generalized entry point compacted serving
/// and durability layers rebuild epoch artifacts from.
///
/// Each pass costs O(current edges) rather than O(stream length), and the
/// output is bit-identical to [`run_two_pass`] on any raw stream with the
/// same net effect: within a pass the algorithm's stream-facing state is
/// linear in the updates, and everything between passes is a
/// deterministic function of that state, so only the net multiset can be
/// observed. `net_rebuild_matches_stream_replay` (and the service layer's
/// property tests) assert the equivalence end to end.
///
/// # Examples
///
/// ```
/// use dsg_graph::{gen, GraphStream};
/// use dsg_spanner::{twopass, SpannerParams};
///
/// let g = gen::erdos_renyi(50, 0.2, 1);
/// let stream = GraphStream::with_churn(&g, 2.0, 2);
/// let params = SpannerParams::new(2, 3);
/// let raw = twopass::run_two_pass(&stream, params);
/// let net = twopass::run_two_pass_net(&stream.net_multiset(), params);
/// assert_eq!(raw.spanner.edges(), net.spanner.edges());
/// ```
pub fn run_two_pass_net<M>(view: &M, params: SpannerParams) -> TwoPassOutput
where
    M: dsg_graph::EdgeMultiset + ?Sized,
{
    let mut alg = TwoPassSpanner::new(view.num_vertices(), params);
    dsg_graph::pass::run_multiset(&mut alg, view);
    alg.into_output().expect("both passes completed")
}

/// The worst-case space bound of Theorem 1 in bytes, for context in
/// experiment tables: `~O(k · n^{1+1/k} · log^3 n)` words.
pub fn theorem1_space_bound_bytes(n: usize, k: usize) -> f64 {
    let nf = n as f64;
    let logn = nf.log2().max(1.0);
    8.0 * k as f64 * nf.powf(1.0 + 1.0 / k as f64) * logn * logn * logn
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify;
    use dsg_graph::{gen, GraphStream};

    fn spanner_for(g: &Graph, k: usize, seed: u64) -> TwoPassOutput {
        let stream = GraphStream::with_churn(g, 1.0, seed ^ 0xABCD);
        run_two_pass(&stream, SpannerParams::new(k, seed))
    }

    #[test]
    fn spanner_is_subgraph() {
        let g = gen::erdos_renyi(60, 0.15, 1);
        let out = spanner_for(&g, 2, 2);
        assert!(
            verify::is_subgraph(&g, &out.spanner),
            "spanner contains non-edges"
        );
    }

    #[test]
    fn stretch_within_2_to_k() {
        for (k, seed) in [(1usize, 3u64), (2, 4), (3, 5)] {
            let g = gen::erdos_renyi(60, 0.15, seed);
            let out = spanner_for(&g, k, seed);
            let stretch = verify::max_multiplicative_stretch(&g, &out.spanner, 60);
            assert!(
                stretch <= (1u64 << k) as f64,
                "k={k}: stretch {stretch} (failures: {:?})",
                out.stats
            );
        }
    }

    #[test]
    fn preserves_connectivity_under_churn() {
        let g = gen::erdos_renyi(70, 0.1, 6);
        let stream = GraphStream::with_churn(&g, 2.0, 7);
        let out = run_two_pass(&stream, SpannerParams::new(2, 8));
        assert_eq!(
            dsg_graph::components::num_components(&g),
            dsg_graph::components::num_components(&out.spanner),
        );
    }

    #[test]
    fn deletions_fully_respected() {
        // Deleted edges must never appear in the spanner.
        let g = gen::erdos_renyi(50, 0.2, 9);
        let stream = GraphStream::with_churn(&g, 3.0, 10);
        let out = run_two_pass(&stream, SpannerParams::new(2, 11));
        assert!(verify::is_subgraph(&g, &out.spanner));
    }

    #[test]
    fn net_rebuild_matches_stream_replay() {
        // The compaction correctness ground: rebuilding both passes from
        // the net edge multiset is bit-identical to replaying the raw
        // churn stream — spanner edges, observed edges, forest shape.
        for seed in [31u64, 32, 33] {
            let g = gen::erdos_renyi(40, 0.2, seed);
            let stream = GraphStream::with_churn(&g, 2.0, seed ^ 0x9E37);
            let params = SpannerParams::new(2, seed);
            let raw = run_two_pass(&stream, params);
            let net = run_two_pass_net(&stream.net_multiset(), params);
            assert_eq!(raw.spanner.edges(), net.spanner.edges(), "seed {seed}");
            assert_eq!(raw.observed_edges, net.observed_edges, "seed {seed}");
            assert_eq!(
                raw.forest.witness_edges(),
                net.forest.witness_edges(),
                "seed {seed}"
            );
            assert_eq!(raw.stats.num_terminals, net.stats.num_terminals);
        }
    }

    #[test]
    fn observed_superset_of_spanner() {
        let g = gen::erdos_renyi(40, 0.2, 12);
        let out = spanner_for(&g, 2, 13);
        let observed: HashSet<Edge> = out.observed_edges.iter().copied().collect();
        for e in out.spanner.edges() {
            assert!(observed.contains(e), "spanner edge {e} not observed");
        }
        // Observed edges must be real edges.
        let real = g.edge_set();
        for e in &out.observed_edges {
            assert!(real.contains(e), "observed non-edge {e}");
        }
    }

    #[test]
    fn size_obeys_lemma12() {
        let n = 120;
        let g = gen::erdos_renyi(n, 0.5, 14);
        let out = spanner_for(&g, 2, 15);
        let bound = 8.0 * 2.0 * (n as f64).powf(1.5) * (n as f64).log2();
        assert!(
            (out.spanner.num_edges() as f64) < bound,
            "size {} exceeds bound {bound}",
            out.spanner.num_edges()
        );
    }

    #[test]
    fn matches_offline_stretch_quality() {
        // Streaming and offline use the same center sets; both must deliver
        // ≤ 2^k stretch on the same input.
        let g = gen::erdos_renyi(50, 0.2, 16);
        let params = SpannerParams::new(2, 17);
        let off = crate::offline::build_spanner(&g, params);
        let out = spanner_for(&g, 2, 17);
        let s_off = verify::max_multiplicative_stretch(&g, &off.spanner, 50);
        let s_str = verify::max_multiplicative_stretch(&g, &out.spanner, 50);
        assert!(
            s_off <= 4.0 && s_str <= 4.0,
            "offline {s_off}, streaming {s_str}"
        );
    }

    #[test]
    fn stats_populated() {
        let g = gen::erdos_renyi(40, 0.2, 18);
        let out = spanner_for(&g, 2, 19);
        assert!(out.stats.pass1_bytes > 0);
        assert!(out.stats.pass2_bytes > 0);
        assert!(out.stats.num_terminals > 0);
    }

    #[test]
    fn empty_graph_stream() {
        let stream = GraphStream::new(10, vec![]);
        let out = run_two_pass(&stream, SpannerParams::new(2, 20));
        assert_eq!(out.spanner.num_edges(), 0);
    }

    #[test]
    fn star_graph_exact() {
        // A star has diameter 2; the spanner must keep it ≤ 2·2^k but in
        // fact the star is its own best spanner.
        let g = gen::star(30);
        let out = spanner_for(&g, 2, 21);
        let stretch = verify::max_multiplicative_stretch(&g, &out.spanner, 30);
        assert!(stretch <= 4.0);
        assert_eq!(dsg_graph::components::num_components(&out.spanner), 1);
    }

    #[test]
    fn disconnected_graph_handled() {
        // Two components; spanner must not bridge them.
        let mut edges = Vec::new();
        for u in 0..10u32 {
            for v in (u + 1)..10 {
                edges.push(Edge::new(u, v));
                edges.push(Edge::new(u + 10, v + 10));
            }
        }
        let g = Graph::from_edges(20, edges);
        let out = spanner_for(&g, 2, 22);
        assert_eq!(dsg_graph::components::num_components(&out.spanner), 2);
        assert!(verify::is_subgraph(&g, &out.spanner));
    }

    #[test]
    fn space_grows_slower_than_edges() {
        // On a dense graph the sketch space must be far below storing all
        // edges' worth of structure… we check the measured bytes against
        // the Theorem 1 bound shape.
        let n = 100;
        let g = gen::erdos_renyi(n, 0.8, 23);
        let out = spanner_for(&g, 2, 24);
        let bound = theorem1_space_bound_bytes(n, 2);
        assert!(
            (out.stats.pass1_bytes as f64) < bound,
            "pass1 {}",
            out.stats.pass1_bytes
        );
        assert!(
            (out.stats.pass2_bytes as f64) < bound,
            "pass2 {}",
            out.stats.pass2_bytes
        );
    }

    #[test]
    fn num_pairs_universe_consistency() {
        // Edge coordinates must fit the sketch key universe.
        let n = 1000usize;
        assert!(dsg_graph::ids::num_pairs(n) < 1 << 60);
    }
}
