//! The two-pass streaming `2^k`-spanner (Theorem 1; Algorithms 1 and 2).
//!
//! **Pass 1 (Algorithm 1)** maintains, for every vertex `u`, level
//! `r ∈ [0, k-1]` and edge-sampling level `j ∈ [0, log2 n^2]`, the sketch
//! `S^{r,j}(u) = SKETCH_{O(log n)}(({u} × C_r) ∩ E ∩ E_j)`. The sketch
//! randomness is a function of `(r, j)` only (a [`RecoveryFamily`] per
//! pair), so after the pass the algorithm can form, for any tree `T_u`,
//! `Q^{i+1}_j(u) = Σ_{v ∈ T_u} S^{i+1,j}(v)` — by linearity a sketch of
//! `(T_u × C_{i+1}) ∩ E ∩ E_j` — and scan `j` from sparsest to densest
//! until a nonempty decode yields a parent and a witness edge.
//!
//! **Pass 2 (Algorithm 2)** stores, for every terminal copy `u` at level
//! `i` and vertex-sampling level `j ∈ [0, log2 n]`, a linear hash table
//! `H^u_j` with `~O(n^{(i+1)/k})` cells whose entry at key `v ∉ T_u` is a
//! small sketch of `N(v) ∩ T_u ∩ Y_j` (here: a [`OneSparseCell`]). After
//! the pass, each terminal recovers one edge to every outside neighbor of
//! its cluster; together with the pass-1 witness edges this is the spanner.
//!
//! The implementation also realizes Claims 16/18/20: every edge recovered
//! from any successfully decoded sketch is reported in
//! [`TwoPassOutput::observed_edges`] (`Ω(R)`), which is what Algorithm 5 of
//! the sparsification pipeline consumes.

use crate::cluster::{ClusterForest, NodeId};
use crate::params::SpannerParams;
use dsg_graph::stream::StreamUpdate;
use dsg_graph::{index_to_pair, Edge, Graph, SegmentDelta, StreamAlgorithm, Vertex};
use dsg_hash::{KWiseHash, SeedTree, SubsetSampler};
use dsg_sketch::onesparse::OneSparseCell;
use dsg_sketch::ssparse::{RecoveryFamily, RecoveryState};
use dsg_sketch::{LinearHashTable, LinearSketch};
use dsg_util::SpaceUsage;
use std::collections::{HashMap, HashSet};

/// Execution statistics of a two-pass run.
#[derive(Debug, Clone, Default)]
pub struct TwoPassStats {
    /// Measured sketch bytes at the end of pass 1.
    pub pass1_bytes: usize,
    /// Measured sketch bytes at the end of pass 2 (tables included).
    pub pass2_bytes: usize,
    /// Pass-1 `Q` decodes that failed (whp events).
    pub sketch_decode_failures: usize,
    /// Pass-2 table decodes that failed (whp events).
    pub table_decode_failures: usize,
    /// Pass-2 inner neighborhood-cell decodes that failed.
    pub inner_decode_failures: usize,
    /// Number of terminal copies after pass 1.
    pub num_terminals: usize,
}

/// One terminal's decoded contribution to the spanner: the edges its
/// tables recovered (each goes into both the spanner and `Ω(R)`) and the
/// decode failures tallied while recovering them. Cached per terminal
/// identity in retaining mode so a patch can replay the terminals whose
/// tables it left untouched instead of re-decoding them.
#[derive(Debug, Clone, Default)]
struct TerminalDecode {
    edges: Vec<Edge>,
    table_failures: usize,
    inner_failures: usize,
}

/// The result of a completed two-pass run.
#[derive(Debug, Clone)]
pub struct TwoPassOutput {
    /// The spanner `H = (V, E')`.
    pub spanner: Graph,
    /// The cluster forest constructed in pass 1.
    pub forest: ClusterForest,
    /// `Ω(R)`: every edge recovered from a successfully decoded sketch
    /// during execution (Claims 16/18/20) — a superset of the spanner
    /// edges, consumed by the sparsifier's sampling analysis.
    pub observed_edges: Vec<Edge>,
    /// Execution statistics.
    pub stats: TwoPassStats,
}

/// The two-pass streaming spanner algorithm (implements
/// [`StreamAlgorithm`]; drive it with [`dsg_graph::pass::run`], or shard
/// each pass across threads and recombine with
/// [`merge_pass_state`](TwoPassSpanner::merge_pass_state)).
#[derive(Debug, Clone)]
pub struct TwoPassSpanner {
    n: usize,
    params: SpannerParams,
    k: usize,
    edge_levels: usize,
    vertex_levels: usize,
    /// `E_j` samplers over edge coordinates.
    edge_samplers: Vec<SubsetSampler>,
    /// `Y_j` samplers over vertices.
    vertex_samplers: Vec<SubsetSampler>,
    /// `sketch_families[r][j]` — shared randomness of `S^{r,j}(·)`.
    sketch_families: Vec<Vec<RecoveryFamily>>,
    /// Fingerprint hash of the inner neighborhood cells, per `j`.
    inner_hashes: Vec<KWiseHash>,
    /// Pass-1 states `S^{r,j}(u)`, allocated lazily.
    s_states: HashMap<(Vertex, u8, u8), RecoveryState>,
    /// The forest (centers fixed at construction; edges added after pass 1).
    forest: Option<ClusterForest>,
    /// Terminal copies in index order (fixed after pass 1).
    terminals: Vec<NodeId>,
    /// Chain-class index of each vertex (into `terminals`).
    class_of: Vec<usize>,
    /// Pass-2 tables `H^{terminal}_j`, indexed `[terminal][j]`.
    tables: Vec<Vec<LinearHashTable>>,
    /// All edges recovered from decoded sketches (`Ω(R)`).
    observed: HashSet<Edge>,
    current_pass: usize,
    stats: TwoPassStats,
    output: Option<TwoPassOutput>,
    /// Keep the pass-1 `S^{r,j}(u)` states after `build_clusters` so a
    /// later [`patch`](TwoPassSpanner::patch) can move them to the next
    /// epoch's segment in O(changes) instead of re-ingesting.
    retain: bool,
    /// Per-terminal decode results of the last [`build_spanner`], keyed
    /// by terminal identity (retaining mode only).
    spanner_cache: HashMap<NodeId, TerminalDecode>,
    /// Set by [`patch`](TwoPassSpanner::patch) before `build_spanner`:
    /// indices into `terminals` whose tables changed since the last
    /// decode. `None` (the full-build default) decodes every terminal.
    dirty_tables: Option<HashSet<usize>>,
}

impl TwoPassSpanner {
    /// Creates the algorithm for graphs on `n` vertices.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn new(n: usize, params: SpannerParams) -> Self {
        assert!(n >= 2, "need at least two vertices");
        let k = params.k;
        let edge_levels = params.edge_levels(n);
        let vertex_levels = params.vertex_levels(n);
        let budget = params.resolved_sketch_budget(n);
        let tree = SeedTree::new(params.seed ^ 0x5350_414E_3250_4153); // "SPAN2PAS"
        let edge_samplers = (0..edge_levels)
            .map(|j| SubsetSampler::at_rate_pow2(tree.child(1).child(j as u64).seed(), j as u32))
            .collect();
        let vertex_samplers = (0..vertex_levels)
            .map(|j| SubsetSampler::at_rate_pow2(tree.child(2).child(j as u64).seed(), j as u32))
            .collect();
        let sketch_families = (0..k)
            .map(|r| {
                (0..edge_levels)
                    .map(|j| {
                        RecoveryFamily::new(
                            budget,
                            tree.child(3).child(r as u64).child(j as u64).seed(),
                        )
                    })
                    .collect()
            })
            .collect();
        let inner_hashes = (0..vertex_levels)
            .map(|j| KWiseHash::new(3, tree.child(4).child(j as u64).seed()))
            .collect();
        let forest = ClusterForest::new(n, k, params.seed);
        Self {
            n,
            params,
            k,
            edge_levels,
            vertex_levels,
            edge_samplers,
            vertex_samplers,
            sketch_families,
            inner_hashes,
            s_states: HashMap::new(),
            forest: Some(forest),
            terminals: Vec::new(),
            class_of: Vec::new(),
            tables: Vec::new(),
            observed: HashSet::new(),
            current_pass: 0,
            stats: TwoPassStats::default(),
            output: None,
            retain: false,
            spanner_cache: HashMap::new(),
            dirty_tables: None,
        }
    }

    /// Switches the instance into retaining mode: the pass-1 recovery
    /// states survive `build_clusters`, so the finished instance holds
    /// every stream-facing linear state (pass-1 sketches *and* pass-2
    /// tables) and can be [`patch`](TwoPassSpanner::patch)ed to a nearby
    /// segment. Costs the pass-1 sketch memory for the lifetime of the
    /// instance; the decoded output is unaffected.
    pub fn retaining(mut self) -> Self {
        self.set_retaining();
        self
    }

    /// In-place [`retaining`](Self::retaining), for instances held inside
    /// a bank (e.g. the KP12 pipeline's inner spanners).
    pub fn set_retaining(&mut self) {
        self.retain = true;
    }

    /// The construction parameters.
    pub fn params(&self) -> &SpannerParams {
        &self.params
    }

    /// The pass currently being processed (0-indexed).
    pub fn current_pass(&self) -> usize {
        self.current_pass
    }

    /// Consumes the algorithm, returning the output if both passes ran.
    pub fn into_output(self) -> Option<TwoPassOutput> {
        self.output
    }

    /// Borrows the output if both passes ran (the retaining-mode accessor:
    /// the instance stays alive to be patched again).
    pub fn output(&self) -> Option<&TwoPassOutput> {
        self.output.as_ref()
    }

    /// Adds `other`'s pass-local linear state into `self` — the
    /// distributed-ingest merge.
    ///
    /// Within each pass the algorithm's stream-facing state is a *linear*
    /// function of the updates: pass 1 accumulates the `S^{r,j}(u)`
    /// recovery states, pass 2 the `H^u_j` hash tables; everything else
    /// (forest, terminals, observed edges) is computed between passes and
    /// never touched by `process`. So shards built with the same `n` and
    /// params can each ingest a slice of the stream and be merged here,
    /// bit-for-bit equal to one instance seeing the whole stream — the
    /// simultaneous-communication pattern of Filtser–Kapralov–Nouri.
    ///
    /// # Panics
    ///
    /// Panics if `other` was built with different `n`, seed, or `k`, or
    /// sits in a different pass.
    pub fn merge_pass_state(&mut self, other: &Self) {
        assert_eq!(self.n, other.n, "vertex count mismatch");
        assert_eq!(self.params.seed, other.params.seed, "seed mismatch");
        assert_eq!(self.params.k, other.params.k, "depth mismatch");
        assert_eq!(self.current_pass, other.current_pass, "pass mismatch");
        for (&(v, r, j), st) in &other.s_states {
            let family = &self.sketch_families[r as usize][j as usize];
            let mine = self
                .s_states
                .entry((v, r, j))
                .or_insert_with(|| family.new_state());
            mine.merge(st);
            if mine.is_zero() {
                self.s_states.remove(&(v, r, j));
            }
        }
        assert_eq!(
            self.tables.len(),
            other.tables.len(),
            "table shape mismatch"
        );
        for (mine, theirs) in self.tables.iter_mut().zip(&other.tables) {
            for (a, b) in mine.iter_mut().zip(theirs) {
                a.merge(b);
            }
        }
    }

    fn process_pass1(&mut self, up: &StreamUpdate) {
        self.pass1_apply(up.edge, up.delta as i128);
    }

    /// One pass-1 sketch update of `edge` with an arbitrary signed
    /// multiplicity `delta` — shared by stream processing (`delta = ±1`)
    /// and segment-delta patching (`delta` up to a full multiplicity).
    /// Every touched state is linear in `delta`, so one call with `delta
    /// = m` is bit-identical to `m` unit calls.
    fn pass1_apply(&mut self, edge: Edge, delta: i128) {
        let coord = edge.index(self.n);
        // Which E_j contain this coordinate (independent per level).
        let js: Vec<u8> = (0..self.edge_levels)
            .filter(|&j| self.edge_samplers[j].contains(coord))
            .map(|j| j as u8)
            .collect();
        if js.is_empty() {
            return;
        }
        let forest = self.forest.as_ref().expect("pass 1 forest present");
        let (eu, ev) = edge.endpoints();
        for (a, b) in [(eu, ev), (ev, eu)] {
            for r in 0..self.k {
                if !forest.is_center(r, b) {
                    continue;
                }
                for &j in &js {
                    let family = &self.sketch_families[r][j as usize];
                    let state = self
                        .s_states
                        .entry((a, r as u8, j))
                        .or_insert_with(|| family.new_state());
                    family.update(state, coord, delta);
                    if state.is_zero() {
                        self.s_states.remove(&(a, r as u8, j));
                    }
                }
            }
        }
    }

    /// Algorithm 1, lines 8–20: builds the forest from the pass-1 sketches.
    fn build_clusters(&mut self) {
        let mut forest = self.forest.take().expect("pass-1 forest present");
        for i in 0..self.k {
            let centers: Vec<Vertex> = forest.centers_at(i).collect();
            for u in centers {
                let node = NodeId::new(i, u);
                if i == self.k - 1 {
                    forest.set_terminal(node);
                    continue;
                }
                let members = forest.members(node);
                let r = (i + 1) as u8;
                let mut attached = false;
                for j in (0..self.edge_levels).rev() {
                    let family = &self.sketch_families[r as usize][j];
                    let mut q = family.new_state();
                    for &v in &members {
                        if let Some(st) = self.s_states.get(&(v, r, j as u8)) {
                            q.merge(st);
                        }
                    }
                    match family.decode(&q) {
                        Ok(items) if !items.is_empty() => {
                            for &(c, _) in &items {
                                let (x, y) = index_to_pair(c, self.n);
                                self.observed.insert(Edge::new(x, y));
                            }
                            let (c, _) = items[0];
                            let (x, y) = index_to_pair(c, self.n);
                            // The parent is an endpoint in C_{i+1}.
                            let w = if forest.is_center(i + 1, y) { y } else { x };
                            debug_assert!(forest.is_center(i + 1, w));
                            forest.set_parent(node, w, Edge::new(x, y));
                            attached = true;
                            break;
                        }
                        Ok(_) => {} // decodable but empty: keep descending
                        Err(_) => self.stats.sketch_decode_failures += 1,
                    }
                }
                if !attached {
                    forest.set_terminal(node);
                }
            }
        }
        // Fix the terminal order and chain classes for pass 2.
        self.terminals = forest.terminals();
        let index: HashMap<NodeId, usize> = self
            .terminals
            .iter()
            .enumerate()
            .map(|(i, &t)| (t, i))
            .collect();
        self.class_of = (0..self.n as Vertex)
            .map(|v| {
                let t = forest.chain_terminal(v).expect("complete forest");
                index[&t]
            })
            .collect();
        self.stats.num_terminals = self.terminals.len();
        self.forest = Some(forest);
        // The per-vertex pass-1 sketches are no longer needed to *decode*;
        // a plain deployment frees them between passes so space accounting
        // does not double-charge pass 2. Retaining mode keeps them — they
        // are the linear state a segment-delta patch advances.
        if !self.retain {
            self.s_states.clear();
        }
    }

    /// The pass-2 tables `H^t_j` of one terminal, seeded by the
    /// terminal's *identity* `(level, root)` — not by its index in the
    /// terminal list — so the same terminal draws the same randomness in
    /// every epoch. That is what lets [`patch`](Self::patch) keep a
    /// persisting terminal's retained table across a terminal-set change.
    fn fresh_terminal_tables(&self, t: NodeId) -> Vec<LinearHashTable> {
        let tree = SeedTree::new(self.params.seed ^ 0x5441_424C_4553_3253); // "TABLES2S"
        let key = (u64::from(t.level) << 32) | u64::from(t.root);
        let capacity = self.params.table_capacity(self.n, t.level as usize);
        (0..self.vertex_levels)
            .map(|j| LinearHashTable::new(capacity, 3, tree.child(key).child(j as u64).seed()))
            .collect()
    }

    fn setup_tables(&mut self) {
        let tables = self
            .terminals
            .iter()
            .map(|&t| self.fresh_terminal_tables(t))
            .collect();
        self.tables = tables;
    }

    fn process_pass2(&mut self, up: &StreamUpdate) {
        self.pass2_apply(up.edge, up.delta as i128);
    }

    /// One pass-2 table update of `edge` with an arbitrary signed
    /// multiplicity `delta` (see [`pass1_apply`](Self::pass1_apply) for
    /// why the two are interchangeable with unit updates).
    fn pass2_apply(&mut self, edge: Edge, delta: i128) {
        let (eu, ev) = edge.endpoints();
        let (ta, tb) = (self.class_of[eu as usize], self.class_of[ev as usize]);
        if ta == tb {
            return; // both endpoints in the same terminal cluster
        }
        self.pass2_apply_side(eu, ev, ta, delta);
        self.pass2_apply_side(ev, eu, tb, delta);
    }

    /// One directed half of a pass-2 update: `inside`'s neighborhood
    /// cell, keyed by `outside`, weighted `delta`, into table bank `t`
    /// (an index into `tables`). Split out so [`patch`](Self::patch) can
    /// route a contribution under the *previous* epoch's classes.
    fn pass2_apply_side(&mut self, inside: Vertex, outside: Vertex, t: usize, delta: i128) {
        for j in 0..self.vertex_levels {
            if self.vertex_samplers[j].contains(inside as u64) {
                let mut cell = OneSparseCell::new();
                cell.update(inside as u64, delta, &self.inner_hashes[j]);
                self.tables[t][j].update(outside as u64, &cell.to_words());
            }
        }
    }

    /// Algorithm 2, lines 19–33: assembles the spanner.
    ///
    /// A terminal's contribution is a deterministic function of its
    /// tables alone, so in retaining mode the per-terminal decodes are
    /// cached by terminal identity and replayed for terminals whose
    /// tables the preceding [`patch`](Self::patch) left untouched
    /// (`dirty_tables`); a full build decodes everything.
    fn build_spanner(&mut self) {
        let forest = self.forest.take().expect("forest present");
        let mut edges: HashSet<Edge> = forest.witness_edges().into_iter().collect();
        let dirty = self.dirty_tables.take();
        for ti in 0..self.terminals.len() {
            let t = self.terminals[ti];
            let clean = dirty.as_ref().is_some_and(|d| !d.contains(&ti));
            if clean {
                if let Some(cached) = self.spanner_cache.get(&t) {
                    for &e in &cached.edges {
                        edges.insert(e);
                        self.observed.insert(e);
                    }
                    self.stats.table_decode_failures += cached.table_failures;
                    self.stats.inner_decode_failures += cached.inner_failures;
                    continue;
                }
            }
            let mut dec = TerminalDecode::default();
            // Decode all tables of this terminal, sparsest level first.
            let decoded: Vec<Option<HashMap<u64, [i128; 3]>>> = (0..self.vertex_levels)
                .map(|j| match self.tables[ti][j].decode() {
                    Ok(entries) => Some(
                        entries
                            .into_iter()
                            .map(|(key, p)| (key, [p[0], p[1], p[2]]))
                            .collect(),
                    ),
                    Err(_) => {
                        dec.table_failures += 1;
                        None
                    }
                })
                .collect();
            // Union of keys across decodable levels.
            let mut keys: HashSet<u64> = HashSet::new();
            for d in decoded.iter().flatten() {
                keys.extend(d.keys().copied());
            }
            for &v in &keys {
                for j in (0..self.vertex_levels).rev() {
                    let Some(table) = &decoded[j] else { continue };
                    let Some(words) = table.get(&v) else { continue };
                    let Ok(cell) = OneSparseCell::from_words(words) else {
                        dec.inner_failures += 1;
                        continue;
                    };
                    match cell.decode(&self.inner_hashes[j]) {
                        Ok(Some((w, _))) if w != v && w < self.n as u64 => {
                            let e = Edge::new(w as Vertex, v as Vertex);
                            dec.edges.push(e);
                            break;
                        }
                        Ok(Some(_)) => dec.inner_failures += 1,
                        Ok(None) => {} // empty at this level: descend
                        Err(_) => dec.inner_failures += 1,
                    }
                }
            }
            for &e in &dec.edges {
                edges.insert(e);
                self.observed.insert(e);
            }
            self.stats.table_decode_failures += dec.table_failures;
            self.stats.inner_decode_failures += dec.inner_failures;
            if self.retain {
                self.spanner_cache.insert(t, dec);
            }
        }
        if self.retain {
            let live: HashSet<NodeId> = self.terminals.iter().copied().collect();
            self.spanner_cache.retain(|t, _| live.contains(t));
        }
        let spanner = Graph::from_edges(self.n, edges);
        let mut observed: Vec<Edge> = self.observed.iter().copied().collect();
        observed.sort_unstable();
        self.output = Some(TwoPassOutput {
            spanner,
            forest,
            observed_edges: observed,
            stats: self.stats.clone(),
        });
    }

    /// Advances a completed retaining-mode run to a nearby segment in
    /// O(changes) ingest work, returning output **bit-identical** to a
    /// from-scratch [`run_two_pass_net`] over `cur`.
    ///
    /// Why this is exact and not heuristic: every stream-facing state is
    /// a linear function of the net multiset, so applying the per-edge
    /// multiplicity deltas of `delta` to the retained pass-1 states
    /// yields the very states a full ingest of `cur` would produce — and
    /// everything downstream (forest, terminals, spanner) is a
    /// deterministic decode of those states. Pass 2 splits:
    ///
    /// - if the re-derived terminal list and chain classes are unchanged,
    ///   the retained tables are patched with the delta edges alone —
    ///   sound because a terminal's table content depends only on that
    ///   terminal's member set and the net multiset;
    /// - otherwise the retained tables are *repaired* in O(changes +
    ///   deg(moved vertices)): tables are identity-keyed (see
    ///   [`fresh_terminal_tables`](Self::fresh_terminal_tables)), so a
    ///   persisting terminal's table stays valid; the delta is applied
    ///   under the old classes, carrying every persisting table to
    ///   `cur`'s content *as routed by the old classes*; then every
    ///   `cur` edge incident to a vertex whose terminal identity changed
    ///   has its old-routed contribution subtracted and its new-routed
    ///   one added. An edge whose endpoints both kept their terminal
    ///   identity routes the same either way (same gate, same target
    ///   identity, same seeds), and every member of a new terminal is by
    ///   definition a moved vertex — so nothing else needs touching.
    ///
    /// `delta` must be `cur.diff(&prev)` for the segment `prev` this
    /// instance currently represents; feeding a mismatched delta silently
    /// moves the states to a segment that is neither.
    ///
    /// # Panics
    ///
    /// Panics if the instance is not in retaining mode, has not completed
    /// both passes, or `cur` disagrees on the vertex count.
    pub fn patch<M>(&mut self, delta: &SegmentDelta, cur: &M) -> &TwoPassOutput
    where
        M: dsg_graph::EdgeMultiset + ?Sized,
    {
        assert!(self.retain, "patch requires a retaining-mode instance");
        assert!(self.output.is_some(), "patch requires a completed run");
        assert_eq!(cur.num_vertices(), self.n, "vertex count mismatch");

        // Fresh forest first: centers are a function of (n, k, seed)
        // only, and pass-1 patching consults center membership.
        self.forest = Some(ClusterForest::new(self.n, self.k, self.params.seed));
        self.observed.clear();
        self.stats = TwoPassStats::default();

        // Pass 1 in O(changes): move the retained linear states to `cur`.
        let mut ups: Vec<(Edge, i128)> = Vec::new();
        delta.for_each_multiplicity_delta(&mut |e, d, _| ups.push((e, d)));
        for &(e, d) in &ups {
            self.pass1_apply(e, d);
        }
        self.stats.pass1_bytes = self.measured_bytes();
        let prev_terminals = std::mem::take(&mut self.terminals);
        let prev_class = std::mem::take(&mut self.class_of);
        self.build_clusters();

        let mut dirty: HashSet<usize> = HashSet::new();
        if self.terminals == prev_terminals && self.class_of == prev_class {
            // Identical terminal structure: the delta edges alone carry
            // the retained tables to `cur`'s tables.
            for &(e, d) in &ups {
                let (eu, ev) = e.endpoints();
                let (ta, tb) = (self.class_of[eu as usize], self.class_of[ev as usize]);
                if ta != tb {
                    dirty.insert(ta);
                    dirty.insert(tb);
                }
                self.pass2_apply(e, d);
            }
        } else {
            // Re-key the retained tables by terminal identity: a
            // persisting terminal keeps its table wherever it lands in
            // the new order; new terminals start from zero.
            let old_index: HashMap<NodeId, usize> = prev_terminals
                .iter()
                .enumerate()
                .map(|(i, &t)| (t, i))
                .collect();
            let new_index: HashMap<NodeId, usize> = self
                .terminals
                .iter()
                .enumerate()
                .map(|(i, &t)| (t, i))
                .collect();
            let new_of_old: Vec<Option<usize>> = prev_terminals
                .iter()
                .map(|t| new_index.get(t).copied())
                .collect();
            let mut old_tables: Vec<Option<Vec<LinearHashTable>>> =
                std::mem::take(&mut self.tables)
                    .into_iter()
                    .map(Some)
                    .collect();
            let mut tables = Vec::with_capacity(self.terminals.len());
            for (ni, t) in self.terminals.iter().enumerate() {
                if let Some(&oi) = old_index.get(t) {
                    tables.push(old_tables[oi].take().expect("terminals are distinct"));
                } else {
                    dirty.insert(ni);
                    tables.push(self.fresh_terminal_tables(*t));
                }
            }
            self.tables = tables;

            // The delta under the OLD routing: persisting tables now
            // hold every `cur` edge's old-routed contribution.
            for &(e, d) in &ups {
                let (eu, ev) = e.endpoints();
                let (oa, ob) = (prev_class[eu as usize], prev_class[ev as usize]);
                if oa == ob {
                    continue;
                }
                for (inside, outside, oc) in [(eu, ev, oa), (ev, eu, ob)] {
                    if let Some(ni) = new_of_old[oc] {
                        dirty.insert(ni);
                        self.pass2_apply_side(inside, outside, ni, d);
                    }
                }
            }

            // Re-route every `cur` edge incident to a vertex whose
            // terminal identity changed: subtract the old-routed
            // contribution, add the new-routed one.
            let moved: Vec<bool> = (0..self.n)
                .map(|v| prev_terminals[prev_class[v]] != self.terminals[self.class_of[v]])
                .collect();
            cur.for_each_net_edge(&mut |ne| {
                let (eu, ev) = ne.edge.endpoints();
                if !moved[eu as usize] && !moved[ev as usize] {
                    return;
                }
                let m = ne.multiplicity as i128;
                let (oa, ob) = (prev_class[eu as usize], prev_class[ev as usize]);
                if oa != ob {
                    for (inside, outside, oc) in [(eu, ev, oa), (ev, eu, ob)] {
                        if let Some(ni) = new_of_old[oc] {
                            dirty.insert(ni);
                            self.pass2_apply_side(inside, outside, ni, -m);
                        }
                    }
                }
                let (na, nb) = (self.class_of[eu as usize], self.class_of[ev as usize]);
                if na != nb {
                    dirty.insert(na);
                    dirty.insert(nb);
                    self.pass2_apply(ne.edge, m);
                }
            });
        }
        self.stats.pass2_bytes = self.measured_bytes();
        self.dirty_tables = Some(dirty);
        self.build_spanner();
        self.output.as_ref().expect("patched run completed")
    }

    fn measured_bytes(&self) -> usize {
        let samplers: usize = self.edge_samplers.space_bytes() + self.vertex_samplers.space_bytes();
        let families: usize = self
            .sketch_families
            .iter()
            .map(|row| row.iter().map(SpaceUsage::space_bytes).sum::<usize>())
            .sum();
        let states: usize = self
            .s_states
            .values()
            .map(SpaceUsage::space_bytes)
            .sum::<usize>()
            + self.s_states.len() * 8;
        let tables: usize = self
            .tables
            .iter()
            .map(|row| row.iter().map(SpaceUsage::space_bytes).sum::<usize>())
            .sum();
        let inner: usize = self.inner_hashes.iter().map(SpaceUsage::space_bytes).sum();
        samplers + families + states + tables + inner
    }
}

impl StreamAlgorithm for TwoPassSpanner {
    fn num_passes(&self) -> usize {
        2
    }

    fn begin_pass(&mut self, pass: usize) {
        self.current_pass = pass;
        if pass == 1 {
            assert!(
                !self.terminals.is_empty() || self.n == 0,
                "pass 2 requires the pass-1 forest"
            );
            self.setup_tables();
        }
    }

    fn process(&mut self, update: &StreamUpdate) {
        match self.current_pass {
            0 => self.process_pass1(update),
            1 => self.process_pass2(update),
            _ => unreachable!("two-pass algorithm"),
        }
    }

    fn end_pass(&mut self, pass: usize) {
        if pass == 0 {
            self.stats.pass1_bytes = self.measured_bytes();
            self.build_clusters();
        } else {
            self.stats.pass2_bytes = self.measured_bytes();
            self.build_spanner();
        }
    }
}

impl SpaceUsage for TwoPassSpanner {
    fn space_bytes(&self) -> usize {
        self.measured_bytes()
    }
}

/// Convenience: runs the two-pass spanner over a stream and returns the
/// output.
///
/// # Examples
///
/// ```
/// use dsg_graph::{gen, GraphStream};
/// use dsg_spanner::{twopass, SpannerParams};
///
/// let g = gen::erdos_renyi(50, 0.2, 1);
/// let stream = GraphStream::with_churn(&g, 1.0, 2);
/// let out = twopass::run_two_pass(&stream, SpannerParams::new(2, 3));
/// assert!(out.spanner.num_edges() > 0);
/// ```
pub fn run_two_pass(stream: &dsg_graph::GraphStream, params: SpannerParams) -> TwoPassOutput {
    let mut alg = TwoPassSpanner::new(stream.num_vertices(), params);
    dsg_graph::pass::run(&mut alg, stream);
    alg.into_output().expect("both passes completed")
}

/// Runs the two-pass spanner over a **net edge multiset** view instead of
/// a materialized stream — the generalized entry point compacted serving
/// and durability layers rebuild epoch artifacts from.
///
/// Each pass costs O(current edges) rather than O(stream length), and the
/// output is bit-identical to [`run_two_pass`] on any raw stream with the
/// same net effect: within a pass the algorithm's stream-facing state is
/// linear in the updates, and everything between passes is a
/// deterministic function of that state, so only the net multiset can be
/// observed. `net_rebuild_matches_stream_replay` (and the service layer's
/// property tests) assert the equivalence end to end.
///
/// # Examples
///
/// ```
/// use dsg_graph::{gen, GraphStream};
/// use dsg_spanner::{twopass, SpannerParams};
///
/// let g = gen::erdos_renyi(50, 0.2, 1);
/// let stream = GraphStream::with_churn(&g, 2.0, 2);
/// let params = SpannerParams::new(2, 3);
/// let raw = twopass::run_two_pass(&stream, params);
/// let net = twopass::run_two_pass_net(&stream.net_multiset(), params);
/// assert_eq!(raw.spanner.edges(), net.spanner.edges());
/// ```
pub fn run_two_pass_net<M>(view: &M, params: SpannerParams) -> TwoPassOutput
where
    M: dsg_graph::EdgeMultiset + ?Sized,
{
    let mut alg = TwoPassSpanner::new(view.num_vertices(), params);
    dsg_graph::pass::run_multiset(&mut alg, view);
    alg.into_output().expect("both passes completed")
}

/// [`run_two_pass_net`] in retaining mode: same output (bit for bit),
/// plus the instance holding every pass-facing linear state — the seed of
/// an O(changes) [`patch`](TwoPassSpanner::patch) chain across epochs.
pub fn run_two_pass_net_retained<M>(
    view: &M,
    params: SpannerParams,
) -> (TwoPassOutput, TwoPassSpanner)
where
    M: dsg_graph::EdgeMultiset + ?Sized,
{
    let mut alg = TwoPassSpanner::new(view.num_vertices(), params).retaining();
    dsg_graph::pass::run_multiset(&mut alg, view);
    let out = alg.output().cloned().expect("both passes completed");
    (out, alg)
}

/// The worst-case space bound of Theorem 1 in bytes, for context in
/// experiment tables: `~O(k · n^{1+1/k} · log^3 n)` words.
pub fn theorem1_space_bound_bytes(n: usize, k: usize) -> f64 {
    let nf = n as f64;
    let logn = nf.log2().max(1.0);
    8.0 * k as f64 * nf.powf(1.0 + 1.0 / k as f64) * logn * logn * logn
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify;
    use dsg_graph::{gen, GraphStream};

    fn spanner_for(g: &Graph, k: usize, seed: u64) -> TwoPassOutput {
        let stream = GraphStream::with_churn(g, 1.0, seed ^ 0xABCD);
        run_two_pass(&stream, SpannerParams::new(k, seed))
    }

    #[test]
    fn spanner_is_subgraph() {
        let g = gen::erdos_renyi(60, 0.15, 1);
        let out = spanner_for(&g, 2, 2);
        assert!(
            verify::is_subgraph(&g, &out.spanner),
            "spanner contains non-edges"
        );
    }

    #[test]
    fn stretch_within_2_to_k() {
        for (k, seed) in [(1usize, 3u64), (2, 4), (3, 5)] {
            let g = gen::erdos_renyi(60, 0.15, seed);
            let out = spanner_for(&g, k, seed);
            let stretch = verify::max_multiplicative_stretch(&g, &out.spanner, 60);
            assert!(
                stretch <= (1u64 << k) as f64,
                "k={k}: stretch {stretch} (failures: {:?})",
                out.stats
            );
        }
    }

    #[test]
    fn preserves_connectivity_under_churn() {
        let g = gen::erdos_renyi(70, 0.1, 6);
        let stream = GraphStream::with_churn(&g, 2.0, 7);
        let out = run_two_pass(&stream, SpannerParams::new(2, 8));
        assert_eq!(
            dsg_graph::components::num_components(&g),
            dsg_graph::components::num_components(&out.spanner),
        );
    }

    #[test]
    fn deletions_fully_respected() {
        // Deleted edges must never appear in the spanner.
        let g = gen::erdos_renyi(50, 0.2, 9);
        let stream = GraphStream::with_churn(&g, 3.0, 10);
        let out = run_two_pass(&stream, SpannerParams::new(2, 11));
        assert!(verify::is_subgraph(&g, &out.spanner));
    }

    #[test]
    fn net_rebuild_matches_stream_replay() {
        // The compaction correctness ground: rebuilding both passes from
        // the net edge multiset is bit-identical to replaying the raw
        // churn stream — spanner edges, observed edges, forest shape.
        for seed in [31u64, 32, 33] {
            let g = gen::erdos_renyi(40, 0.2, seed);
            let stream = GraphStream::with_churn(&g, 2.0, seed ^ 0x9E37);
            let params = SpannerParams::new(2, seed);
            let raw = run_two_pass(&stream, params);
            let net = run_two_pass_net(&stream.net_multiset(), params);
            assert_eq!(raw.spanner.edges(), net.spanner.edges(), "seed {seed}");
            assert_eq!(raw.observed_edges, net.observed_edges, "seed {seed}");
            assert_eq!(
                raw.forest.witness_edges(),
                net.forest.witness_edges(),
                "seed {seed}"
            );
            assert_eq!(raw.stats.num_terminals, net.stats.num_terminals);
        }
    }

    #[test]
    fn observed_superset_of_spanner() {
        let g = gen::erdos_renyi(40, 0.2, 12);
        let out = spanner_for(&g, 2, 13);
        let observed: HashSet<Edge> = out.observed_edges.iter().copied().collect();
        for e in out.spanner.edges() {
            assert!(observed.contains(e), "spanner edge {e} not observed");
        }
        // Observed edges must be real edges.
        let real = g.edge_set();
        for e in &out.observed_edges {
            assert!(real.contains(e), "observed non-edge {e}");
        }
    }

    #[test]
    fn size_obeys_lemma12() {
        let n = 120;
        let g = gen::erdos_renyi(n, 0.5, 14);
        let out = spanner_for(&g, 2, 15);
        let bound = 8.0 * 2.0 * (n as f64).powf(1.5) * (n as f64).log2();
        assert!(
            (out.spanner.num_edges() as f64) < bound,
            "size {} exceeds bound {bound}",
            out.spanner.num_edges()
        );
    }

    #[test]
    fn matches_offline_stretch_quality() {
        // Streaming and offline use the same center sets; both must deliver
        // ≤ 2^k stretch on the same input.
        let g = gen::erdos_renyi(50, 0.2, 16);
        let params = SpannerParams::new(2, 17);
        let off = crate::offline::build_spanner(&g, params);
        let out = spanner_for(&g, 2, 17);
        let s_off = verify::max_multiplicative_stretch(&g, &off.spanner, 50);
        let s_str = verify::max_multiplicative_stretch(&g, &out.spanner, 50);
        assert!(
            s_off <= 4.0 && s_str <= 4.0,
            "offline {s_off}, streaming {s_str}"
        );
    }

    #[test]
    fn stats_populated() {
        let g = gen::erdos_renyi(40, 0.2, 18);
        let out = spanner_for(&g, 2, 19);
        assert!(out.stats.pass1_bytes > 0);
        assert!(out.stats.pass2_bytes > 0);
        assert!(out.stats.num_terminals > 0);
    }

    #[test]
    fn empty_graph_stream() {
        let stream = GraphStream::new(10, vec![]);
        let out = run_two_pass(&stream, SpannerParams::new(2, 20));
        assert_eq!(out.spanner.num_edges(), 0);
    }

    #[test]
    fn star_graph_exact() {
        // A star has diameter 2; the spanner must keep it ≤ 2·2^k but in
        // fact the star is its own best spanner.
        let g = gen::star(30);
        let out = spanner_for(&g, 2, 21);
        let stretch = verify::max_multiplicative_stretch(&g, &out.spanner, 30);
        assert!(stretch <= 4.0);
        assert_eq!(dsg_graph::components::num_components(&out.spanner), 1);
    }

    #[test]
    fn disconnected_graph_handled() {
        // Two components; spanner must not bridge them.
        let mut edges = Vec::new();
        for u in 0..10u32 {
            for v in (u + 1)..10 {
                edges.push(Edge::new(u, v));
                edges.push(Edge::new(u + 10, v + 10));
            }
        }
        let g = Graph::from_edges(20, edges);
        let out = spanner_for(&g, 2, 22);
        assert_eq!(dsg_graph::components::num_components(&out.spanner), 2);
        assert!(verify::is_subgraph(&g, &out.spanner));
    }

    #[test]
    fn space_grows_slower_than_edges() {
        // On a dense graph the sketch space must be far below storing all
        // edges' worth of structure… we check the measured bytes against
        // the Theorem 1 bound shape.
        let n = 100;
        let g = gen::erdos_renyi(n, 0.8, 23);
        let out = spanner_for(&g, 2, 24);
        let bound = theorem1_space_bound_bytes(n, 2);
        assert!(
            (out.stats.pass1_bytes as f64) < bound,
            "pass1 {}",
            out.stats.pass1_bytes
        );
        assert!(
            (out.stats.pass2_bytes as f64) < bound,
            "pass2 {}",
            out.stats.pass2_bytes
        );
    }

    #[test]
    fn num_pairs_universe_consistency() {
        // Edge coordinates must fit the sketch key universe.
        let n = 1000usize;
        assert!(dsg_graph::ids::num_pairs(n) < 1 << 60);
    }

    #[test]
    fn retained_run_matches_plain_run() {
        let g = gen::erdos_renyi(40, 0.2, 41);
        let net = GraphStream::with_churn(&g, 1.0, 42).net_multiset();
        let params = SpannerParams::new(2, 43);
        let plain = run_two_pass_net(&net, params);
        let (kept, _alg) = run_two_pass_net_retained(&net, params);
        assert_eq!(plain.spanner.edges(), kept.spanner.edges());
        assert_eq!(plain.observed_edges, kept.observed_edges);
        assert_eq!(plain.forest.witness_edges(), kept.forest.witness_edges());
    }

    /// Perturbs `frac` of the live pairs of `g` (half removed, half
    /// replaced by fresh non-edges) — a churned "next epoch" live graph.
    fn churned(g: &Graph, frac: f64, seed: u64) -> Graph {
        let n = g.num_vertices();
        let mut edges: Vec<Edge> = g.edges().to_vec();
        let kill = ((edges.len() as f64 * frac).ceil() as usize).min(edges.len());
        // Deterministic pseudo-shuffle by hashing positions.
        edges.sort_unstable_by_key(|e| e.index(n).wrapping_mul(seed | 1));
        let mut replaced = 0usize;
        let survivors: Vec<Edge> = edges[kill..].to_vec();
        let mut out: std::collections::HashSet<Edge> = survivors.into_iter().collect();
        'hunt: for u in 0..n as Vertex {
            for v in (u + 1)..n as Vertex {
                if replaced >= kill / 2 {
                    break 'hunt;
                }
                let e = Edge::new(u, v);
                if !g.has_edge(u, v) && !out.contains(&e) {
                    out.insert(e);
                    replaced += 1;
                }
            }
        }
        Graph::from_edges(n, out)
    }

    #[test]
    fn patch_is_bit_identical_to_full_rebuild_at_every_churn_level() {
        // The tentpole contract: patched output ≡ from-scratch output, at
        // light churn (fast pass-2 path likely) and heavy churn (terminal
        // structure moves, fallback pass-2 path) alike.
        let params = SpannerParams::new(2, 51);
        let g = gen::erdos_renyi(50, 0.25, 52);
        let prev_net = GraphStream::with_churn(&g, 1.0, 53).net_multiset();
        for (frac, seed) in [(0.02, 54u64), (0.1, 55), (0.5, 56), (1.0, 57)] {
            let cur_graph = churned(&g, frac, seed);
            let cur_net = GraphStream::insert_only(&cur_graph, seed).net_multiset();
            let delta = cur_net.diff(&prev_net);
            assert!(!delta.is_empty(), "churn {frac} must change something");

            let (_, mut alg) = run_two_pass_net_retained(&prev_net, params);
            let patched = alg.patch(&delta, &cur_net);
            let full = run_two_pass_net(&cur_net, params);
            assert_eq!(
                patched.spanner.edges(),
                full.spanner.edges(),
                "churn {frac}"
            );
            assert_eq!(patched.observed_edges, full.observed_edges, "churn {frac}");
            assert_eq!(
                patched.forest.witness_edges(),
                full.forest.witness_edges(),
                "churn {frac}"
            );
            assert_eq!(patched.stats.num_terminals, full.stats.num_terminals);
        }
    }

    #[test]
    fn patch_chain_stays_identical_across_epochs() {
        // A chain of patches (each epoch patched from the last) must not
        // drift: epoch t's patched output equals a from-scratch build.
        let params = SpannerParams::new(2, 61);
        let mut live = gen::erdos_renyi(40, 0.2, 62);
        let mut net = GraphStream::insert_only(&live, 63).net_multiset();
        let (_, mut alg) = run_two_pass_net_retained(&net, params);
        for epoch in 0..4u64 {
            live = churned(&live, 0.08, 64 + epoch);
            let next = GraphStream::insert_only(&live, 65 + epoch).net_multiset();
            let patched = alg.patch(&next.diff(&net), &next);
            let full = run_two_pass_net(&next, params);
            assert_eq!(
                patched.spanner.edges(),
                full.spanner.edges(),
                "epoch {epoch}"
            );
            assert_eq!(patched.observed_edges, full.observed_edges, "epoch {epoch}");
            net = next;
        }
    }
}
