//! Spanners in dynamic streams — the primary contribution of
//! Kapralov–Woodruff (PODC 2014).
//!
//! Three constructions:
//!
//! * [`TwoPassSpanner`] — the paper's headline Theorem 1: a **two-pass**
//!   streaming algorithm computing a multiplicative `2^k`-spanner in
//!   `~O(n^{1+1/k})` bits. Pass one (Algorithm 1) grows a hierarchy of
//!   clusters around vertex samples `C_0 ⊇ C_1 ⊇ … sampling rates
//!   n^{-i/k}` connected through sparse-recovery sketches; pass two
//!   (Algorithm 2) recovers one edge to every neighbor of each terminal
//!   cluster through linear hash tables.
//! * [`AdditiveSpanner`] — Theorem 3/19: a **single-pass** `O(n/d)`-additive
//!   spanner in `~O(nd)` space (Algorithm 3), combining per-vertex
//!   neighborhood sketches, a sampled center set, and AGM spanning forests
//!   on the cluster-contracted graph.
//! * [`offline`] — the non-streaming reference implementation of the basic
//!   clustering algorithm (Section 3.1), used for cross-validation, plus
//!   [`baswana_sen`], the classical `(2k-1)`-spanner the paper compares
//!   space/stretch/passes against.
//!
//! Supporting modules: [`cluster`] (the forest `F` with witness edges and
//!   terminal bookkeeping shared by both implementations), [`weighted`]
//!   (Remark 14's geometric weight classes), [`verify`] (stretch and
//!   distortion measurement), and the augmented-output machinery of
//!   Claims 16/18/20 that the sparsifier crate consumes
//!   ([`twopass::TwoPassOutput::observed_edges`]).
//!
//! # Examples
//!
//! ```
//! use dsg_graph::{gen, GraphStream, pass};
//! use dsg_spanner::{SpannerParams, TwoPassSpanner, verify};
//!
//! let g = gen::erdos_renyi(80, 0.15, 1);
//! let stream = GraphStream::with_churn(&g, 1.0, 2);
//! let mut alg = TwoPassSpanner::new(80, SpannerParams::new(2, 42));
//! pass::run(&mut alg, &stream);
//! let out = alg.into_output().unwrap();
//! let stretch = verify::max_multiplicative_stretch(&g, &out.spanner, 40);
//! assert!(stretch <= 4.0); // 2^k with k = 2
//! ```

pub mod additive;
pub mod baswana_sen;
pub mod cluster;
pub mod offline;
pub mod oracle;
pub mod params;
pub mod twopass;
pub mod verify;
pub mod weighted;

pub use additive::{AdditiveParams, AdditiveSpanner};
pub use cluster::{ClusterForest, NodeId};
pub use oracle::DistanceOracle;
pub use params::SpannerParams;
pub use twopass::{TwoPassOutput, TwoPassSpanner};
pub use weighted::WeightedTwoPassSpanner;
