//! The Baswana–Sen `(2k-1)`-spanner — the classical offline baseline.
//!
//! The paper positions its two-pass `2^k` construction against the
//! `(2k-1)`-stretch, `O(k n^{1+1/k})`-size spanners of Baswana–Sen (BS07)
//! (and notes its own algorithm "does not seem to be a less adaptive
//! implementation" of it). This module implements the unweighted BS
//! algorithm so experiments can put the streaming constructions' size and
//! stretch next to the classical offline tradeoff (experiment E14).

use dsg_graph::{Edge, Graph, Vertex};
use dsg_hash::derive_seed;
use std::collections::{BTreeMap, HashSet};

/// Builds a `(2k-1)`-spanner of `g` with the Baswana–Sen clustering.
///
/// # Panics
///
/// Panics if `k == 0`.
///
/// # Examples
///
/// ```
/// use dsg_graph::gen;
/// use dsg_spanner::baswana_sen;
///
/// let g = gen::erdos_renyi(60, 0.3, 1);
/// let h = baswana_sen::build_spanner(&g, 2, 42);
/// assert!(h.num_edges() <= g.num_edges());
/// ```
pub fn build_spanner(g: &Graph, k: usize, seed: u64) -> Graph {
    assert!(k >= 1, "k must be at least 1");
    let n = g.num_vertices();
    let sample_rate = (n.max(2) as f64).powf(-1.0 / k as f64);
    // Per-(round, center) coin flips keyed by hashing, so the construction
    // is deterministic regardless of set-iteration order.
    let coin = |round: usize, center: Vertex| {
        let h = derive_seed(seed, &[round as u64, center as u64]);
        (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < sample_rate
    };

    // Remaining edges as adjacency sets (edges are removed as they are
    // spanned or discarded).
    let mut adj: Vec<HashSet<Vertex>> = vec![HashSet::new(); n];
    for e in g.edges() {
        adj[e.u() as usize].insert(e.v());
        adj[e.v() as usize].insert(e.u());
    }
    let mut spanner: HashSet<Edge> = HashSet::new();
    // cluster[v] = Some(center) while v is clustered; None once discarded.
    let mut cluster: Vec<Option<Vertex>> = (0..n as Vertex).map(Some).collect();

    // Phase 1: k-1 sampling iterations.
    for round in 0..k.saturating_sub(1) {
        // Sample the surviving cluster centers.
        let centers: HashSet<Vertex> = cluster.iter().flatten().copied().collect();
        let sampled: HashSet<Vertex> = centers
            .iter()
            .copied()
            .filter(|&c| coin(round, c))
            .collect();
        let mut next_cluster: Vec<Option<Vertex>> = vec![None; n];
        // Vertices inside sampled clusters stay put.
        for v in 0..n {
            if let Some(c) = cluster[v] {
                if sampled.contains(&c) {
                    next_cluster[v] = Some(c);
                }
            }
        }
        for v in 0..n as Vertex {
            let vi = v as usize;
            if cluster[vi].is_none() || next_cluster[vi].is_some() {
                continue; // discarded earlier, or already in a sampled cluster
            }
            // Group v's remaining neighbors by their current cluster.
            let mut by_cluster: BTreeMap<Vertex, Vertex> = BTreeMap::new();
            for &w in &adj[vi] {
                if let Some(c) = cluster[w as usize] {
                    let slot = by_cluster.entry(c).or_insert(w);
                    if w < *slot {
                        *slot = w;
                    } // deterministic representative
                }
            }
            // Adjacent sampled cluster?
            let joined = by_cluster
                .iter()
                .find(|(c, _)| sampled.contains(c))
                .map(|(&c, &w)| (c, w));
            match joined {
                Some((c, w)) => {
                    // Join c through edge (v, w); drop edges into c.
                    spanner.insert(Edge::new(v, w));
                    next_cluster[vi] = Some(c);
                    let into_c: Vec<Vertex> = adj[vi]
                        .iter()
                        .copied()
                        .filter(|&x| cluster[x as usize] == Some(c))
                        .collect();
                    for x in into_c {
                        adj[vi].remove(&x);
                        adj[x as usize].remove(&v);
                    }
                }
                None => {
                    // No sampled neighbor cluster: one edge per adjacent
                    // cluster, then v drops out.
                    for (&c, &w) in &by_cluster {
                        spanner.insert(Edge::new(v, w));
                        let into_c: Vec<Vertex> = adj[vi]
                            .iter()
                            .copied()
                            .filter(|&x| cluster[x as usize] == Some(c))
                            .collect();
                        for x in into_c {
                            adj[vi].remove(&x);
                            adj[x as usize].remove(&v);
                        }
                    }
                    next_cluster[vi] = None;
                }
            }
        }
        cluster = next_cluster;
    }

    // Phase 2: vertex–cluster joining on the remaining edges.
    for v in 0..n as Vertex {
        let vi = v as usize;
        let mut by_cluster: BTreeMap<Vertex, Vertex> = BTreeMap::new();
        for &w in &adj[vi] {
            if let Some(c) = cluster[w as usize] {
                let slot = by_cluster.entry(c).or_insert(w);
                if w < *slot {
                    *slot = w;
                } // deterministic representative
            }
        }
        for &w in by_cluster.values() {
            spanner.insert(Edge::new(v, w));
        }
    }

    Graph::from_edges(n, spanner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify;
    use dsg_graph::gen;

    #[test]
    fn spanner_is_subgraph() {
        let g = gen::erdos_renyi(70, 0.25, 1);
        let h = build_spanner(&g, 3, 2);
        assert!(verify::is_subgraph(&g, &h));
    }

    #[test]
    fn stretch_within_2k_minus_1() {
        for (k, seed) in [(1usize, 3u64), (2, 4), (3, 5)] {
            let g = gen::erdos_renyi(60, 0.2, seed);
            let h = build_spanner(&g, k, seed * 31);
            let stretch = verify::max_multiplicative_stretch(&g, &h, 60);
            assert!(
                stretch <= (2 * k - 1) as f64 + 1e-9,
                "k={k}: stretch {stretch} exceeds {}",
                2 * k - 1
            );
        }
    }

    #[test]
    fn k1_returns_whole_graph() {
        let g = gen::erdos_renyi(30, 0.3, 6);
        let h = build_spanner(&g, 1, 7);
        assert_eq!(h.num_edges(), g.num_edges());
    }

    #[test]
    fn size_compresses_dense_graphs() {
        let g = gen::complete(80);
        let h = build_spanner(&g, 2, 8);
        // Expected O(n^{1.5}) ≈ 716 edges vs 3160 in K_80.
        assert!(
            h.num_edges() < g.num_edges() / 2,
            "spanner has {} of {} edges",
            h.num_edges(),
            g.num_edges()
        );
        let stretch = verify::max_multiplicative_stretch(&g, &h, 80);
        assert!(stretch <= 3.0);
    }

    #[test]
    fn connectivity_preserved() {
        let g = gen::erdos_renyi(60, 0.1, 9);
        let h = build_spanner(&g, 3, 10);
        assert_eq!(
            dsg_graph::components::num_components(&g),
            dsg_graph::components::num_components(&h)
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let g = gen::erdos_renyi(40, 0.3, 11);
        assert_eq!(build_spanner(&g, 2, 12), build_spanner(&g, 2, 12));
    }
}
