//! The cluster forest `F` of the two-pass spanner (Section 3.1).
//!
//! The forest lives on `V × {0, …, k-1}`: vertex `u` is present at level `i`
//! via the copy `(i, u)` whenever `u ∈ C_i` (the paper's footnote 2). Edges
//! of `F` connect a copy `(i, u)` to a parent copy `(i+1, w)`, and each such
//! logical edge is *witnessed* by a real graph edge `φ((u,w)) = (a, w)` with
//! `a` in `u`'s subtree — the witnesses are what the spanner inherits.
//!
//! Terminology implemented here:
//!
//! * **members** of a copy — the union of root vertices over its subtree
//!   (the paper's `T_u`); used for the pass-1 sketch sums
//!   `Q^{i+1}_j(u) = Σ_{v ∈ T_u} S^{i+1}_j(v)` and neighborhood bounds;
//! * **chain terminal** `t(v)` — the terminal copy reached by following
//!   parents from `(0, v)` (well defined because `C_0 = V`); the chain
//!   classes partition `V` and are the "terminal parent" assignment of
//!   Algorithm 2. (The two notions can differ on copy roots whose own chain
//!   detached elsewhere — the paper elides this in footnote 2; both choices
//!   satisfy Lemmas 12/13, see DESIGN.md.)

use dsg_graph::{Edge, Vertex};
use dsg_hash::{SeedTree, SubsetSampler};
use std::collections::{HashMap, HashSet};

/// A copy `(level, root)` in the forest on `V × {0, …, k-1}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId {
    /// The hierarchy level `i` (so `root ∈ C_i`).
    pub level: u8,
    /// The vertex whose copy this is.
    pub root: Vertex,
}

impl NodeId {
    /// Creates the copy of `root` at `level`.
    pub fn new(level: usize, root: Vertex) -> Self {
        Self {
            level: level as u8,
            root,
        }
    }
}

/// The hierarchical cluster forest with witness edges.
///
/// # Examples
///
/// ```
/// use dsg_spanner::cluster::ClusterForest;
/// use dsg_graph::Edge;
///
/// // A 2-level forest over 4 vertices (deterministic centers from a seed).
/// let mut f = ClusterForest::new(4, 2, 7);
/// // Level-0 copies exist for every vertex (C_0 = V).
/// assert_eq!(f.centers_at(0).count(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct ClusterForest {
    n: usize,
    k: usize,
    /// `center_membership[i][v]`: whether `v ∈ C_i`.
    center_membership: Vec<Vec<bool>>,
    /// Parent root at `level+1` for each non-terminal copy.
    parent: HashMap<NodeId, Vertex>,
    /// Witness graph edge for each parent link.
    witness: HashMap<NodeId, Edge>,
    /// Copies marked terminal.
    terminal: HashSet<NodeId>,
    /// Children (roots at `level-1`) of each copy.
    children: HashMap<NodeId, Vec<Vertex>>,
}

impl ClusterForest {
    /// Creates an empty forest with center sets `C_i` sampled at rates
    /// `n^{-i/k}` from `seed` (shared by the offline and streaming
    /// implementations so they can be cross-validated).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `n == 0`.
    pub fn new(n: usize, k: usize, seed: u64) -> Self {
        assert!(k >= 1, "k must be at least 1");
        assert!(n >= 1, "n must be at least 1");
        let tree = SeedTree::new(seed ^ 0x434C_5553_5445_5253); // "CLUSTERS"
        let center_membership = (0..k)
            .map(|i| {
                if i == 0 {
                    vec![true; n] // C_0 = V (rate n^0 = 1)
                } else {
                    let rate = (n.max(2) as f64).powf(-(i as f64) / k as f64);
                    let sampler = SubsetSampler::new(tree.child(i as u64).seed(), rate);
                    (0..n as u64).map(|v| sampler.contains(v)).collect()
                }
            })
            .collect();
        Self {
            n,
            k,
            center_membership,
            parent: HashMap::new(),
            witness: HashMap::new(),
            terminal: HashSet::new(),
            children: HashMap::new(),
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Hierarchy depth `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Whether `v ∈ C_i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= k`.
    pub fn is_center(&self, i: usize, v: Vertex) -> bool {
        self.center_membership[i][v as usize]
    }

    /// Iterates over the members of `C_i` in vertex order.
    pub fn centers_at(&self, i: usize) -> impl Iterator<Item = Vertex> + '_ {
        self.center_membership[i]
            .iter()
            .enumerate()
            .filter(|(_, &m)| m)
            .map(|(v, _)| v as Vertex)
    }

    /// Records that copy `node` attaches to parent root `w` (at
    /// `node.level + 1`) with witness edge `witness`.
    ///
    /// # Panics
    ///
    /// Panics if `node` already has a parent or is terminal, if `w` is not
    /// in `C_{level+1}`, or if the witness does not touch `w`.
    pub fn set_parent(&mut self, node: NodeId, w: Vertex, witness: Edge) {
        assert!(
            !self.parent.contains_key(&node),
            "copy {node:?} already attached"
        );
        assert!(
            !self.terminal.contains(&node),
            "copy {node:?} already terminal"
        );
        assert!(
            self.is_center(node.level as usize + 1, w),
            "parent {w} not a level-{} center",
            node.level + 1
        );
        assert!(
            witness.touches(w),
            "witness {witness} does not touch parent {w}"
        );
        self.parent.insert(node, w);
        self.witness.insert(node, witness);
        self.children
            .entry(NodeId::new(node.level as usize + 1, w))
            .or_default()
            .push(node.root);
    }

    /// Marks a copy terminal (root of its component in `F`).
    ///
    /// # Panics
    ///
    /// Panics if the copy already has a parent.
    pub fn set_terminal(&mut self, node: NodeId) {
        assert!(
            !self.parent.contains_key(&node),
            "copy {node:?} already attached"
        );
        self.terminal.insert(node);
    }

    /// The parent root of `node`, if attached.
    pub fn parent(&self, node: NodeId) -> Option<Vertex> {
        self.parent.get(&node).copied()
    }

    /// The witness edge of `node`'s parent link, if attached.
    pub fn witness(&self, node: NodeId) -> Option<Edge> {
        self.witness.get(&node).copied()
    }

    /// Whether `node` was marked terminal.
    pub fn is_terminal(&self, node: NodeId) -> bool {
        self.terminal.contains(&node)
    }

    /// The terminal copy reached by following parents from `(0, v)`.
    ///
    /// Returns `None` if the chain hits a copy that is neither attached nor
    /// terminal (an unfinished forest).
    pub fn chain_terminal(&self, v: Vertex) -> Option<NodeId> {
        let mut node = NodeId::new(0, v);
        loop {
            if self.terminal.contains(&node) {
                return Some(node);
            }
            match self.parent.get(&node) {
                Some(&w) => node = NodeId::new(node.level as usize + 1, w),
                None => return None,
            }
        }
    }

    /// The member vertex set `T_u` of a copy: the union of root vertices
    /// over its subtree (deduplicated).
    pub fn members(&self, node: NodeId) -> Vec<Vertex> {
        let mut out = HashSet::new();
        let mut stack = vec![node];
        while let Some(cur) = stack.pop() {
            out.insert(cur.root);
            if let Some(kids) = self.children.get(&cur) {
                for &c in kids {
                    stack.push(NodeId::new(cur.level as usize - 1, c));
                }
            }
        }
        let mut v: Vec<Vertex> = out.into_iter().collect();
        v.sort_unstable();
        v
    }

    /// All terminal copies, sorted.
    pub fn terminals(&self) -> Vec<NodeId> {
        let mut t: Vec<NodeId> = self.terminal.iter().copied().collect();
        t.sort_unstable();
        t
    }

    /// The chain-class partition: maps each terminal to the vertices whose
    /// chain ends there.
    ///
    /// # Panics
    ///
    /// Panics if some vertex has no chain terminal (unfinished forest).
    pub fn chain_classes(&self) -> HashMap<NodeId, Vec<Vertex>> {
        let mut classes: HashMap<NodeId, Vec<Vertex>> = HashMap::new();
        for v in 0..self.n as Vertex {
            let t = self
                .chain_terminal(v)
                .expect("forest construction incomplete");
            classes.entry(t).or_default().push(v);
        }
        classes
    }

    /// Witness edges of all attached (non-terminal) copies — the forest's
    /// contribution `φ(F)` to the spanner.
    pub fn witness_edges(&self) -> Vec<Edge> {
        let mut edges: Vec<Edge> = self.witness.values().copied().collect();
        edges.sort_unstable();
        edges.dedup();
        edges
    }

    /// The diameter of `φ(T_u)` measured in the witness subgraph plus the
    /// member set (verification helper for Lemma 13's `2^{j+1} - 2` bound).
    ///
    /// Returns `None` if the witness edges do not connect the members
    /// (which would indicate a construction bug).
    pub fn witness_diameter(&self, node: NodeId) -> Option<u32> {
        let members = self.members(node);
        if members.len() <= 1 {
            return Some(0);
        }
        // Collect witness edges in the subtree.
        let mut edges = Vec::new();
        let mut stack = vec![node];
        while let Some(cur) = stack.pop() {
            if let Some(kids) = self.children.get(&cur) {
                for &c in kids {
                    let child = NodeId::new(cur.level as usize - 1, c);
                    if let Some(w) = self.witness.get(&child) {
                        edges.push(*w);
                    }
                    stack.push(child);
                }
            }
        }
        // BFS over the member-induced witness graph from every member.
        let index: HashMap<Vertex, usize> =
            members.iter().enumerate().map(|(i, &v)| (v, i)).collect();
        let mut adj = vec![Vec::new(); members.len()];
        for e in &edges {
            let (Some(&a), Some(&b)) = (index.get(&e.u()), index.get(&e.v())) else {
                continue;
            };
            adj[a].push(b);
            adj[b].push(a);
        }
        let mut diameter = 0u32;
        for start in 0..members.len() {
            let mut dist = vec![u32::MAX; members.len()];
            let mut queue = std::collections::VecDeque::new();
            dist[start] = 0;
            queue.push_back(start);
            while let Some(x) = queue.pop_front() {
                for &y in &adj[x] {
                    if dist[y] == u32::MAX {
                        dist[y] = dist[x] + 1;
                        queue.push_back(y);
                    }
                }
            }
            let far = *dist.iter().max().unwrap();
            if far == u32::MAX {
                return None; // members not connected by witnesses
            }
            diameter = diameter.max(far);
        }
        Some(diameter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_zero_is_everyone() {
        let f = ClusterForest::new(10, 3, 1);
        assert_eq!(f.centers_at(0).count(), 10);
        for v in 0..10 {
            assert!(f.is_center(0, v));
        }
    }

    #[test]
    fn center_sizes_decay() {
        let f = ClusterForest::new(400, 2, 2);
        let c1 = f.centers_at(1).count() as f64;
        // Rate 400^{-1/2} = 0.05 → expect ~20.
        assert!((5.0..60.0).contains(&c1), "c1={c1}");
    }

    #[test]
    fn centers_deterministic() {
        let a = ClusterForest::new(100, 3, 7);
        let b = ClusterForest::new(100, 3, 7);
        for i in 0..3 {
            assert_eq!(
                a.centers_at(i).collect::<Vec<_>>(),
                b.centers_at(i).collect::<Vec<_>>()
            );
        }
    }

    fn tiny_forest() -> ClusterForest {
        // 4 vertices, k=2. Attach (0,0)->(1,c) and (0,1)->(1,c) where c is
        // the first level-1 center; make everything else terminal.
        let mut f = ClusterForest::new(4, 2, 3);
        let c = f.centers_at(1).next().expect("need a level-1 center");
        // Attach copies of 0 and 1 unless the center is that vertex itself.
        for v in [0u32, 1] {
            if v != c {
                f.set_parent(NodeId::new(0, v), c, Edge::new(v, c));
            }
        }
        for v in 0..4u32 {
            let node = NodeId::new(0, v);
            if f.parent(node).is_none() {
                f.set_terminal(node);
            }
        }
        f.set_terminal(NodeId::new(1, c));
        for w in f.centers_at(1).collect::<Vec<_>>() {
            let node = NodeId::new(1, w);
            if w != c && !f.is_terminal(node) {
                f.set_terminal(node);
            }
        }
        f
    }

    #[test]
    fn chains_terminate() {
        let f = tiny_forest();
        for v in 0..4 {
            assert!(f.chain_terminal(v).is_some(), "vertex {v} has no terminal");
        }
    }

    #[test]
    fn chain_classes_partition() {
        let f = tiny_forest();
        let classes = f.chain_classes();
        let total: usize = classes.values().map(Vec::len).sum();
        assert_eq!(total, 4);
        let mut all: Vec<Vertex> = classes.values().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3]);
    }

    #[test]
    fn members_include_attached() {
        let f = tiny_forest();
        let c = f.centers_at(1).next().unwrap();
        let members = f.members(NodeId::new(1, c));
        assert!(members.contains(&c));
        for v in [0u32, 1] {
            if v != c {
                assert!(members.contains(&v), "member {v} missing from {members:?}");
            }
        }
    }

    #[test]
    fn witness_edges_deduped_and_collected() {
        let f = tiny_forest();
        let edges = f.witness_edges();
        let c = f.centers_at(1).next().unwrap();
        let expect: usize = [0u32, 1].iter().filter(|&&v| v != c).count();
        assert_eq!(edges.len(), expect);
    }

    #[test]
    fn witness_diameter_of_star_is_two() {
        let mut f = ClusterForest::new(5, 2, 11);
        // Force vertex 0 to be treated as a level-1 center by construction
        // seed search: find a seed where 0 ∈ C_1.
        let mut seed = 11;
        while !f.is_center(1, 0) {
            seed += 1;
            f = ClusterForest::new(5, 2, seed);
        }
        for v in 1..5u32 {
            f.set_parent(NodeId::new(0, v), 0, Edge::new(v, 0));
        }
        f.set_terminal(NodeId::new(0, 0));
        f.set_terminal(NodeId::new(1, 0));
        let d = f.witness_diameter(NodeId::new(1, 0)).unwrap();
        assert_eq!(d, 2); // star through the center: 2^{1+1} - 2 = 2 ✓
    }

    #[test]
    #[should_panic(expected = "already attached")]
    fn double_parent_panics() {
        let mut f = tiny_forest();
        let c = f.centers_at(1).next().unwrap();
        let v = if c == 0 { 1 } else { 0 };
        f.set_parent(NodeId::new(0, v), c, Edge::new(v, c));
    }

    #[test]
    #[should_panic(expected = "not a level-")]
    fn non_center_parent_panics() {
        let mut f = ClusterForest::new(50, 2, 1);
        let non_center = (0..50u32).find(|&v| !f.is_center(1, v)).unwrap();
        let v = if non_center == 0 { 1 } else { 0 };
        f.set_parent(NodeId::new(0, v), non_center, Edge::new(v, non_center));
    }
}
