//! Tunable parameters of the two-pass spanner.
//!
//! The paper's bounds hide constants inside `O(·)`; these are the explicit
//! knobs, with defaults calibrated by the ablation experiments (E16/E17 in
//! `DESIGN.md`). Every randomized choice flows from [`SpannerParams::seed`].

/// Parameters of the two-pass `2^k`-spanner (Theorem 1).
///
/// # Examples
///
/// ```
/// use dsg_spanner::SpannerParams;
///
/// let p = SpannerParams::new(3, 42).with_sketch_budget(6);
/// assert_eq!(p.k, 3);
/// assert_eq!(p.stretch(), 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpannerParams {
    /// Hierarchy depth; the stretch is `2^k` and space `~O(n^{1+1/k})`.
    pub k: usize,
    /// Root seed for every sampler and sketch.
    pub seed: u64,
    /// Decode budget `B` of the pass-1 sketches `S^{r,j}(u)`
    /// (`SKETCH_{O(log n)}` in the paper). `None` defaults to
    /// `max(4, ceil(log2 n))` at construction time.
    pub sketch_budget: Option<usize>,
    /// Multiplier on the pass-2 hash-table capacity
    /// `C · n^{(i+1)/k} · log2 n` (Claim 11's constant).
    pub table_capacity_factor: f64,
    /// Optional cap on the number of edge-sampling levels `E_j`
    /// (`log2 n^2 + 1` by default); the E17 ablation sweeps this down.
    pub max_edge_levels: Option<usize>,
}

impl SpannerParams {
    /// Creates parameters with paper defaults for hierarchy depth `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize, seed: u64) -> Self {
        assert!(k >= 1, "k must be at least 1");
        Self {
            k,
            seed,
            sketch_budget: None,
            table_capacity_factor: 1.0,
            max_edge_levels: None,
        }
    }

    /// Overrides the pass-1 sketch decode budget.
    pub fn with_sketch_budget(mut self, budget: usize) -> Self {
        self.sketch_budget = Some(budget);
        self
    }

    /// Overrides the pass-2 table capacity multiplier.
    pub fn with_table_capacity_factor(mut self, factor: f64) -> Self {
        self.table_capacity_factor = factor;
        self
    }

    /// Caps the number of `E_j` levels (ablation use).
    pub fn with_max_edge_levels(mut self, levels: usize) -> Self {
        self.max_edge_levels = Some(levels);
        self
    }

    /// The multiplicative stretch guarantee `2^k`.
    pub fn stretch(&self) -> u64 {
        1u64 << self.k
    }

    /// The resolved pass-1 sketch budget for an `n`-vertex graph.
    pub fn resolved_sketch_budget(&self, n: usize) -> usize {
        self.sketch_budget
            .unwrap_or_else(|| ((n.max(2) as f64).log2().ceil() as usize).max(4))
    }

    /// Number of edge-sampling levels `E_j` for an `n`-vertex graph:
    /// `j ∈ [0, log2 n^2]`, possibly capped.
    pub fn edge_levels(&self, n: usize) -> usize {
        let full = 2.0 * (n.max(2) as f64).log2();
        let levels = full.ceil() as usize + 1;
        match self.max_edge_levels {
            Some(cap) => levels.min(cap.max(1)),
            None => levels,
        }
    }

    /// Number of vertex-sampling levels `Y_j`: `j ∈ [0, log2 n]`.
    pub fn vertex_levels(&self, n: usize) -> usize {
        (n.max(2) as f64).log2().ceil() as usize + 1
    }

    /// The sampling rate of center set `C_i`: `n^{-i/k}`.
    pub fn center_rate(&self, n: usize, i: usize) -> f64 {
        (n.max(2) as f64).powf(-(i as f64) / self.k as f64)
    }

    /// Pass-2 hash-table key capacity for a terminal at level `i`:
    /// `min(n, ceil(factor · n^{(i+1)/k} · log2 n))`.
    pub fn table_capacity(&self, n: usize, i: usize) -> usize {
        let nf = n.max(2) as f64;
        let cap = self.table_capacity_factor * nf.powf((i + 1) as f64 / self.k as f64) * nf.log2();
        (cap.ceil() as usize).clamp(4, n.max(4))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stretch_is_power_of_two() {
        assert_eq!(SpannerParams::new(1, 0).stretch(), 2);
        assert_eq!(SpannerParams::new(4, 0).stretch(), 16);
    }

    #[test]
    fn default_budget_scales_with_log_n() {
        let p = SpannerParams::new(2, 0);
        assert_eq!(p.resolved_sketch_budget(16), 4);
        assert_eq!(p.resolved_sketch_budget(1024), 10);
        assert_eq!(
            SpannerParams::new(2, 0)
                .with_sketch_budget(7)
                .resolved_sketch_budget(1024),
            7
        );
    }

    #[test]
    fn center_rates_decay_geometrically() {
        let p = SpannerParams::new(2, 0);
        let n = 100;
        assert_eq!(p.center_rate(n, 0), 1.0);
        assert!((p.center_rate(n, 1) - 0.1).abs() < 1e-12); // 100^{-1/2}
    }

    #[test]
    fn levels_counts() {
        let p = SpannerParams::new(2, 0);
        assert_eq!(p.edge_levels(1024), 21); // 2*10 + 1
        assert_eq!(p.vertex_levels(1024), 11);
        assert_eq!(p.with_max_edge_levels(5).edge_levels(1024), 5);
    }

    #[test]
    fn table_capacity_clamped_to_n() {
        let p = SpannerParams::new(1, 0); // n^{(0+1)/1} = n: clamps to n
        assert_eq!(p.table_capacity(50, 0), 50);
        let p2 = SpannerParams::new(3, 0);
        let cap = p2.table_capacity(512, 0); // 512^{1/3} = 8, log2 = 9 → 72
        assert_eq!(cap, 72);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_k_panics() {
        SpannerParams::new(0, 0);
    }
}
