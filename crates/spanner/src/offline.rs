//! Offline reference implementation of the basic `2^k`-spanner algorithm
//! (Section 3.1 of the paper).
//!
//! Runs the same two phases as the streaming version but with direct
//! adjacency access instead of sketches. Used to cross-validate the
//! streaming implementation (same center sets when given the same seed) and
//! as a fast baseline in experiments.

use crate::cluster::{ClusterForest, NodeId};
use crate::params::SpannerParams;
use dsg_graph::{Edge, Graph, Vertex};
use std::collections::HashSet;

/// Output of the offline construction.
#[derive(Debug, Clone)]
pub struct OfflineOutput {
    /// The spanner subgraph `H = (V, E')`.
    pub spanner: Graph,
    /// The cluster forest (phase 1).
    pub forest: ClusterForest,
}

/// Runs the basic algorithm on an explicit graph.
///
/// Phase 1 grows the cluster forest level by level: each copy `(i, u)`
/// attaches to an arbitrary center of `C_{i+1}` adjacent to its member set
/// (recording a witness edge) or becomes terminal. Phase 2 adds the witness
/// edges plus, for every terminal copy, one edge to each outside neighbor of
/// its member set.
///
/// # Examples
///
/// ```
/// use dsg_graph::gen;
/// use dsg_spanner::{offline, SpannerParams};
///
/// let g = gen::erdos_renyi(60, 0.2, 1);
/// let out = offline::build_spanner(&g, SpannerParams::new(2, 42));
/// assert!(out.spanner.num_edges() <= g.num_edges());
/// ```
pub fn build_spanner(g: &Graph, params: SpannerParams) -> OfflineOutput {
    let n = g.num_vertices();
    let k = params.k;
    let adj = g.adjacency();
    let mut forest = ClusterForest::new(n, k, params.seed);

    // Phase 1: construct the clusters bottom-up.
    for i in 0..k {
        let centers: Vec<Vertex> = forest.centers_at(i).collect();
        for u in centers {
            let node = NodeId::new(i, u);
            if i == k - 1 {
                forest.set_terminal(node);
                continue;
            }
            // Find a neighbor of T_u in C_{i+1}, with a witness edge.
            let members = forest.members(node);
            let mut attach: Option<(Vertex, Edge)> = None;
            'search: for &a in &members {
                for &b in adj.neighbors(a) {
                    if forest.is_center(i + 1, b) {
                        attach = Some((b, Edge::new(a, b)));
                        break 'search;
                    }
                }
            }
            match attach {
                Some((w, witness)) => forest.set_parent(node, w, witness),
                None => forest.set_terminal(node),
            }
        }
    }

    // Phase 2: spanner edges.
    let mut edges: HashSet<Edge> = forest.witness_edges().into_iter().collect();
    for t in forest.terminals() {
        let members = forest.members(t);
        let member_set: HashSet<Vertex> = members.iter().copied().collect();
        // One edge from each outside neighbor v into T_u.
        let mut covered: HashSet<Vertex> = HashSet::new();
        for &a in &members {
            for &v in adj.neighbors(a) {
                if !member_set.contains(&v) && covered.insert(v) {
                    edges.insert(Edge::new(a, v));
                }
            }
        }
    }

    OfflineOutput {
        spanner: Graph::from_edges(n, edges),
        forest,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify;
    use dsg_graph::gen;

    #[test]
    fn spanner_is_subgraph() {
        let g = gen::erdos_renyi(80, 0.15, 1);
        let out = build_spanner(&g, SpannerParams::new(2, 2));
        let edge_set = g.edge_set();
        for e in out.spanner.edges() {
            assert!(edge_set.contains(e), "{e} not in input graph");
        }
    }

    #[test]
    fn stretch_bounded_by_2_to_k() {
        for (k, seed) in [(1usize, 3u64), (2, 4), (3, 5)] {
            let g = gen::erdos_renyi(70, 0.15, seed);
            let out = build_spanner(&g, SpannerParams::new(k, seed));
            let stretch = verify::max_multiplicative_stretch(&g, &out.spanner, 70);
            assert!(
                stretch <= (1u64 << k) as f64,
                "k={k}: stretch {stretch} exceeds {}",
                1 << k
            );
        }
    }

    #[test]
    fn preserves_connectivity() {
        let g = gen::erdos_renyi(60, 0.1, 7);
        let out = build_spanner(&g, SpannerParams::new(2, 8));
        assert_eq!(
            dsg_graph::components::num_components(&g),
            dsg_graph::components::num_components(&out.spanner)
        );
    }

    #[test]
    fn k1_keeps_all_cross_cluster_edges() {
        // k = 1: every vertex is terminal at level 0; the spanner keeps one
        // edge per (vertex, neighbor) pair — i.e. every edge. Stretch 2.
        let g = gen::erdos_renyi(30, 0.2, 9);
        let out = build_spanner(&g, SpannerParams::new(1, 10));
        assert_eq!(out.spanner.num_edges(), g.num_edges());
    }

    #[test]
    fn cluster_diameters_respect_lemma13() {
        // Lemma 13's induction: diameter of φ(T_u) for u ∈ C_j is at most
        // 2^{j+1} - 2.
        let g = gen::erdos_renyi(100, 0.2, 11);
        let out = build_spanner(&g, SpannerParams::new(3, 12));
        for i in 0..3usize {
            for u in out.forest.centers_at(i).collect::<Vec<_>>() {
                let node = NodeId::new(i, u);
                let d = out
                    .forest
                    .witness_diameter(node)
                    .expect("witnesses must connect members");
                assert!(
                    d as u64 <= (1u64 << (i + 1)) - 2 || d == 0,
                    "level {i} diameter {d} exceeds {}",
                    (1u64 << (i + 1)) - 2
                );
            }
        }
    }

    #[test]
    fn empty_graph_yields_empty_spanner() {
        let g = Graph::empty(10);
        let out = build_spanner(&g, SpannerParams::new(2, 1));
        assert_eq!(out.spanner.num_edges(), 0);
    }

    #[test]
    fn path_spanner_keeps_path_connected() {
        let g = gen::path(50);
        let out = build_spanner(&g, SpannerParams::new(2, 13));
        let stretch = verify::max_multiplicative_stretch(&g, &out.spanner, 50);
        assert!(stretch <= 4.0, "stretch={stretch}");
    }

    #[test]
    fn spanner_size_obeys_lemma12() {
        // |E'| = O(k n^{1+1/k} log n); check with a generous constant.
        let n = 150;
        let g = gen::erdos_renyi(n, 0.4, 14);
        let k = 2;
        let out = build_spanner(&g, SpannerParams::new(k, 15));
        let bound = 8.0 * k as f64 * (n as f64).powf(1.0 + 1.0 / k as f64) * (n as f64).log2();
        assert!((out.spanner.num_edges() as f64) < bound);
    }
}
