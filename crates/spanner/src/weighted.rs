//! Weighted spanners via geometric weight classes (Remark 14).
//!
//! "Our algorithm extends to weighted graphs by the simple reduction: round
//! weights to the nearest power of `1 + γ` ... and run the unweighted
//! spanner construction on each weight class. This requires at most a
//! factor of `O(γ^{-1} log(w_max/w_min))` more space."
//!
//! The weighted dynamic-stream model (Section 1) is respected: an update
//! either adds a weighted edge or removes it entirely, and the weight is
//! known at update time — which is exactly what lets the algorithm route
//! each update to its weight class online.

use crate::params::SpannerParams;
use crate::twopass::{TwoPassOutput, TwoPassSpanner};
use dsg_graph::stream::StreamUpdate;
use dsg_graph::{StreamAlgorithm, WeightedGraph};
use dsg_util::SpaceUsage;
use std::collections::HashMap;

/// Output of the weighted two-pass spanner.
#[derive(Debug, Clone)]
pub struct WeightedOutput {
    /// The weighted spanner; each surviving edge carries its class's upper
    /// rounding bound `(1+γ)^{c+1}`, so distances are overestimates within
    /// `(1+γ)` of the rounded graph.
    pub spanner: WeightedGraph,
    /// Per-class outputs `(class_index, output)` for inspection.
    pub per_class: Vec<(i32, TwoPassOutput)>,
}

/// The weighted two-pass spanner: one unweighted [`TwoPassSpanner`] per
/// geometric weight class.
///
/// # Examples
///
/// ```
/// use dsg_graph::{gen, GraphStream, pass};
/// use dsg_spanner::{SpannerParams, WeightedTwoPassSpanner};
///
/// let g = gen::with_random_weights(&gen::erdos_renyi(40, 0.2, 1), 1.0, 16.0, 2);
/// let stream = GraphStream::weighted_with_churn(&g, 1.0, 3);
/// let mut alg = WeightedTwoPassSpanner::new(40, 0.5, SpannerParams::new(2, 4));
/// pass::run(&mut alg, &stream);
/// let out = alg.into_output().unwrap();
/// assert!(out.spanner.num_edges() <= g.num_edges());
/// ```
#[derive(Debug)]
pub struct WeightedTwoPassSpanner {
    n: usize,
    gamma: f64,
    params: SpannerParams,
    classes: HashMap<i32, TwoPassSpanner>,
    current_pass: usize,
    finished: bool,
}

impl WeightedTwoPassSpanner {
    /// Creates the algorithm with rounding parameter `gamma` (class `c`
    /// holds weights in `[(1+γ)^c, (1+γ)^{c+1})`).
    ///
    /// # Panics
    ///
    /// Panics if `gamma <= 0` or `n < 2`.
    pub fn new(n: usize, gamma: f64, params: SpannerParams) -> Self {
        assert!(gamma > 0.0, "gamma must be positive");
        assert!(n >= 2, "need at least two vertices");
        Self {
            n,
            gamma,
            params,
            classes: HashMap::new(),
            current_pass: 0,
            finished: false,
        }
    }

    /// The weight class of `w`: `floor(log_{1+γ} w)`.
    ///
    /// # Panics
    ///
    /// Panics if `w` is not positive and finite.
    pub fn weight_class(&self, w: f64) -> i32 {
        assert!(w.is_finite() && w > 0.0, "invalid weight {w}");
        (w.ln() / (1.0 + self.gamma).ln()).floor() as i32
    }

    /// The representative (upper) weight of class `c`.
    pub fn class_weight(&self, c: i32) -> f64 {
        (1.0 + self.gamma).powi(c + 1)
    }

    /// Consumes the algorithm, returning the output after both passes.
    pub fn into_output(mut self) -> Option<WeightedOutput> {
        if !self.finished {
            return None;
        }
        let mut per_class: Vec<(i32, TwoPassOutput)> = Vec::new();
        let mut classes: Vec<(i32, TwoPassSpanner)> = self.classes.drain().collect();
        classes.sort_by_key(|(c, _)| *c);
        let mut edges = Vec::new();
        for (c, alg) in classes {
            let out = alg.into_output()?;
            let w = self.class_weight(c);
            edges.extend(out.spanner.edges().iter().map(|&e| (e, w)));
            per_class.push((c, out));
        }
        Some(WeightedOutput {
            spanner: WeightedGraph::from_edges(self.n, edges),
            per_class,
        })
    }
}

impl StreamAlgorithm for WeightedTwoPassSpanner {
    fn num_passes(&self) -> usize {
        2
    }

    fn begin_pass(&mut self, pass: usize) {
        self.current_pass = pass;
        for alg in self.classes.values_mut() {
            alg.begin_pass(pass);
        }
    }

    fn process(&mut self, update: &StreamUpdate) {
        let class = self.weight_class(update.weight);
        // Classes are discovered in pass 0; the stream is identical across
        // passes, so no class first appears in pass 1.
        if self.current_pass == 0 {
            if !self.classes.contains_key(&class) {
                let mut params = self.params;
                params.seed = params
                    .seed
                    .wrapping_add(0x9E37u64.wrapping_mul(class as i64 as u64));
                let mut alg = TwoPassSpanner::new(self.n, params);
                alg.begin_pass(0);
                self.classes.insert(class, alg);
            }
        } else if !self.classes.contains_key(&class) {
            panic!(
                "weight class {class} first appeared in pass {}",
                self.current_pass
            );
        }
        // Route the update, stripped to unweighted form.
        let unweighted = StreamUpdate {
            edge: update.edge,
            delta: update.delta,
            weight: 1.0,
        };
        self.classes
            .get_mut(&class)
            .expect("class exists")
            .process(&unweighted);
    }

    fn end_pass(&mut self, pass: usize) {
        for alg in self.classes.values_mut() {
            alg.end_pass(pass);
        }
        if pass == 1 {
            self.finished = true;
        }
    }
}

impl SpaceUsage for WeightedTwoPassSpanner {
    fn space_bytes(&self) -> usize {
        self.classes.values().map(SpaceUsage::space_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify;
    use dsg_graph::{gen, GraphStream};

    fn run(g: &WeightedGraph, gamma: f64, k: usize, seed: u64) -> WeightedOutput {
        let stream = GraphStream::weighted_with_churn(g, 1.0, seed ^ 0xEE);
        let mut alg =
            WeightedTwoPassSpanner::new(g.num_vertices(), gamma, SpannerParams::new(k, seed));
        dsg_graph::pass::run(&mut alg, &stream);
        alg.into_output().expect("finished")
    }

    #[test]
    fn weighted_stretch_bounded() {
        let g = gen::with_random_weights(&gen::erdos_renyi(50, 0.2, 1), 1.0, 64.0, 2);
        let k = 2;
        let gamma = 0.5;
        let out = run(&g, gamma, k, 3);
        let stretch = verify::max_weighted_stretch(&g, &out.spanner, 50);
        let bound = (1u64 << k) as f64 * (1.0 + gamma);
        assert!(stretch <= bound, "stretch {stretch} > {bound}");
    }

    #[test]
    fn spanner_edges_come_from_input() {
        let g = gen::with_random_weights(&gen::erdos_renyi(40, 0.25, 4), 0.5, 8.0, 5);
        let out = run(&g, 0.5, 2, 6);
        for (e, _) in out.spanner.edges() {
            assert!(g.weight(e.u(), e.v()).is_some(), "edge {e} not in input");
        }
    }

    #[test]
    fn assigned_weights_upper_bound_true_weights() {
        let g = gen::with_random_weights(&gen::cycle(30), 1.0, 32.0, 7);
        let out = run(&g, 0.3, 2, 8);
        for (e, w) in out.spanner.edges() {
            let true_w = g.weight(e.u(), e.v()).unwrap();
            assert!(*w >= true_w, "assigned {w} < true {true_w}");
            assert!(*w <= true_w * 1.3 * 1.3, "assigned {w} ≫ true {true_w}");
        }
    }

    #[test]
    fn class_count_scales_with_range() {
        let alg = WeightedTwoPassSpanner::new(10, 0.5, SpannerParams::new(2, 1));
        let lo = alg.weight_class(1.0);
        let hi = alg.weight_class(1024.0);
        // log_{1.5}(1024) ≈ 17 classes.
        assert!(hi - lo >= 15 && hi - lo <= 19, "classes {lo}..{hi}");
    }

    #[test]
    fn unit_weights_single_class() {
        let g = gen::with_random_weights(&gen::path(20), 1.0, 1.0, 9);
        let out = run(&g, 0.5, 2, 10);
        assert_eq!(out.per_class.len(), 1);
    }

    #[test]
    #[should_panic(expected = "gamma must be positive")]
    fn zero_gamma_panics() {
        WeightedTwoPassSpanner::new(10, 0.0, SpannerParams::new(2, 1));
    }
}
