//! Distance oracles backed by spanners.
//!
//! Section 6 of the paper plugs the two-pass spanner into KP12 *as a
//! distance oracle*: "The oracle required by KP12 needs to output, given
//! a pair of nodes `u, v ∈ V`, an estimate `d̂(u,v)` that satisfies
//! `d(u,v) ≤ d̂(u,v) ≤ λ · d(u,v)`. Note that our multiplicative spanner
//! construction provides such an estimate with `λ ≤ 2^k`."
//!
//! [`DistanceOracle`] packages that contract: it holds a spanner subgraph
//! and answers queries by (optionally bounded) BFS over it. Because the
//! spanner is a subgraph, answers never underestimate; because its stretch
//! is `λ`, they never overestimate by more than `λ`.

use dsg_graph::bfs::{bfs_distances, bfs_distances_bounded, UNREACHABLE};
use dsg_graph::graph::Adjacency;
use dsg_graph::{Graph, Vertex};

/// A stretch-`λ` distance oracle over a spanner subgraph.
///
/// # Examples
///
/// ```
/// use dsg_graph::{gen, GraphStream};
/// use dsg_spanner::{oracle::DistanceOracle, twopass, SpannerParams};
///
/// let g = gen::erdos_renyi(60, 0.2, 1);
/// let stream = GraphStream::with_churn(&g, 1.0, 2);
/// let k = 2;
/// let out = twopass::run_two_pass(&stream, SpannerParams::new(k, 3));
/// let oracle = DistanceOracle::new(out.spanner, 1 << k);
///
/// let d_true = dsg_graph::bfs::bfs_distances(&g.adjacency(), 0);
/// for v in 1..60u32 {
///     if let Some(est) = oracle.estimate(0, v) {
///         assert!(est as u64 >= d_true[v as usize] as u64);
///         assert!(est as u64 <= oracle.stretch() * d_true[v as usize] as u64);
///     }
/// }
/// ```
#[derive(Debug, Clone)]
pub struct DistanceOracle {
    spanner: Graph,
    adjacency: Adjacency,
    stretch: u64,
}

impl DistanceOracle {
    /// Wraps a spanner with its stretch guarantee `λ`.
    ///
    /// # Panics
    ///
    /// Panics if `stretch == 0`.
    pub fn new(spanner: Graph, stretch: u64) -> Self {
        assert!(stretch >= 1, "stretch must be at least 1");
        let adjacency = spanner.adjacency();
        Self {
            spanner,
            adjacency,
            stretch,
        }
    }

    /// The stretch guarantee `λ`.
    pub fn stretch(&self) -> u64 {
        self.stretch
    }

    /// The underlying spanner.
    pub fn spanner(&self) -> &Graph {
        &self.spanner
    }

    /// The distance estimate `d̂(u, v)`, or `None` if `u` and `v` are
    /// disconnected in the spanner (hence in the graph, whp).
    pub fn estimate(&self, u: Vertex, v: Vertex) -> Option<u32> {
        if u == v {
            return Some(0);
        }
        let d = bfs_distances(&self.adjacency, u);
        let dv = d[v as usize];
        (dv != UNREACHABLE).then_some(dv)
    }

    /// Whether `d̂(u, v) > threshold` — the only query `ESTIMATE`
    /// (Algorithm 4) needs, answered by a BFS truncated at
    /// `threshold` (cheaper than a full BFS for small thresholds).
    pub fn is_far(&self, u: Vertex, v: Vertex, threshold: u32) -> bool {
        if u == v {
            return false;
        }
        let d = bfs_distances_bounded(&self.adjacency, u, threshold);
        d[v as usize] == UNREACHABLE
    }

    /// All estimates from a single source (one BFS).
    pub fn estimates_from(&self, u: Vertex) -> Vec<Option<u32>> {
        bfs_distances(&self.adjacency, u)
            .into_iter()
            .map(|d| (d != UNREACHABLE).then_some(d))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{twopass, SpannerParams};
    use dsg_graph::{gen, GraphStream};

    fn oracle_for(n: usize, k: usize, seed: u64) -> (Graph, DistanceOracle) {
        let g = gen::erdos_renyi(n, 0.15, seed);
        let stream = GraphStream::with_churn(&g, 1.0, seed ^ 0x0C);
        let out = twopass::run_two_pass(&stream, SpannerParams::new(k, seed));
        (g, DistanceOracle::new(out.spanner, 1 << k))
    }

    #[test]
    fn oracle_contract_sandwich() {
        let (g, oracle) = oracle_for(60, 2, 1);
        let adj = g.adjacency();
        for src in [0u32, 10, 30] {
            let d_true = dsg_graph::bfs::bfs_distances(&adj, src);
            let d_est = oracle.estimates_from(src);
            for v in 0..60usize {
                match (d_true[v], d_est[v]) {
                    (dsg_graph::bfs::UNREACHABLE, None) => {}
                    (t, Some(e)) => {
                        assert!(e >= t, "underestimate at {v}");
                        assert!(
                            e as u64 <= oracle.stretch() * t as u64,
                            "overestimate at {v}"
                        );
                    }
                    (t, e) => panic!("reachability mismatch at {v}: {t} vs {e:?}"),
                }
            }
        }
    }

    #[test]
    fn is_far_consistent_with_estimate() {
        let (_, oracle) = oracle_for(50, 2, 2);
        for (u, v) in [(0u32, 1u32), (0, 25), (3, 44)] {
            for threshold in [1u32, 2, 4, 8] {
                let far = oracle.is_far(u, v, threshold);
                match oracle.estimate(u, v) {
                    Some(d) => assert_eq!(far, d > threshold, "u={u} v={v} t={threshold}"),
                    None => assert!(far),
                }
            }
        }
    }

    #[test]
    fn self_distance_zero() {
        let (_, oracle) = oracle_for(20, 1, 3);
        assert_eq!(oracle.estimate(5, 5), Some(0));
        assert!(!oracle.is_far(5, 5, 0));
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_stretch_panics() {
        DistanceOracle::new(Graph::empty(3), 0);
    }
}
