//! Distance oracles backed by spanners.
//!
//! Section 6 of the paper plugs the two-pass spanner into KP12 *as a
//! distance oracle*: "The oracle required by KP12 needs to output, given
//! a pair of nodes `u, v ∈ V`, an estimate `d̂(u,v)` that satisfies
//! `d(u,v) ≤ d̂(u,v) ≤ λ · d(u,v)`. Note that our multiplicative spanner
//! construction provides such an estimate with `λ ≤ 2^k`."
//!
//! [`DistanceOracle`] packages that contract: it holds a spanner subgraph
//! and answers queries by (optionally bounded) BFS over it. Because the
//! spanner is a subgraph, answers never underestimate; because its stretch
//! is `λ`, they never overestimate by more than `λ`.
//!
//! A BFS from `u` computes the estimates to *every* target, so the oracle
//! memoizes whole distance rows in a bounded per-source cache: repeated
//! queries from a hot source cost one hash lookup instead of a BFS. The
//! cache is behind a [`Mutex`] so a shared oracle (e.g. an epoch artifact
//! in `dsg-service`) stays queryable from many reader threads.

use dsg_graph::bfs::{bfs_distances, bfs_distances_bounded, UNREACHABLE};
use dsg_graph::graph::Adjacency;
use dsg_graph::{Graph, Vertex};
use dsg_telemetry::Counter;
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex};

/// Default number of distinct sources whose distance rows stay cached.
pub const DEFAULT_CACHE_SOURCES: usize = 32;

/// Cache-effectiveness counters of a [`DistanceOracle`] — a point-in-time
/// read of the oracle's telemetry counters (see
/// [`DistanceOracle::with_cache_counters`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Queries answered from a memoized distance row.
    pub hits: u64,
    /// Queries that ran a BFS.
    pub misses: u64,
}

/// Bounded FIFO memo of per-source distance rows.
#[derive(Debug, Default)]
struct SourceCache {
    capacity: usize,
    rows: HashMap<Vertex, Arc<Vec<u32>>>,
    order: VecDeque<Vertex>,
}

impl SourceCache {
    fn new(capacity: usize) -> Self {
        Self {
            capacity,
            ..Self::default()
        }
    }

    fn insert(&mut self, src: Vertex, row: Arc<Vec<u32>>) {
        if self.capacity == 0 || self.rows.contains_key(&src) {
            return;
        }
        if self.rows.len() >= self.capacity {
            if let Some(evicted) = self.order.pop_front() {
                self.rows.remove(&evicted);
            }
        }
        self.order.push_back(src);
        self.rows.insert(src, row);
    }
}

/// A stretch-`λ` distance oracle over a spanner subgraph.
///
/// # Examples
///
/// ```
/// use dsg_graph::{gen, GraphStream};
/// use dsg_spanner::{oracle::DistanceOracle, twopass, SpannerParams};
///
/// let g = gen::erdos_renyi(60, 0.2, 1);
/// let stream = GraphStream::with_churn(&g, 1.0, 2);
/// let k = 2;
/// let out = twopass::run_two_pass(&stream, SpannerParams::new(k, 3));
/// let oracle = DistanceOracle::new(out.spanner, 1 << k);
///
/// let d_true = dsg_graph::bfs::bfs_distances(&g.adjacency(), 0);
/// for v in 1..60u32 {
///     if let Some(est) = oracle.estimate(0, v) {
///         assert!(est as u64 >= d_true[v as usize] as u64);
///         assert!(est as u64 <= oracle.stretch() * d_true[v as usize] as u64);
///     }
/// }
/// ```
#[derive(Debug)]
pub struct DistanceOracle {
    spanner: Graph,
    adjacency: Adjacency,
    stretch: u64,
    cache: Mutex<SourceCache>,
    /// Cache hit/miss telemetry. Standalone live counters by default, so
    /// [`cache_stats`](DistanceOracle::cache_stats) always works; a
    /// serving layer swaps in registry-owned counters with
    /// [`with_cache_counters`](DistanceOracle::with_cache_counters) so
    /// there is exactly one store for the numbers.
    hits: Counter,
    misses: Counter,
}

impl Clone for DistanceOracle {
    /// Clones the oracle with a fresh, empty cache of the same capacity
    /// and fresh (zeroed, standalone) hit/miss counters.
    fn clone(&self) -> Self {
        let capacity = self.cache.lock().expect("oracle cache poisoned").capacity;
        Self {
            spanner: self.spanner.clone(),
            adjacency: self.adjacency.clone(),
            stretch: self.stretch,
            cache: Mutex::new(SourceCache::new(capacity)),
            hits: Counter::active(),
            misses: Counter::active(),
        }
    }
}

impl DistanceOracle {
    /// Wraps a spanner with its stretch guarantee `λ`.
    ///
    /// # Panics
    ///
    /// Panics if `stretch == 0`.
    pub fn new(spanner: Graph, stretch: u64) -> Self {
        assert!(stretch >= 1, "stretch must be at least 1");
        let adjacency = spanner.adjacency();
        Self {
            spanner,
            adjacency,
            stretch,
            cache: Mutex::new(SourceCache::new(DEFAULT_CACHE_SOURCES)),
            hits: Counter::active(),
            misses: Counter::active(),
        }
    }

    /// Overrides the per-source cache capacity (`0` disables memoization;
    /// every query then runs its own BFS).
    pub fn with_cache_capacity(self, capacity: usize) -> Self {
        Self {
            cache: Mutex::new(SourceCache::new(capacity)),
            ..self
        }
    }

    /// Replaces the hit/miss counters with caller-owned handles —
    /// typically registry-created series, so the oracle's cache
    /// effectiveness lands in the same `dsg_telemetry::MetricRegistry`
    /// as everything else and [`cache_stats`](DistanceOracle::cache_stats)
    /// reads the very same cells (one store, two views).
    pub fn with_cache_counters(self, hits: Counter, misses: Counter) -> Self {
        Self {
            hits,
            misses,
            ..self
        }
    }

    /// The stretch guarantee `λ`.
    pub fn stretch(&self) -> u64 {
        self.stretch
    }

    /// The underlying spanner.
    pub fn spanner(&self) -> &Graph {
        &self.spanner
    }

    /// Hit/miss counters of the per-source cache — a thin wrapper reading
    /// the telemetry counters (registry-owned ones after
    /// [`with_cache_counters`](DistanceOracle::with_cache_counters)).
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
        }
    }

    /// Probes the cache for `u`'s distance row, bumping the hit/miss
    /// counters — the one place the probe-and-count logic lives. The
    /// counters are atomic, so they are bumped outside the lock.
    fn cached_row(&self, u: Vertex) -> Option<Arc<Vec<u32>>> {
        let row = {
            let cache = self.cache.lock().expect("oracle cache poisoned");
            cache.rows.get(&u).cloned()
        };
        match row {
            Some(row) => {
                self.hits.inc();
                Some(row)
            }
            None => {
                self.misses.inc();
                None
            }
        }
    }

    /// The memoized distance row from `u`, computing it with one BFS on a
    /// cache miss. The BFS runs outside the lock, so a slow miss never
    /// blocks concurrent hits; two racing misses both compute and one
    /// insert wins (idempotent — BFS is deterministic).
    fn distances_from(&self, u: Vertex) -> Arc<Vec<u32>> {
        if let Some(row) = self.cached_row(u) {
            return row;
        }
        let row = Arc::new(bfs_distances(&self.adjacency, u));
        let mut cache = self.cache.lock().expect("oracle cache poisoned");
        cache.insert(u, Arc::clone(&row));
        row
    }

    /// The distance estimate `d̂(u, v)`, or `None` if `u` and `v` are
    /// disconnected in the spanner (hence in the graph, whp).
    pub fn estimate(&self, u: Vertex, v: Vertex) -> Option<u32> {
        if u == v {
            return Some(0);
        }
        let dv = self.distances_from(u)[v as usize];
        (dv != UNREACHABLE).then_some(dv)
    }

    /// Whether `d̂(u, v) > threshold` — the only query `ESTIMATE`
    /// (Algorithm 4) needs. A cached distance row from `u` answers it
    /// directly; otherwise a BFS truncated at `threshold` runs (cheaper
    /// than a full BFS for small thresholds, and deliberately *not*
    /// cached: a truncated row cannot serve later full-distance queries).
    pub fn is_far(&self, u: Vertex, v: Vertex, threshold: u32) -> bool {
        if u == v {
            return false;
        }
        if let Some(row) = self.cached_row(u) {
            let dv = row[v as usize];
            return dv == UNREACHABLE || dv > threshold;
        }
        let d = bfs_distances_bounded(&self.adjacency, u, threshold);
        d[v as usize] == UNREACHABLE
    }

    /// Replaces `u`'s cached distance row with an arbitrary one — a
    /// **sabotage hook** for quality-audit tests and experiments: the
    /// poisoned row is served by every subsequent [`estimate`] /
    /// [`is_far`] from `u` (until evicted), letting a harness inject a
    /// provably wrong answer and assert the auditor catches it. Never
    /// called by serving code.
    ///
    /// [`estimate`]: DistanceOracle::estimate
    /// [`is_far`]: DistanceOracle::is_far
    pub fn poison_cached_row(&self, u: Vertex, row: Vec<u32>) {
        let mut cache = self.cache.lock().expect("oracle cache poisoned");
        if !cache.rows.contains_key(&u) {
            cache.order.push_back(u);
        }
        cache.rows.insert(u, Arc::new(row));
    }

    /// Seeds this oracle's cache with distance rows carried over from a
    /// previous epoch's oracle: every cached row of `prev` whose source
    /// passes `keep` is inserted, in `prev`'s insertion order (so FIFO
    /// age carries over). Rows are `Arc`-shared — warming copies
    /// pointers, not distances.
    ///
    /// The caller must only approve sources whose row is provably
    /// unchanged — e.g. sources whose spanner component contains no
    /// endpoint of any added or removed spanner edge. Approving a stale
    /// source serves stale distances; this method cannot check that.
    pub fn warm_from(&self, prev: &DistanceOracle, keep: &dyn Fn(Vertex) -> bool) {
        let carried: Vec<(Vertex, Arc<Vec<u32>>)> = {
            let prev_cache = prev.cache.lock().expect("oracle cache poisoned");
            prev_cache
                .order
                .iter()
                .filter(|&&src| keep(src))
                .filter_map(|&src| prev_cache.rows.get(&src).map(|r| (src, Arc::clone(r))))
                .collect()
        };
        let mut cache = self.cache.lock().expect("oracle cache poisoned");
        for (src, row) in carried {
            cache.insert(src, row);
        }
    }

    /// All estimates from a single source (one BFS, memoized).
    pub fn estimates_from(&self, u: Vertex) -> Vec<Option<u32>> {
        self.distances_from(u)
            .iter()
            .map(|&d| (d != UNREACHABLE).then_some(d))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{twopass, SpannerParams};
    use dsg_graph::{gen, GraphStream};

    fn oracle_for(n: usize, k: usize, seed: u64) -> (Graph, DistanceOracle) {
        let g = gen::erdos_renyi(n, 0.15, seed);
        let stream = GraphStream::with_churn(&g, 1.0, seed ^ 0x0C);
        let out = twopass::run_two_pass(&stream, SpannerParams::new(k, seed));
        (g, DistanceOracle::new(out.spanner, 1 << k))
    }

    #[test]
    fn oracle_contract_sandwich() {
        let (g, oracle) = oracle_for(60, 2, 1);
        let adj = g.adjacency();
        for src in [0u32, 10, 30] {
            let d_true = dsg_graph::bfs::bfs_distances(&adj, src);
            let d_est = oracle.estimates_from(src);
            for v in 0..60usize {
                match (d_true[v], d_est[v]) {
                    (dsg_graph::bfs::UNREACHABLE, None) => {}
                    (t, Some(e)) => {
                        assert!(e >= t, "underestimate at {v}");
                        assert!(
                            e as u64 <= oracle.stretch() * t as u64,
                            "overestimate at {v}"
                        );
                    }
                    (t, e) => panic!("reachability mismatch at {v}: {t} vs {e:?}"),
                }
            }
        }
    }

    #[test]
    fn is_far_consistent_with_estimate() {
        let (_, oracle) = oracle_for(50, 2, 2);
        for (u, v) in [(0u32, 1u32), (0, 25), (3, 44)] {
            for threshold in [1u32, 2, 4, 8] {
                let far = oracle.is_far(u, v, threshold);
                match oracle.estimate(u, v) {
                    Some(d) => assert_eq!(far, d > threshold, "u={u} v={v} t={threshold}"),
                    None => assert!(far),
                }
            }
        }
    }

    #[test]
    fn self_distance_zero() {
        let (_, oracle) = oracle_for(20, 1, 3);
        assert_eq!(oracle.estimate(5, 5), Some(0));
        assert!(!oracle.is_far(5, 5, 0));
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_stretch_panics() {
        DistanceOracle::new(Graph::empty(3), 0);
    }

    #[test]
    fn repeated_source_queries_hit_the_cache() {
        let (_, oracle) = oracle_for(50, 2, 4);
        assert_eq!(oracle.cache_stats(), CacheStats::default());
        let first = oracle.estimate(7, 20);
        assert_eq!(oracle.cache_stats(), CacheStats { hits: 0, misses: 1 });
        // Same source, different targets: all answered from the memo row.
        assert_eq!(oracle.estimate(7, 20), first);
        for v in [21u32, 35, 49] {
            let _ = oracle.estimate(7, v);
        }
        let stats = oracle.cache_stats();
        assert_eq!(stats.misses, 1, "one BFS serves every query from source 7");
        assert!(stats.hits >= 4);
        // `is_far` from the hot source is also answered from the row.
        let hits_before = oracle.cache_stats().hits;
        let _ = oracle.is_far(7, 31, 2);
        assert_eq!(oracle.cache_stats().hits, hits_before + 1);
    }

    #[test]
    fn cached_answers_match_uncached() {
        let (_, oracle) = oracle_for(40, 2, 5);
        let uncached = oracle.clone().with_cache_capacity(0);
        for u in 0..40u32 {
            for v in 0..40u32 {
                assert_eq!(oracle.estimate(u, v), uncached.estimate(u, v), "({u},{v})");
            }
        }
        assert_eq!(
            uncached.cache_stats().hits,
            0,
            "capacity 0 disables memoization"
        );
        assert!(oracle.cache_stats().hits > 0);
    }

    #[test]
    fn cache_is_bounded_fifo() {
        let (_, oracle) = oracle_for(30, 1, 6);
        let oracle = oracle.with_cache_capacity(2);
        let _ = oracle.estimate(0, 1); // miss: row(0) cached
        let _ = oracle.estimate(1, 2); // miss: row(1) cached
        let _ = oracle.estimate(2, 3); // miss: row(2) cached, row(0) evicted
        let _ = oracle.estimate(0, 4); // miss again — 0 was evicted
        let _ = oracle.estimate(2, 5); // hit — 2 still resident
        let stats = oracle.cache_stats();
        assert_eq!(stats.misses, 4);
        assert_eq!(stats.hits, 1);
    }

    #[test]
    fn registry_counters_and_cache_stats_read_the_same_cells() {
        let (_, oracle) = oracle_for(30, 1, 8);
        let reg = dsg_telemetry::MetricRegistry::new();
        let oracle = oracle.with_cache_counters(
            reg.counter("oracle_hits_total"),
            reg.counter("oracle_misses_total"),
        );
        let _ = oracle.estimate(0, 5); // miss
        let _ = oracle.estimate(0, 6); // hit
        let _ = oracle.estimate(1, 6); // miss
        let stats = oracle.cache_stats();
        assert_eq!(stats, CacheStats { hits: 1, misses: 2 });
        let snap = reg.snapshot();
        assert_eq!(snap.counter("oracle_hits_total"), Some(stats.hits));
        assert_eq!(snap.counter("oracle_misses_total"), Some(stats.misses));
    }

    #[test]
    fn poisoned_row_is_served_until_evicted() {
        let (_, oracle) = oracle_for(20, 1, 7);
        let honest = oracle.estimate(0, 10);
        assert!(honest.is_some_and(|d| d >= 1), "0 and 10 are connected");
        oracle.poison_cached_row(0, vec![0; 20]);
        assert_eq!(oracle.estimate(0, 10), Some(0), "poison must be served");
        // A fresh clone (cold cache) recomputes honestly.
        assert_eq!(oracle.clone().estimate(0, 10), honest);
    }

    #[test]
    fn warm_from_carries_only_approved_rows() {
        let (_, oracle) = oracle_for(40, 2, 9);
        let _ = oracle.estimate(3, 10); // row(3) cached
        let _ = oracle.estimate(4, 10); // row(4) cached
        let fresh = oracle.clone();
        fresh.warm_from(&oracle, &|src| src == 3);
        // Source 3 is warm: the first query is a hit and matches the
        // donor's answer. Source 4 was filtered out, so it misses.
        let d = fresh.estimate(3, 11);
        assert_eq!(fresh.cache_stats(), CacheStats { hits: 1, misses: 0 });
        assert_eq!(d, oracle.estimate(3, 11));
        let _ = fresh.estimate(4, 11);
        assert_eq!(fresh.cache_stats().misses, 1);
    }

    #[test]
    fn clone_starts_with_a_cold_cache() {
        let (_, oracle) = oracle_for(20, 1, 7);
        let _ = oracle.estimate(1, 2);
        let fresh = oracle.clone();
        assert_eq!(fresh.cache_stats(), CacheStats::default());
        assert_eq!(fresh.estimate(1, 2), oracle.estimate(1, 2));
    }
}
