//! The single-pass `O(n/d)`-additive spanner (Theorem 3 / Algorithm 3).
//!
//! One pass over the dynamic stream maintains, per vertex `u`:
//!
//! * `S(u) = SKETCH_{~O(d)}(N(u))` — the full neighborhood, decodable when
//!   `deg(u) = O(d log n)`;
//! * `A^r(u) = SKETCH_{O(log n)}(N(u) ∩ C ∩ Z_r)` for `r ∈ [0, log2 n]` —
//!   recovers one neighbor among the sampled centers `C` (rate `O(1/d)`);
//! * a degree estimate `d̂_u` (Theorem 9);
//!
//! plus one AGM spanning-forest sketch bank for the whole graph.
//!
//! Post-processing classifies vertices by estimated degree: low-degree
//! vertices contribute all their edges (`E_low`); high-degree vertices
//! attach to a center neighbor, forming star clusters `T_u, u ∈ C`. The
//! algorithm then *subtracts* `E_low` from the AGM sketches (linearity),
//! contracts the clusters into supernodes, and extracts a spanning forest
//! `F'` of the contracted remainder. The spanner is `E_low ∪ F ∪ F'`; the
//! paper's Theorem 19 shows any shortest path survives with additive error
//! `O(n/d)` because it crosses each of the `O(n/d)` clusters at most once.

use dsg_agm::AgmSketch;
use dsg_graph::stream::StreamUpdate;
use dsg_graph::{Edge, Graph, StreamAlgorithm, Vertex};
use dsg_hash::{SeedTree, SubsetSampler};
use dsg_sketch::distinct::{DistinctFamily, DistinctState};
use dsg_sketch::ssparse::{RecoveryFamily, RecoveryState};
use dsg_util::SpaceUsage;
use std::collections::{HashMap, HashSet};

/// Parameters of the additive spanner.
///
/// # Examples
///
/// ```
/// use dsg_spanner::AdditiveParams;
///
/// let p = AdditiveParams::new(8, 42);
/// assert_eq!(p.d, 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdditiveParams {
    /// The degree threshold parameter: space is `~O(nd)`, distortion
    /// `O(n/d)`.
    pub d: usize,
    /// Root seed.
    pub seed: u64,
    /// Multiplier `c` in the center sampling rate `min(1, c/d)`.
    pub center_factor: f64,
    /// Multiplier on the low-degree threshold `d · log2 n`.
    pub threshold_factor: f64,
}

impl AdditiveParams {
    /// Creates parameters with paper defaults.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`.
    pub fn new(d: usize, seed: u64) -> Self {
        assert!(d >= 1, "d must be at least 1");
        Self {
            d,
            seed,
            center_factor: 3.0,
            threshold_factor: 1.0,
        }
    }

    /// The center sampling rate `min(1, c/d)`.
    pub fn center_rate(&self) -> f64 {
        (self.center_factor / self.d as f64).min(1.0)
    }

    /// The low-degree threshold `Θ(d log n)`.
    pub fn low_degree_threshold(&self, n: usize) -> usize {
        ((self.threshold_factor * self.d as f64 * (n.max(2) as f64).log2()).ceil() as usize).max(1)
    }

    /// The `S(u)` decode budget: double the threshold plus slack, so the
    /// degree-estimate error margin keeps low-degree decodes inside budget.
    pub fn neighborhood_budget(&self, n: usize) -> usize {
        2 * self.low_degree_threshold(n) + 4
    }
}

/// Execution statistics of an additive-spanner run.
#[derive(Debug, Clone, Default)]
pub struct AdditiveStats {
    /// Measured sketch bytes at the end of the pass.
    pub sketch_bytes: usize,
    /// Vertices classified low-degree.
    pub num_low_degree: usize,
    /// Vertices attached to a center.
    pub num_attached: usize,
    /// High-degree vertices with no decodable center neighbor (fell back to
    /// neighborhood decode or singleton status).
    pub num_fallbacks: usize,
    /// Decode failures across all sketches.
    pub decode_failures: usize,
    /// AGM forest decode failures.
    pub forest_failures: usize,
}

/// Output of the additive spanner.
#[derive(Debug, Clone)]
pub struct AdditiveOutput {
    /// The spanner `H = E_low ∪ F ∪ F'`.
    pub spanner: Graph,
    /// Statistics.
    pub stats: AdditiveStats,
}

/// The single-pass additive-spanner algorithm (implements
/// [`StreamAlgorithm`]).
#[derive(Debug)]
pub struct AdditiveSpanner {
    n: usize,
    params: AdditiveParams,
    centers: SubsetSampler,
    z_samplers: Vec<SubsetSampler>,
    /// `S(u)` family and per-vertex states.
    nbr_family: RecoveryFamily,
    nbr_states: Vec<RecoveryState>,
    /// `A^r(u)` families (per `r`) and per-(u, r) states (lazy).
    center_families: Vec<RecoveryFamily>,
    center_states: HashMap<(Vertex, u8), RecoveryState>,
    /// Degree estimators.
    degree_family: DistinctFamily,
    degree_states: Vec<DistinctState>,
    /// AGM sketches for the contracted forest.
    agm: AgmSketch,
    stats: AdditiveStats,
    output: Option<AdditiveOutput>,
}

impl AdditiveSpanner {
    /// Creates the algorithm for graphs on `n` vertices.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn new(n: usize, params: AdditiveParams) -> Self {
        assert!(n >= 2, "need at least two vertices");
        let tree = SeedTree::new(params.seed ^ 0x4144_4453_5041_4E31); // "ADDSPAN1"
        let vertex_bits = (n.max(2) as f64).log2().ceil() as u32 + 1;
        let levels = vertex_bits as usize + 1;
        let centers = SubsetSampler::new(tree.child(0).seed(), params.center_rate());
        let z_samplers = (0..levels)
            .map(|r| SubsetSampler::at_rate_pow2(tree.child(1).child(r as u64).seed(), r as u32))
            .collect();
        let nbr_family = RecoveryFamily::new(params.neighborhood_budget(n), tree.child(2).seed());
        let nbr_states = (0..n).map(|_| nbr_family.new_state()).collect();
        let center_families = (0..levels)
            .map(|r| RecoveryFamily::new(8, tree.child(3).child(r as u64).seed()))
            .collect();
        let degree_family = DistinctFamily::new(vertex_bits, 0.5, 5, tree.child(4).seed());
        let degree_states = (0..n).map(|_| degree_family.new_state()).collect();
        let agm = AgmSketch::new(n, tree.child(5).seed());
        Self {
            n,
            params,
            centers,
            z_samplers,
            nbr_family,
            nbr_states,
            center_families,
            center_states: HashMap::new(),
            degree_family,
            degree_states,
            agm,
            stats: AdditiveStats::default(),
            output: None,
        }
    }

    /// The construction parameters.
    pub fn params(&self) -> &AdditiveParams {
        &self.params
    }

    /// Consumes the algorithm, returning the output if the pass ran.
    pub fn into_output(self) -> Option<AdditiveOutput> {
        self.output
    }

    /// Worst-case (dense) space reservation in bytes: the `~O(nd)` quantity
    /// Theorem 3 charges. Unlike [`SpaceUsage::space_bytes`] (which counts
    /// currently-touched cells), this scales with the decode budgets.
    pub fn nominal_bytes(&self) -> usize {
        let per_vertex = self.nbr_family.nominal_state_bytes()
            + self.degree_family.nominal_state_bytes()
            + self
                .center_families
                .iter()
                .map(|f| f.nominal_state_bytes())
                .sum::<usize>();
        self.n * per_vertex + self.agm.nominal_bytes() + self.z_samplers.space_bytes()
    }

    /// The `Θ(n·d·log n)` component of the reservation: the per-vertex
    /// neighborhood sketches `S(u) = SKETCH_{~O(d)}(N(u))`. The remaining
    /// terms of [`Self::nominal_bytes`] are `Θ(n·polylog n)` and independent
    /// of `d` — at small `n` they dominate, so experiments report both.
    pub fn nominal_neighborhood_bytes(&self) -> usize {
        self.n * self.nbr_family.nominal_state_bytes()
    }

    fn post_process(&mut self) {
        let threshold = self.params.low_degree_threshold(self.n);
        let mut e_low: HashSet<Edge> = HashSet::new();
        let mut star_edges: Vec<Edge> = Vec::new();
        // Partition labels: centers and singletons label themselves;
        // attached vertices label their parent center.
        let mut labels: Vec<Vertex> = (0..self.n as Vertex).collect();

        for u in 0..self.n as Vertex {
            let d_hat = match self.degree_family.estimate(&self.degree_states[u as usize]) {
                Ok(d) => d as usize,
                Err(_) => {
                    self.stats.decode_failures += 1;
                    usize::MAX // force the high-degree path
                }
            };
            if d_hat <= threshold {
                // Low degree: recover the full neighborhood.
                match self.nbr_family.decode(&self.nbr_states[u as usize]) {
                    Ok(items) => {
                        self.stats.num_low_degree += 1;
                        for (v, mult) in items {
                            if mult > 0 && v < self.n as u64 && v != u as u64 {
                                e_low.insert(Edge::new(u, v as Vertex));
                            }
                        }
                        continue;
                    }
                    Err(_) => self.stats.decode_failures += 1, // fall through
                }
            }
            if self.centers.contains(u as u64) {
                // Centers root their own star; nothing to attach.
                continue;
            }
            // High degree: find a center neighbor via the A^r sketches.
            let mut attached = false;
            for r in (0..self.center_families.len()).rev() {
                let Some(state) = self.center_states.get(&(u, r as u8)) else {
                    continue;
                };
                match self.center_families[r].decode(state) {
                    Ok(items) => {
                        if let Some(&(w, mult)) = items.iter().find(|&&(_, m)| m > 0) {
                            if mult > 0 && w < self.n as u64 {
                                labels[u as usize] = w as Vertex;
                                star_edges.push(Edge::new(u, w as Vertex));
                                attached = true;
                                break;
                            }
                        }
                    }
                    Err(_) => self.stats.decode_failures += 1,
                }
            }
            if attached {
                self.stats.num_attached += 1;
            } else {
                // No decodable center neighbor: fall back to the full
                // neighborhood sketch (the vertex may simply be isolated or
                // mid-degree with an overestimated d̂).
                self.stats.num_fallbacks += 1;
                if let Ok(items) = self.nbr_family.decode(&self.nbr_states[u as usize]) {
                    for (v, mult) in items {
                        if mult > 0 && v < self.n as u64 && v != u as u64 {
                            e_low.insert(Edge::new(u, v as Vertex));
                        }
                    }
                }
            }
        }

        // Subtract E_low from the AGM sketches and extract the contracted
        // spanning forest.
        self.agm.subtract_edges(e_low.iter());
        let forest = self.agm.spanning_forest_with_partition(&labels);
        self.stats.forest_failures = forest.decode_failures;

        let mut edges: HashSet<Edge> = e_low;
        edges.extend(star_edges);
        edges.extend(forest.edges);
        self.stats.sketch_bytes = self.space_bytes();
        self.output = Some(AdditiveOutput {
            spanner: Graph::from_edges(self.n, edges),
            stats: self.stats.clone(),
        });
    }
}

impl StreamAlgorithm for AdditiveSpanner {
    fn num_passes(&self) -> usize {
        1
    }

    fn begin_pass(&mut self, _pass: usize) {}

    fn process(&mut self, up: &StreamUpdate) {
        let delta = up.delta as i128;
        let (a, b) = up.edge.endpoints();
        // Neighborhood and degree sketches, both directions.
        for (x, y) in [(a, b), (b, a)] {
            self.nbr_family
                .update(&mut self.nbr_states[x as usize], y as u64, delta);
            self.degree_family
                .update(&mut self.degree_states[x as usize], y as u64, delta);
            if self.centers.contains(y as u64) {
                for r in 0..self.z_samplers.len() {
                    if self.z_samplers[r].contains(y as u64) {
                        let family = &self.center_families[r];
                        let st = self
                            .center_states
                            .entry((x, r as u8))
                            .or_insert_with(|| family.new_state());
                        family.update(st, y as u64, delta);
                        if st.is_zero() {
                            self.center_states.remove(&(x, r as u8));
                        }
                    }
                }
            }
        }
        self.agm.update(up.edge, delta);
    }

    fn end_pass(&mut self, _pass: usize) {
        self.stats.sketch_bytes = self.space_bytes();
        self.post_process();
    }
}

impl SpaceUsage for AdditiveSpanner {
    fn space_bytes(&self) -> usize {
        let nbr: usize = self.nbr_family.space_bytes()
            + self
                .nbr_states
                .iter()
                .map(SpaceUsage::space_bytes)
                .sum::<usize>();
        let centers: usize = self
            .center_families
            .iter()
            .map(SpaceUsage::space_bytes)
            .sum::<usize>()
            + self
                .center_states
                .values()
                .map(SpaceUsage::space_bytes)
                .sum::<usize>();
        let degrees: usize = self.degree_family.space_bytes()
            + self
                .degree_states
                .iter()
                .map(SpaceUsage::space_bytes)
                .sum::<usize>();
        nbr + centers + degrees + self.agm.space_bytes() + self.z_samplers.space_bytes()
    }
}

/// Convenience: runs the additive spanner over a stream.
///
/// # Examples
///
/// ```
/// use dsg_graph::{gen, GraphStream};
/// use dsg_spanner::additive::{run_additive, AdditiveParams};
///
/// let g = gen::erdos_renyi(60, 0.2, 1);
/// let stream = GraphStream::with_churn(&g, 1.0, 2);
/// let out = run_additive(&stream, AdditiveParams::new(6, 3));
/// assert!(out.spanner.num_edges() <= g.num_edges());
/// ```
pub fn run_additive(stream: &dsg_graph::GraphStream, params: AdditiveParams) -> AdditiveOutput {
    let mut alg = AdditiveSpanner::new(stream.num_vertices(), params);
    dsg_graph::pass::run(&mut alg, stream);
    alg.into_output().expect("pass completed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify;
    use dsg_graph::{gen, GraphStream};

    #[test]
    fn spanner_is_subgraph() {
        let g = gen::erdos_renyi(60, 0.2, 1);
        let stream = GraphStream::with_churn(&g, 1.0, 2);
        let out = run_additive(&stream, AdditiveParams::new(6, 3));
        assert!(verify::is_subgraph(&g, &out.spanner));
    }

    #[test]
    fn connectivity_preserved() {
        let g = gen::erdos_renyi(80, 0.1, 4);
        let stream = GraphStream::with_churn(&g, 1.5, 5);
        let out = run_additive(&stream, AdditiveParams::new(8, 6));
        assert_eq!(
            dsg_graph::components::num_components(&g),
            dsg_graph::components::num_components(&out.spanner),
            "stats: {:?}",
            out.stats
        );
    }

    #[test]
    fn additive_distortion_bounded() {
        let n = 100;
        let g = gen::erdos_renyi(n, 0.15, 7);
        let stream = GraphStream::with_churn(&g, 1.0, 8);
        let d = 8;
        let out = run_additive(&stream, AdditiveParams::new(d, 9));
        let distortion = verify::max_additive_distortion(&g, &out.spanner, n);
        // Theorem 19: O(n/d); constant checked empirically (E6 sweeps it).
        let bound = 8 * n as u32 / d as u32;
        assert!(
            distortion <= bound,
            "distortion {distortion} > {bound}, stats {:?}",
            out.stats
        );
    }

    #[test]
    fn low_degree_graph_kept_exactly() {
        // Everything below the threshold: E_low = E, distortion 0.
        let g = gen::cycle(40);
        let stream = GraphStream::with_churn(&g, 2.0, 10);
        let out = run_additive(&stream, AdditiveParams::new(4, 11));
        assert_eq!(out.spanner.num_edges(), g.num_edges());
        assert_eq!(verify::max_additive_distortion(&g, &out.spanner, 40), 0);
    }

    #[test]
    fn dense_graph_compresses() {
        // A clique on 60 vertices with d=4: high-degree nodes keep only
        // star + forest edges.
        let g = gen::complete(60);
        let stream = GraphStream::insert_only(&g, 12);
        let out = run_additive(&stream, AdditiveParams::new(4, 13));
        assert!(
            out.spanner.num_edges() < g.num_edges() / 2,
            "no compression: {} of {}",
            out.spanner.num_edges(),
            g.num_edges()
        );
        let distortion = verify::max_additive_distortion(&g, &out.spanner, 60);
        assert!(distortion <= 60, "distortion={distortion}");
    }

    #[test]
    fn deletions_respected() {
        let g = gen::erdos_renyi(50, 0.2, 14);
        let stream = GraphStream::with_churn(&g, 3.0, 15);
        let out = run_additive(&stream, AdditiveParams::new(6, 16));
        assert!(verify::is_subgraph(&g, &out.spanner));
    }

    #[test]
    fn stats_populated() {
        let g = gen::erdos_renyi(50, 0.3, 17);
        let stream = GraphStream::insert_only(&g, 18);
        let out = run_additive(&stream, AdditiveParams::new(4, 19));
        assert!(out.stats.sketch_bytes > 0);
        assert!(out.stats.num_low_degree + out.stats.num_attached > 0);
    }

    #[test]
    fn params_validation() {
        let p = AdditiveParams::new(10, 0);
        assert_eq!(p.center_rate(), 0.3);
        assert!(p.low_degree_threshold(100) >= 10);
        assert!(p.neighborhood_budget(100) > 2 * p.low_degree_threshold(100));
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_d_panics() {
        AdditiveParams::new(0, 0);
    }
}
