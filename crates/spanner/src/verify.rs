//! Stretch and distortion verification.
//!
//! The quantities the paper's theorems bound:
//!
//! * multiplicative stretch (Definition 5 / Lemma 13):
//!   `max_{u,v} d_H(u,v) / d_G(u,v) ≤ 2^k`;
//! * additive distortion (Theorem 19):
//!   `max_{u,v} d_H(u,v) - d_G(u,v) ≤ O(n/d)`;
//! * weighted stretch (Remark 14) via Dijkstra distances.
//!
//! For large graphs, stretch is measured from a deterministic sample of BFS
//! sources — the maximum over sampled sources lower-bounds the true maximum
//! and converges quickly because stretch violations are not isolated.

use dsg_graph::bfs::{bfs_distances, UNREACHABLE};
use dsg_graph::dijkstra::{dijkstra_distances, WeightedAdjacency};
use dsg_graph::{Graph, Vertex, WeightedGraph};

/// Maximum multiplicative stretch of `h` w.r.t. `g` over all pairs with a
/// sampled source set of size `min(sources, n)`.
///
/// Returns `f64::INFINITY` if `h` disconnects a pair that `g` connects;
/// `1.0` for an edgeless `g`.
///
/// # Panics
///
/// Panics if the vertex counts differ.
pub fn max_multiplicative_stretch(g: &Graph, h: &Graph, sources: usize) -> f64 {
    assert_eq!(g.num_vertices(), h.num_vertices(), "vertex count mismatch");
    let n = g.num_vertices();
    let g_adj = g.adjacency();
    let h_adj = h.adjacency();
    let mut worst: f64 = 1.0;
    for src in sample_sources(n, sources) {
        let dg = bfs_distances(&g_adj, src);
        let dh = bfs_distances(&h_adj, src);
        for v in 0..n {
            match (dg[v], dh[v]) {
                (0, _) => {}
                (UNREACHABLE, _) => {}
                (_, UNREACHABLE) => return f64::INFINITY,
                (a, b) => worst = worst.max(b as f64 / a as f64),
            }
        }
    }
    worst
}

/// Maximum additive distortion `d_H - d_G` over pairs from sampled sources.
///
/// Returns `u32::MAX` if `h` disconnects a pair `g` connects.
///
/// # Panics
///
/// Panics if the vertex counts differ.
pub fn max_additive_distortion(g: &Graph, h: &Graph, sources: usize) -> u32 {
    assert_eq!(g.num_vertices(), h.num_vertices(), "vertex count mismatch");
    let n = g.num_vertices();
    let g_adj = g.adjacency();
    let h_adj = h.adjacency();
    let mut worst = 0u32;
    for src in sample_sources(n, sources) {
        let dg = bfs_distances(&g_adj, src);
        let dh = bfs_distances(&h_adj, src);
        for v in 0..n {
            match (dg[v], dh[v]) {
                (UNREACHABLE, _) => {}
                (_, UNREACHABLE) => return u32::MAX,
                (a, b) => worst = worst.max(b.saturating_sub(a)),
            }
        }
    }
    worst
}

/// Maximum weighted multiplicative stretch over sampled sources.
///
/// # Panics
///
/// Panics if the vertex counts differ.
pub fn max_weighted_stretch(g: &WeightedGraph, h: &WeightedGraph, sources: usize) -> f64 {
    assert_eq!(g.num_vertices(), h.num_vertices(), "vertex count mismatch");
    let n = g.num_vertices();
    let g_adj = WeightedAdjacency::new(g);
    let h_adj = WeightedAdjacency::new(h);
    let mut worst: f64 = 1.0;
    for src in sample_sources(n, sources) {
        let dg = dijkstra_distances(&g_adj, src);
        let dh = dijkstra_distances(&h_adj, src);
        for v in 0..n {
            if dg[v] > 0.0 && dg[v].is_finite() {
                if !dh[v].is_finite() {
                    return f64::INFINITY;
                }
                worst = worst.max(dh[v] / dg[v]);
            }
        }
    }
    worst
}

/// Checks `h ⊆ g` (every spanner edge is an input edge).
pub fn is_subgraph(g: &Graph, h: &Graph) -> bool {
    let edges = g.edge_set();
    h.edges().iter().all(|e| edges.contains(e))
}

/// Deterministic, evenly spread source sample.
fn sample_sources(n: usize, sources: usize) -> Vec<Vertex> {
    let take = sources.clamp(1, n.max(1));
    if take >= n {
        return (0..n as Vertex).collect();
    }
    let stride = n as f64 / take as f64;
    (0..take).map(|i| (i as f64 * stride) as Vertex).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsg_graph::{gen, Edge};

    #[test]
    fn identical_graphs_have_unit_stretch() {
        let g = gen::erdos_renyi(40, 0.2, 1);
        assert_eq!(max_multiplicative_stretch(&g, &g, 40), 1.0);
        assert_eq!(max_additive_distortion(&g, &g, 40), 0);
    }

    #[test]
    fn cycle_minus_edge_stretch() {
        let g = gen::cycle(10);
        // Remove edge (0,9): distance 1 becomes 9.
        let h = g.minus(&[Edge::new(0, 9)].into_iter().collect());
        assert_eq!(max_multiplicative_stretch(&g, &h, 10), 9.0);
        assert_eq!(max_additive_distortion(&g, &h, 10), 8);
    }

    #[test]
    fn disconnection_is_infinite() {
        let g = gen::path(5);
        let h = g.minus(&[Edge::new(2, 3)].into_iter().collect());
        assert_eq!(max_multiplicative_stretch(&g, &h, 5), f64::INFINITY);
        assert_eq!(max_additive_distortion(&g, &h, 5), u32::MAX);
    }

    #[test]
    fn weighted_stretch_detects_detour() {
        let g = WeightedGraph::from_edges(
            3,
            [
                (Edge::new(0, 1), 1.0),
                (Edge::new(1, 2), 1.0),
                (Edge::new(0, 2), 1.0),
            ],
        );
        let h = WeightedGraph::from_edges(3, [(Edge::new(0, 1), 1.0), (Edge::new(1, 2), 1.0)]);
        assert_eq!(max_weighted_stretch(&g, &h, 3), 2.0);
    }

    #[test]
    fn subgraph_check() {
        let g = gen::complete(5);
        let h = gen::path(5);
        assert!(is_subgraph(&g, &h));
        assert!(!is_subgraph(&h, &g));
    }

    #[test]
    fn sampled_sources_spread() {
        let s = sample_sources(100, 10);
        assert_eq!(s.len(), 10);
        assert!(s.windows(2).all(|w| w[1] > w[0]));
        assert_eq!(sample_sources(5, 100).len(), 5);
    }
}
