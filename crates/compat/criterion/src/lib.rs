//! A minimal, dependency-free shim for the subset of the
//! [`criterion`](https://docs.rs/criterion) API used by this workspace's
//! benchmarks. The build environment has no crates.io access, so the
//! workspace vendors this stand-in as a path dependency.
//!
//! Unlike a pure compile-only stub, this shim actually measures: each
//! benchmark is warmed up, then timed over `sample_size` samples with
//! auto-calibrated iteration counts, and the median / min / max
//! per-iteration times are printed in a criterion-like format:
//!
//! ```text
//! sparse_recovery/update/8  time: [41 ns 43 ns 55 ns]  (20 samples × 1165536 iters)
//! ```
//!
//! `cargo bench` also honours a trailing filter argument, so
//! `cargo bench -p dsg-bench --bench sketch_ops -- decode` runs only the
//! matching benchmark ids, and `--test`/`--list` (passed by `cargo test`,
//! which runs bench targets once) are handled.

use std::time::{Duration, Instant};

/// Top-level benchmark driver, as `criterion::Criterion`.
pub struct Criterion {
    filter: Option<String>,
    list_only: bool,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut filter = None;
        let mut list_only = false;
        let mut test_mode = false;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--list" => list_only = true,
                "--test" => test_mode = true,
                "--bench" | "--nocapture" | "--quiet" | "--exact" => {}
                a if a.starts_with("--") => {}
                a => filter = Some(a.to_string()),
            }
        }
        Criterion {
            filter,
            list_only,
            test_mode,
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run_one(&id, 20, &mut f);
        self
    }

    fn run_one<F>(&mut self, id: &str, sample_size: usize, f: &mut F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        if self.list_only {
            println!("{id}: benchmark");
            return;
        }
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size,
            test_mode: self.test_mode,
        };
        f(&mut b);
        if self.test_mode {
            println!("{id}: bench ok");
            return;
        }
        b.report(id);
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Benchmarks `f` under `self.name/id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into().0);
        let sample_size = self.sample_size;
        self.criterion.run_one(&id, sample_size, &mut f);
        self
    }

    /// Benchmarks `f(bencher, input)` under `self.name/id`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let id = format!("{}/{}", self.name, id.into().0);
        let sample_size = self.sample_size;
        self.criterion
            .run_one(&id, sample_size, &mut |b| f(b, input));
        self
    }

    /// Ends the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

/// A benchmark identifier, as `criterion::BenchmarkId`.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Function-plus-parameter id, rendered `function/parameter`.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{parameter}"))
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

/// Per-benchmark timing driver handed to the closure, as
/// `criterion::Bencher`.
pub struct Bencher {
    /// (iterations, elapsed) per sample; filled by [`iter`](Bencher::iter).
    samples: Vec<(u64, Duration)>,
    /// How many timed samples to collect (the group's `sample_size`).
    sample_size: usize,
    test_mode: bool,
}

/// Target wall time per sample; with warmup and the default 20 samples this
/// keeps one benchmark around a quarter second.
const SAMPLE_TARGET: Duration = Duration::from_millis(10);

impl Bencher {
    /// Measures `f`, storing samples for the caller's report. In test mode
    /// (`cargo test` runs bench targets with `--test`) runs `f` once.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            std::hint::black_box(f());
            return;
        }
        // Calibrate: grow the per-sample iteration count until a sample
        // takes long enough to time reliably.
        let mut iters: u64 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            let dt = t0.elapsed();
            if dt >= SAMPLE_TARGET / 2 || iters >= 1 << 30 {
                break;
            }
            iters = if dt.is_zero() {
                iters * 16
            } else {
                // Aim straight for the target, with headroom.
                let scale = SAMPLE_TARGET.as_nanos() as f64 / dt.as_nanos().max(1) as f64;
                (iters as f64 * scale * 1.2).ceil() as u64
            };
        }
        // Warmup already happened during calibration; now sample.
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            self.samples.push((iters, t0.elapsed()));
        }
    }

    fn report(&self, id: &str) {
        if self.samples.is_empty() {
            println!("{id}: no samples (b.iter never called)");
            return;
        }
        let mut per_iter: Vec<f64> = self
            .samples
            .iter()
            .map(|(iters, dt)| dt.as_nanos() as f64 / *iters as f64)
            .collect();
        per_iter.sort_by(|a, b| a.total_cmp(b));
        let min = per_iter[0];
        let max = per_iter[per_iter.len() - 1];
        let median = per_iter[per_iter.len() / 2];
        let iters = self.samples[0].0;
        println!(
            "{id}  time: [{} {} {}]  ({} samples × {iters} iters)",
            fmt_ns(min),
            fmt_ns(median),
            fmt_ns(max),
            per_iter.len(),
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Declares a benchmark group function, as `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main`, as `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
