//! A minimal, dependency-free shim for the subset of the
//! [`proptest`](https://docs.rs/proptest) API used by this workspace's
//! property tests. The build environment has no crates.io access, so the
//! workspace vendors this stand-in as a path dependency.
//!
//! Semantics: each `proptest!` test runs [`CASES`] deterministic cases.
//! Inputs are drawn from [`Strategy`] implementations seeded by a
//! SplitMix64 stream derived from the test name and case index, so
//! failures are reproducible run-to-run. On a panic inside the test body
//! the failing inputs are printed before the panic is propagated.
//!
//! Supported surface:
//! * `proptest! { #[test] fn name(x in strategy, ..) { .. } }`
//! * `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!`
//! * Range / RangeInclusive strategies over the primitive numeric types
//! * `any::<T>()` for the primitive numeric types and `bool`
//! * Tuple strategies up to arity 4
//! * `prop::collection::vec(strategy, len_range)`

/// Number of cases each property test runs. Real proptest defaults to 256;
/// 96 keeps the whole suite fast while still exercising the input space
/// (inputs are deterministic, so coverage is identical run-to-run).
pub const CASES: u64 = 96;

/// Deterministic SplitMix64 generator used to drive all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator for one test case, mixing the test-name hash
    /// with the case index.
    pub fn for_case(test_hash: u64, case: u64) -> Self {
        TestRng {
            state: test_hash ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        }
    }

    /// Next raw 64-bit output (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[0, bound)` for `bound > 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        // Multiply-shift; bias is irrelevant for test-input generation.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// FNV-1a hash of the test name, used to seed its RNG stream.
pub fn hash_name(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A source of test inputs: the shim's analogue of proptest's `Strategy`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                // span == 0 means the full u64 domain (only reachable for
                // 64-bit types spanning it entirely).
                let off = if span == 0 { rng.next_u64() } else { rng.below(span) };
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.next_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Types with a full-domain default strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite values only: tests use these as ordinary inputs.
        rng.next_f64() * 2e6 - 1e6
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Full-domain strategy for `T`, as `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// The `proptest::prop` namespace subset.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};

        /// Inclusive length bounds for collection strategies. Mirrors
        /// proptest's `SizeRange` so unsuffixed literals like `1..5`
        /// infer `usize`.
        #[derive(Debug, Clone, Copy)]
        pub struct SizeRange {
            lo: usize,
            hi_inclusive: usize,
        }

        impl From<std::ops::Range<usize>> for SizeRange {
            fn from(r: std::ops::Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                SizeRange {
                    lo: r.start,
                    hi_inclusive: r.end - 1,
                }
            }
        }

        impl From<std::ops::RangeInclusive<usize>> for SizeRange {
            fn from(r: std::ops::RangeInclusive<usize>) -> Self {
                SizeRange {
                    lo: *r.start(),
                    hi_inclusive: *r.end(),
                }
            }
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange {
                    lo: n,
                    hi_inclusive: n,
                }
            }
        }

        /// Strategy producing `Vec`s with lengths drawn from `len` and
        /// elements drawn from `element`.
        pub struct VecStrategy<E> {
            element: E,
            len: SizeRange,
        }

        /// `prop::collection::vec(element, len_range)`.
        pub fn vec<E: Strategy>(element: E, len: impl Into<SizeRange>) -> VecStrategy<E> {
            VecStrategy {
                element,
                len: len.into(),
            }
        }

        impl<E: Strategy> Strategy for VecStrategy<E> {
            type Value = Vec<E::Value>;
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let span = (self.len.hi_inclusive - self.len.lo + 1) as u64;
                let n = self.len.lo + rng.below(span) as usize;
                (0..n).map(|_| self.element.sample(rng)).collect()
            }
        }
    }
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Strategy,
    };
}

/// Shim for proptest's checked assertion: plain `assert!` (panics abort the
/// case and the harness prints the failing inputs).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Shim for proptest's checked equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Shim for proptest's checked inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// The `proptest!` test-definition macro: expands each item into a
/// `#[test]` that runs [`CASES`] deterministic cases, printing the failing
/// inputs when a case panics.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$attr:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$attr])*
        fn $name() {
            let test_hash = $crate::hash_name(stringify!($name));
            for case in 0..$crate::CASES {
                let mut rng = $crate::TestRng::for_case(test_hash, case);
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    $(let $arg = $arg.clone();)+
                    $body
                }));
                if let Err(panic) = result {
                    eprintln!(
                        "proptest case {}/{} of `{}` failed with inputs:",
                        case + 1,
                        $crate::CASES,
                        stringify!($name),
                    );
                    $(eprintln!("  {} = {:?}", stringify!($arg), $arg);)+
                    std::panic::resume_unwind(panic);
                }
            }
        }
    )*};
}
