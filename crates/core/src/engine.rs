//! The end-to-end sharded ingest driver: stream → `dsg-engine` → query.
//!
//! [`EngineBuilder`] wires the generic sharded engine to the paper's three
//! query families:
//!
//! * **spanning forest** — each shard ingests into an [`AgmSketch`] under
//!   the shared seed; the coordinator merge-tree-reduces the shard
//!   sketches (optionally through their wire snapshots) and runs Borůvka
//!   (Theorem 10);
//! * **two-pass `2^k`-spanner** — each of the two passes is sharded: the
//!   pass-local state of [`TwoPassSpanner`] is a linear function of the
//!   updates, so shards ingest stream slices and the coordinator merges
//!   with [`TwoPassSpanner::merge_pass_state`], then runs the between-pass
//!   computation (cluster construction, spanner assembly) exactly once;
//! * **KP12 sparsifier** — identically, through
//!   [`TwoPassSparsifier::merge_pass_state`].
//!
//! Because every shard-side object is linear and the coordinator-side
//! decoding is deterministic, the sharded run answers **bit-identically**
//! to a single-threaded run over the same stream — asserted end to end in
//! `tests/integration_engine.rs`.

pub use dsg_engine::{
    merge_tree, reduce_snapshots, EdgeUpdate, EngineConfig, EngineRun, EngineSketch, ShardedEngine,
};

use dsg_agm::forest::ForestResult;
use dsg_agm::AgmSketch;
use dsg_graph::stream::StreamUpdate;
use dsg_graph::{index_to_pair, Edge, GraphStream, StreamAlgorithm};
use dsg_spanner::twopass::TwoPassOutput;
use dsg_spanner::{SpannerParams, TwoPassSpanner};
use dsg_sparsifier::pipeline::PipelineOutput;
use dsg_sparsifier::{SparsifierParams, TwoPassSparsifier};

/// A pass-structured stream algorithm whose *per-pass* ingest state is
/// linear and mergeable — the property that lets each pass be sharded.
pub trait PassMergeable: StreamAlgorithm + Clone + Send + 'static {
    /// Adds `other`'s pass-local linear state (same params, same pass).
    fn merge_pass_state(&mut self, other: &Self);
}

impl PassMergeable for TwoPassSpanner {
    fn merge_pass_state(&mut self, other: &Self) {
        TwoPassSpanner::merge_pass_state(self, other);
    }
}

impl PassMergeable for TwoPassSparsifier {
    fn merge_pass_state(&mut self, other: &Self) {
        TwoPassSparsifier::merge_pass_state(self, other);
    }
}

/// An engine shard wrapping one pass of a [`PassMergeable`] algorithm:
/// coordinate-keyed engine updates are rehydrated into stream updates and
/// fed to `process`.
struct PassShard<A: PassMergeable> {
    alg: A,
    n: usize,
}

impl<A: PassMergeable> EngineSketch for PassShard<A> {
    fn apply_batch(&mut self, batch: &[EdgeUpdate]) {
        for up in batch {
            debug_assert!(up.delta == 1 || up.delta == -1, "graph streams are ±1");
            let (u, v) = index_to_pair(up.key, self.n);
            self.alg.process(&StreamUpdate {
                edge: Edge::new(u, v),
                delta: if up.delta >= 0 { 1 } else { -1 },
                weight: 1.0,
            });
        }
    }

    fn absorb(&mut self, other: Self) {
        self.alg.merge_pass_state(&other.alg);
    }

    fn fork(&self) -> Self {
        Self {
            alg: self.alg.clone(),
            n: self.n,
        }
    }
}

/// Builder for sharded end-to-end runs.
///
/// # Examples
///
/// ```
/// use dsg_core::prelude::*;
/// use dsg_core::engine::EngineBuilder;
///
/// let g = gen::erdos_renyi(60, 0.1, 3);
/// let stream = GraphStream::with_churn(&g, 1.0, 4);
/// let forest = EngineBuilder::new(60).shards(4).seed(7).spanning_forest(&stream);
/// assert!(dsg_graph::components::is_spanning_forest(&g, &forest.edges));
/// ```
#[derive(Debug, Clone)]
pub struct EngineBuilder {
    n: usize,
    shards: usize,
    batch_size: usize,
    seed: u64,
}

impl EngineBuilder {
    /// Starts a builder for graphs on `n` vertices. Defaults: one shard
    /// per available core, batches of 256, seed 0.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            shards: EngineConfig::auto().shards,
            batch_size: 256,
            seed: 0,
        }
    }

    /// Sets the shard (worker thread) count.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn shards(mut self, shards: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        self.shards = shards;
        self
    }

    /// Sets the updates-per-batch granularity.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0`.
    pub fn batch_size(mut self, batch_size: usize) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        self.batch_size = batch_size;
        self
    }

    /// Sets the shared root seed (the randomness all shards agree on).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Number of vertices the builder is configured for.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Configured shard (worker thread) count.
    pub fn num_shards(&self) -> usize {
        self.shards
    }

    /// Configured updates-per-batch granularity.
    pub fn updates_per_batch(&self) -> usize {
        self.batch_size
    }

    /// Configured shared root seed.
    pub fn root_seed(&self) -> u64 {
        self.seed
    }

    fn config(&self) -> EngineConfig {
        EngineConfig::new(self.shards).batch_size(self.batch_size)
    }

    /// Feeds `stream` through a sharded engine of `make_shard` sketches
    /// and returns the merged result — the raw building block behind the
    /// query methods, exposed for custom sketches.
    pub fn ingest_merged<S, F>(&self, stream: &GraphStream, make_shard: F) -> S
    where
        S: EngineSketch,
        F: FnMut(usize) -> S,
    {
        assert_eq!(stream.num_vertices(), self.n, "vertex count mismatch");
        let mut engine = ShardedEngine::start(self.config(), make_shard);
        for up in stream.updates() {
            engine.push(EdgeUpdate::new(up.edge.index(self.n), up.delta as i128));
        }
        engine
            .finish()
            .merged()
            .expect("engine has at least one shard")
    }

    /// Sharded AGM ingest → merged sketch → spanning forest (Theorem 10).
    pub fn spanning_forest(&self, stream: &GraphStream) -> ForestResult {
        self.agm_sketch(stream).spanning_forest()
    }

    /// Sharded AGM ingest returning the merged coordinator sketch, for
    /// callers that want to run further queries (partitions, subtraction).
    pub fn agm_sketch(&self, stream: &GraphStream) -> AgmSketch {
        let (n, seed) = (self.n, self.seed);
        self.ingest_merged(stream, |_| AgmSketch::new(n, seed))
    }

    /// Sharded AGM ingest of a **net edge multiset**: each net edge is
    /// one engine update carrying its whole multiplicity (the engine's
    /// deltas are `i128`, so a compacted segment needs no re-expansion).
    /// By linearity the merged sketch is bit-identical to
    /// [`agm_sketch`](EngineBuilder::agm_sketch) over any raw stream with
    /// the same net effect — the warm-start path a server takes when it
    /// rebuilds ingest state from a compacted checkpoint segment.
    pub fn agm_sketch_net<M>(&self, net: &M) -> AgmSketch
    where
        M: dsg_graph::EdgeMultiset + ?Sized,
    {
        assert_eq!(net.num_vertices(), self.n, "vertex count mismatch");
        let (n, seed) = (self.n, self.seed);
        let mut engine = ShardedEngine::start(self.config(), |_| AgmSketch::new(n, seed));
        net.for_each_net_edge(&mut |e| {
            engine.push(EdgeUpdate::new(e.edge.index(n), e.multiplicity as i128));
        });
        engine
            .finish()
            .merged()
            .expect("engine has at least one shard")
    }

    /// Sharded net-multiset ingest → merged sketch → spanning forest.
    pub fn spanning_forest_net<M>(&self, net: &M) -> ForestResult
    where
        M: dsg_graph::EdgeMultiset + ?Sized,
    {
        self.agm_sketch_net(net).spanning_forest()
    }

    /// Sharded AGM ingest that ships **wire snapshots** shard→coordinator
    /// (serialize, checksum-verify, deserialize, merge-tree) — the path a
    /// real multi-server deployment exercises. Answers identically to
    /// [`spanning_forest`](EngineBuilder::spanning_forest).
    pub fn spanning_forest_via_wire(&self, stream: &GraphStream) -> ForestResult {
        assert_eq!(stream.num_vertices(), self.n, "vertex count mismatch");
        let (n, seed) = (self.n, self.seed);
        let mut engine = ShardedEngine::start(self.config(), |_| AgmSketch::new(n, seed));
        for up in stream.updates() {
            engine.push(EdgeUpdate::new(up.edge.index(n), up.delta as i128));
        }
        let snapshots = engine.finish().snapshots();
        let merged: AgmSketch = dsg_engine::reduce_snapshots(&snapshots)
            .expect("shard snapshots decode")
            .expect("engine has at least one shard");
        merged.spanning_forest()
    }

    /// Drives a [`PassMergeable`] algorithm over `stream`, sharding the
    /// ingest of every pass and running the between-pass computation once
    /// on the coordinator.
    pub fn run_sharded_passes<A: PassMergeable>(&self, mut alg: A, stream: &GraphStream) -> A {
        assert_eq!(stream.num_vertices(), self.n, "vertex count mismatch");
        let n = self.n;
        for pass in 0..alg.num_passes() {
            alg.begin_pass(pass);
            // Shards are clones of the coordinator taken after
            // `begin_pass`: they carry the shared randomness and (for
            // pass 2) the broadcast clustering, with empty pass state.
            let mut engine = ShardedEngine::start(self.config(), |_| PassShard {
                alg: alg.clone(),
                n,
            });
            for up in stream.updates() {
                engine.push(EdgeUpdate::new(up.edge.index(n), up.delta as i128));
            }
            for shard in engine.finish().shards {
                alg.merge_pass_state(&shard.alg);
            }
            alg.end_pass(pass);
        }
        alg
    }

    /// Sharded two-pass `2^k`-spanner (Theorem 1).
    pub fn spanner(&self, stream: &GraphStream, params: SpannerParams) -> TwoPassOutput {
        let alg = TwoPassSpanner::new(self.n, params);
        self.run_sharded_passes(alg, stream)
            .into_output()
            .expect("both passes completed")
    }

    /// Sharded two-pass KP12 spectral sparsifier (Corollary 2).
    pub fn sparsifier(&self, stream: &GraphStream, params: SparsifierParams) -> PipelineOutput {
        let alg = TwoPassSparsifier::new(self.n, params);
        self.run_sharded_passes(alg, stream)
            .into_output()
            .expect("both passes completed")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsg_graph::components::is_spanning_forest;
    use dsg_graph::gen;

    #[test]
    fn engine_forest_is_valid() {
        let g = gen::erdos_renyi(50, 0.1, 1);
        let stream = GraphStream::with_churn(&g, 1.0, 2);
        let forest = EngineBuilder::new(50)
            .shards(3)
            .seed(5)
            .spanning_forest(&stream);
        assert!(is_spanning_forest(&g, &forest.edges));
    }

    #[test]
    fn shard_count_does_not_change_answers() {
        let g = gen::erdos_renyi(40, 0.15, 3);
        let stream = GraphStream::with_churn(&g, 1.0, 4);
        let base = EngineBuilder::new(40).shards(1).seed(9);
        let f1 = base.clone().spanning_forest(&stream);
        let f4 = base.clone().shards(4).spanning_forest(&stream);
        assert_eq!(f1.edges, f4.edges);
    }

    #[test]
    fn net_ingest_matches_stream_ingest_bit_for_bit() {
        let g = gen::erdos_renyi(40, 0.15, 5);
        let stream = GraphStream::with_churn(&g, 2.0, 6);
        let b = EngineBuilder::new(40).shards(3).seed(8);
        let from_stream = b.agm_sketch(&stream);
        let from_net = b.agm_sketch_net(&stream.net_multiset());
        assert_eq!(
            dsg_sketch::LinearSketch::to_bytes(&from_stream),
            dsg_sketch::LinearSketch::to_bytes(&from_net),
            "net warm-start diverged from raw-stream ingest"
        );
        assert_eq!(
            b.spanning_forest(&stream).edges,
            b.spanning_forest_net(&stream.net_multiset()).edges,
        );
    }

    #[test]
    fn wire_path_matches_in_memory_path() {
        let g = gen::erdos_renyi(40, 0.15, 6);
        let stream = GraphStream::with_churn(&g, 0.5, 7);
        let b = EngineBuilder::new(40).shards(4).seed(11);
        assert_eq!(
            b.spanning_forest(&stream).edges,
            b.spanning_forest_via_wire(&stream).edges,
        );
    }

    #[test]
    fn sharded_spanner_matches_single_threaded() {
        let g = gen::erdos_renyi(40, 0.2, 8);
        let stream = GraphStream::with_churn(&g, 1.0, 9);
        let params = SpannerParams::new(2, 10);
        let sharded = EngineBuilder::new(40).shards(4).spanner(&stream, params);
        let direct = dsg_spanner::twopass::run_two_pass(&stream, params);
        assert_eq!(sharded.spanner.edges(), direct.spanner.edges());
        assert_eq!(sharded.observed_edges, direct.observed_edges);
    }

    #[test]
    #[should_panic(expected = "vertex count mismatch")]
    fn stream_size_mismatch_panics() {
        let g = gen::path(10);
        let stream = GraphStream::insert_only(&g, 1);
        EngineBuilder::new(20).spanning_forest(&stream);
    }
}
