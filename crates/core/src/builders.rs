//! Builder-style entry points for the paper's three constructions.
//!
//! These wrap the streaming algorithms in `dsg-spanner` and
//! `dsg-sparsifier` with sensible defaults so the common cases are
//! one-liners; power users drop down to the underlying `Params` structs.

use dsg_graph::{pass, GraphStream};
use dsg_spanner::additive::AdditiveOutput;
use dsg_spanner::twopass::TwoPassOutput;
use dsg_spanner::weighted::WeightedOutput;
use dsg_spanner::{
    AdditiveParams, AdditiveSpanner, SpannerParams, TwoPassSpanner, WeightedTwoPassSpanner,
};
use dsg_sparsifier::pipeline::PipelineOutput;
use dsg_sparsifier::{SparsifierParams, TwoPassSparsifier};

/// Builds two-pass multiplicative `2^k`-spanners (Theorem 1).
///
/// # Examples
///
/// ```
/// use dsg_core::prelude::*;
///
/// let g = gen::cycle(40);
/// let stream = GraphStream::insert_only(&g, 1);
/// let out = SpannerBuilder::new(40).stretch_exponent(2).build_from_stream(&stream);
/// assert!(out.spanner.num_edges() <= g.num_edges());
/// ```
#[derive(Debug, Clone)]
pub struct SpannerBuilder {
    n: usize,
    params: SpannerParams,
}

impl SpannerBuilder {
    /// Starts a builder for graphs on `n` vertices (defaults: `k = 2`,
    /// seed 0).
    pub fn new(n: usize) -> Self {
        Self {
            n,
            params: SpannerParams::new(2, 0),
        }
    }

    /// Sets the hierarchy depth `k` (stretch `2^k`).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn stretch_exponent(mut self, k: usize) -> Self {
        assert!(k >= 1, "k must be at least 1");
        self.params.k = k;
        self
    }

    /// Sets the root seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.params.seed = seed;
        self
    }

    /// Overrides the full parameter set.
    pub fn params(mut self, params: SpannerParams) -> Self {
        self.params = params;
        self
    }

    /// Runs the two passes over `stream` and returns the output.
    ///
    /// # Panics
    ///
    /// Panics if the stream's vertex count differs from the builder's.
    pub fn build_from_stream(&self, stream: &GraphStream) -> TwoPassOutput {
        assert_eq!(stream.num_vertices(), self.n, "vertex count mismatch");
        let mut alg = TwoPassSpanner::new(self.n, self.params);
        pass::run(&mut alg, stream);
        alg.into_output().expect("both passes completed")
    }

    /// Runs the weighted variant (Remark 14) with rounding parameter
    /// `gamma` over a weighted stream.
    pub fn build_weighted_from_stream(&self, stream: &GraphStream, gamma: f64) -> WeightedOutput {
        assert_eq!(stream.num_vertices(), self.n, "vertex count mismatch");
        let mut alg = WeightedTwoPassSpanner::new(self.n, gamma, self.params);
        pass::run(&mut alg, stream);
        alg.into_output().expect("both passes completed")
    }
}

/// Builds single-pass additive spanners (Theorem 3).
///
/// # Examples
///
/// ```
/// use dsg_core::prelude::*;
///
/// let g = gen::erdos_renyi(60, 0.2, 1);
/// let stream = GraphStream::with_churn(&g, 1.0, 2);
/// let out = AdditiveSpannerBuilder::new(60).degree_parameter(6).build_from_stream(&stream);
/// assert!(verify::is_subgraph(&g, &out.spanner));
/// ```
#[derive(Debug, Clone)]
pub struct AdditiveSpannerBuilder {
    n: usize,
    params: AdditiveParams,
}

impl AdditiveSpannerBuilder {
    /// Starts a builder for graphs on `n` vertices (defaults: `d = 8`,
    /// seed 0).
    pub fn new(n: usize) -> Self {
        Self {
            n,
            params: AdditiveParams::new(8, 0),
        }
    }

    /// Sets the degree parameter `d` (space `~O(nd)`, distortion
    /// `O(n/d)`).
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`.
    pub fn degree_parameter(mut self, d: usize) -> Self {
        assert!(d >= 1, "d must be at least 1");
        self.params.d = d;
        self
    }

    /// Sets the root seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.params.seed = seed;
        self
    }

    /// Overrides the full parameter set.
    pub fn params(mut self, params: AdditiveParams) -> Self {
        self.params = params;
        self
    }

    /// Runs the single pass over `stream` and returns the output.
    ///
    /// # Panics
    ///
    /// Panics if the stream's vertex count differs from the builder's.
    pub fn build_from_stream(&self, stream: &GraphStream) -> AdditiveOutput {
        assert_eq!(stream.num_vertices(), self.n, "vertex count mismatch");
        let mut alg = AdditiveSpanner::new(self.n, self.params);
        pass::run(&mut alg, stream);
        alg.into_output().expect("pass completed")
    }
}

/// Builds two-pass spectral sparsifiers (Corollary 2).
///
/// # Examples
///
/// ```no_run
/// use dsg_core::prelude::*;
///
/// let g = gen::complete(32);
/// let stream = GraphStream::insert_only(&g, 1);
/// let out = SparsifierBuilder::new(32).epsilon(0.5).build_from_stream(&stream);
/// println!("sparsifier: {} edges", out.sparsifier.num_edges());
/// ```
#[derive(Debug, Clone)]
pub struct SparsifierBuilder {
    n: usize,
    params: SparsifierParams,
}

impl SparsifierBuilder {
    /// Starts a builder for graphs on `n` vertices (defaults: `k = 2`,
    /// `eps = 0.5`, seed 0).
    pub fn new(n: usize) -> Self {
        Self {
            n,
            params: SparsifierParams::new(2, 0.5, 0),
        }
    }

    /// Sets the target precision.
    ///
    /// # Panics
    ///
    /// Panics if `eps` is not in `(0, 1)`.
    pub fn epsilon(mut self, eps: f64) -> Self {
        assert!(eps > 0.0 && eps < 1.0, "eps must be in (0, 1)");
        self.params.eps = eps;
        self
    }

    /// Sets the spanner depth `k` (`λ = 2^k`); the paper's asymptotic
    /// choice is `k = sqrt(log n)`, see
    /// [`SparsifierParams::paper_k`].
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn stretch_exponent(mut self, k: usize) -> Self {
        assert!(k >= 1, "k must be at least 1");
        self.params.k = k;
        self
    }

    /// Sets the root seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.params.seed = seed;
        self
    }

    /// Overrides the full parameter set.
    pub fn params(mut self, params: SparsifierParams) -> Self {
        self.params = params;
        self
    }

    /// Runs the two passes over `stream` and returns the output.
    ///
    /// # Panics
    ///
    /// Panics if the stream's vertex count differs from the builder's.
    pub fn build_from_stream(&self, stream: &GraphStream) -> PipelineOutput {
        assert_eq!(stream.num_vertices(), self.n, "vertex count mismatch");
        let mut alg = TwoPassSparsifier::new(self.n, self.params);
        pass::run(&mut alg, stream);
        alg.into_output().expect("both passes completed")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsg_graph::gen;

    #[test]
    fn spanner_builder_defaults() {
        let g = gen::erdos_renyi(40, 0.2, 1);
        let stream = GraphStream::insert_only(&g, 2);
        let out = SpannerBuilder::new(40).seed(3).build_from_stream(&stream);
        assert!(out.spanner.num_edges() > 0);
    }

    #[test]
    fn additive_builder_defaults() {
        let g = gen::erdos_renyi(40, 0.2, 4);
        let stream = GraphStream::insert_only(&g, 5);
        let out = AdditiveSpannerBuilder::new(40)
            .seed(6)
            .build_from_stream(&stream);
        assert!(out.spanner.num_edges() > 0);
    }

    #[test]
    #[should_panic(expected = "vertex count mismatch")]
    fn size_mismatch_panics() {
        let g = gen::path(10);
        let stream = GraphStream::insert_only(&g, 1);
        SpannerBuilder::new(20).build_from_stream(&stream);
    }

    #[test]
    fn weighted_build_runs() {
        let g = gen::with_random_weights(&gen::cycle(20), 1.0, 4.0, 7);
        let stream = GraphStream::weighted_with_churn(&g, 0.5, 8);
        let out = SpannerBuilder::new(20)
            .seed(9)
            .build_weighted_from_stream(&stream, 0.5);
        assert!(out.spanner.num_edges() > 0);
    }
}
