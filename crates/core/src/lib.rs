//! # Dynamic-stream graph spanners and sparsifiers
//!
//! A from-scratch Rust implementation of **"Spanners and Sparsifiers in
//! Dynamic Streams"** (Kapralov–Woodruff, PODC 2014), together with every
//! substrate the paper builds on: linear graph sketches (AGM), sparse
//! recovery, L0 sampling, distinct-elements estimation, k-wise independent
//! hashing, and the spectral machinery to verify sparsifiers exactly.
//!
//! ## The model
//!
//! A graph on `n` vertices arrives as a stream of **edge insertions and
//! deletions**; an algorithm keeps only a small linear sketch of the
//! stream. The headline results reproduced here:
//!
//! | Result | Object | Passes | Space |
//! |---|---|---|---|
//! | Theorem 1 | `2^k`-spanner | 2 | `~O(n^{1+1/k})` |
//! | Corollary 2 | `(1±eps)`-spectral sparsifier | 2 | `n^{1+o(1)}/eps^4` |
//! | Theorem 3 | `O(n/d)`-additive spanner | 1 | `~O(nd)` |
//! | Theorem 4 | lower bound for the above | 1 | `Ω(nd)` |
//!
//! ## Quick start
//!
//! ```
//! use dsg_core::prelude::*;
//!
//! // A graph arrives as a dynamic stream with deletions…
//! let graph = gen::erdos_renyi(100, 0.1, 7);
//! let stream = GraphStream::with_churn(&graph, 1.0, 8);
//!
//! // …and two passes of sketching produce a 4-spanner (k = 2).
//! let spanner = SpannerBuilder::new(100)
//!     .stretch_exponent(2)
//!     .seed(42)
//!     .build_from_stream(&stream);
//!
//! let stretch = verify::max_multiplicative_stretch(&graph, &spanner.spanner, 50);
//! assert!(stretch <= 4.0);
//! ```
//!
//! The crates re-exported here can also be used directly: [`sketch`] for
//! the linear-sketch toolbox, [`agm`] for spanning-forest sketches,
//! [`spanner`] and [`sparsifier`] for the paper's algorithms, and
//! [`lowerbound`] for the Theorem-4 communication game.

pub use dsg_agm as agm;
pub use dsg_graph as graph;
pub use dsg_hash as hash;
pub use dsg_lowerbound as lowerbound;
pub use dsg_sketch as sketch;
pub use dsg_spanner as spanner;
pub use dsg_sparsifier as sparsifier;
pub use dsg_util as util;

pub mod builders;
pub mod engine;

pub use builders::{AdditiveSpannerBuilder, SpannerBuilder, SparsifierBuilder};
pub use engine::EngineBuilder;

/// Everything a typical user needs in scope.
pub mod prelude {
    pub use crate::builders::{AdditiveSpannerBuilder, SpannerBuilder, SparsifierBuilder};
    pub use crate::engine::EngineBuilder;
    pub use dsg_graph::{
        gen, Edge, Graph, GraphStream, StreamAlgorithm, StreamUpdate, Vertex, WeightedGraph,
    };
    pub use dsg_sketch::LinearSketch;
    pub use dsg_spanner::{verify, AdditiveParams, SpannerParams};
    pub use dsg_sparsifier::{Laplacian, SparsifierParams};
    pub use dsg_util::{SpaceUsage, Summary, Table};
}
