//! Spanning forests from AGM sketches (the paper's Theorem 10).
//!
//! [`AgmSketch`] maintains, for each of `O(log n)` independent *rounds*, one
//! L0-sampler state per vertex over the signed incidence vector (see
//! [`crate::incidence`]). Forest extraction runs Borůvka: in round `r`,
//! every current component sums its members' round-`r` states (linearity —
//! internal edges cancel) and samples an outgoing edge; sampled edges merge
//! components. Fresh randomness per round keeps the adaptivity of Borůvka
//! away from the samplers, which is exactly why the sketch keeps
//! `O(log n)` independent copies.
//!
//! Two extras the paper's Algorithm 3 needs:
//!
//! * **supernode partitions** — `spanning_forest_with_partition` starts
//!   Borůvka from a given clustering instead of singletons, implementing the
//!   observation that "if a graph `H` is obtained from `G` by collapsing
//!   some sets of nodes into supernodes, an AGM sketch for `H` can be
//!   obtained from an AGM sketch for `G`";
//! * **edge subtraction** — [`AgmSketch::subtract_edges`] deletes a known
//!   edge set from the sketch by linearity ("starting with AGM sketches for
//!   `G`, we can first subtract all edges in `E_low`, and then invoke
//!   Theorem 10 on `G'`").

use crate::incidence::{edge_coordinate, incidence_sign};
use dsg_graph::components::UnionFind;
use dsg_graph::{index_to_pair, Edge, Vertex};
use dsg_sketch::l0::{L0Family, L0State};
use dsg_sketch::wire::{self, WireError};
use dsg_sketch::LinearSketch;
use dsg_util::SpaceUsage;

/// Default extra rounds beyond `ceil(log2 n)`; Borůvka halves components
/// per round in expectation, the slack absorbs unlucky sampling.
const EXTRA_ROUNDS: usize = 4;

/// The outcome of forest extraction.
#[derive(Debug, Clone, Default)]
pub struct ForestResult {
    /// The forest edges found (a subgraph of the sketched graph whp).
    pub edges: Vec<Edge>,
    /// Number of component sampling attempts that failed to decode
    /// (whp-failure events; nonzero values flag under-provisioned rounds).
    pub decode_failures: usize,
}

/// A linear sketch of an `n`-vertex dynamic graph supporting spanning-forest
/// extraction.
///
/// # Examples
///
/// ```
/// use dsg_agm::AgmSketch;
/// use dsg_graph::Edge;
///
/// let mut sk = AgmSketch::new(5, 7);
/// sk.update(Edge::new(0, 1), 1);
/// sk.update(Edge::new(1, 2), 1);
/// sk.update(Edge::new(3, 4), 1);
/// sk.update(Edge::new(1, 2), -1); // deletion
/// let f = sk.spanning_forest();
/// assert_eq!(f.edges.len(), 2); // {0,1} and {3,4}
/// ```
#[derive(Debug, Clone)]
pub struct AgmSketch {
    n: usize,
    seed: u64,
    families: Vec<L0Family>,
    /// `states[round][vertex]`.
    states: Vec<Vec<L0State>>,
}

impl AgmSketch {
    /// Creates a sketch for graphs on `n` vertices with the default
    /// `ceil(log2 n) + 4` rounds.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn new(n: usize, seed: u64) -> Self {
        let rounds = (usize::BITS - n.next_power_of_two().leading_zeros()) as usize + EXTRA_ROUNDS;
        Self::with_rounds(n, rounds, seed)
    }

    /// Creates a sketch with an explicit number of Borůvka rounds.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `rounds == 0`.
    pub fn with_rounds(n: usize, rounds: usize, seed: u64) -> Self {
        assert!(n >= 2, "need at least two vertices");
        assert!(rounds > 0, "need at least one round");
        let universe_bits = 64 - (dsg_graph::ids::num_pairs(n).max(1)).leading_zeros();
        let tree = dsg_hash::SeedTree::new(seed ^ 0x41_474D_534B_4531); // "AGMSKE1"
        let families: Vec<L0Family> = (0..rounds)
            .map(|r| L0Family::new(universe_bits, tree.child(r as u64).seed()))
            .collect();
        let states = families
            .iter()
            .map(|f| (0..n).map(|_| f.new_state()).collect())
            .collect();
        Self {
            n,
            seed,
            families,
            states,
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// The creation seed (compatibility key for merges — the randomness
    /// the paper's servers "agreed upon" in advance).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of independent rounds.
    pub fn num_rounds(&self) -> usize {
        self.families.len()
    }

    /// Applies a signed edge update (`delta` = net multiplicity change).
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range.
    pub fn update(&mut self, edge: Edge, delta: i128) {
        assert!((edge.v() as usize) < self.n, "edge {edge} out of range");
        if delta == 0 {
            return;
        }
        let coord = edge_coordinate(&edge, self.n);
        for (family, states) in self.families.iter().zip(&mut self.states) {
            for w in [edge.u(), edge.v()] {
                let sign = incidence_sign(w, &edge);
                family.update(&mut states[w as usize], coord, sign * delta);
            }
        }
    }

    /// Subtracts a set of known edges (each with multiplicity 1) from the
    /// sketch — the `E \ E_low` step of the paper's Algorithm 3.
    pub fn subtract_edges<'a, I: IntoIterator<Item = &'a Edge>>(&mut self, edges: I) {
        for e in edges {
            self.update(*e, -1);
        }
    }

    /// Extracts a spanning forest of the sketched graph.
    pub fn spanning_forest(&self) -> ForestResult {
        let mut uf = UnionFind::new(self.n);
        self.extract_forest(&mut uf)
    }

    /// Extracts a spanning forest of the graph with the given vertex
    /// partition collapsed into supernodes. Returned edges connect distinct
    /// *parts*; edges internal to a part are invisible (they cancel).
    ///
    /// `partition[v]` is the part id of vertex `v` (any `Vertex` values).
    ///
    /// # Panics
    ///
    /// Panics if `partition.len() != n`.
    pub fn spanning_forest_with_partition(&self, partition: &[Vertex]) -> ForestResult {
        assert_eq!(partition.len(), self.n, "partition size mismatch");
        let mut uf = UnionFind::new(self.n);
        // Collapse each part by unioning consecutive members.
        let mut rep: std::collections::HashMap<Vertex, Vertex> = std::collections::HashMap::new();
        for (v, &part) in partition.iter().enumerate() {
            match rep.entry(part) {
                std::collections::hash_map::Entry::Occupied(o) => {
                    uf.union(*o.get(), v as Vertex);
                }
                std::collections::hash_map::Entry::Vacant(vac) => {
                    vac.insert(v as Vertex);
                }
            }
        }
        self.extract_forest(&mut uf)
    }

    /// Extracts a spanning forest touching only the *active* vertices,
    /// splicing in `kept_edges` — forest edges from a previous extraction
    /// whose components the caller knows the update delta did not touch.
    ///
    /// `kept_edges` are unioned up front (pre-merging every untouched
    /// component) and copied into the result; Borůvka then runs with
    /// per-round grouping and state summation restricted to active
    /// vertices, so the decode costs `O(active · rounds)` instead of
    /// `O(n · rounds)`. Components of the sketched graph never share
    /// edges, so an active component's decode trajectory is identical to
    /// the one a full [`spanning_forest`](AgmSketch::spanning_forest)
    /// run would follow; the returned edge set is therefore bit-identical
    /// to a from-scratch extraction **provided the caller's split is
    /// sound**: the active set must be a union of whole components (of
    /// both the previous and the current graph), every vertex with a
    /// changed incident edge must be active, and `kept_edges` must be
    /// exactly the previous forest's edges among inactive vertices.
    ///
    /// `decode_failures` counts only failures among active components.
    ///
    /// # Panics
    ///
    /// Panics if `active.len() != n`; debug builds additionally panic if
    /// a kept edge touches an active vertex.
    pub fn spanning_forest_restricted(&self, active: &[bool], kept_edges: &[Edge]) -> ForestResult {
        assert_eq!(active.len(), self.n, "active mask size mismatch");
        let mut uf = UnionFind::new(self.n);
        for e in kept_edges {
            debug_assert!(
                !active[e.u() as usize] && !active[e.v() as usize],
                "kept edge {e} touches an active vertex"
            );
            uf.union(e.u(), e.v());
        }
        let mut result = self.extract_forest_restricted(&mut uf, Some(active));
        result.edges.extend_from_slice(kept_edges);
        result.edges.sort_unstable();
        result
    }

    /// Borůvka over the current component structure in `uf`.
    fn extract_forest(&self, uf: &mut UnionFind) -> ForestResult {
        self.extract_forest_restricted(uf, None)
    }

    /// Borůvka restricted to an optional active-vertex mask. Inactive
    /// vertices are never grouped or summed; their components (pre-merged
    /// into `uf` by the caller) are frozen.
    fn extract_forest_restricted(
        &self,
        uf: &mut UnionFind,
        active: Option<&[bool]>,
    ) -> ForestResult {
        let mut result = ForestResult::default();
        for (family, states) in self.families.iter().zip(&self.states) {
            if uf.num_components() == 1 {
                break;
            }
            // Group members by component root. A BTreeMap fixes the
            // iteration order so extraction is a deterministic function of
            // the sketch state — merged shard sketches must answer
            // identically to a single-sketch run, byte for byte.
            let mut groups: std::collections::BTreeMap<Vertex, Vec<Vertex>> =
                std::collections::BTreeMap::new();
            for v in 0..self.n as Vertex {
                if let Some(mask) = active {
                    if !mask[v as usize] {
                        continue;
                    }
                }
                groups.entry(uf.find(v)).or_default().push(v);
            }
            if groups.is_empty() {
                break;
            }
            // Sum member states per component and sample an outgoing edge.
            let mut found: Vec<Edge> = Vec::new();
            for members in groups.values() {
                let mut sum = family.new_state();
                for &v in members {
                    sum.merge(&states[v as usize]);
                }
                match family.sample(&sum) {
                    Ok(Some((coord, _))) => {
                        let (u, v) = index_to_pair(coord, self.n);
                        found.push(Edge::new(u, v));
                    }
                    Ok(None) => {} // isolated component — correct outcome
                    Err(_) => result.decode_failures += 1,
                }
            }
            // Union in sorted order: ties between competing edges across
            // the same component pair resolve deterministically.
            found.sort_unstable();
            found.dedup();
            for e in found {
                if uf.union(e.u(), e.v()) {
                    result.edges.push(e);
                }
            }
        }
        result.edges.sort_unstable();
        result
    }
}

impl AgmSketch {
    /// Worst-case (dense) footprint in bytes: the per-vertex reservation
    /// the `O(n log^3 n)` bound of Theorem 10 charges.
    pub fn nominal_bytes(&self) -> usize {
        self.families
            .iter()
            .map(|f| f.nominal_state_bytes() * self.n + f.space_bytes())
            .sum()
    }
}

impl SpaceUsage for AgmSketch {
    fn space_bytes(&self) -> usize {
        let families: usize = self.families.iter().map(SpaceUsage::space_bytes).sum();
        let states: usize = self
            .states
            .iter()
            .map(|row| row.iter().map(SpaceUsage::space_bytes).sum::<usize>())
            .sum();
        families + states
    }
}

impl LinearSketch for AgmSketch {
    const WIRE_KIND: u16 = wire::KIND_AGM;

    /// Coordinate-keyed update: `key` is the stream coordinate of an edge
    /// (see [`dsg_graph::pair_to_index`]), the form a sharded ingest
    /// engine feeds. Keys outside `[0, C(n,2))` are dropped (debug builds
    /// assert) — a malformed update must not abort a whole shard.
    fn update(&mut self, key: u64, delta: i128) {
        if key >= dsg_graph::ids::num_pairs(self.n) {
            debug_assert!(false, "coordinate {key} out of range for n={}", self.n);
            return;
        }
        let (u, v) = index_to_pair(key, self.n);
        self.update(Edge::new(u, v), delta);
    }

    fn merge(&mut self, other: &Self) {
        assert_eq!(self.n, other.n, "vertex count mismatch");
        assert_eq!(
            self.num_rounds(),
            other.num_rounds(),
            "round count mismatch"
        );
        assert_eq!(self.seed, other.seed, "seed mismatch");
        for (mine, theirs) in self.states.iter_mut().zip(&other.states) {
            for (a, b) in mine.iter_mut().zip(theirs) {
                a.merge(b);
            }
        }
    }

    fn to_bytes(&self) -> Vec<u8> {
        let mut payload = Vec::new();
        wire::put_len(&mut payload, self.n);
        wire::put_len(&mut payload, self.num_rounds());
        wire::put_u64(&mut payload, self.seed);
        for row in &self.states {
            for st in row {
                st.encode_into(&mut payload);
            }
        }
        wire::finish_frame(Self::WIRE_KIND, payload)
    }

    fn from_bytes(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = wire::open_frame(Self::WIRE_KIND, bytes)?;
        let n = r.read_len()?;
        let rounds = r.read_len()?;
        if n < 2 || rounds == 0 {
            return Err(WireError::Malformed("bad vertex or round count"));
        }
        // Edge coordinates must fit the 60-bit sketch key universe (and
        // `num_pairs` must not overflow): reject rather than let the
        // constructor assert on a crafted frame.
        if n > (1 << 30) {
            return Err(WireError::Malformed("vertex count exceeds key universe"));
        }
        // Every per-vertex per-round state costs at least 8 payload bytes
        // (its level count); bound the declared shape by the payload so a
        // corrupt frame cannot trigger a huge eager allocation.
        if n.saturating_mul(rounds) > r.remaining() / 8 {
            return Err(WireError::Truncated);
        }
        let seed = r.u64()?;
        let mut sk = AgmSketch::with_rounds(n, rounds, seed);
        for (family, row) in sk.families.iter().zip(sk.states.iter_mut()) {
            for st in row.iter_mut() {
                *st = family.decode_state(&mut r)?;
            }
        }
        r.expect_end()?;
        Ok(sk)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsg_graph::components::{is_spanning_forest, num_components};
    use dsg_graph::{gen, Graph};

    fn sketch_graph(g: &Graph, seed: u64) -> AgmSketch {
        let mut sk = AgmSketch::new(g.num_vertices(), seed);
        for e in g.edges() {
            sk.update(*e, 1);
        }
        sk
    }

    #[test]
    fn forest_of_connected_graph() {
        let g = gen::erdos_renyi(50, 0.15, 1);
        let sk = sketch_graph(&g, 2);
        let f = sk.spanning_forest();
        assert!(
            is_spanning_forest(&g, &f.edges),
            "failures={}",
            f.decode_failures
        );
    }

    #[test]
    fn forest_respects_components() {
        // Two separate cliques.
        let mut edges = Vec::new();
        for u in 0..10u32 {
            for v in (u + 1)..10 {
                edges.push(Edge::new(u, v));
                edges.push(Edge::new(u + 10, v + 10));
            }
        }
        let g = Graph::from_edges(20, edges);
        let sk = sketch_graph(&g, 3);
        let f = sk.spanning_forest();
        assert!(is_spanning_forest(&g, &f.edges));
        assert_eq!(f.edges.len(), 18); // 9 + 9
    }

    #[test]
    fn deletions_respected() {
        let g = gen::cycle(12);
        let mut sk = sketch_graph(&g, 4);
        // Delete one cycle edge: still connected (a path).
        sk.update(*g.edges().first().unwrap(), -1);
        let f = sk.spanning_forest();
        let h = g.minus(&[*g.edges().first().unwrap()].into_iter().collect());
        assert!(is_spanning_forest(&h, &f.edges));
    }

    #[test]
    fn empty_graph_empty_forest() {
        let sk = AgmSketch::new(8, 5);
        let f = sk.spanning_forest();
        assert!(f.edges.is_empty());
        assert_eq!(f.decode_failures, 0);
    }

    #[test]
    fn single_edge_found() {
        let mut sk = AgmSketch::new(4, 6);
        sk.update(Edge::new(1, 3), 1);
        let f = sk.spanning_forest();
        assert_eq!(f.edges, vec![Edge::new(1, 3)]);
    }

    #[test]
    fn partition_contracts_clusters() {
        // Path 0-1-2-3-4-5; partition {0,1,2} and {3,4,5}: the contracted
        // graph has one crossing edge (2,3).
        let g = gen::path(6);
        let sk = sketch_graph(&g, 7);
        let partition = vec![0, 0, 0, 1, 1, 1];
        let f = sk.spanning_forest_with_partition(&partition);
        assert_eq!(f.edges, vec![Edge::new(2, 3)]);
    }

    #[test]
    fn partition_hides_internal_edges() {
        let g = gen::complete(6);
        let sk = sketch_graph(&g, 8);
        // One big part: no crossing edges at all.
        let f = sk.spanning_forest_with_partition(&[0; 6]);
        assert!(f.edges.is_empty());
    }

    #[test]
    fn subtract_edges_disconnects() {
        // Path 0-1-2; removing (1,2) leaves {0,1} and {2}.
        let g = gen::path(3);
        let mut sk = sketch_graph(&g, 9);
        sk.subtract_edges(&[Edge::new(1, 2)]);
        let f = sk.spanning_forest();
        assert_eq!(f.edges, vec![Edge::new(0, 1)]);
    }

    #[test]
    fn merge_of_server_shards() {
        // Distributed pattern: two servers each hold half the edges.
        let g = gen::erdos_renyi(30, 0.2, 10);
        let mid = g.num_edges() / 2;
        let mut a = AgmSketch::new(30, 11);
        let mut b = AgmSketch::new(30, 11);
        for (i, e) in g.edges().iter().enumerate() {
            if i < mid {
                a.update(*e, 1);
            } else {
                b.update(*e, 1);
            }
        }
        a.merge(&b);
        let f = a.spanning_forest();
        assert!(is_spanning_forest(&g, &f.edges));
    }

    #[test]
    fn survives_heavy_churn_via_stream() {
        let g = gen::erdos_renyi(40, 0.1, 12);
        let stream = dsg_graph::GraphStream::with_churn(&g, 3.0, 13);
        let mut sk = AgmSketch::new(40, 14);
        for up in stream.updates() {
            sk.update(up.edge, up.delta as i128);
        }
        let f = sk.spanning_forest();
        assert!(is_spanning_forest(&g, &f.edges));
    }

    #[test]
    fn forest_size_matches_component_count() {
        let g = gen::erdos_renyi(60, 0.03, 15); // likely disconnected
        let sk = sketch_graph(&g, 16);
        let f = sk.spanning_forest();
        assert!(is_spanning_forest(&g, &f.edges));
        assert_eq!(f.edges.len(), 60 - num_components(&g));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_update_panics() {
        let mut sk = AgmSketch::new(4, 1);
        sk.update(Edge::new(0, 9), 1);
    }

    #[test]
    #[should_panic(expected = "seed mismatch")]
    fn seed_mismatch_merge_panics() {
        let mut a = AgmSketch::new(4, 1);
        let b = AgmSketch::new(4, 2);
        a.merge(&b);
    }

    #[test]
    fn coordinate_update_matches_edge_update() {
        let n = 12;
        let mut by_edge = AgmSketch::new(n, 5);
        let mut by_coord = AgmSketch::new(n, 5);
        let g = gen::erdos_renyi(n, 0.3, 6);
        for e in g.edges() {
            by_edge.update(*e, 1);
            LinearSketch::update(&mut by_coord, e.index(n), 1);
        }
        assert_eq!(by_edge.to_bytes(), by_coord.to_bytes());
    }

    #[test]
    fn wire_roundtrip_preserves_forest() {
        let g = gen::erdos_renyi(30, 0.15, 21);
        let sk = sketch_graph(&g, 22);
        let bytes = sk.to_bytes();
        let back = AgmSketch::from_bytes(&bytes).unwrap();
        assert_eq!(back.spanning_forest().edges, sk.spanning_forest().edges);
        assert_eq!(back.to_bytes(), bytes);
    }

    #[test]
    fn crafted_shape_frames_rejected_without_panicking() {
        use dsg_sketch::wire;
        // n = 2^31 exceeds the key universe: must be a WireError, not the
        // constructor assert (or a num_pairs overflow).
        let mut payload = Vec::new();
        wire::put_len(&mut payload, 1usize << 31);
        wire::put_len(&mut payload, 1);
        wire::put_u64(&mut payload, 0);
        let frame = wire::finish_frame(wire::KIND_AGM, payload);
        assert!(AgmSketch::from_bytes(&frame).is_err());
        // A huge declared n×rounds over a tiny payload must be rejected
        // before any state allocation.
        let mut payload = Vec::new();
        wire::put_len(&mut payload, 1usize << 20);
        wire::put_len(&mut payload, 1usize << 12);
        wire::put_u64(&mut payload, 0);
        let frame = wire::finish_frame(wire::KIND_AGM, payload);
        assert!(AgmSketch::from_bytes(&frame).is_err());
    }

    #[test]
    fn restricted_extraction_matches_full_rebuild() {
        // Two 20-vertex blocks with no cross edges; churn confined to the
        // second block. The clean block's previous forest edges carry
        // over verbatim, the dirty block re-decodes, and the spliced
        // result must equal a from-scratch extraction bit for bit.
        let n = 40;
        let a = gen::erdos_renyi(20, 0.2, 40);
        let b = gen::erdos_renyi(20, 0.25, 41);
        let mut sk = AgmSketch::new(n, 42);
        for e in a.edges() {
            sk.update(*e, 1);
        }
        let shift = |e: &Edge| Edge::new(e.u() + 20, e.v() + 20);
        for e in b.edges() {
            sk.update(shift(e), 1);
        }
        let prev = sk.spanning_forest();
        // Churn inside the second block only: delete every third B edge,
        // add a few fresh B pairs.
        for (i, e) in b.edges().iter().enumerate() {
            if i % 3 == 0 {
                sk.update(shift(e), -1);
            }
        }
        for (u, v) in [(20u32, 39u32), (23, 31), (27, 38)] {
            sk.update(Edge::new(u, v), 1);
        }
        let full = sk.spanning_forest();
        let active: Vec<bool> = (0..n).map(|v| v >= 20).collect();
        let kept: Vec<Edge> = prev
            .edges
            .iter()
            .copied()
            .filter(|e| (e.v() as usize) < 20)
            .collect();
        let restricted = sk.spanning_forest_restricted(&active, &kept);
        assert_eq!(restricted.edges, full.edges);
    }

    #[test]
    fn restricted_with_all_vertices_active_is_a_plain_extraction() {
        let g = gen::erdos_renyi(30, 0.12, 43);
        let sk = sketch_graph(&g, 44);
        let full = sk.spanning_forest();
        let restricted = sk.spanning_forest_restricted(&[true; 30], &[]);
        assert_eq!(restricted.edges, full.edges);
        assert_eq!(restricted.decode_failures, full.decode_failures);
    }

    #[test]
    fn restricted_with_nothing_active_returns_the_kept_forest() {
        let g = gen::erdos_renyi(25, 0.15, 45);
        let sk = sketch_graph(&g, 46);
        let prev = sk.spanning_forest();
        let restricted = sk.spanning_forest_restricted(&[false; 25], &prev.edges);
        assert_eq!(restricted.edges, prev.edges);
        assert_eq!(restricted.decode_failures, 0);
    }

    #[test]
    #[should_panic(expected = "active mask size mismatch")]
    fn restricted_mask_size_checked() {
        let sk = AgmSketch::new(8, 47);
        let _ = sk.spanning_forest_restricted(&[true; 4], &[]);
    }

    #[test]
    fn extraction_is_deterministic() {
        // The same state must always answer the same forest — required for
        // merged shard sketches to agree with a single-sketch run.
        let g = gen::erdos_renyi(40, 0.2, 30);
        let sk = sketch_graph(&g, 31);
        let clone = sk.clone();
        assert_eq!(sk.spanning_forest().edges, clone.spanning_forest().edges);
    }
}
