//! The signed vertex-incidence encoding behind AGM sketches.
//!
//! For an `n`-vertex graph, vertex `u` is associated with the vector
//! `a_u ∈ Z^{C(n,2)}` over edge coordinates:
//!
//! * `a_u[{u,v}] = +1` if the edge `{u,v}` is present and `u < v`,
//! * `a_u[{u,v}] = -1` if the edge is present and `u > v`,
//! * `0` elsewhere.
//!
//! The point of the signs: for any vertex set `S`,
//! `Σ_{u ∈ S} a_u` is supported exactly on the boundary edges `∂S` — each
//! internal edge appears once with `+1` and once with `-1` and cancels.
//! Sampling a nonzero coordinate of the summed sketch therefore yields an
//! outgoing edge of the supernode `S`, which is all Borůvka needs.

use dsg_graph::{pair_to_index, Edge, Vertex};

/// The sign with which edge `e` appears in the incidence vector of its
/// endpoint `w`: `+1` for the smaller endpoint, `-1` for the larger.
///
/// Routes through [`Edge::is_lower_endpoint`], the shared
/// debug-assert-backed endpoint check: debug builds panic on a foreign
/// vertex, release builds degrade to a `-1` contribution so a malformed
/// update cannot abort an ingest shard mid-stream.
///
/// # Examples
///
/// ```
/// use dsg_agm::incidence::incidence_sign;
/// use dsg_graph::Edge;
///
/// let e = Edge::new(3, 7);
/// assert_eq!(incidence_sign(3, &e), 1);
/// assert_eq!(incidence_sign(7, &e), -1);
/// ```
pub fn incidence_sign(w: Vertex, e: &Edge) -> i128 {
    if e.is_lower_endpoint(w) {
        1
    } else {
        -1
    }
}

/// The stream coordinate of an edge in an `n`-vertex graph (alias of
/// [`Edge::index`] for symmetry with [`incidence_sign`]).
pub fn edge_coordinate(e: &Edge, n: usize) -> u64 {
    pair_to_index(e.u(), e.v(), n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signs_cancel_over_both_endpoints() {
        let e = Edge::new(2, 9);
        assert_eq!(incidence_sign(2, &e) + incidence_sign(9, &e), 0);
    }

    #[test]
    #[cfg(debug_assertions)] // release builds degrade instead of panicking
    #[should_panic(expected = "not an endpoint")]
    fn foreign_vertex_panics() {
        incidence_sign(5, &Edge::new(1, 2));
    }

    #[test]
    fn coordinate_matches_pair_index() {
        let e = Edge::new(4, 11);
        assert_eq!(edge_coordinate(&e, 20), pair_to_index(4, 11, 20));
    }
}
