//! k-edge-connectivity certificates from layered AGM sketches.
//!
//! The AGM line of work (cited by the paper for "connectivity,
//! k-connectivity") builds a k-edge-connectivity certificate by peeling
//! forests: `F_1` is a spanning forest of `G`; `F_2` a spanning forest of
//! `G - F_1`; …; `F_i` of `G - F_1 - … - F_{i-1}`. The union `F_1 ∪ … ∪ F_k`
//! preserves edge connectivity up to `k` (Nagamochi–Ibaraki sparsification)
//! and is computable from `k` independent linear sketches because known
//! edges can be subtracted by linearity.

use crate::forest::AgmSketch;
use dsg_graph::Edge;
use dsg_util::SpaceUsage;

/// `k` layered AGM sketches supporting certificate extraction.
///
/// # Examples
///
/// ```
/// use dsg_agm::KConnectivitySketch;
/// use dsg_graph::gen;
///
/// let g = gen::complete(8);
/// let mut sk = KConnectivitySketch::new(8, 3, 42);
/// for e in g.edges() {
///     sk.update(*e, 1);
/// }
/// let cert = sk.certificate();
/// // 3 forests of a connected graph: up to 3·(n-1) = 21 edges.
/// assert!(cert.len() <= 21 && cert.len() >= 7);
/// ```
#[derive(Debug, Clone)]
pub struct KConnectivitySketch {
    layers: Vec<AgmSketch>,
}

impl KConnectivitySketch {
    /// Creates `k` independent layers for graphs on `n` vertices.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `k == 0`.
    pub fn new(n: usize, k: usize, seed: u64) -> Self {
        assert!(k > 0, "need at least one layer");
        let tree = dsg_hash::SeedTree::new(seed ^ 0x4B43_4F4E_4E31); // "KCONN1"
        Self {
            layers: (0..k)
                .map(|i| AgmSketch::new(n, tree.child(i as u64).seed()))
                .collect(),
        }
    }

    /// Number of layers `k`.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Applies a signed edge update to every layer.
    pub fn update(&mut self, edge: Edge, delta: i128) {
        for layer in &mut self.layers {
            layer.update(edge, delta);
        }
    }

    /// Extracts the layered-forest certificate `F_1 ∪ … ∪ F_k`.
    ///
    /// Consumes working copies; the sketch itself is reusable.
    pub fn certificate(&self) -> Vec<Edge> {
        let mut peeled: Vec<Edge> = Vec::new();
        let mut layers = self.layers.clone();
        for layer in &mut layers {
            // Subtract everything already taken from this layer, then
            // extract its forest.
            layer.subtract_edges(peeled.iter());
            let forest = layer.spanning_forest();
            peeled.extend(forest.edges);
        }
        peeled.sort_unstable();
        peeled.dedup();
        peeled
    }
}

impl SpaceUsage for KConnectivitySketch {
    fn space_bytes(&self) -> usize {
        self.layers.iter().map(SpaceUsage::space_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsg_graph::components::UnionFind;
    use dsg_graph::{gen, Graph};
    use std::collections::HashSet;

    /// Min cut between 0 and every other vertex must survive in the
    /// certificate up to value k. We check a weaker, testable property:
    /// removing any single certificate edge leaves the certificate of a
    /// 2-connected graph connected.
    fn is_connected(n: usize, edges: &[Edge]) -> bool {
        let mut uf = UnionFind::new(n);
        for e in edges {
            uf.union(e.u(), e.v());
        }
        uf.num_components() == 1
    }

    #[test]
    fn certificate_is_subgraph() {
        let g = gen::erdos_renyi(30, 0.3, 1);
        let mut sk = KConnectivitySketch::new(30, 2, 2);
        for e in g.edges() {
            sk.update(*e, 1);
        }
        let cert = sk.certificate();
        let edge_set: HashSet<Edge> = g.edge_set();
        for e in &cert {
            assert!(edge_set.contains(e), "certificate edge {e} not in graph");
        }
    }

    #[test]
    fn two_layers_preserve_2_connectivity_of_cycle() {
        // A cycle is 2-edge-connected; a 2-layer certificate must keep it
        // connected after removing any one edge.
        let g = gen::cycle(16);
        let mut sk = KConnectivitySketch::new(16, 2, 3);
        for e in g.edges() {
            sk.update(*e, 1);
        }
        let cert = sk.certificate();
        assert!(is_connected(16, &cert));
        for skip in 0..cert.len() {
            let reduced: Vec<Edge> = cert
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != skip)
                .map(|(_, e)| *e)
                .collect();
            assert!(
                is_connected(16, &reduced),
                "removing edge {skip} disconnected certificate"
            );
        }
    }

    #[test]
    fn certificate_size_bounded_by_k_forests() {
        let g = gen::complete(12);
        let k = 3;
        let mut sk = KConnectivitySketch::new(12, k, 4);
        for e in g.edges() {
            sk.update(*e, 1);
        }
        let cert = sk.certificate();
        assert!(
            cert.len() <= k * 11,
            "certificate too large: {}",
            cert.len()
        );
        assert!(is_connected(12, &cert));
    }

    #[test]
    fn respects_deletions() {
        let g = gen::complete(8);
        let mut sk = KConnectivitySketch::new(8, 2, 5);
        for e in g.edges() {
            sk.update(*e, 1);
        }
        // Isolate vertex 0 by deleting all its edges.
        for v in 1..8u32 {
            sk.update(Edge::new(0, v), -1);
        }
        let cert = sk.certificate();
        let h = Graph::from_edges(8, cert.clone());
        assert_eq!(
            h.adjacency().degree(0),
            0,
            "deleted edges reappeared: {cert:?}"
        );
    }
}
