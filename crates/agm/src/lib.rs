//! AGM graph sketches: spanning forests from linear measurements.
//!
//! Theorem 10 of Kapralov–Woodruff cites the Ahn–Guha–McGregor connectivity
//! sketch: "a single-pass, linear sketch-based algorithm supporting edge
//! additions and deletions that uses `O(n log^3 n)` space and returns a
//! spanning forest of the graph with high probability". This crate builds
//! that sketch from scratch:
//!
//! * [`incidence`] — the signed vertex-incidence encoding. Vertex `u`'s
//!   sketch summarizes the vector `a_u` with `a_u[(u,v)] = +1` if `u < v`
//!   and `-1` if `u > v` for each incident edge; summing the vectors of a
//!   vertex set `S` cancels internal edges, leaving exactly the boundary
//!   `∂S` — the property that makes supernode contraction free.
//! * [`forest::AgmSketch`] — per-vertex L0-sampler states over `O(log n)`
//!   independent rounds, with Borůvka-style forest extraction
//!   ([`forest::AgmSketch::spanning_forest`]), supernode partitions (used by
//!   the paper's Algorithm 3 to contract clusters), and edge-set subtraction
//!   by linearity (used to remove `E_low` before the contracted forest is
//!   computed).
//! * [`certificate`] — k-edge-connectivity certificates by layered forests
//!   (the AGM application the paper lists among "connectivity,
//!   k-connectivity"); an extension beyond the paper's direct needs.
//!
//! # Examples
//!
//! ```
//! use dsg_agm::AgmSketch;
//! use dsg_graph::{gen, components::is_spanning_forest};
//!
//! let g = gen::erdos_renyi(60, 0.1, 3);
//! let mut sk = AgmSketch::new(60, 42);
//! for e in g.edges() {
//!     sk.update(*e, 1);
//! }
//! let forest = sk.spanning_forest();
//! assert!(is_spanning_forest(&g, &forest.edges));
//! ```

pub mod certificate;
pub mod forest;
pub mod incidence;
pub mod msf;

pub use certificate::KConnectivitySketch;
pub use forest::{AgmSketch, ForestResult};
pub use msf::MsfSketch;
