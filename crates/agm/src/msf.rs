//! Approximate minimum spanning forests from AGM sketches.
//!
//! One of the headline AGM applications the paper lists ("minimum spanning
//! trees"): layer the weight range geometrically, keep one connectivity
//! sketch per prefix class `w ≤ (1+γ)^i`, and assemble a forest greedily
//! from the cheapest layer up. The resulting forest weighs at most
//! `(1+γ)` times the true MSF (each edge's weight is known to its class
//! upper bound), computable entirely from linear sketches of a dynamic
//! weighted stream.

use crate::forest::AgmSketch;
use dsg_graph::components::UnionFind;
use dsg_graph::{Edge, Vertex};
use dsg_util::SpaceUsage;

/// A sketch bank supporting `(1+γ)`-approximate MSF extraction from a
/// dynamic weighted stream.
///
/// # Examples
///
/// ```
/// use dsg_agm::msf::MsfSketch;
/// use dsg_graph::{gen, mst};
///
/// let g = gen::with_random_weights(&gen::complete(12), 1.0, 8.0, 3);
/// let mut sk = MsfSketch::new(12, 0.25, 1.0, 8.0, 42);
/// for (e, w) in g.edges() {
///     sk.update(*e, *w, 1);
/// }
/// let approx = sk.forest();
/// let (_, exact) = mst::minimum_spanning_forest(&g);
/// let approx_weight: f64 = approx.iter().map(|(_, w)| w).sum();
/// assert!(approx_weight <= exact * 1.25 + 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct MsfSketch {
    n: usize,
    gamma: f64,
    w_min: f64,
    /// `layers[i]` sketches the subgraph of edges with weight
    /// `≤ w_min (1+γ)^{i+1}` (prefix classes).
    layers: Vec<AgmSketch>,
}

impl MsfSketch {
    /// Creates the bank for weights in `[w_min, w_max]` with rounding
    /// parameter `gamma`.
    ///
    /// # Panics
    ///
    /// Panics if the weight range or `gamma` is invalid, or `n < 2`.
    pub fn new(n: usize, gamma: f64, w_min: f64, w_max: f64, seed: u64) -> Self {
        assert!(n >= 2, "need at least two vertices");
        assert!(gamma > 0.0, "gamma must be positive");
        assert!(w_min > 0.0 && w_max >= w_min, "invalid weight range");
        let classes = ((w_max / w_min).ln() / (1.0 + gamma).ln()).floor() as usize + 1;
        let tree = dsg_hash::SeedTree::new(seed ^ 0x4D53_4653_4B45_5431); // "MSFSKET1"
        let layers = (0..classes)
            .map(|i| AgmSketch::new(n, tree.child(i as u64).seed()))
            .collect();
        Self {
            n,
            gamma,
            w_min,
            layers,
        }
    }

    /// Number of weight classes (sketch layers).
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// The class index of weight `w` (clamped to the declared range).
    fn class_of(&self, w: f64) -> usize {
        let c = ((w / self.w_min).ln() / (1.0 + self.gamma).ln()).floor();
        (c.max(0.0) as usize).min(self.layers.len() - 1)
    }

    /// The upper rounding bound of class `c`.
    fn class_weight(&self, c: usize) -> f64 {
        self.w_min * (1.0 + self.gamma).powi(c as i32 + 1)
    }

    /// Applies a weighted edge update: the edge joins every prefix layer
    /// from its class upward (so layer `i` holds all edges of weight
    /// `≤ w_min(1+γ)^{i+1}`).
    ///
    /// # Panics
    ///
    /// Panics if the weight is not positive and finite.
    pub fn update(&mut self, edge: Edge, weight: f64, delta: i128) {
        assert!(
            weight.is_finite() && weight > 0.0,
            "invalid weight {weight}"
        );
        let class = self.class_of(weight);
        for layer in &mut self.layers[class..] {
            layer.update(edge, delta);
        }
    }

    /// Extracts a `(1+γ)`-approximate minimum spanning forest as
    /// `(edge, rounded_weight)` pairs.
    ///
    /// Kruskal over classes: connect as much as possible with the cheapest
    /// prefix layer, then let each subsequent layer extend the forest over
    /// the components left behind.
    pub fn forest(&self) -> Vec<(Edge, f64)> {
        let mut uf = UnionFind::new(self.n);
        let mut out: Vec<(Edge, f64)> = Vec::new();
        let mut labels: Vec<Vertex> = (0..self.n as Vertex).collect();
        for (c, layer) in self.layers.iter().enumerate() {
            if uf.num_components() == 1 {
                break;
            }
            // Contract the current components, then span what this layer
            // can reach.
            for v in 0..self.n as Vertex {
                labels[v as usize] = uf.find(v);
            }
            let f = layer.spanning_forest_with_partition(&labels);
            let w = self.class_weight(c);
            for e in f.edges {
                if uf.union(e.u(), e.v()) {
                    out.push((e, w));
                }
            }
        }
        out.sort_unstable_by_key(|(e, _)| *e);
        out
    }
}

impl SpaceUsage for MsfSketch {
    fn space_bytes(&self) -> usize {
        self.layers.iter().map(SpaceUsage::space_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsg_graph::components::num_components;
    use dsg_graph::{gen, mst, Graph};

    fn sketch_of(g: &dsg_graph::WeightedGraph, gamma: f64, seed: u64) -> MsfSketch {
        let (lo, hi) = g.weight_range().unwrap();
        let mut sk = MsfSketch::new(g.num_vertices(), gamma, lo, hi, seed);
        for (e, w) in g.edges() {
            sk.update(*e, *w, 1);
        }
        sk
    }

    #[test]
    fn forest_spans_the_graph() {
        let g = gen::with_random_weights(&gen::erdos_renyi(40, 0.2, 1), 1.0, 16.0, 2);
        let sk = sketch_of(&g, 0.5, 3);
        let forest = sk.forest();
        let skeleton = Graph::from_edges(40, forest.iter().map(|(e, _)| *e));
        assert_eq!(
            num_components(&skeleton),
            num_components(&g.skeleton()),
            "forest does not span"
        );
        assert_eq!(
            forest.len(),
            40 - num_components(&g.skeleton()),
            "wrong forest size"
        );
    }

    #[test]
    fn weight_within_1_plus_gamma_of_optimum() {
        for seed in 0..5u64 {
            let g = gen::with_random_weights(&gen::complete(16), 1.0, 32.0, seed);
            let gamma = 0.25;
            let sk = sketch_of(&g, gamma, seed * 7 + 1);
            let approx: f64 = sk.forest().iter().map(|(_, w)| w).sum();
            let (_, exact) = mst::minimum_spanning_forest(&g);
            assert!(
                approx <= exact * (1.0 + gamma) + 1e-9,
                "seed {seed}: approx {approx} vs exact {exact}"
            );
            assert!(approx >= exact - 1e-9, "approx below optimum?");
        }
    }

    #[test]
    fn forest_edges_are_graph_edges() {
        let g = gen::with_random_weights(&gen::erdos_renyi(30, 0.3, 4), 0.5, 8.0, 5);
        let sk = sketch_of(&g, 0.5, 6);
        for (e, _) in sk.forest() {
            assert!(g.weight(e.u(), e.v()).is_some(), "phantom edge {e}");
        }
    }

    #[test]
    fn deletions_respected() {
        // Insert a cheap spanning path plus an expensive clique; delete the
        // path — the forest must fall back to clique edges.
        let n = 10;
        let mut sk = MsfSketch::new(n, 0.5, 1.0, 100.0, 7);
        for i in 0..n as u32 - 1 {
            sk.update(Edge::new(i, i + 1), 1.0, 1);
        }
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                sk.update(Edge::new(u, v), 100.0, 1);
            }
        }
        for i in 0..n as u32 - 1 {
            sk.update(Edge::new(i, i + 1), 1.0, -1); // delete the cheap path
        }
        let forest = sk.forest();
        assert_eq!(forest.len(), n - 1);
        for (_, w) in forest {
            assert!(w >= 100.0, "deleted cheap edge resurfaced (w={w})");
        }
    }

    #[test]
    fn layer_count_tracks_range() {
        let few = MsfSketch::new(4, 0.5, 1.0, 2.0, 1);
        let many = MsfSketch::new(4, 0.5, 1.0, 1024.0, 1);
        assert!(many.num_layers() > 3 * few.num_layers());
    }

    #[test]
    #[should_panic(expected = "invalid weight")]
    fn bad_weight_panics() {
        let mut sk = MsfSketch::new(4, 0.5, 1.0, 2.0, 1);
        sk.update(Edge::new(0, 1), 0.0, 1);
    }
}
