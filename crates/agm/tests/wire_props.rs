//! `LinearSketch` contract properties for [`AgmSketch`], the eighth
//! implementor (the other seven live in `crates/sketch/tests/wire_props.rs`):
//! shard-split invariance and wire roundtrip, both down to canonical
//! snapshot bytes, plus forest-answer equality after a split.

use dsg_agm::AgmSketch;
use dsg_graph::ids::num_pairs;
use dsg_graph::{index_to_pair, Edge};
use dsg_sketch::LinearSketch;
use proptest::prelude::*;

const N: usize = 16;

/// Random signed edge-coordinate updates over a 16-vertex graph.
fn edge_updates() -> impl Strategy<Value = Vec<(u64, i64)>> {
    prop::collection::vec((0u64..num_pairs(N), -2i64..=2), 0..50)
}

proptest! {
    #[test]
    fn agm_shard_split_is_bit_identical(xs in edge_updates(), k in 1usize..=4, seed in 0u64..100) {
        let mut direct = AgmSketch::new(N, seed);
        let mut shards: Vec<AgmSketch> = (0..k).map(|_| AgmSketch::new(N, seed)).collect();
        for (i, &(coord, delta)) in xs.iter().enumerate() {
            let (u, v) = index_to_pair(coord, N);
            direct.update(Edge::new(u, v), delta as i128);
            shards[(i * 7 + i * i) % k].update(Edge::new(u, v), delta as i128);
        }
        let mut merged = shards.remove(0);
        for s in &shards {
            merged.merge(s);
        }
        prop_assert_eq!(merged.to_bytes(), direct.to_bytes());
        prop_assert_eq!(merged.spanning_forest().edges, direct.spanning_forest().edges);
    }

    #[test]
    fn agm_wire_roundtrip_behaves_identically(xs in edge_updates(), extra in edge_updates(), seed in 0u64..100) {
        let mut sk = AgmSketch::new(N, seed);
        for &(coord, delta) in &xs {
            let (u, v) = index_to_pair(coord, N);
            sk.update(Edge::new(u, v), delta as i128);
        }
        let bytes = sk.to_bytes();
        let mut back = AgmSketch::from_bytes(&bytes).unwrap();
        prop_assert_eq!(back.to_bytes(), bytes);
        for &(coord, delta) in &extra {
            let (u, v) = index_to_pair(coord, N);
            sk.update(Edge::new(u, v), delta as i128);
            back.update(Edge::new(u, v), delta as i128);
        }
        prop_assert_eq!(back.to_bytes(), sk.to_bytes());
        prop_assert_eq!(back.spanning_forest().edges, sk.spanning_forest().edges);
    }

    #[test]
    fn agm_peek_kind_reads_header_only(xs in edge_updates(), seed in 0u64..100) {
        let mut sk = AgmSketch::new(N, seed);
        for &(coord, delta) in &xs {
            let (u, v) = index_to_pair(coord, N);
            sk.update(Edge::new(u, v), delta as i128);
        }
        let snap = sk.snapshot();
        let header = dsg_sketch::wire::peek_kind(&snap).unwrap();
        prop_assert_eq!(header.kind, dsg_sketch::wire::KIND_AGM);
        prop_assert_eq!(header.version, dsg_sketch::wire::VERSION);
        prop_assert_eq!(header.payload_len, snap.len() - dsg_sketch::wire::HEADER_BYTES);
    }

    #[test]
    fn agm_corrupted_snapshot_rejected(xs in edge_updates(), pos_frac in 0.0f64..1.0, seed in 0u64..50) {
        let mut sk = AgmSketch::new(N, seed);
        for &(coord, delta) in &xs {
            let (u, v) = index_to_pair(coord, N);
            sk.update(Edge::new(u, v), delta as i128);
        }
        let mut bytes = sk.to_bytes();
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] ^= 0x2A;
        prop_assert!(AgmSketch::from_bytes(&bytes).is_err());
    }
}
