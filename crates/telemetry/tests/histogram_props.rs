//! Property tests for the histogram core and snapshot diffing.
//!
//! Three contracts, over arbitrary sample sets:
//!
//! 1. **Quantile bounding.** A log2-bucketed quantile estimate reports
//!    the upper bound of the bucket holding the true rank, so for every
//!    `q` it must bound the true `q`-quantile from above and stay within
//!    `2·true + 1` (the bucket's width) — the histogram can blur *where*
//!    inside a power-of-two band a sample sits, never *which* band.
//! 2. **Merge ≡ concatenation.** `merge_from(a, b)` must equal recording
//!    the concatenated sample stream — bucket counts, sum, and max are
//!    all linear (or max-monoidal) in the samples.
//! 3. **Exact counter diffs.** Whatever happens between two registry
//!    snapshots, `after.diff(before)` reports exactly the events recorded
//!    in between.

use dsg_telemetry::{Histogram, MetricRegistry};
use proptest::prelude::*;

/// Sample values spanning many buckets, capped below `2^62` so the
/// documented `est ≤ 2·true + 1` bound applies (the last bucket is
/// unbounded above and cannot promise a factor-2 width).
fn samples() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0u64..(1u64 << 62), 0..200)
}

/// The true `q`-quantile under the same rank rule the histogram uses:
/// the sample of rank `⌈q·n⌉` (1-based) in sorted order.
fn true_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank.min(sorted.len()) - 1]
}

#[test]
fn quantile_of_empty_histogram_is_zero() {
    let h = Histogram::active();
    let snap = h.snapshot_value();
    for q in [0.0, 0.5, 1.0, -1.0, 2.0, f64::NAN] {
        assert_eq!(snap.quantile(q), 0, "empty histogram at q={q}");
    }
    assert_eq!(snap.p50(), 0);
    assert_eq!(snap.p99(), 0);
}

#[test]
fn quantile_one_is_the_exact_maximum() {
    let h = Histogram::active();
    // 1000 lands mid-bucket: the bucket upper bound (1023) would
    // overshoot, and the last occupied bucket of a large sample would be
    // u64::MAX. q = 1.0 must report the recorded max exactly.
    for v in [3u64, 17, 1000] {
        h.record(v);
    }
    let snap = h.snapshot_value();
    assert_eq!(snap.quantile(1.0), 1000);
    assert_eq!(snap.quantile(2.0), 1000, "q beyond 1 clamps to the max");
    h.record(u64::MAX);
    assert_eq!(h.snapshot_value().quantile(1.0), u64::MAX);
}

#[test]
fn quantile_nan_does_not_panic_or_index_out_of_bounds() {
    let h = Histogram::active();
    h.record(42);
    assert_eq!(h.snapshot_value().quantile(f64::NAN), 0);
}

proptest! {
    #[test]
    fn quantile_one_equals_max_for_any_samples(values in samples()) {
        if values.is_empty() {
            return;
        }
        let h = Histogram::active();
        for &v in &values {
            h.record(v);
        }
        let expect = *values.iter().max().expect("nonempty");
        prop_assert_eq!(h.quantile(1.0), expect);
    }

    #[test]
    fn quantile_estimates_bound_true_quantiles(values in samples(), qs in prop::collection::vec(0.0f64..1.0, 1..8)) {
        if values.is_empty() {
            return;
        }
        let h = Histogram::active();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.max(), *sorted.last().expect("nonempty"));
        for &q in &qs {
            let truth = true_quantile(&sorted, q);
            let est = h.quantile(q);
            prop_assert!(est >= truth, "estimate {est} below true quantile {truth} at q={q}");
            prop_assert!(
                est <= 2 * truth + 1,
                "estimate {est} beyond 2*{truth}+1 at q={q}"
            );
        }
    }

    #[test]
    fn merge_equals_recording_the_concatenation(a in samples(), b in samples()) {
        let ha = Histogram::active();
        let hb = Histogram::active();
        let concat = Histogram::active();
        for &v in &a {
            ha.record(v);
            concat.record(v);
        }
        for &v in &b {
            hb.record(v);
            concat.record(v);
        }
        ha.merge_from(&hb);
        prop_assert_eq!(ha.snapshot_value(), concat.snapshot_value());
        // Merging must not disturb the right-hand side.
        let hb_alone = Histogram::active();
        for &v in &b {
            hb_alone.record(v);
        }
        prop_assert_eq!(hb.snapshot_value(), hb_alone.snapshot_value());
    }

    #[test]
    fn merge_is_associative_on_snapshots(a in samples(), b in samples(), c in samples()) {
        let left = Histogram::active();   // (a ⊕ b) ⊕ c
        let right = Histogram::active();  // a ⊕ (b ⊕ c)
        let make = |vals: &[u64]| {
            let h = Histogram::active();
            for &v in vals {
                h.record(v);
            }
            h
        };
        left.merge_from(&make(&a));
        left.merge_from(&make(&b));
        left.merge_from(&make(&c));
        let bc = make(&b);
        bc.merge_from(&make(&c));
        right.merge_from(&make(&a));
        right.merge_from(&bc);
        prop_assert_eq!(left.snapshot_value(), right.snapshot_value());
    }

    #[test]
    fn counter_diffs_are_exact(before_events in prop::collection::vec(0u64..1000, 1..6), after_events in prop::collection::vec(0u64..1000, 1..6)) {
        let reg = MetricRegistry::new();
        let counters: Vec<_> = (0..before_events.len().max(after_events.len()))
            .map(|i| reg.counter(&format!("events_{i}_total")))
            .collect();
        for (c, &n) in counters.iter().zip(&before_events) {
            c.add(n);
        }
        let snap_a = reg.snapshot();
        for (c, &n) in counters.iter().zip(&after_events) {
            c.add(n);
        }
        let delta = reg.snapshot().diff(&snap_a);
        for (i, _) in counters.iter().enumerate() {
            let expect = after_events.get(i).copied().unwrap_or(0);
            prop_assert_eq!(
                delta.counter(&format!("events_{i}_total")),
                Some(expect),
                "counter {i} diff must equal exactly the events between the scrapes"
            );
        }
    }
}
