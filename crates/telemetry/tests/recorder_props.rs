//! Property tests for the flight recorder's ring buffers.
//!
//! Three contracts:
//!
//! 1. **Wrap-around keeps the newest N.** However many events a thread
//!    records, a quiescent dump holds exactly the last `capacity` of
//!    them, in order.
//! 2. **Merged dumps are globally time-ordered.** Events from any number
//!    of writer threads come back sorted by timestamp.
//! 3. **Concurrent writers never tear an event.** Every event carries an
//!    invariant tying its fields together; a reader racing wrap-around
//!    may *miss* events (the seqlock skips slots mid-overwrite) but must
//!    never observe a mixed-up one.

use dsg_telemetry::{EventKind, FlightRecorder};
use proptest::prelude::*;

proptest! {
    #[test]
    fn wraparound_keeps_newest_capacity_events(
        total in 1usize..400,
        cap_pow in 3u32..7,
    ) {
        let capacity = 1usize << cap_pow;
        let rec = FlightRecorder::with_capacity(capacity);
        for i in 0..total as u64 {
            rec.record(EventKind::IngestBatch, i + 1, 0, i);
        }
        let dump = rec.dump();
        let kept = total.min(capacity);
        prop_assert_eq!(dump.len(), kept);
        let payloads: Vec<u64> = dump.iter().map(|ev| ev.payload).collect();
        let expect: Vec<u64> = ((total - kept) as u64..total as u64).collect();
        prop_assert_eq!(payloads, expect, "dump must hold exactly the newest {} events", kept);
    }

    #[test]
    fn merged_dump_is_globally_time_ordered(
        per_thread in prop::collection::vec(1usize..60, 1..4),
    ) {
        let rec = FlightRecorder::with_capacity(256);
        let handles: Vec<_> = per_thread
            .iter()
            .enumerate()
            .map(|(t, &n)| {
                let rec = rec.clone();
                std::thread::spawn(move || {
                    for i in 0..n as u64 {
                        rec.record(EventKind::EngineBatch, t as u64 + 1, 0, i);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("writer thread panicked");
        }
        let dump = rec.dump();
        prop_assert_eq!(dump.len(), per_thread.iter().sum::<usize>());
        prop_assert!(
            dump.windows(2).all(|w| w[0].nanos <= w[1].nanos),
            "merged dump must be sorted by timestamp"
        );
        // Each thread's own events must additionally appear in program
        // order (payload ascending per trace id).
        for (t, &n) in per_thread.iter().enumerate() {
            let own: Vec<u64> = dump
                .iter()
                .filter(|ev| ev.trace_id == t as u64 + 1)
                .map(|ev| ev.payload)
                .collect();
            prop_assert_eq!(own, (0..n as u64).collect::<Vec<u64>>());
        }
    }
}

/// Tear check: writers spin recording events whose fields satisfy
/// `payload == nanos-independent mix of trace_id and tenant`; a reader
/// dumps concurrently throughout. Any torn read — fields from two
/// different events in one slot — breaks the relation.
#[test]
fn concurrent_writers_never_tear_an_event() {
    let rec = FlightRecorder::with_capacity(32);
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let mix =
        |trace_id: u64, tenant: u32| trace_id.wrapping_mul(0x9e3779b97f4a7c15) ^ u64::from(tenant);
    let writers: Vec<_> = (0..3u32)
        .map(|w| {
            let rec = rec.clone();
            let stop = std::sync::Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut i = 0u64;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let trace_id = (u64::from(w) << 32) | i;
                    rec.record(EventKind::WalAppend, trace_id, w + 1, mix(trace_id, w + 1));
                    i += 1;
                }
            })
        })
        .collect();
    // Dump until the race has demonstrably happened (or a generous
    // deadline passes — on a single core the writers may need yields to
    // get scheduled at all).
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    let mut seen = 0usize;
    while seen < 5_000 && std::time::Instant::now() < deadline {
        std::thread::yield_now();
        for ev in rec.dump() {
            seen += 1;
            assert_eq!(
                ev.payload,
                mix(ev.trace_id, ev.tenant),
                "torn event: fields from different records in one slot"
            );
            assert_eq!(ev.kind, EventKind::WalAppend);
            let writer = (ev.trace_id >> 32) as u32;
            assert_eq!(
                ev.tenant,
                writer + 1,
                "trace id and tenant disagree on the writer"
            );
        }
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    for h in writers {
        h.join().expect("writer thread panicked");
    }
    assert!(seen > 0, "reader must have observed events while racing");
}
