//! # dsg-telemetry — a zero-dependency metrics core
//!
//! Every operational signal of the serving stack — shard load balance,
//! oracle cache hit rates, epoch-advance phase cost, WAL fsync latency,
//! recovery time — flows through this crate so it is visible in the
//! *running* system, not only in offline experiments. The design goals,
//! in order:
//!
//! 1. **Always-on and cheap.** Recording is one relaxed atomic RMW on an
//!    already-allocated cell — no locks, no allocation, no syscalls on
//!    the hot path. A handle can also be a *no-op* ([`Counter::noop`]):
//!    recording through it is a single predictable branch, which is the
//!    honest baseline experiment E23 measures overhead against.
//! 2. **Mergeable and diffable.** [`Histogram`]s use log2 buckets so two
//!    histograms merge by bucket-wise addition (exactly like the linear
//!    sketches this workspace is built on), and [`MetricsSnapshot`]s diff
//!    exactly for counters — "what happened between these two scrapes" is
//!    a first-class object.
//! 3. **One way out.** [`MetricRegistry::render_prometheus`] renders the
//!    whole registry as Prometheus text exposition, so an operator or a
//!    test scrapes one string.
//!
//! Instruments are cheap-cloneable *handles* (an `Option<Arc<cell>>`):
//! the instrumented subsystem stores the handle and records through it;
//! the registry keeps a second handle under the series name for scraping.
//! Label sets are encoded into the series name at registration time
//! (see [`series`]), so steady-state recording never formats strings.
//!
//! ```
//! use dsg_telemetry::{series, MetricRegistry};
//!
//! let registry = MetricRegistry::new();
//! let hits = registry.counter(&series("cache_hits_total", &[("graph", "social")]));
//! hits.inc();
//! hits.add(2);
//! let snap = registry.snapshot();
//! assert_eq!(snap.counter("cache_hits_total{graph=\"social\"}"), Some(3));
//! assert!(registry.render_prometheus().contains("cache_hits_total"));
//! ```

#![deny(clippy::unwrap_used)]

pub mod trace;

pub use trace::{EventKind, FlightRecorder, Incident, TraceEvent, TraceScope};

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

/// Number of log2 buckets a [`Histogram`] keeps: bucket 0 holds the value
/// `0`, bucket `i ≥ 1` holds `[2^(i-1), 2^i - 1]`, and the last bucket is
/// unbounded above. 64 buckets cover the whole `u64` range.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// Builds a series name with an inline label set, Prometheus-style:
/// `series("wal_bytes_total", &[("graph", "g")])` is
/// `wal_bytes_total{graph="g"}`. Labels are rendered in the given order;
/// call sites should pass them in one canonical order so equal label sets
/// produce equal names. With no labels the bare name is returned.
///
/// Label *values* are escaped here, at embed time, so the stored series
/// name is already valid exposition text: `render_prometheus` and the
/// histogram-sample splicer can pass label text through verbatim even
/// when a tenant name contains `\`, `"`, or a newline.
pub fn series(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let mut out = String::with_capacity(name.len() + 16 * labels.len());
    out.push_str(name);
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{}\"", escape_label_value(v));
    }
    out.push('}');
    out
}

/// Escapes a label value per the Prometheus text exposition rules:
/// backslash, double quote, and newline become `\\`, `\"`, and `\n`.
/// Values without those characters are borrowed unchanged.
pub fn escape_label_value(v: &str) -> std::borrow::Cow<'_, str> {
    if !v.contains(['\\', '"', '\n']) {
        return std::borrow::Cow::Borrowed(v);
    }
    let mut out = String::with_capacity(v.len() + 4);
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    std::borrow::Cow::Owned(out)
}

/// A monotone event counter. Cloning shares the underlying cell; the
/// default handle is a [no-op](Counter::noop).
#[derive(Debug, Clone, Default)]
pub struct Counter {
    cell: Option<Arc<AtomicU64>>,
}

impl Counter {
    /// A live standalone counter (registry-created counters share their
    /// cell with the registry instead).
    pub fn active() -> Self {
        Self {
            cell: Some(Arc::new(AtomicU64::new(0))),
        }
    }

    /// A recorder that drops every event — one predictable branch per
    /// record. This is the E23 baseline.
    pub fn noop() -> Self {
        Self { cell: None }
    }

    /// Whether this handle records anywhere.
    pub fn is_active(&self) -> bool {
        self.cell.is_some()
    }

    /// Adds one event (relaxed; hot-path safe).
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` events (relaxed; hot-path safe).
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.cell {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current count (0 for a no-op handle).
    pub fn get(&self) -> u64 {
        self.cell.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// A last-value-wins instantaneous measurement (stored as `f64` bits in
/// an atomic word). Cloning shares the cell; the default handle is a
/// no-op.
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    cell: Option<Arc<AtomicU64>>,
}

impl Gauge {
    /// A live standalone gauge.
    pub fn active() -> Self {
        Self {
            cell: Some(Arc::new(AtomicU64::new(0f64.to_bits()))),
        }
    }

    /// A recorder that drops every event.
    pub fn noop() -> Self {
        Self { cell: None }
    }

    /// Whether this handle records anywhere.
    pub fn is_active(&self) -> bool {
        self.cell.is_some()
    }

    /// Stores a new value (relaxed; hot-path safe).
    #[inline]
    pub fn set(&self, value: f64) {
        if let Some(cell) = &self.cell {
            cell.store(value.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current value (0.0 for a no-op handle).
    pub fn get(&self) -> f64 {
        self.cell
            .as_ref()
            .map_or(0.0, |c| f64::from_bits(c.load(Ordering::Relaxed)))
    }
}

/// The shared storage of a live histogram: one atomic per log2 bucket
/// plus the exact running sum and max. Lock-free: recording is two
/// relaxed `fetch_add`s and one relaxed `fetch_max`.
#[derive(Debug)]
struct HistogramCore {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
}

impl HistogramCore {
    fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// Which log2 bucket a value lands in: 0 → bucket 0, otherwise the
/// position of the highest set bit plus one (so bucket `i ≥ 1` holds
/// exactly `[2^(i-1), 2^i - 1]`), clamped into the last bucket.
#[inline]
fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        (64 - value.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

/// The largest value bucket `i` can hold — what quantile estimation
/// reports. For any recorded value `v < 2^63`, the reported bound `b`
/// satisfies `v ≤ b ≤ 2v + 1` (tight to a factor of 2), because `v` in
/// `[2^(i-1), 2^i - 1]` is bounded by `2^i - 1 ≤ 2v + 1`.
#[inline]
fn bucket_upper(index: usize) -> u64 {
    if index == 0 {
        0
    } else if index >= HISTOGRAM_BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << index) - 1
    }
}

/// A lock-free log2-bucketed histogram of `u64` samples (latencies in
/// nanoseconds, sizes in bytes, …). Mergeable (bucket-wise addition,
/// like every linear structure in this workspace) and snapshot-able;
/// quantile estimates report the bucket upper bound, so they bound the
/// true quantile from above within a factor of 2 (see
/// `tests/histogram_props.rs` for the property-test statement).
///
/// Cloning shares the cells; the default handle is a no-op.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    core: Option<Arc<HistogramCore>>,
}

impl Histogram {
    /// A live standalone histogram.
    pub fn active() -> Self {
        Self {
            core: Some(Arc::new(HistogramCore::new())),
        }
    }

    /// A recorder that drops every event.
    pub fn noop() -> Self {
        Self { core: None }
    }

    /// Whether this handle records anywhere.
    pub fn is_active(&self) -> bool {
        self.core.is_some()
    }

    /// Records one sample (three relaxed atomic ops; hot-path safe).
    #[inline]
    pub fn record(&self, value: u64) {
        if let Some(core) = &self.core {
            core.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
            core.sum.fetch_add(value, Ordering::Relaxed);
            core.max.fetch_max(value, Ordering::Relaxed);
        }
    }

    /// Records a duration as whole nanoseconds (saturating at `u64::MAX`,
    /// i.e. after ~584 years).
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Starts a span whose elapsed nanoseconds are recorded when the
    /// guard drops. A no-op histogram hands out a no-op guard that never
    /// reads the clock.
    pub fn start_timer(&self) -> TimerGuard {
        TimerGuard {
            hist: self.clone(),
            start: self.core.as_ref().map(|_| Instant::now()),
        }
    }

    /// Times one closure into this histogram.
    pub fn time<T>(&self, f: impl FnOnce() -> T) -> T {
        let _guard = self.start_timer();
        f()
    }

    /// Folds `other`'s samples into `self` — bucket-wise addition, so
    /// the result is exactly the histogram of the concatenated sample
    /// streams. Merging into or from a no-op handle does nothing.
    pub fn merge_from(&self, other: &Histogram) {
        let (Some(a), Some(b)) = (&self.core, &other.core) else {
            return;
        };
        for (mine, theirs) in a.buckets.iter().zip(&b.buckets) {
            mine.fetch_add(theirs.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        a.sum
            .fetch_add(b.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        a.max
            .fetch_max(b.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.snapshot_value().count()
    }

    /// Exact sum of all recorded samples (wrapping at `u64::MAX`).
    pub fn sum(&self) -> u64 {
        self.snapshot_value().sum
    }

    /// Exact maximum recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.snapshot_value().max
    }

    /// Upper bound on the `q`-quantile of the recorded samples — see
    /// [`HistogramSnapshot::quantile`].
    pub fn quantile(&self, q: f64) -> u64 {
        self.snapshot_value().quantile(q)
    }

    /// An immutable copy of the current bucket contents.
    pub fn snapshot_value(&self) -> HistogramSnapshot {
        match &self.core {
            None => HistogramSnapshot::default(),
            Some(core) => HistogramSnapshot {
                buckets: std::array::from_fn(|i| core.buckets[i].load(Ordering::Relaxed)),
                sum: core.sum.load(Ordering::Relaxed),
                max: core.max.load(Ordering::Relaxed),
            },
        }
    }
}

/// A span helper: records the elapsed nanoseconds into its histogram on
/// drop. Obtained from [`Histogram::start_timer`].
#[derive(Debug)]
pub struct TimerGuard {
    hist: Histogram,
    start: Option<Instant>,
}

impl TimerGuard {
    /// Discards the span without recording it.
    pub fn cancel(mut self) {
        self.start = None;
    }
}

impl Drop for TimerGuard {
    fn drop(&mut self) {
        if let Some(start) = self.start.take() {
            self.hist.record_duration(start.elapsed());
        }
    }
}

/// An immutable copy of a histogram's state at one point in time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (see [`HISTOGRAM_BUCKETS`]).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Exact sum of all samples.
    pub sum: u64,
    /// Exact maximum sample (0 when empty).
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self {
            buckets: [0; HISTOGRAM_BUCKETS],
            sum: 0,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Mean sample (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum as f64 / count as f64
        }
    }

    /// Upper bound on the `q`-quantile (`q` clamped to `[0, 1]`): the
    /// upper end of the bucket holding the sample of rank `⌈q·count⌉`.
    /// For samples below `2^63` the estimate `b` of a true quantile `v`
    /// satisfies `v ≤ b ≤ 2v + 1`. Returns 0 for an empty histogram (or
    /// a NaN `q`), and the exact observed maximum for `q ≥ 1`, so the
    /// p100 never overshoots into a bucket upper bound.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 || q.is_nan() {
            return 0;
        }
        if q >= 1.0 {
            return self.max;
        }
        let rank = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(i);
            }
        }
        self.max
    }

    /// Median upper bound.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th-percentile upper bound.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th-percentile upper bound.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Bucket-wise difference `self − earlier` (saturating), for rates
    /// across two scrapes. The `max` kept is `self`'s (a running max
    /// cannot be un-merged).
    pub fn diff(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].saturating_sub(earlier.buckets[i])),
            sum: self.sum.saturating_sub(earlier.sum),
            max: self.max,
        }
    }
}

/// One registered instrument, as the registry stores it (a second handle
/// onto the same cells the instrumented code records into).
#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// A namespaced collection of instruments. `counter`/`gauge`/`histogram`
/// get-or-create by series name (use [`series`] to fold a label set into
/// the name once, at registration time); a registry built with
/// [`MetricRegistry::noop`] hands out no-op handles and renders empty —
/// the switch experiment E23 flips to measure instrumentation overhead.
///
/// Registration takes a write lock; recording through the returned
/// handles takes no lock at all. Register once, record forever.
#[derive(Debug)]
pub struct MetricRegistry {
    enabled: bool,
    metrics: RwLock<BTreeMap<String, Metric>>,
}

impl Default for MetricRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricRegistry {
    /// A live registry.
    pub fn new() -> Self {
        Self {
            enabled: true,
            metrics: RwLock::new(BTreeMap::new()),
        }
    }

    /// A disabled registry: every handle it hands out is a no-op and its
    /// snapshot is empty.
    pub fn noop() -> Self {
        Self {
            enabled: false,
            metrics: RwLock::new(BTreeMap::new()),
        }
    }

    /// Whether this registry records anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Number of registered series.
    pub fn len(&self) -> usize {
        self.metrics.read().expect("metric registry poisoned").len()
    }

    /// Whether no series are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn register<T: Clone>(
        &self,
        name: &str,
        noop: impl Fn() -> T,
        fresh: impl Fn() -> T,
        wrap: impl Fn(T) -> Metric,
        unwrap: impl Fn(&Metric) -> Option<T>,
    ) -> T {
        if !self.enabled {
            return noop();
        }
        let mismatch = |found: &Metric| {
            panic!(
                "metric {name:?} already registered as a {} of a different kind",
                found.kind()
            )
        };
        {
            let metrics = self.metrics.read().expect("metric registry poisoned");
            if let Some(found) = metrics.get(name) {
                return unwrap(found).unwrap_or_else(|| mismatch(found));
            }
        }
        let mut metrics = self.metrics.write().expect("metric registry poisoned");
        match metrics.get(name) {
            Some(found) => unwrap(found).unwrap_or_else(|| mismatch(found)),
            None => {
                let handle = fresh();
                metrics.insert(name.to_string(), wrap(handle.clone()));
                handle
            }
        }
    }

    /// Gets or creates the counter registered under `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind.
    pub fn counter(&self, name: &str) -> Counter {
        self.register(
            name,
            Counter::noop,
            Counter::active,
            Metric::Counter,
            |m| match m {
                Metric::Counter(c) => Some(c.clone()),
                _ => None,
            },
        )
    }

    /// Gets or creates the gauge registered under `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.register(
            name,
            Gauge::noop,
            Gauge::active,
            Metric::Gauge,
            |m| match m {
                Metric::Gauge(g) => Some(g.clone()),
                _ => None,
            },
        )
    }

    /// Gets or creates the histogram registered under `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.register(
            name,
            Histogram::noop,
            Histogram::active,
            Metric::Histogram,
            |m| match m {
                Metric::Histogram(h) => Some(h.clone()),
                _ => None,
            },
        )
    }

    /// An immutable, diffable copy of every registered series.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let metrics = self.metrics.read().expect("metric registry poisoned");
        MetricsSnapshot {
            entries: metrics
                .iter()
                .map(|(name, m)| {
                    let value = match m {
                        Metric::Counter(c) => MetricValue::Counter(c.get()),
                        Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                        Metric::Histogram(h) => {
                            MetricValue::Histogram(Box::new(h.snapshot_value()))
                        }
                    };
                    (name.clone(), value)
                })
                .collect(),
        }
    }

    /// Renders the whole registry as Prometheus text exposition.
    pub fn render_prometheus(&self) -> String {
        self.snapshot().render_prometheus()
    }
}

/// One series' value inside a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// A counter's running total.
    Counter(u64),
    /// A gauge's last value.
    Gauge(f64),
    /// A histogram's bucket contents (boxed: a snapshot carries all 64
    /// buckets inline, which would otherwise dominate the enum's size).
    Histogram(Box<HistogramSnapshot>),
}

/// An immutable copy of a registry at one point in time. Snapshots
/// [`diff`](MetricsSnapshot::diff) exactly for counters and histograms
/// ("what happened between these two scrapes") and
/// [`filter`](MetricsSnapshot::filter) down to one tenant's series.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    entries: BTreeMap<String, MetricValue>,
}

impl MetricsSnapshot {
    /// Number of series captured.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no series were captured.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates the captured series in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &MetricValue)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// The counter value under `name` (the full series name, labels
    /// included), if any.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.entries.get(name) {
            Some(MetricValue::Counter(v)) => Some(*v),
            _ => None,
        }
    }

    /// The gauge value under `name`, if any.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        match self.entries.get(name) {
            Some(MetricValue::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    /// The histogram under `name`, if any.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        match self.entries.get(name) {
            Some(MetricValue::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// The series whose names satisfy `keep` — e.g. one tenant's slice
    /// of a shared registry.
    pub fn filter(&self, mut keep: impl FnMut(&str) -> bool) -> MetricsSnapshot {
        MetricsSnapshot {
            entries: self
                .entries
                .iter()
                .filter(|(name, _)| keep(name))
                .map(|(name, value)| (name.clone(), value.clone()))
                .collect(),
        }
    }

    /// What happened between `earlier` and `self`: counters and
    /// histogram buckets subtract exactly (saturating, and treating a
    /// series absent from `earlier` as zero); gauges keep `self`'s value
    /// (an instantaneous reading has no meaningful difference). Series
    /// absent from `self` are dropped.
    pub fn diff(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            entries: self
                .entries
                .iter()
                .map(|(name, value)| {
                    let diffed = match (value, earlier.entries.get(name)) {
                        (MetricValue::Counter(now), Some(MetricValue::Counter(then))) => {
                            MetricValue::Counter(now.saturating_sub(*then))
                        }
                        (MetricValue::Histogram(now), Some(MetricValue::Histogram(then))) => {
                            MetricValue::Histogram(Box::new(now.diff(then)))
                        }
                        _ => value.clone(),
                    };
                    (name.clone(), diffed)
                })
                .collect(),
        }
    }

    /// Renders the snapshot as Prometheus text exposition: one `# TYPE`
    /// line per metric family, counters and gauges as single samples,
    /// histograms as cumulative `_bucket{le=…}` samples (non-empty
    /// buckets plus `+Inf`) with `_sum` and `_count`. Label sets encoded
    /// into series names are spliced back out so `le` composes with
    /// them.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_family = "";
        for (name, value) in &self.entries {
            let (base, labels) = split_series(name);
            if base != last_family {
                let kind = match value {
                    MetricValue::Counter(_) => "counter",
                    MetricValue::Gauge(_) => "gauge",
                    MetricValue::Histogram(_) => "histogram",
                };
                let _ = writeln!(out, "# TYPE {base} {kind}");
                last_family = base;
            }
            match value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "{name} {v}");
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(out, "{name} {v}");
                }
                MetricValue::Histogram(h) => {
                    let mut cumulative = 0u64;
                    for (i, &c) in h.buckets.iter().enumerate() {
                        if c == 0 {
                            continue;
                        }
                        cumulative += c;
                        let le = bucket_upper(i);
                        let _ = writeln!(
                            out,
                            "{} {cumulative}",
                            splice(base, labels, "_bucket", Some(&le.to_string()))
                        );
                    }
                    let _ = writeln!(
                        out,
                        "{} {cumulative}",
                        splice(base, labels, "_bucket", Some("+Inf"))
                    );
                    let _ = writeln!(out, "{} {}", splice(base, labels, "_sum", None), h.sum);
                    let _ = writeln!(out, "{} {cumulative}", splice(base, labels, "_count", None));
                }
            }
        }
        out
    }
}

/// Splits a full series name into its metric family and the inner label
/// text: `"a{g=\"x\"}"` → `("a", "g=\"x\"")`, `"a"` → `("a", "")`.
fn split_series(name: &str) -> (&str, &str) {
    match name.split_once('{') {
        Some((base, rest)) => (base, rest.trim_end_matches('}')),
        None => (name, ""),
    }
}

/// Rebuilds a derived histogram sample name: family + `suffix`, the
/// original labels, and optionally an extra `le` label.
fn splice(base: &str, labels: &str, suffix: &str, le: Option<&str>) -> String {
    let mut out = String::with_capacity(base.len() + suffix.len() + labels.len() + 16);
    out.push_str(base);
    out.push_str(suffix);
    let extra = le.map(|v| format!("le=\"{v}\""));
    if !labels.is_empty() || extra.is_some() {
        out.push('{');
        out.push_str(labels);
        if let Some(extra) = extra {
            if !labels.is_empty() {
                out.push(',');
            }
            out.push_str(&extra);
        }
        out.push('}');
    }
    out
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)] // test code may unwrap freely

    use super::*;

    #[test]
    fn counters_count_and_noops_do_not() {
        let c = Counter::active();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert!(c.is_active());
        let shared = c.clone();
        shared.inc();
        assert_eq!(c.get(), 6, "clones share the cell");
        let n = Counter::noop();
        n.inc();
        n.add(100);
        assert_eq!(n.get(), 0);
        assert!(!n.is_active());
        assert_eq!(Counter::default().get(), 0, "default is a no-op");
    }

    #[test]
    fn gauges_keep_the_last_value() {
        let g = Gauge::active();
        assert_eq!(g.get(), 0.0);
        g.set(2.5);
        g.set(1.25);
        assert!((g.get() - 1.25).abs() < 1e-15);
        let n = Gauge::noop();
        n.set(9.0);
        assert_eq!(n.get(), 0.0);
    }

    #[test]
    fn bucket_index_and_upper_bracket_every_value() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        for v in [0u64, 1, 2, 3, 7, 8, 1000, 1 << 40, u64::MAX] {
            let i = bucket_index(v);
            assert!(v <= bucket_upper(i), "upper bound must cover {v}");
            if i > 0 {
                assert!(bucket_upper(i - 1) < v, "bucket below must not cover {v}");
            }
        }
    }

    #[test]
    fn histogram_quantiles_bound_known_samples() {
        let h = Histogram::active();
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), 5050);
        assert_eq!(h.max(), 100);
        // True p50 is 50; the estimate is its bucket upper bound.
        let p50 = h.quantile(0.5);
        assert!((50..=101).contains(&p50), "p50 bound {p50}");
        let p99 = h.quantile(0.99);
        assert!((99..=199).contains(&p99), "p99 bound {p99}");
        assert_eq!(h.quantile(0.0), h.quantile(1e-9), "q=0 clamps to rank 1");
        let empty = Histogram::active();
        assert_eq!(empty.quantile(0.5), 0);
    }

    #[test]
    fn histogram_merge_is_concatenation() {
        let a = Histogram::active();
        let b = Histogram::active();
        let both = Histogram::active();
        for v in [0u64, 1, 5, 900] {
            a.record(v);
            both.record(v);
        }
        for v in [2u64, 5, 1 << 33] {
            b.record(v);
            both.record(v);
        }
        a.merge_from(&b);
        assert_eq!(a.snapshot_value(), both.snapshot_value());
    }

    #[test]
    fn timer_guard_records_once_and_cancel_suppresses() {
        let h = Histogram::active();
        {
            let _t = h.start_timer();
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(h.count(), 1);
        assert!(h.max() >= 1_000_000, "at least the slept millisecond");
        h.start_timer().cancel();
        assert_eq!(h.count(), 1, "cancelled span must not record");
        let out = h.time(|| 7);
        assert_eq!(out, 7);
        assert_eq!(h.count(), 2);
        // A no-op histogram's guard records nowhere and reads no clock.
        let n = Histogram::noop();
        drop(n.start_timer());
        assert_eq!(n.count(), 0);
    }

    #[test]
    fn registry_get_or_create_shares_cells() {
        let reg = MetricRegistry::new();
        assert!(reg.is_enabled());
        assert!(reg.is_empty());
        let a = reg.counter("hits_total");
        let b = reg.counter("hits_total");
        a.inc();
        b.inc();
        assert_eq!(reg.snapshot().counter("hits_total"), Some(2));
        let h = reg.histogram("lat_nanos");
        h.record(5);
        reg.gauge("load").set(1.5);
        assert_eq!(reg.len(), 3);
        assert_eq!(
            reg.snapshot().histogram("lat_nanos").map(|h| h.count()),
            Some(1)
        );
        assert_eq!(reg.snapshot().gauge("load"), Some(1.5));
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn registry_rejects_kind_confusion() {
        let reg = MetricRegistry::new();
        let _ = reg.counter("x");
        let _ = reg.histogram("x");
    }

    #[test]
    fn noop_registry_is_free_and_renders_empty() {
        let reg = MetricRegistry::noop();
        assert!(!reg.is_enabled());
        let c = reg.counter("hits_total");
        c.add(10);
        reg.histogram("h").record(3);
        reg.gauge("g").set(2.0);
        assert!(!c.is_active());
        assert!(reg.is_empty());
        assert!(reg.snapshot().is_empty());
        assert_eq!(reg.render_prometheus(), "");
    }

    #[test]
    fn series_encodes_labels() {
        assert_eq!(series("a", &[]), "a");
        assert_eq!(
            series("a_total", &[("graph", "g"), ("shard", "0")]),
            "a_total{graph=\"g\",shard=\"0\"}"
        );
        assert_eq!(
            split_series("a_total{graph=\"g\"}"),
            ("a_total", "graph=\"g\"")
        );
        assert_eq!(split_series("a_total"), ("a_total", ""));
    }

    #[test]
    fn hostile_label_values_render_valid_exposition() {
        // A tenant is free to name itself something exposition-hostile;
        // the rendered text must still parse (RFC: `\\`, `\"`, `\n`).
        let hostile = "bad\\tenant\"quoted\nline";
        assert_eq!(
            escape_label_value(hostile),
            "bad\\\\tenant\\\"quoted\\nline"
        );
        assert!(matches!(
            escape_label_value("tame"),
            std::borrow::Cow::Borrowed(_)
        ));

        let reg = MetricRegistry::new();
        reg.counter(&series("events_total", &[("graph", hostile)]))
            .add(7);
        reg.histogram(&series("latency_ns", &[("graph", hostile)]))
            .record(5);
        let text = reg.render_prometheus();
        // No raw newline may survive inside a label value: every line of
        // the exposition must be a comment or a `name{labels} value`
        // sample whose quotes balance.
        for line in text.lines() {
            if line.starts_with('#') {
                continue;
            }
            let quotes = line.matches('"').count() - line.matches("\\\"").count();
            assert_eq!(quotes % 2, 0, "unbalanced quotes in sample line {line:?}");
            assert!(
                line.rsplit_once(' ').is_some(),
                "sample line {line:?} lost its value"
            );
        }
        assert!(text.contains("graph=\"bad\\\\tenant\\\"quoted\\nline\""));
        // The histogram splicer must compose `le` with the escaped label.
        assert!(text.contains("latency_ns_bucket{graph=\"bad\\\\tenant\\\"quoted\\nline\",le="));
    }

    #[test]
    fn snapshot_diff_is_exact_for_counters_and_histograms() {
        let reg = MetricRegistry::new();
        let c = reg.counter("events_total");
        let h = reg.histogram("size_bytes");
        c.add(3);
        h.record(10);
        let before = reg.snapshot();
        c.add(39);
        h.record(10);
        h.record(2000);
        reg.gauge("load").set(4.0);
        let after = reg.snapshot();
        let delta = after.diff(&before);
        assert_eq!(delta.counter("events_total"), Some(39));
        let dh = delta.histogram("size_bytes").unwrap();
        assert_eq!(dh.count(), 2);
        assert_eq!(dh.sum, 2010);
        assert_eq!(
            delta.gauge("load"),
            Some(4.0),
            "gauges keep the later value"
        );
    }

    #[test]
    fn snapshot_filter_selects_tenants() {
        let reg = MetricRegistry::new();
        reg.counter(&series("ops_total", &[("graph", "a")])).inc();
        reg.counter(&series("ops_total", &[("graph", "b")])).inc();
        let mine = reg.snapshot().filter(|name| name.contains("graph=\"a\""));
        assert_eq!(mine.len(), 1);
        assert_eq!(mine.counter("ops_total{graph=\"a\"}"), Some(1));
    }

    #[test]
    fn prometheus_rendering_is_well_formed() {
        let reg = MetricRegistry::new();
        reg.counter(&series("reqs_total", &[("graph", "g")])).add(7);
        reg.gauge("load_balance").set(1.25);
        let h = reg.histogram(&series("lat_nanos", &[("graph", "g")]));
        h.record(3);
        h.record(900);
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE reqs_total counter"));
        assert!(text.contains("reqs_total{graph=\"g\"} 7"));
        assert!(text.contains("# TYPE load_balance gauge"));
        assert!(text.contains("load_balance 1.25"));
        assert!(text.contains("# TYPE lat_nanos histogram"));
        assert!(text.contains("lat_nanos_bucket{graph=\"g\",le=\"3\"} 1"));
        assert!(text.contains("lat_nanos_bucket{graph=\"g\",le=\"+Inf\"} 2"));
        assert!(text.contains("lat_nanos_sum{graph=\"g\"} 903"));
        assert!(text.contains("lat_nanos_count{graph=\"g\"} 2"));
        // Exactly one TYPE line per family.
        assert_eq!(text.matches("# TYPE lat_nanos ").count(), 1);
    }

    #[test]
    fn diff_drops_nothing_recorded_before() {
        let reg = MetricRegistry::new();
        let before = reg.snapshot();
        reg.counter("fresh_total").add(2);
        let delta = reg.snapshot().diff(&before);
        assert_eq!(
            delta.counter("fresh_total"),
            Some(2),
            "series absent from the earlier snapshot count from zero"
        );
    }
}
