//! Flight recorder: lock-free, fixed-capacity structured event tracing.
//!
//! Where the metric handles in this crate answer "how many / how long on
//! average", the flight recorder answers "what did *this* request do":
//! every event carries a **causal trace id** minted at the request
//! boundary (or an epoch/recovery boundary) so a dump can be filtered to
//! one request's full chain across service and store layers.
//!
//! The cost model mirrors the metric handles:
//!
//! * **No-op recorder** ([`FlightRecorder::noop`]): [`record`] is one
//!   branch on an `Option`, nothing else. Same shape as a no-op
//!   [`Counter`](crate::Counter).
//! * **Active recorder**: one monotonic-clock read plus five relaxed
//!   atomic stores into a pre-allocated per-thread ring — no allocation,
//!   no locking on the hot path (the per-thread ring is created and
//!   registered on a thread's *first* event, which takes a mutex once).
//! * **Disabled at runtime** ([`FlightRecorder::set_enabled`]): one extra
//!   relaxed load after the `Option` branch. This is how benchmarks and
//!   the watchdog pause recording without tearing down the rings.
//!
//! Each thread writes its own ring, so writes never contend. Slots are
//! seqlock-protected: the writer bumps a per-slot sequence word to an
//! odd value, writes the event fields, then publishes an even value;
//! [`dump`](FlightRecorder::dump) re-checks the sequence around its
//! reads and skips any slot that changed mid-read, so concurrent
//! wrap-around can *lose* a racing event but never tear one.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::sync::atomic::{fence, AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, Weak};
use std::time::Instant;

/// What happened. Stored in the event word as a `u16`; the names are the
/// `name` field of the Chrome `trace_event` rendering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u16)]
pub enum EventKind {
    /// A query entered [`QueryService::submit`]; payload = variant index.
    QuerySubmit = 1,
    /// A worker picked the query up; payload = queue wait, nanoseconds.
    QueryDequeue = 2,
    /// A worker finished executing; payload = execution nanoseconds.
    QueryExecute = 3,
    /// A derived artifact was built; payload = artifact index.
    ArtifactBuild = 4,
    /// A batch of updates was applied to a served graph; payload = batch
    /// length.
    IngestBatch = 5,
    /// The sharded engine dispatched a batch; payload = batch length.
    EngineBatch = 6,
    /// Epoch advance: shard sketches forked under the ingest lock.
    EpochFork = 7,
    /// Epoch advance: forks merged into the coordinator sketch.
    EpochMerge = 8,
    /// Epoch advance: compacted log sealed; payload = sealed net edges.
    EpochSeal = 9,
    /// Epoch advance took the wire path; payload = total frame bytes.
    EpochWire = 10,
    /// A wire frame was decoded; payload = the trace id recovered from
    /// the frame trailer (0 for untraced v1 frames).
    WireDecode = 11,
    /// A new epoch snapshot was published; payload = epoch number.
    EpochPublish = 12,
    /// A WAL batch was appended; payload = record count.
    WalAppend = 13,
    /// A checkpoint was written; payload = checkpoint epoch.
    CheckpointWrite = 14,
    /// A checkpoint was loaded during recovery; payload = nanoseconds.
    CheckpointLoad = 15,
    /// Recovery restored the in-memory graph; payload = nanoseconds.
    RecoveryRestore = 16,
    /// Recovery replayed the WAL tail; payload = records replayed.
    RecoveryReplay = 17,
    /// Recovery reopened the WAL for appends; payload = nanoseconds.
    RecoveryWalOpen = 18,
    /// The watchdog flagged a query over threshold; payload = latency in
    /// nanoseconds.
    SlowQuery = 19,
    /// The accuracy auditor caught a served answer outside its guarantee;
    /// payload = query variant index.
    QualityViolation = 20,
    /// A derived artifact was refreshed by patching the previous epoch's
    /// artifact with the segment diff instead of a full rebuild;
    /// payload = artifact index.
    ArtifactPatch = 21,
}

impl EventKind {
    /// Event name used by the Chrome `trace_event` rendering.
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::QuerySubmit => "query_submit",
            EventKind::QueryDequeue => "query_dequeue",
            EventKind::QueryExecute => "query_execute",
            EventKind::ArtifactBuild => "artifact_build",
            EventKind::IngestBatch => "ingest_batch",
            EventKind::EngineBatch => "engine_batch",
            EventKind::EpochFork => "epoch_fork",
            EventKind::EpochMerge => "epoch_merge",
            EventKind::EpochSeal => "epoch_seal",
            EventKind::EpochWire => "epoch_wire",
            EventKind::WireDecode => "wire_decode",
            EventKind::EpochPublish => "epoch_publish",
            EventKind::WalAppend => "wal_append",
            EventKind::CheckpointWrite => "checkpoint_write",
            EventKind::CheckpointLoad => "checkpoint_load",
            EventKind::RecoveryRestore => "recovery_restore",
            EventKind::RecoveryReplay => "recovery_replay",
            EventKind::RecoveryWalOpen => "recovery_wal_open",
            EventKind::SlowQuery => "slow_query",
            EventKind::QualityViolation => "quality_violation",
            EventKind::ArtifactPatch => "artifact_patch",
        }
    }

    fn from_u16(raw: u16) -> Option<Self> {
        Some(match raw {
            1 => EventKind::QuerySubmit,
            2 => EventKind::QueryDequeue,
            3 => EventKind::QueryExecute,
            4 => EventKind::ArtifactBuild,
            5 => EventKind::IngestBatch,
            6 => EventKind::EngineBatch,
            7 => EventKind::EpochFork,
            8 => EventKind::EpochMerge,
            9 => EventKind::EpochSeal,
            10 => EventKind::EpochWire,
            11 => EventKind::WireDecode,
            12 => EventKind::EpochPublish,
            13 => EventKind::WalAppend,
            14 => EventKind::CheckpointWrite,
            15 => EventKind::CheckpointLoad,
            16 => EventKind::RecoveryRestore,
            17 => EventKind::RecoveryReplay,
            18 => EventKind::RecoveryWalOpen,
            19 => EventKind::SlowQuery,
            20 => EventKind::QualityViolation,
            21 => EventKind::ArtifactPatch,
            _ => return None,
        })
    }
}

/// One recorded event: 40 bytes, `Copy`, no heap.
///
/// `tenant` is an interned token from [`FlightRecorder::intern`] (0 =
/// none); `payload` is a kind-specific detail word documented on each
/// [`EventKind`] variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Nanoseconds since the recorder was created (monotonic).
    pub nanos: u64,
    /// What happened.
    pub kind: EventKind,
    /// Causal chain this event belongs to (0 = untraced).
    pub trace_id: u64,
    /// Interned tenant token (0 = none).
    pub tenant: u32,
    /// Kind-specific detail word.
    pub payload: u64,
}

/// One seqlock-protected event slot. The writer publishes `2n + 2` in
/// `seq` once slot contents hold event number `n`; readers skip the slot
/// unless they observe that exact value before *and* after reading the
/// data words.
#[derive(Default)]
struct Slot {
    seq: AtomicU64,
    nanos: AtomicU64,
    /// `kind as u64 | (tenant as u64) << 16`.
    meta: AtomicU64,
    trace_id: AtomicU64,
    payload: AtomicU64,
}

/// A single thread's event ring. Exactly one thread writes; any thread
/// may read via [`Ring::read_into`].
struct Ring {
    slots: Box<[Slot]>,
    /// Number of events ever written to this ring (writer-owned).
    head: AtomicU64,
}

impl Ring {
    fn new(capacity: usize) -> Self {
        let mut slots = Vec::with_capacity(capacity);
        slots.resize_with(capacity, Slot::default);
        Ring {
            slots: slots.into_boxed_slice(),
            head: AtomicU64::new(0),
        }
    }

    /// Writer side: only the owning thread calls this.
    fn push(&self, ev: TraceEvent) {
        let n = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(n % self.slots.len() as u64) as usize];
        // Seqlock write: odd marks the slot busy, even publishes event n.
        slot.seq.store(2 * n + 1, Ordering::Relaxed);
        fence(Ordering::Release);
        slot.nanos.store(ev.nanos, Ordering::Relaxed);
        slot.meta.store(
            ev.kind as u64 | (u64::from(ev.tenant) << 16),
            Ordering::Relaxed,
        );
        slot.trace_id.store(ev.trace_id, Ordering::Relaxed);
        slot.payload.store(ev.payload, Ordering::Relaxed);
        slot.seq.store(2 * n + 2, Ordering::Release);
        self.head.store(n + 1, Ordering::Release);
    }

    /// Reader side: appends every event still intact in the ring. Events
    /// overwritten (or mid-write) while we read are skipped, never torn.
    fn read_into(&self, out: &mut Vec<TraceEvent>) {
        let head = self.head.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        let oldest = head.saturating_sub(cap);
        for n in oldest..head {
            let slot = &self.slots[(n % cap) as usize];
            let want = 2 * n + 2;
            if slot.seq.load(Ordering::Acquire) != want {
                continue;
            }
            let nanos = slot.nanos.load(Ordering::Relaxed);
            let meta = slot.meta.load(Ordering::Relaxed);
            let trace_id = slot.trace_id.load(Ordering::Relaxed);
            let payload = slot.payload.load(Ordering::Relaxed);
            fence(Ordering::Acquire);
            if slot.seq.load(Ordering::Relaxed) != want {
                continue;
            }
            let Some(kind) = EventKind::from_u16((meta & 0xffff) as u16) else {
                continue;
            };
            out.push(TraceEvent {
                nanos,
                kind,
                trace_id,
                tenant: (meta >> 16) as u32,
                payload,
            });
        }
    }
}

/// A captured slow-request window: the triggering request's identity
/// plus every event that shares its trace id or falls inside the
/// surrounding time window at capture time.
#[derive(Debug, Clone)]
pub struct Incident {
    /// Trace id of the request that tripped the watchdog.
    pub trace_id: u64,
    /// Human label (for slow queries, the query variant).
    pub label: String,
    /// The latency that tripped the threshold, nanoseconds.
    pub latency_nanos: u64,
    /// Recorder-relative capture time, nanoseconds.
    pub at_nanos: u64,
    /// The captured event window, globally time-ordered.
    pub events: Vec<TraceEvent>,
}

/// How many incidents [`FlightRecorder::capture_incident`] retains
/// (oldest dropped first).
pub const MAX_INCIDENTS: usize = 32;

struct RecorderCore {
    /// Distinguishes recorders in thread-local ring caches.
    id: usize,
    start: Instant,
    capacity: usize,
    enabled: AtomicBool,
    rings: Mutex<Vec<Arc<Ring>>>,
    tenants: Mutex<Vec<String>>,
    incidents: Mutex<VecDeque<Incident>>,
    trace_counter: AtomicU64,
}

static NEXT_RECORDER_ID: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Per-thread cache of `(recorder id, ring)` pairs, so [`record`]
    /// finds this thread's ring without touching the shared mutex.
    static THREAD_RINGS: RefCell<Vec<(usize, Weak<Ring>)>> = const { RefCell::new(Vec::new()) };

    /// Ambient trace id for the current thread (see [`scoped`]).
    static CURRENT_TRACE: Cell<u64> = const { Cell::new(0) };
}

/// Handle to a flight recorder, or a no-op. Clones share the same rings,
/// incidents, and trace-id counter, mirroring the metric-handle model:
/// plumb clones everywhere, pay nothing when no-op.
#[derive(Clone, Default)]
pub struct FlightRecorder {
    core: Option<Arc<RecorderCore>>,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.core {
            Some(core) => f
                .debug_struct("FlightRecorder")
                .field("capacity", &core.capacity)
                .finish(),
            None => f.write_str("FlightRecorder::noop"),
        }
    }
}

impl FlightRecorder {
    /// An active recorder whose per-thread rings each hold `capacity`
    /// events (rounded up to a power of two, minimum 8).
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(8).next_power_of_two();
        FlightRecorder {
            core: Some(Arc::new(RecorderCore {
                id: NEXT_RECORDER_ID.fetch_add(1, Ordering::Relaxed),
                start: Instant::now(),
                capacity,
                enabled: AtomicBool::new(true),
                rings: Mutex::new(Vec::new()),
                tenants: Mutex::new(Vec::new()),
                incidents: Mutex::new(VecDeque::new()),
                trace_counter: AtomicU64::new(1),
            })),
        }
    }

    /// A recorder that records nothing: [`record`](Self::record) is one
    /// branch, [`next_trace_id`](Self::next_trace_id) returns 0.
    pub fn noop() -> Self {
        FlightRecorder { core: None }
    }

    /// Whether this handle points at a live recorder.
    pub fn is_active(&self) -> bool {
        self.core.is_some()
    }

    /// Runtime toggle: a disabled recorder keeps its rings but
    /// [`record`](Self::record) returns after one extra relaxed load.
    pub fn set_enabled(&self, enabled: bool) {
        if let Some(core) = &self.core {
            core.enabled.store(enabled, Ordering::Relaxed);
        }
    }

    /// Mints a fresh nonzero trace id (0 on a no-op recorder, so
    /// untraced and no-op paths look identical downstream).
    pub fn next_trace_id(&self) -> u64 {
        match &self.core {
            Some(core) => core.trace_counter.fetch_add(1, Ordering::Relaxed),
            None => 0,
        }
    }

    /// Interns `name`, returning a stable nonzero token for
    /// [`TraceEvent::tenant`] (0 on a no-op recorder).
    pub fn intern(&self, name: &str) -> u32 {
        let Some(core) = &self.core else { return 0 };
        let mut tenants = core.tenants.lock().expect("recorder tenants poisoned");
        if let Some(i) = tenants.iter().position(|t| t == name) {
            return (i + 1) as u32;
        }
        tenants.push(name.to_string());
        tenants.len() as u32
    }

    /// The name behind an interned token, if any.
    pub fn tenant_name(&self, token: u32) -> Option<String> {
        let core = self.core.as_ref()?;
        let tenants = core.tenants.lock().expect("recorder tenants poisoned");
        tenants.get(token.checked_sub(1)? as usize).cloned()
    }

    /// Nanoseconds since this recorder was created (0 when no-op).
    pub fn now_nanos(&self) -> u64 {
        match &self.core {
            Some(core) => core.start.elapsed().as_nanos() as u64,
            None => 0,
        }
    }

    /// Records one event into the calling thread's ring.
    #[inline]
    pub fn record(&self, kind: EventKind, trace_id: u64, tenant: u32, payload: u64) {
        let Some(core) = &self.core else { return };
        if !core.enabled.load(Ordering::Relaxed) {
            return;
        }
        let ev = TraceEvent {
            nanos: core.start.elapsed().as_nanos() as u64,
            kind,
            trace_id,
            tenant,
            payload,
        };
        THREAD_RINGS.with(|cache| {
            let mut cache = cache.borrow_mut();
            if let Some((_, weak)) = cache.iter().find(|(id, _)| *id == core.id) {
                if let Some(ring) = weak.upgrade() {
                    ring.push(ev);
                    return;
                }
            }
            // First event from this thread (or the recorder this entry
            // pointed at is gone): build a ring, register it, cache it.
            cache.retain(|(_, weak)| weak.strong_count() > 0);
            let ring = Arc::new(Ring::new(core.capacity));
            core.rings
                .lock()
                .expect("recorder rings poisoned")
                .push(Arc::clone(&ring));
            cache.push((core.id, Arc::downgrade(&ring)));
            ring.push(ev);
        });
    }

    /// Merges every thread's ring into one globally time-ordered dump.
    pub fn dump(&self) -> Vec<TraceEvent> {
        let Some(core) = &self.core else {
            return Vec::new();
        };
        let rings: Vec<Arc<Ring>> = core.rings.lock().expect("recorder rings poisoned").clone();
        let mut out = Vec::new();
        for ring in rings {
            ring.read_into(&mut out);
        }
        out.sort_by_key(|ev| ev.nanos);
        out
    }

    /// Captures the events around a slow request into the bounded
    /// incident buffer: everything sharing `trace_id`, plus any event
    /// within `window_nanos` of now. Keeps the newest [`MAX_INCIDENTS`].
    pub fn capture_incident(
        &self,
        trace_id: u64,
        label: String,
        latency_nanos: u64,
        window_nanos: u64,
    ) {
        let Some(core) = &self.core else { return };
        let at_nanos = core.start.elapsed().as_nanos() as u64;
        let events: Vec<TraceEvent> = self
            .dump()
            .into_iter()
            .filter(|ev| {
                (trace_id != 0 && ev.trace_id == trace_id)
                    || at_nanos.saturating_sub(ev.nanos) <= window_nanos
            })
            .collect();
        let mut incidents = core.incidents.lock().expect("recorder incidents poisoned");
        if incidents.len() >= MAX_INCIDENTS {
            incidents.pop_front();
        }
        incidents.push_back(Incident {
            trace_id,
            label,
            latency_nanos,
            at_nanos,
            events,
        });
    }

    /// The captured incidents, oldest first.
    pub fn incidents(&self) -> Vec<Incident> {
        match &self.core {
            Some(core) => core
                .incidents
                .lock()
                .expect("recorder incidents poisoned")
                .iter()
                .cloned()
                .collect(),
            None => Vec::new(),
        }
    }

    /// Renders the current dump plus incidents as Chrome `trace_event`
    /// JSON (loadable in chrome://tracing or Perfetto). Timestamps are
    /// microseconds as the format requires; `args.nanos` keeps full
    /// precision.
    pub fn render_chrome_trace(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
        let mut first = true;
        for ev in self.dump() {
            if !first {
                out.push(',');
            }
            first = false;
            self.render_event(&mut out, &ev);
        }
        out.push_str("],\"incidents\":[");
        let mut first = true;
        for inc in self.incidents() {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "{{\"trace_id\":{},\"label\":{},\"latency_nanos\":{},\"at_nanos\":{},\"events\":[",
                inc.trace_id,
                json_string(&inc.label),
                inc.latency_nanos,
                inc.at_nanos
            ));
            let mut first_ev = true;
            for ev in &inc.events {
                if !first_ev {
                    out.push(',');
                }
                first_ev = false;
                self.render_event(&mut out, ev);
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }

    fn render_event(&self, out: &mut String, ev: &TraceEvent) {
        let tenant = self
            .tenant_name(ev.tenant)
            .unwrap_or_else(|| ev.tenant.to_string());
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{:.3},\"pid\":1,\"tid\":{},\
             \"args\":{{\"trace_id\":{},\"tenant\":{},\"payload\":{},\"nanos\":{}}}}}",
            ev.kind.as_str(),
            ev.nanos as f64 / 1000.0,
            ev.tenant,
            ev.trace_id,
            json_string(&tenant),
            ev.payload,
            ev.nanos
        ));
    }
}

/// Minimal JSON string escaper for labels and tenant names.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The calling thread's ambient trace id (0 if none is in scope).
///
/// Layers that cannot thread an id through their signatures — artifact
/// builders under `OnceLock`, WAL appends inside `DurableGraph::apply` —
/// read this instead; the layer that owns the request boundary installs
/// it with [`scoped`].
pub fn current_trace_id() -> u64 {
    CURRENT_TRACE.with(|c| c.get())
}

/// Installs `id` as the calling thread's ambient trace id until the
/// returned guard drops (restoring whatever was in scope before).
#[must_use = "the trace id is uninstalled when the guard drops"]
pub fn scoped(id: u64) -> TraceScope {
    let prev = CURRENT_TRACE.with(|c| c.replace(id));
    TraceScope { prev }
}

/// Guard from [`scoped`]; restores the previous ambient id on drop.
#[derive(Debug)]
pub struct TraceScope {
    prev: u64,
}

impl Drop for TraceScope {
    fn drop(&mut self) {
        CURRENT_TRACE.with(|c| c.set(self.prev));
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)] // test code may unwrap freely

    use super::*;

    #[test]
    fn noop_recorder_records_nothing() {
        let rec = FlightRecorder::noop();
        assert!(!rec.is_active());
        rec.record(EventKind::QuerySubmit, 1, 0, 0);
        assert!(rec.dump().is_empty());
        assert_eq!(rec.next_trace_id(), 0);
        assert_eq!(rec.intern("g"), 0);
    }

    #[test]
    fn records_and_dumps_in_time_order() {
        let rec = FlightRecorder::with_capacity(64);
        let t = rec.next_trace_id();
        assert_ne!(t, 0);
        rec.record(EventKind::QuerySubmit, t, 0, 3);
        rec.record(EventKind::QueryExecute, t, 0, 7);
        let dump = rec.dump();
        assert_eq!(dump.len(), 2);
        assert_eq!(dump[0].kind, EventKind::QuerySubmit);
        assert_eq!(dump[1].kind, EventKind::QueryExecute);
        assert!(dump[0].nanos <= dump[1].nanos);
        assert!(dump.iter().all(|ev| ev.trace_id == t));
    }

    #[test]
    fn ring_wraps_keeping_newest() {
        let rec = FlightRecorder::with_capacity(8);
        for i in 0..20u64 {
            rec.record(EventKind::IngestBatch, 1, 0, i);
        }
        let dump = rec.dump();
        assert_eq!(dump.len(), 8);
        let payloads: Vec<u64> = dump.iter().map(|ev| ev.payload).collect();
        assert_eq!(payloads, (12..20).collect::<Vec<u64>>());
    }

    #[test]
    fn disabled_recorder_drops_events() {
        let rec = FlightRecorder::with_capacity(8);
        rec.set_enabled(false);
        rec.record(EventKind::QuerySubmit, 1, 0, 0);
        assert!(rec.dump().is_empty());
        rec.set_enabled(true);
        rec.record(EventKind::QuerySubmit, 1, 0, 0);
        assert_eq!(rec.dump().len(), 1);
    }

    #[test]
    fn interning_round_trips() {
        let rec = FlightRecorder::with_capacity(8);
        let a = rec.intern("social");
        let b = rec.intern("roads");
        assert_eq!(rec.intern("social"), a);
        assert_ne!(a, b);
        assert_eq!(rec.tenant_name(a).as_deref(), Some("social"));
        assert_eq!(rec.tenant_name(0), None);
        assert_eq!(rec.tenant_name(99), None);
    }

    #[test]
    fn multi_thread_dump_merges_all_rings() {
        let rec = FlightRecorder::with_capacity(64);
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let rec = rec.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..10 {
                    rec.record(EventKind::EngineBatch, t + 1, 0, i);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let dump = rec.dump();
        assert_eq!(dump.len(), 40);
        assert!(dump.windows(2).all(|w| w[0].nanos <= w[1].nanos));
    }

    #[test]
    fn incidents_filter_by_trace_and_window() {
        let rec = FlightRecorder::with_capacity(64);
        let slow = rec.next_trace_id();
        let other = rec.next_trace_id();
        rec.record(EventKind::QuerySubmit, slow, 0, 0);
        rec.record(EventKind::QuerySubmit, other, 0, 1);
        rec.record(EventKind::QueryExecute, slow, 0, 2);
        // Window 0: only the matching trace id survives the filter
        // (modulo events recorded in the same instant).
        rec.capture_incident(slow, "connectivity".to_string(), 123, 0);
        let incidents = rec.incidents();
        assert_eq!(incidents.len(), 1);
        let inc = &incidents[0];
        assert_eq!(inc.trace_id, slow);
        assert_eq!(inc.label, "connectivity");
        assert_eq!(inc.latency_nanos, 123);
        assert!(inc.events.iter().filter(|ev| ev.trace_id == slow).count() >= 2);
        // A huge window captures everything.
        rec.capture_incident(slow, "again".to_string(), 1, u64::MAX);
        assert_eq!(rec.incidents()[1].events.len(), 3);
    }

    #[test]
    fn incident_buffer_is_bounded() {
        let rec = FlightRecorder::with_capacity(8);
        for i in 0..(MAX_INCIDENTS + 5) {
            rec.capture_incident(i as u64 + 1, format!("q{i}"), 1, 0);
        }
        let incidents = rec.incidents();
        assert_eq!(incidents.len(), MAX_INCIDENTS);
        assert_eq!(incidents[0].label, "q5");
    }

    #[test]
    fn scoped_trace_id_nests_and_restores() {
        assert_eq!(current_trace_id(), 0);
        {
            let _a = scoped(7);
            assert_eq!(current_trace_id(), 7);
            {
                let _b = scoped(9);
                assert_eq!(current_trace_id(), 9);
            }
            assert_eq!(current_trace_id(), 7);
        }
        assert_eq!(current_trace_id(), 0);
    }

    #[test]
    fn chrome_trace_renders_events_and_incidents() {
        let rec = FlightRecorder::with_capacity(16);
        let tenant = rec.intern("social");
        let t = rec.next_trace_id();
        rec.record(EventKind::QuerySubmit, t, tenant, 0);
        rec.capture_incident(t, "distance".to_string(), 55, u64::MAX);
        let json = rec.render_chrome_trace();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"traceEvents\":["));
        assert!(json.contains("\"query_submit\""));
        assert!(json.contains("\"incidents\":["));
        assert!(json.contains("\"distance\""));
        assert!(json.contains("\"social\""));
    }

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }
}
